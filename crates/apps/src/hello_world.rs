//! CARLsim's "hello world": a 13×9 visual field projecting onto 9 outputs.
//!
//! The paper lists this as *feedforward (117, 9), rate coding*. CARLsim's
//! tutorial network drives a small grid of Poisson neurons with a drifting
//! bar stimulus and reads the response of a handful of downstream neurons;
//! we reproduce that: a 13×9 input field rate-codes a vertical bar that
//! sweeps horizontally, and each of the 9 output neurons pools a 13-pixel
//! column triplet.

use crate::App;
use neuromap_core::CoreError;
use neuromap_snn::coding::rate_encode;
use neuromap_snn::generator::Generator;
use neuromap_snn::network::{ConnectPattern, Network, NetworkBuilder, WeightInit};
use neuromap_snn::neuron::NeuronKind;

/// Field width (pixels / input columns).
pub const WIDTH: u32 = 13;
/// Field height (pixels / input rows).
pub const HEIGHT: u32 = 9;

/// The hello-world application.
#[derive(Debug, Clone, Copy)]
pub struct HelloWorld {
    /// Peak Poisson rate for a fully lit pixel (Hz).
    pub max_rate_hz: f64,
    /// Simulation length (ms).
    pub steps: u32,
    /// Synaptic weight from input pixel to its pooling output.
    pub weight: f32,
}

impl Default for HelloWorld {
    fn default() -> Self {
        Self {
            max_rate_hz: 60.0,
            steps: 1000,
            weight: 2.4,
        }
    }
}

impl HelloWorld {
    /// The stimulus: a vertical bar (2 px wide) centered at column
    /// `bar_center`, plus a dim background.
    pub fn stimulus(bar_center: u32) -> Vec<f64> {
        let mut img = vec![0.08; (WIDTH * HEIGHT) as usize];
        for y in 0..HEIGHT {
            for x in 0..WIDTH {
                if x.abs_diff(bar_center) <= 1 {
                    img[(y * WIDTH + x) as usize] = 1.0;
                }
            }
        }
        img
    }
}

impl App for HelloWorld {
    fn name(&self) -> String {
        "HW".to_owned()
    }

    fn build(&self, _seed: u64) -> Result<Network, CoreError> {
        let img = Self::stimulus(WIDTH / 2);
        let rates = rate_encode(&img, self.max_rate_hz);
        let mut b = NetworkBuilder::new();
        let input = b.add_input_group("field", WIDTH * HEIGHT, Generator::rates(rates))?;
        let out = b.add_group("pool", 9, NeuronKind::izhikevich_rs())?;
        // output j pools the 13-pixel rows? No: pools columns 3j-ish.
        // Each output pools a 3-column stripe (the 9 stripes tile 13
        // columns with overlap at the edges).
        let mut pairs = Vec::new();
        for j in 0..9u32 {
            let c0 = (j * (WIDTH - 3) / 8).min(WIDTH - 3);
            for dy in 0..HEIGHT {
                for dx in 0..3 {
                    pairs.push((dy * WIDTH + c0 + dx, j));
                }
            }
        }
        b.connect(
            input,
            out,
            ConnectPattern::Pairs { pairs },
            WeightInit::Constant(self.weight),
            1,
        )?;
        Ok(b.build()?)
    }

    fn sim_steps(&self) -> u32 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_matches_table1() {
        let net = HelloWorld::default().build(0).unwrap();
        assert_eq!(net.num_neurons(), 117 + 9);
        let (_, input) = net.group_by_name("field").unwrap();
        assert_eq!(input.size, 117);
        let (_, out) = net.group_by_name("pool").unwrap();
        assert_eq!(out.size, 9);
    }

    #[test]
    fn stimulus_has_a_bar() {
        let img = HelloWorld::stimulus(6);
        let lit = img.iter().filter(|&&v| v > 0.9).count();
        assert_eq!(lit, 3 * HEIGHT as usize); // 3 columns × 9 rows
    }

    #[test]
    fn bar_columns_fire_fastest() {
        let app = HelloWorld::default();
        let graph = app.spike_graph(7).unwrap();
        // inputs under the bar (columns 5..=7) fire much more than edges
        let col_rate =
            |c: u32| -> u64 { (0..HEIGHT).map(|y| graph.count(y * WIDTH + c) as u64).sum() };
        assert!(col_rate(6) > 3 * col_rate(0).max(1));
    }

    #[test]
    fn outputs_respond() {
        let app = HelloWorld::default();
        let graph = app.spike_graph(11).unwrap();
        let output_spikes: u64 = (117..126).map(|i| graph.count(i) as u64).sum();
        assert!(output_spikes > 0, "pooling outputs must fire");
    }

    #[test]
    fn graph_is_reproducible() {
        let app = HelloWorld::default();
        let a = app.spike_graph(3).unwrap();
        let b = app.spike_graph(3).unwrap();
        assert_eq!(a, b);
    }
}
