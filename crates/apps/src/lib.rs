//! # neuromap-apps — the evaluation workloads of Das et al. (DATE 2018)
//!
//! The four realistic applications of the paper's Table I plus the
//! synthetic topologies of its Fig. 5/7:
//!
//! | App | Topology | Coding | Module |
//! |---|---|---|---|
//! | hello world (HW) | feedforward (117, 9) | rate | [`hello_world`] |
//! | image smoothing (IS) | feedforward (1024, 1024) | rate | [`image_smoothing`] |
//! | handwritten digit (HD) | unsupervised, recurrent (250, 250) | rate | [`digit_recognition`] |
//! | heartbeat estimation (HE) | unsupervised, LSM (64, 16) | temporal | [`heartbeat`] |
//! | synth m×n | fully connected feedforward | rate (Poisson 10–100 Hz) | [`synthetic`] |
//!
//! Every workload implements the [`App`] trait: build the network (with its
//! stimulus embedded as input generators), simulate it, and hand back the
//! [`SpikeGraph`] the partitioning flow consumes.
//!
//! ### Data substitutions (documented in DESIGN.md)
//!
//! * **MNIST → procedural digit glyphs**: 7-segment-style 28×28 rasters
//!   with noise; same input statistics (per-pixel Poisson rates, spatial
//!   receptive-field structure) without the external dataset.
//! * **ECG recordings → synthetic ECG**: P-QRS-T morphology with modulated
//!   RR intervals, level-crossing encoded exactly as the paper's front-end.
//!
//! ```
//! use neuromap_apps::{App, hello_world::HelloWorld};
//! # fn main() -> Result<(), neuromap_core::CoreError> {
//! let app = HelloWorld::default();
//! let graph = app.spike_graph(42)?;
//! assert_eq!(graph.num_neurons(), 126); // 117 inputs + 9 outputs
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digit_recognition;
pub mod heartbeat;
pub mod hello_world;
pub mod image_smoothing;
pub mod synthetic;

use neuromap_core::{CoreError, SpikeGraph};
use neuromap_snn::network::Network;
use neuromap_snn::simulator::{SimConfig, Simulator, SpikeRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A benchmark application: a buildable SNN plus its stimulus.
pub trait App {
    /// Short name matching the paper's labels ("HW", "IS", "HD", "HE",
    /// "synth_1x200", ...).
    fn name(&self) -> String;

    /// Builds the network with the stimulus encoded in its input groups.
    ///
    /// # Errors
    ///
    /// Construction errors from the network builder.
    fn build(&self, seed: u64) -> Result<Network, CoreError>;

    /// Simulation duration in timesteps (1 ms each).
    fn sim_steps(&self) -> u32;

    /// Simulation configuration (timestep, plasticity). Defaults to 1 ms
    /// without STDP.
    fn sim_config(&self) -> SimConfig {
        SimConfig::default()
    }

    /// Builds, simulates, and returns the raw network + spike record.
    ///
    /// # Errors
    ///
    /// Build or simulation errors.
    fn run(&self, seed: u64) -> Result<(Network, SpikeRecord), CoreError> {
        let net = self.build(seed)?;
        let mut sim = Simulator::with_config(net, self.sim_config());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA99);
        let record = sim.run(self.sim_steps(), &mut rng)?;
        Ok((sim.into_network(), record))
    }

    /// Builds, simulates, and extracts the spike graph — the input of the
    /// partitioning flow (paper Fig. 4, CARLsim → graph step).
    ///
    /// # Errors
    ///
    /// Build or simulation errors.
    fn spike_graph(&self, seed: u64) -> Result<SpikeGraph, CoreError> {
        let (net, record) = self.run(seed)?;
        Ok(SpikeGraph::from_record(&net, &record))
    }
}

/// The four realistic applications of Table I with paper-default
/// parameters, in paper order.
pub fn realistic_apps() -> Vec<Box<dyn App>> {
    vec![
        Box::new(hello_world::HelloWorld::default()),
        Box::new(image_smoothing::ImageSmoothing::default()),
        Box::new(digit_recognition::DigitRecognition::default()),
        Box::new(heartbeat::HeartbeatEstimation::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn realistic_apps_have_paper_names() {
        let names: Vec<String> = realistic_apps().iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["HW", "IS", "HD", "HE"]);
    }

    #[test]
    fn population_boundaries_reach_the_spike_graph() {
        // hierarchical mappers (PACMAN) depend on population structure
        // surviving the app → graph extraction
        let hw = hello_world::HelloWorld {
            steps: 50,
            ..Default::default()
        };
        let g = hw.spike_graph(0).expect("simulates");
        let pops = g.populations();
        assert_eq!(pops.len(), 2, "field + pool");
        assert_eq!(pops[0], 0..117);
        assert_eq!(pops[1], 117..126);

        let he = heartbeat::HeartbeatEstimation {
            duration_ms: 200,
            ..Default::default()
        };
        let g = he.spike_graph(0).expect("simulates");
        assert_eq!(g.populations().len(), 3, "lc + liquid + readout");
    }

    #[test]
    fn synthetic_populations_are_per_layer() {
        let s = synthetic::Synthetic {
            steps: 50,
            ..synthetic::Synthetic::new(3, 10)
        };
        let g = s.spike_graph(0).expect("simulates");
        // stimulus + 3 layers
        assert_eq!(g.populations().len(), 4);
        assert_eq!(g.populations()[0], 0..10);
        assert_eq!(g.populations()[3], 30..40);
    }
}
