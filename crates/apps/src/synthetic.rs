//! Synthetic SNN topologies (paper §V, Fig. 5 and Fig. 7).
//!
//! "We considered synthetic applications with different number of neural
//! network layers and number of neurons per layer … marked m × n, where m
//! is the number of layers and n is the number of neurons per layer.
//! Neurons of the first layer receive their input from 10 neurons creating
//! spike trains whose inter-spike interval follows a Poisson process with
//! mean firing rates between 10 Hz and 100 Hz. These synthetic SNNs
//! implement fully connected feedforward topologies."

use crate::App;
use neuromap_core::CoreError;
use neuromap_snn::generator::Generator;
use neuromap_snn::network::{ConnectPattern, Network, NetworkBuilder, WeightInit};
use neuromap_snn::neuron::NeuronKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of Poisson stimulus neurons feeding the first layer.
pub const STIMULUS: u32 = 10;

/// A synthetic fully connected feedforward SNN with `layers × width`
/// neurons.
#[derive(Debug, Clone, Copy)]
pub struct Synthetic {
    /// Number of hidden layers (the paper's `m`).
    pub layers: u32,
    /// Neurons per layer (the paper's `n`).
    pub width: u32,
    /// Simulation length (ms).
    pub steps: u32,
}

impl Synthetic {
    /// Creates the `m × n` topology of the paper with a 1-second stimulus.
    ///
    /// # Panics
    ///
    /// Panics if `layers` or `width` is zero.
    pub fn new(layers: u32, width: u32) -> Self {
        assert!(layers > 0 && width > 0, "topology must be non-empty");
        Self {
            layers,
            width,
            steps: 1000,
        }
    }

    /// Total neurons including the 10 stimulus sources.
    pub fn total_neurons(&self) -> u32 {
        STIMULUS + self.layers * self.width
    }

    /// Synapse count of the fully connected feedforward stack.
    pub fn total_synapses(&self) -> u64 {
        STIMULUS as u64 * self.width as u64
            + (self.layers as u64 - 1) * (self.width as u64 * self.width as u64)
    }
}

impl App for Synthetic {
    fn name(&self) -> String {
        format!("synth_{}x{}", self.layers, self.width)
    }

    fn build(&self, seed: u64) -> Result<Network, CoreError> {
        let mut rng = StdRng::seed_from_u64(seed);
        // 10 Poisson sources, mean rates uniform in 10–100 Hz (paper)
        let rates: Vec<f64> = (0..STIMULUS).map(|_| rng.gen_range(10.0..100.0)).collect();
        let mut b = NetworkBuilder::new();
        b.seed(seed);
        let mut prev = b.add_input_group("stim", STIMULUS, Generator::rates(rates))?;
        // weight scaling keeps activity alive through depth: the mean drive
        // per neuron per ms should sit near the Izhikevich RS rheobase
        for l in 0..self.layers {
            let group = b.add_group(
                &format!("layer{l}"),
                self.width,
                NeuronKind::izhikevich_rs(),
            )?;
            let fan_in = if l == 0 { STIMULUS } else { self.width };
            let w = 160.0 / fan_in as f32;
            b.connect(
                prev,
                group,
                ConnectPattern::Full,
                WeightInit::Constant(w),
                1,
            )?;
            prev = group;
        }
        Ok(b.build()?)
    }

    fn sim_steps(&self) -> u32 {
        self.steps
    }
}

/// The eight synthetic topologies evaluated in the paper's Fig. 5
/// (four of which are plotted), in label order.
pub fn fig5_topologies() -> Vec<Synthetic> {
    vec![
        Synthetic::new(1, 200),
        Synthetic::new(1, 400),
        Synthetic::new(1, 600),
        Synthetic::new(1, 800),
        Synthetic::new(2, 200),
        Synthetic::new(2, 400),
        Synthetic::new(3, 200),
        Synthetic::new(4, 200),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming_matches_paper_labels() {
        assert_eq!(Synthetic::new(3, 200).name(), "synth_3x200");
    }

    #[test]
    fn neuron_and_synapse_counts() {
        let s = Synthetic::new(4, 200);
        assert_eq!(s.total_neurons(), 810);
        // paper: "topology 4x200 (with dense 122000 synapses)"
        assert_eq!(s.total_synapses(), 10 * 200 + 3 * 200 * 200);
        assert_eq!(s.total_synapses(), 122_000);

        let s1 = Synthetic::new(1, 200);
        // paper: "topology 1x200 (with 2000 synapses)"
        assert_eq!(s1.total_synapses(), 2000);
    }

    #[test]
    fn built_network_matches_counts() {
        let s = Synthetic::new(2, 50);
        let net = s.build(1).unwrap();
        assert_eq!(net.num_neurons(), s.total_neurons());
        assert_eq!(net.synapses().len() as u64, s.total_synapses());
    }

    #[test]
    fn activity_survives_depth() {
        let s = Synthetic {
            steps: 600,
            ..Synthetic::new(3, 40)
        };
        let graph = s.spike_graph(4).unwrap();
        let last_layer_first = STIMULUS + 2 * 40;
        let spikes: u64 = (last_layer_first..last_layer_first + 40)
            .map(|i| graph.count(i) as u64)
            .sum();
        assert!(spikes > 0, "deep layers must stay active");
    }

    #[test]
    fn fig5_set_has_eight_entries() {
        let t = fig5_topologies();
        assert_eq!(t.len(), 8);
        assert_eq!(t[0].name(), "synth_1x200");
        assert_eq!(t[7].name(), "synth_4x200");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_layers_rejected() {
        let _ = Synthetic::new(0, 10);
    }
}
