//! Synthetic SNN topologies (paper §V, Fig. 5 and Fig. 7).
//!
//! "We considered synthetic applications with different number of neural
//! network layers and number of neurons per layer … marked m × n, where m
//! is the number of layers and n is the number of neurons per layer.
//! Neurons of the first layer receive their input from 10 neurons creating
//! spike trains whose inter-spike interval follows a Poisson process with
//! mean firing rates between 10 Hz and 100 Hz. These synthetic SNNs
//! implement fully connected feedforward topologies."

use crate::App;
use neuromap_core::CoreError;
use neuromap_snn::generator::Generator;
use neuromap_snn::network::{ConnectPattern, Network, NetworkBuilder, WeightInit};
use neuromap_snn::neuron::NeuronKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of Poisson stimulus neurons feeding the first layer.
pub const STIMULUS: u32 = 10;

/// A synthetic fully connected feedforward SNN with `layers × width`
/// neurons.
#[derive(Debug, Clone, Copy)]
pub struct Synthetic {
    /// Number of hidden layers (the paper's `m`).
    pub layers: u32,
    /// Neurons per layer (the paper's `n`).
    pub width: u32,
    /// Simulation length (ms).
    pub steps: u32,
}

impl Synthetic {
    /// Creates the `m × n` topology of the paper with a 1-second stimulus.
    ///
    /// # Panics
    ///
    /// Panics if `layers` or `width` is zero.
    pub fn new(layers: u32, width: u32) -> Self {
        assert!(layers > 0 && width > 0, "topology must be non-empty");
        Self {
            layers,
            width,
            steps: 1000,
        }
    }

    /// Total neurons including the 10 stimulus sources.
    pub fn total_neurons(&self) -> u32 {
        STIMULUS + self.layers * self.width
    }

    /// Synapse count of the fully connected feedforward stack.
    pub fn total_synapses(&self) -> u64 {
        STIMULUS as u64 * self.width as u64
            + (self.layers as u64 - 1) * (self.width as u64 * self.width as u64)
    }
}

impl App for Synthetic {
    fn name(&self) -> String {
        format!("synth_{}x{}", self.layers, self.width)
    }

    fn build(&self, seed: u64) -> Result<Network, CoreError> {
        let mut rng = StdRng::seed_from_u64(seed);
        // 10 Poisson sources, mean rates uniform in 10–100 Hz (paper)
        let rates: Vec<f64> = (0..STIMULUS).map(|_| rng.gen_range(10.0..100.0)).collect();
        let mut b = NetworkBuilder::new();
        b.seed(seed);
        let mut prev = b.add_input_group("stim", STIMULUS, Generator::rates(rates))?;
        // weight scaling keeps activity alive through depth: the mean drive
        // per neuron per ms should sit near the Izhikevich RS rheobase
        for l in 0..self.layers {
            let group = b.add_group(
                &format!("layer{l}"),
                self.width,
                NeuronKind::izhikevich_rs(),
            )?;
            let fan_in = if l == 0 { STIMULUS } else { self.width };
            let w = 160.0 / fan_in as f32;
            b.connect(
                prev,
                group,
                ConnectPattern::Full,
                WeightInit::Constant(w),
                1,
            )?;
            prev = group;
        }
        Ok(b.build()?)
    }

    fn sim_steps(&self) -> u32 {
        self.steps
    }
}

/// A synthetic *large-architecture* partitioning scenario: a `side ×
/// side` crossbar grid (256 crossbars at the default `side = 16`) filled
/// to `fill_percent` of capacity with a locality-biased random spike
/// graph.
///
/// The Fig. 5 topologies above exercise paper-scale *networks* on small
/// architectures (≤ 64 crossbars); SpiNeMap-class evaluations
/// (Balaji et al.) run on hundreds of cores, which is exactly the regime
/// where the batched `CutPackets` evaluator used to fall back to a
/// per-candidate scalar scan. This scenario is built **directly as a
/// spike graph** (seeded, no SNN simulation) so 256-crossbar workloads
/// are cheap to construct in benches and tests: most synapses stay
/// between neighbouring tiles of the grid (a good mapping exists and
/// optimizers have real gradient to follow), a global tail keeps the
/// multicast sets non-trivial.
#[derive(Debug, Clone, Copy)]
pub struct LargeArch {
    /// Crossbar grid side; the architecture has `side²` crossbars.
    pub side: u32,
    /// Crossbar capacity (neurons per crossbar).
    pub neurons_per_crossbar: u32,
    /// Outgoing synapses per neuron.
    pub synapses_per_neuron: u32,
    /// Occupied fraction of total capacity, in percent — the headroom
    /// lets partitioners actually move neurons around.
    pub fill_percent: u32,
}

impl LargeArch {
    /// The 16 × 16 = 256-crossbar benchmark scenario tracked in
    /// `BENCH_eval.json`.
    pub fn grid16() -> Self {
        Self {
            side: 16,
            neurons_per_crossbar: 8,
            synapses_per_neuron: 24,
            fill_percent: 85,
        }
    }

    /// The 32 × 32 = 1024-crossbar scenario behind the `multilevel/*`
    /// ratios in `BENCH_eval.json`: ~7k neurons × 1024 crossbars puts
    /// flat PSO past the batched-evaluator tile limit *and* a ~29 MB
    /// velocity buffer per particle — infeasible to solve flat within
    /// the bench budget, which is exactly what the multilevel V-cycle
    /// is for.
    pub fn grid32() -> Self {
        Self {
            side: 32,
            neurons_per_crossbar: 8,
            synapses_per_neuron: 24,
            fill_percent: 85,
        }
    }

    /// Scenario label (`synth_16x16grid` for the default).
    pub fn name(&self) -> String {
        format!("synth_{0}x{0}grid", self.side)
    }

    /// Number of crossbars in the grid.
    pub fn num_crossbars(&self) -> usize {
        (self.side * self.side) as usize
    }

    /// Crossbar capacity.
    pub fn capacity(&self) -> u32 {
        self.neurons_per_crossbar
    }

    /// Neurons in the generated graph (`fill_percent` of total capacity).
    pub fn num_neurons(&self) -> u32 {
        let total = self.side * self.side * self.neurons_per_crossbar;
        (total * self.fill_percent / 100).max(1)
    }

    /// Builds the spike graph: neuron `i`'s *home tile* is `i / capacity`;
    /// 85 % of its synapses land in the home tile or a grid-adjacent tile
    /// (half of those stay in the home tile itself), the rest are uniform
    /// over the whole graph. Spike counts are uniform in `0..20`.
    /// Deterministic for a fixed seed.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::InvalidGraph`] from graph construction
    /// (unreachable for the parameter ranges above).
    pub fn spike_graph(&self, seed: u64) -> Result<neuromap_core::SpikeGraph, CoreError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.num_neurons();
        let side = self.side as i64;
        let cap = self.neurons_per_crossbar.max(1);
        let tiles = self.side * self.side;
        let mut synapses = Vec::with_capacity((n * self.synapses_per_neuron) as usize);
        for i in 0..n {
            let home = (i / cap).min(tiles - 1) as i64;
            let (hx, hy) = (home % side, home / side);
            for _ in 0..self.synapses_per_neuron {
                let j = if rng.gen_bool(0.85) {
                    // home tile (half the local draws) or a grid neighbour
                    let (dx, dy) = if rng.gen_bool(0.5) {
                        (0, 0)
                    } else {
                        (rng.gen_range(-1i64..=1), rng.gen_range(-1i64..=1))
                    };
                    let (tx, ty) = ((hx + dx).clamp(0, side - 1), (hy + dy).clamp(0, side - 1));
                    let tile = (ty * side + tx) as u32;
                    let lo = tile * cap;
                    let span = cap.min(n.saturating_sub(lo)).max(1);
                    (lo + rng.gen_range(0..span)).min(n - 1)
                } else {
                    rng.gen_range(0..n)
                };
                synapses.push((i, j));
            }
        }
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(0..20)).collect();
        neuromap_core::SpikeGraph::from_parts(n, synapses, counts)
    }

    /// Packs the scenario's neurons into their home tiles, then scrambles
    /// the *cluster ids* with a seeded permutation: cluster contents stay
    /// grid-local, but identity placement wires them to scattered
    /// routers. This is what any partitioner that doesn't know the
    /// chip's geometry produces, and exactly the situation the placement
    /// stage must repair — shared by the eval bench's placement gate and
    /// the placement acceptance tests so both exercise the same scenario.
    pub fn scrambled_packed_mapping(&self, seed: u64) -> neuromap_hw::mapping::Mapping {
        let c = self.num_crossbars();
        let n = self.num_neurons();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..c as u32).collect();
        for a in (1..c).rev() {
            let b = rng.gen_range(0..a + 1);
            perm.swap(a, b);
        }
        let cap = self.neurons_per_crossbar.max(1);
        let assign: Vec<u32> = (0..n)
            .map(|i| perm[((i / cap) as usize).min(c - 1)])
            .collect();
        neuromap_hw::mapping::Mapping::from_assignment(assign, c).expect("permuted ids in range")
    }
}

/// A multi-chip scale-out scenario: a `chip_cols × chip_rows` grid of
/// chips, each chip internally the [`LargeArch`] crossbar grid, joined
/// by slower/narrower boundary links — the SpiNeMap-class regime the
/// hierarchical fabric (`neuromap_noc::topology::HierTopology` behind
/// [`InterconnectKind::Hier`]) models.
///
/// Crossbar ids are **chip-major** (chip `q` owns ids `q·side²
/// ..(q+1)·side²`, row-major within the chip), matching the hierarchical
/// topology's layout, and the generated spike graph's locality bias
/// works in the *composed* global grid: most synapses stay within a
/// tile's global neighbourhood, so a good mapping keeps almost all
/// traffic on-chip and optimizers have a real inter-chip gradient to
/// descend.
///
/// [`InterconnectKind::Hier`]: neuromap_hw::arch::InterconnectKind::Hier
#[derive(Debug, Clone, Copy)]
pub struct MultiChip {
    /// Chip-grid columns.
    pub chip_cols: u32,
    /// Chip-grid rows.
    pub chip_rows: u32,
    /// The per-chip crossbar grid.
    pub chip: LargeArch,
    /// Cycles per chip-boundary link hop.
    pub link_latency: u32,
    /// On-chip over boundary link-width ratio.
    pub link_width: u32,
}

impl MultiChip {
    /// The 4-chip benchmark scenario behind the `hier/*` ratios in
    /// `BENCH_eval.json`: 2 × 2 chips of the 16 × 16 grid — 1024
    /// crossbars, past the byte-tile batched-evaluator envelope and
    /// inside the u16 word-tile one.
    pub fn four_chip16() -> Self {
        Self {
            chip_cols: 2,
            chip_rows: 2,
            chip: LargeArch::grid16(),
            link_latency: 4,
            link_width: 2,
        }
    }

    /// Scenario label (`synth_4chip16x16` for the default).
    pub fn name(&self) -> String {
        format!(
            "synth_{}chip{1}x{1}",
            self.chip_cols * self.chip_rows,
            self.chip.side
        )
    }

    /// Number of chips.
    pub fn num_chips(&self) -> usize {
        (self.chip_cols * self.chip_rows) as usize
    }

    /// Total crossbars across all chips.
    pub fn num_crossbars(&self) -> usize {
        self.num_chips() * self.chip.num_crossbars()
    }

    /// Crossbar capacity.
    pub fn capacity(&self) -> u32 {
        self.chip.capacity()
    }

    /// Neurons in the generated graph (`fill_percent` of capacity,
    /// applied per chip).
    pub fn num_neurons(&self) -> u32 {
        self.num_chips() as u32 * self.chip.num_neurons()
    }

    /// The matching [`Architecture`](neuromap_hw::arch::Architecture)
    /// with the hierarchical interconnect descriptor.
    ///
    /// # Errors
    ///
    /// Propagates [`neuromap_hw::HwError::InvalidParameter`] for
    /// degenerate chip grids or boundary-link parameters (unreachable
    /// for [`MultiChip::four_chip16`]).
    pub fn arch(&self) -> Result<neuromap_hw::arch::Architecture, neuromap_hw::HwError> {
        neuromap_hw::arch::Architecture::custom(
            self.num_crossbars(),
            self.capacity(),
            neuromap_hw::arch::InterconnectKind::Hier {
                chip_cols: self.chip_cols,
                chip_rows: self.chip_rows,
                link_latency: self.link_latency,
                link_width: self.link_width,
            },
        )
    }

    /// Builds the spike graph: neuron `i`'s home tile is `i / capacity`
    /// (chip-major), 85 % of its synapses land in the home tile or a
    /// tile adjacent in the **composed global grid** (so locality spans
    /// chip seams exactly where chips abut), the rest are uniform over
    /// the whole graph. Spike counts are uniform in `0..20`.
    /// Deterministic for a fixed seed.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreError::InvalidGraph`] from graph construction
    /// (unreachable for the parameter ranges above).
    pub fn spike_graph(&self, seed: u64) -> Result<neuromap_core::SpikeGraph, CoreError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.num_neurons();
        let side = self.chip.side as i64;
        let cap = self.chip.neurons_per_crossbar.max(1);
        let per_chip = side * side;
        let chip_cols = self.chip_cols as i64;
        let (gw, gh) = (chip_cols * side, self.chip_rows as i64 * side);
        let tiles = self.num_crossbars() as u32;
        // chip-major tile id ↔ composed-grid coordinates
        let coords = |tile: i64| {
            let (chip, local) = (tile / per_chip, tile % per_chip);
            let (cx, cy) = (chip % chip_cols, chip / chip_cols);
            (cx * side + local % side, cy * side + local / side)
        };
        let tile_at = |gx: i64, gy: i64| {
            (gy / side * chip_cols + gx / side) * per_chip + gy % side * side + gx % side
        };
        let mut synapses = Vec::with_capacity((n * self.chip.synapses_per_neuron) as usize);
        for i in 0..n {
            let home = (i / cap).min(tiles - 1) as i64;
            let (hx, hy) = coords(home);
            for _ in 0..self.chip.synapses_per_neuron {
                let j = if rng.gen_bool(0.85) {
                    let (dx, dy) = if rng.gen_bool(0.5) {
                        (0, 0)
                    } else {
                        (rng.gen_range(-1i64..=1), rng.gen_range(-1i64..=1))
                    };
                    let (tx, ty) = ((hx + dx).clamp(0, gw - 1), (hy + dy).clamp(0, gh - 1));
                    let tile = tile_at(tx, ty) as u32;
                    let lo = tile * cap;
                    let span = cap.min(n.saturating_sub(lo)).max(1);
                    (lo + rng.gen_range(0..span)).min(n - 1)
                } else {
                    rng.gen_range(0..n)
                };
                synapses.push((i, j));
            }
        }
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(0..20)).collect();
        neuromap_core::SpikeGraph::from_parts(n, synapses, counts)
    }
}

/// The eight synthetic topologies evaluated in the paper's Fig. 5
/// (four of which are plotted), in label order.
pub fn fig5_topologies() -> Vec<Synthetic> {
    vec![
        Synthetic::new(1, 200),
        Synthetic::new(1, 400),
        Synthetic::new(1, 600),
        Synthetic::new(1, 800),
        Synthetic::new(2, 200),
        Synthetic::new(2, 400),
        Synthetic::new(3, 200),
        Synthetic::new(4, 200),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming_matches_paper_labels() {
        assert_eq!(Synthetic::new(3, 200).name(), "synth_3x200");
    }

    #[test]
    fn neuron_and_synapse_counts() {
        let s = Synthetic::new(4, 200);
        assert_eq!(s.total_neurons(), 810);
        // paper: "topology 4x200 (with dense 122000 synapses)"
        assert_eq!(s.total_synapses(), 10 * 200 + 3 * 200 * 200);
        assert_eq!(s.total_synapses(), 122_000);

        let s1 = Synthetic::new(1, 200);
        // paper: "topology 1x200 (with 2000 synapses)"
        assert_eq!(s1.total_synapses(), 2000);
    }

    #[test]
    fn built_network_matches_counts() {
        let s = Synthetic::new(2, 50);
        let net = s.build(1).unwrap();
        assert_eq!(net.num_neurons(), s.total_neurons());
        assert_eq!(net.synapses().len() as u64, s.total_synapses());
    }

    #[test]
    fn activity_survives_depth() {
        let s = Synthetic {
            steps: 600,
            ..Synthetic::new(3, 40)
        };
        let graph = s.spike_graph(4).unwrap();
        let last_layer_first = STIMULUS + 2 * 40;
        let spikes: u64 = (last_layer_first..last_layer_first + 40)
            .map(|i| graph.count(i) as u64)
            .sum();
        assert!(spikes > 0, "deep layers must stay active");
    }

    #[test]
    fn fig5_set_has_eight_entries() {
        let t = fig5_topologies();
        assert_eq!(t.len(), 8);
        assert_eq!(t[0].name(), "synth_1x200");
        assert_eq!(t[7].name(), "synth_4x200");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_layers_rejected() {
        let _ = Synthetic::new(0, 10);
    }

    #[test]
    fn grid16_is_a_256_crossbar_scenario() {
        let s = LargeArch::grid16();
        assert_eq!(s.name(), "synth_16x16grid");
        assert_eq!(s.num_crossbars(), 256);
        assert!(u64::from(s.num_neurons()) <= 256 * u64::from(s.capacity()));
        // enough slack for partitioners to move neurons around
        assert!(u64::from(s.num_neurons()) <= 256 * u64::from(s.capacity()) * 9 / 10);
    }

    #[test]
    fn grid32_is_a_1024_crossbar_scenario() {
        let s = LargeArch::grid32();
        assert_eq!(s.name(), "synth_32x32grid");
        assert_eq!(s.num_crossbars(), 1024);
        assert_eq!(s.capacity(), 8);
        // ~7k neurons with real slack for partitioners to move things
        assert!(s.num_neurons() > 6_000);
        assert!(u64::from(s.num_neurons()) <= 1024 * u64::from(s.capacity()) * 9 / 10);
        // the generated instance must be feasible
        let g = s.spike_graph(7).unwrap();
        let p =
            neuromap_core::partition::PartitionProblem::new(&g, s.num_crossbars(), s.capacity());
        assert!(p.is_ok());
    }

    #[test]
    fn large_arch_graph_is_reproducible_and_local() {
        let s = LargeArch::grid16();
        let a = s.spike_graph(3).unwrap();
        let b = s.spike_graph(3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_neurons(), s.num_neurons());
        assert_eq!(
            a.num_synapses(),
            (s.num_neurons() * s.synapses_per_neuron) as usize
        );
        // locality bias: the home-tile packing must beat a round-robin
        // scatter on the cut-packet objective by at least 1.5×
        let p =
            neuromap_core::partition::PartitionProblem::new(&a, s.num_crossbars(), s.capacity())
                .unwrap();
        let packed: Vec<u32> = (0..s.num_neurons()).map(|i| i / s.capacity()).collect();
        let scattered: Vec<u32> = (0..s.num_neurons()).map(|i| i % 256).collect();
        assert!(p.cut_packets(&packed) * 3 < p.cut_packets(&scattered) * 2);
    }

    #[test]
    fn four_chip16_is_a_1024_crossbar_scenario() {
        let s = MultiChip::four_chip16();
        assert_eq!(s.name(), "synth_4chip16x16");
        assert_eq!(s.num_chips(), 4);
        assert_eq!(s.num_crossbars(), 1024);
        // past the byte-tile envelope, inside the u16 word-tile one
        assert!(s.num_crossbars() > neuromap_core::eval::TILE_MAX_CROSSBARS);
        assert!(s.num_crossbars() <= neuromap_core::eval::TILE16_MAX_CROSSBARS);
        assert_eq!(
            neuromap_core::eval::SwarmKernel::for_crossbars(s.num_crossbars()),
            neuromap_core::eval::SwarmKernel::WordTile
        );
        let arch = s.arch().unwrap();
        assert_eq!(arch.num_crossbars(), 1024);
        // the generated instance must be feasible with real slack
        assert!(u64::from(s.num_neurons()) <= 1024 * u64::from(s.capacity()) * 9 / 10);
        let g = s.spike_graph(7).unwrap();
        let p =
            neuromap_core::partition::PartitionProblem::new(&g, s.num_crossbars(), s.capacity());
        assert!(p.is_ok());
    }

    #[test]
    fn multi_chip_graph_is_reproducible_and_chip_local() {
        let s = MultiChip {
            chip: LargeArch {
                side: 4,
                ..LargeArch::grid16()
            },
            ..MultiChip::four_chip16()
        };
        let a = s.spike_graph(3).unwrap();
        assert_eq!(a, s.spike_graph(3).unwrap());
        assert_eq!(a.num_neurons(), s.num_neurons());
        // chip-major home packing keeps most synapses on their home chip:
        // the locality bias must beat a chip-scattering round-robin
        let mut on_chip = 0u64;
        let mut total = 0u64;
        for i in 0..a.num_neurons() {
            let ci = i / s.capacity() / s.chip.num_crossbars() as u32;
            for &j in a.targets(i) {
                let cj = j / s.capacity() / s.chip.num_crossbars() as u32;
                total += 1;
                on_chip += u64::from(ci == cj);
            }
        }
        assert!(
            on_chip * 10 > total * 7,
            "expected ≥70% on-chip synapses, got {on_chip}/{total}"
        );
    }

    #[test]
    fn large_arch_scales_down() {
        // tiny instances stay valid (used by the property tests)
        let s = LargeArch {
            side: 2,
            neurons_per_crossbar: 3,
            synapses_per_neuron: 4,
            fill_percent: 100,
        };
        let g = s.spike_graph(1).unwrap();
        assert_eq!(g.num_neurons(), 12);
    }
}
