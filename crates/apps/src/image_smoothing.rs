//! Image smoothing: feedforward (1024, 1024), rate coding.
//!
//! A 32×32 image is rate-encoded onto 1024 Poisson inputs; each of the
//! 1024 output neurons integrates a 3×3 neighborhood, so the output
//! population's firing-rate image is a box-blurred version of the input —
//! CARLsim's classic convolution demo at the scale the paper lists in
//! Table I.

use crate::App;
use neuromap_core::CoreError;
use neuromap_snn::coding::{rate_decode, rate_encode};
use neuromap_snn::generator::Generator;
use neuromap_snn::network::{ConnectPattern, Network, NetworkBuilder, WeightInit};
use neuromap_snn::neuron::NeuronKind;
use neuromap_snn::simulator::SpikeRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length (32 → 1024 pixels).
pub const SIDE: u32 = 32;

/// The image-smoothing application.
#[derive(Debug, Clone, Copy)]
pub struct ImageSmoothing {
    /// Peak Poisson rate for white pixels (Hz).
    pub max_rate_hz: f64,
    /// Simulation length (ms).
    pub steps: u32,
    /// Per-synapse kernel weight (9 taps sum to ~9× this).
    pub weight: f32,
    /// Noise amplitude added to the test image.
    pub noise: f64,
}

impl Default for ImageSmoothing {
    fn default() -> Self {
        Self {
            max_rate_hz: 100.0,
            steps: 1000,
            weight: 10.0,
            noise: 0.25,
        }
    }
}

impl ImageSmoothing {
    /// The test image: two bright shapes on a gradient background with
    /// salt-and-pepper-ish noise — structure for the blur to smooth.
    pub fn test_image(seed: u64, noise: f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut img = vec![0.0f64; (SIDE * SIDE) as usize];
        for y in 0..SIDE {
            for x in 0..SIDE {
                let mut v = 0.15 + 0.3 * x as f64 / SIDE as f64;
                // a bright square
                if (6..14).contains(&x) && (6..14).contains(&y) {
                    v = 0.95;
                }
                // a bright disc
                let (dx, dy) = (x as f64 - 23.0, y as f64 - 22.0);
                if dx * dx + dy * dy < 30.0 {
                    v = 0.85;
                }
                v += noise * (rng.gen::<f64>() - 0.5);
                img[(y * SIDE + x) as usize] = v.clamp(0.0, 1.0);
            }
        }
        img
    }

    /// Reference CPU box blur (3×3, border-truncated) for quality checks.
    pub fn box_blur(img: &[f64]) -> Vec<f64> {
        let s = SIDE as i64;
        let mut out = vec![0.0; img.len()];
        for y in 0..s {
            for x in 0..s {
                let mut sum = 0.0;
                let mut n = 0.0;
                for dy in -1..=1 {
                    for dx in -1..=1 {
                        let (sx, sy) = (x + dx, y + dy);
                        if (0..s).contains(&sx) && (0..s).contains(&sy) {
                            sum += img[(sy * s + sx) as usize];
                            n += 1.0;
                        }
                    }
                }
                out[(y * s + x) as usize] = sum / n;
            }
        }
        out
    }

    /// Decodes the smoothed image from the output population's rates.
    pub fn decode_output(&self, record: &SpikeRecord) -> Vec<f64> {
        let n = SIDE * SIDE;
        (n..2 * n)
            .map(|i| rate_decode(record.train(i), record.steps(), self.max_rate_hz))
            .collect()
    }
}

impl App for ImageSmoothing {
    fn name(&self) -> String {
        "IS".to_owned()
    }

    fn build(&self, seed: u64) -> Result<Network, CoreError> {
        let img = Self::test_image(seed, self.noise);
        let rates = rate_encode(&img, self.max_rate_hz);
        let mut b = NetworkBuilder::new();
        let input = b.add_input_group("pixels", SIDE * SIDE, Generator::rates(rates))?;
        let out = b.add_group("smoothed", SIDE * SIDE, NeuronKind::izhikevich_rs())?;
        b.connect(
            input,
            out,
            ConnectPattern::Neighborhood2D {
                width: SIDE,
                height: SIDE,
                radius: 1,
            },
            WeightInit::Constant(self.weight),
            1,
        )?;
        Ok(b.build()?)
    }

    fn sim_steps(&self) -> u32 {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_matches_table1() {
        let net = ImageSmoothing::default().build(1).unwrap();
        assert_eq!(net.num_neurons(), 2048);
        // interior pixels contribute 9 synapses each
        assert!(net.synapses().len() > 8000);
    }

    #[test]
    fn blur_reduces_noise_variance() {
        let img = ImageSmoothing::test_image(3, 0.4);
        let blurred = ImageSmoothing::box_blur(&img);
        let var = |v: &[f64]| {
            // high-frequency energy: mean squared difference of horizontal
            // neighbors
            let s = SIDE as usize;
            let mut e = 0.0;
            for y in 0..s {
                for x in 0..s - 1 {
                    e += (v[y * s + x + 1] - v[y * s + x]).powi(2);
                }
            }
            e
        };
        assert!(var(&blurred) < var(&img) * 0.5);
    }

    #[test]
    fn snn_output_correlates_with_reference_blur() {
        let app = ImageSmoothing {
            steps: 1500,
            ..ImageSmoothing::default()
        };
        let (_, record) = app.run(5).unwrap();
        let out = app.decode_output(&record);
        let reference = ImageSmoothing::box_blur(&ImageSmoothing::test_image(5, app.noise));
        // Pearson correlation between decoded rates and the reference blur
        let n = out.len() as f64;
        let (mu_a, mu_b) = (
            out.iter().sum::<f64>() / n,
            reference.iter().sum::<f64>() / n,
        );
        let mut num = 0.0;
        let mut da = 0.0;
        let mut db = 0.0;
        for (a, b) in out.iter().zip(&reference) {
            num += (a - mu_a) * (b - mu_b);
            da += (a - mu_a).powi(2);
            db += (b - mu_b).powi(2);
        }
        let r = num / (da.sqrt() * db.sqrt()).max(1e-12);
        assert!(r > 0.6, "correlation with reference blur too low: {r}");
    }

    #[test]
    fn bright_regions_fire_more() {
        let app = ImageSmoothing::default();
        let graph = app.spike_graph(2).unwrap();
        // center of the bright square vs dark corner
        let bright = graph.count(10 * SIDE + 10);
        let dark = graph.count(31 * SIDE + 1);
        assert!(bright > dark, "bright {bright} !> dark {dark}");
    }
}
