//! Handwritten-digit recognition (Diehl & Cook 2015): unsupervised,
//! recurrent (250, 250), rate coding.
//!
//! The architecture is Diehl & Cook's: 28×28 Poisson inputs project with
//! STDP-plastic all-to-all synapses onto an excitatory population with
//! adaptive thresholds; each excitatory neuron drives one inhibitory
//! partner, and every inhibitory neuron suppresses all excitatory neurons
//! *except* its partner — winner-take-all competition that makes receptive
//! fields self-organize. The paper scales the recurrent populations to
//! 250 + 250 (Table I).
//!
//! **Data substitution:** MNIST is unavailable offline; digits are
//! procedural 28×28 glyphs rendered from a 7-segment layout with stroke
//! thickness and per-presentation noise. The experiment exercises the same
//! code paths (per-pixel rate coding, STDP, lateral inhibition) with the
//! same input statistics.

use crate::App;
use neuromap_core::CoreError;
use neuromap_snn::coding::rate_encode;
use neuromap_snn::generator::{poisson_train, Generator};
use neuromap_snn::network::{ConnectPattern, Network, NetworkBuilder, WeightInit};
use neuromap_snn::neuron::NeuronKind;
use neuromap_snn::simulator::SimConfig;
use neuromap_snn::spikes::SpikeTrain;
use neuromap_snn::stdp::StdpConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input image side (28 → 784 pixels).
pub const SIDE: u32 = 28;
/// Excitatory population size (Table I).
pub const EXC: u32 = 250;
/// Inhibitory population size (Table I).
pub const INH: u32 = 250;

/// The digit-recognition application.
#[derive(Debug, Clone, Copy)]
pub struct DigitRecognition {
    /// Digits presented during the run.
    pub presentations: u32,
    /// Presentation window per digit (ms).
    pub present_ms: u32,
    /// Rest window between digits (ms).
    pub rest_ms: u32,
    /// Peak pixel rate (Hz).
    pub max_rate_hz: f64,
    /// Pixel noise per presentation.
    pub noise: f64,
}

impl Default for DigitRecognition {
    fn default() -> Self {
        Self {
            presentations: 10,
            present_ms: 200,
            rest_ms: 50,
            max_rate_hz: 63.75, // Diehl & Cook's peak input rate
            noise: 0.1,
        }
    }
}

/// Renders digit `d` (0–9) as a 28×28 intensity raster using a thick
/// 7-segment layout.
pub fn glyph(d: u8) -> Vec<f64> {
    // segment truth table: A, B, C, D, E, F, G
    //   A = top, B = top-right, C = bottom-right, D = bottom,
    //   E = bottom-left, F = top-left, G = middle
    const SEGMENTS: [[bool; 7]; 10] = [
        [true, true, true, true, true, true, false],     // 0
        [false, true, true, false, false, false, false], // 1
        [true, true, false, true, true, false, true],    // 2
        [true, true, true, true, false, false, true],    // 3
        [false, true, true, false, false, true, true],   // 4
        [true, false, true, true, false, true, true],    // 5
        [true, false, true, true, true, true, true],     // 6
        [true, true, true, false, false, false, false],  // 7
        [true, true, true, true, true, true, true],      // 8
        [true, true, true, true, false, true, true],     // 9
    ];
    let seg = SEGMENTS[(d % 10) as usize];
    let s = SIDE as usize;
    let mut img = vec![0.0; s * s];
    let t = 3usize; // stroke thickness
    let (x0, x1) = (7usize, 20usize);
    let (y0, ym, y1) = (4usize, 13usize, 23usize);
    let hline = |y: usize, img: &mut Vec<f64>| {
        for yy in y.saturating_sub(t / 2)..(y + t / 2 + 1).min(s) {
            for xx in x0..=x1 {
                img[yy * s + xx] = 1.0;
            }
        }
    };
    let vline = |x: usize, ya: usize, yb: usize, img: &mut Vec<f64>| {
        for xx in x.saturating_sub(t / 2)..(x + t / 2 + 1).min(s) {
            for yy in ya..=yb {
                img[yy * s + xx] = 1.0;
            }
        }
    };
    if seg[0] {
        hline(y0, &mut img);
    }
    if seg[3] {
        hline(y1, &mut img);
    }
    if seg[6] {
        hline(ym, &mut img);
    }
    if seg[1] {
        vline(x1, y0, ym, &mut img);
    }
    if seg[2] {
        vline(x1, ym, y1, &mut img);
    }
    if seg[4] {
        vline(x0, ym, y1, &mut img);
    }
    if seg[5] {
        vline(x0, y0, ym, &mut img);
    }
    img
}

impl DigitRecognition {
    /// Precomputes the explicit per-pixel spike trains for the whole
    /// presentation schedule (digits cycle 0..9).
    fn input_trains(&self, seed: u64) -> Vec<SpikeTrain> {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = (SIDE * SIDE) as usize;
        let window = self.present_ms + self.rest_ms;
        let mut trains = vec![SpikeTrain::new(); n];
        for p in 0..self.presentations {
            let digit = (p % 10) as u8;
            let mut img = glyph(digit);
            for v in img.iter_mut() {
                *v = (*v + self.noise * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0);
            }
            let rates = rate_encode(&img, self.max_rate_hz);
            let offset = p * window;
            for (i, &r) in rates.iter().enumerate() {
                if r <= 0.0 {
                    continue;
                }
                let burst = poisson_train(r, self.present_ms, 1.0, &mut rng);
                trains[i].extend(burst.iter().map(|&t| t + offset));
            }
        }
        trains
    }
}

impl App for DigitRecognition {
    fn name(&self) -> String {
        "HD".to_owned()
    }

    fn build(&self, seed: u64) -> Result<Network, CoreError> {
        let trains = self.input_trains(seed);
        let mut b = NetworkBuilder::new();
        b.seed(seed);
        let input = b.add_input_group("pixels", SIDE * SIDE, Generator::explicit(trains))?;
        let exc = b.add_group("exc", EXC, NeuronKind::adaptive_lif_default())?;
        let inh = b.add_group("inh", INH, NeuronKind::lif_default())?;

        // plastic input → excitatory, all-to-all. The adaptive-LIF
        // steady-state drive must clear threshold (13 mV over rest): with
        // ~150 lit pixels at ~64 Hz the per-ms drive is ≈9.6·w̄, so the
        // mean weight must stay near 1.5 — enforced by the divisive
        // normalization target below.
        b.connect_plastic(
            input,
            exc,
            ConnectPattern::Full,
            WeightInit::Uniform { lo: 1.0, hi: 2.5 },
            1,
        )?;
        // each excitatory neuron fires its inhibitory partner reliably
        // (LIF pulse kick is w/τm, so single-spike relay needs w ≳ 260)
        b.connect(
            exc,
            inh,
            ConnectPattern::OneToOne,
            WeightInit::Constant(350.0),
            1,
        )?;
        // each inhibitory neuron suppresses all excitatory except its partner
        let pairs: Vec<(u32, u32)> = (0..INH)
            .flat_map(|i| (0..EXC).filter(move |&e| e != i).map(move |e| (i, e)))
            .collect();
        b.connect(
            inh,
            exc,
            ConnectPattern::Pairs { pairs },
            WeightInit::Constant(-120.0),
            1,
        )?;
        Ok(b.build()?)
    }

    fn sim_steps(&self) -> u32 {
        self.presentations * (self.present_ms + self.rest_ms)
    }

    fn sim_config(&self) -> SimConfig {
        // Diehl & Cook shape, rescaled to this crate's current-based LIF:
        // the normalization target keeps the mean input weight near 1.6 so
        // the excitatory drive stays just above threshold
        SimConfig {
            dt_ms: 1.0,
            stdp: Some(StdpConfig {
                a_plus: 0.05,
                a_minus: 0.06,
                w_min: 0.0,
                w_max: 5.0,
                normalize_every: Some(100),
                normalize_target: 1250.0,
                ..StdpConfig::default()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_matches_table1() {
        let app = DigitRecognition {
            presentations: 1,
            ..DigitRecognition::default()
        };
        let net = app.build(1).unwrap();
        assert_eq!(net.num_neurons(), 784 + 250 + 250);
        // input→exc full = 196000, exc→inh 250, inh→exc 250×249
        assert_eq!(net.synapses().len(), (784 * 250 + 250 + 250 * 249) as usize);
    }

    #[test]
    fn glyphs_are_distinct() {
        let one = glyph(1);
        let eight = glyph(8);
        assert!(eight.iter().sum::<f64>() > 2.0 * one.iter().sum::<f64>());
        // 0 and 8 differ exactly in the middle bar
        let zero = glyph(0);
        let diff: f64 = zero.iter().zip(&eight).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 10.0);
    }

    #[test]
    fn network_learns_and_fires() {
        let app = DigitRecognition {
            presentations: 4,
            present_ms: 150,
            rest_ms: 50,
            ..DigitRecognition::default()
        };
        let (net, record) = app.run(3).unwrap();
        let exc_spikes: u64 = (784..1034).map(|i| record.train(i).len() as u64).sum();
        assert!(exc_spikes > 0, "excitatory population must respond");
        // STDP must have moved the plastic weights away from init
        let plastic: Vec<f32> = net
            .synapses()
            .iter()
            .filter(|s| s.plastic)
            .map(|s| s.weight)
            .collect();
        let mean = plastic.iter().sum::<f32>() / plastic.len() as f32;
        assert!(mean.is_finite());
    }

    #[test]
    fn input_trains_respect_schedule() {
        let app = DigitRecognition {
            presentations: 2,
            present_ms: 100,
            rest_ms: 100,
            ..DigitRecognition::default()
        };
        let trains = app.input_trains(9);
        // no spikes during the first rest window (100..200) beyond
        // presentation 0 spill-over — trains are per-window Poisson, so
        // the window 100..200 must be empty for every pixel
        for t in &trains {
            assert_eq!(t.count_in(100, 200), 0, "rest window must be silent");
        }
    }
}
