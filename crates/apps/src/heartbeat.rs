//! Heartbeat (R-R interval) estimation: unsupervised LSM (64, 16),
//! temporal coding — the paper's only temporally coded workload, and the
//! one whose accuracy degrades measurably under ISI distortion (§V-B).
//!
//! Pipeline (after Das et al. 2017, the paper's reference \[18\]):
//! a synthetic ECG with controlled, slowly varying R-R intervals is
//! **level-crossing encoded** (the threshold/delta scheme sketched in the
//! paper's Fig. 3 left panel) into up/down spike channels; the spikes
//! excite a 64-neuron liquid (recurrent LIF reservoir) read out by 16
//! neurons. The R-R estimate is decoded from the readout's inter-spike
//! intervals; [`HeartbeatEstimation::estimate_accuracy`] compares it to
//! ground truth.
//!
//! **Data substitution:** real wearable ECG is replaced by a synthetic
//! P-QRS-T generator with beat-to-beat RR modulation — same morphology,
//! same temporal-coding path, and an exact ground truth to score against.

use crate::App;
use neuromap_core::CoreError;
use neuromap_snn::coding::level_crossing_encode;
use neuromap_snn::generator::Generator;
use neuromap_snn::network::{ConnectPattern, Network, NetworkBuilder, WeightInit};
use neuromap_snn::neuron::NeuronKind;
use neuromap_snn::simulator::SpikeRecord;
use neuromap_snn::spikes::SpikeTrain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Liquid (reservoir) size from Table I.
pub const LIQUID: u32 = 64;
/// Readout size from Table I.
pub const READOUT: u32 = 16;
/// Input channels: level-crossing up and down.
pub const CHANNELS: u32 = 2;

/// A synthetic ECG trace with its ground-truth beat times.
#[derive(Debug, Clone)]
pub struct EcgTrace {
    /// Signal samples (1 ms resolution, arbitrary millivolt-ish units).
    pub signal: Vec<f64>,
    /// Sample indices of the R peaks.
    pub r_peaks: Vec<u32>,
}

impl EcgTrace {
    /// Generates `duration_ms` of ECG at a heart rate that drifts
    /// sinusoidally between ~60 and ~90 BPM, with additive noise.
    pub fn generate(duration_ms: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut signal = vec![0.0f64; duration_ms as usize];
        let mut r_peaks = Vec::new();
        let mut t = 120.0f64; // first beat at 120 ms
        let mut beat = 0u32;
        while (t as usize) < duration_ms as usize {
            let rr = rr_at(beat, &mut rng);
            let center = t as usize;
            if center < duration_ms as usize {
                r_peaks.push(center as u32);
                add_beat(&mut signal, center);
            }
            t += rr;
            beat += 1;
        }
        for v in signal.iter_mut() {
            *v += 0.02 * (rng.gen::<f64>() - 0.5);
        }
        Self { signal, r_peaks }
    }

    /// Ground-truth mean R-R interval in ms.
    pub fn mean_rr(&self) -> f64 {
        if self.r_peaks.len() < 2 {
            return 0.0;
        }
        let span = (self.r_peaks[self.r_peaks.len() - 1] - self.r_peaks[0]) as f64;
        span / (self.r_peaks.len() - 1) as f64
    }
}

/// RR interval of beat `k`: 60–90 BPM sinusoidal drift + jitter.
fn rr_at(k: u32, rng: &mut StdRng) -> f64 {
    let base = 800.0 + 150.0 * (k as f64 * 0.35).sin();
    base + 20.0 * (rng.gen::<f64>() - 0.5)
}

/// Adds one P-QRS-T complex centered at `center` (R peak).
fn add_beat(signal: &mut [f64], center: usize) {
    let gauss =
        |x: f64, mu: f64, sigma: f64, a: f64| a * (-(x - mu).powi(2) / (2.0 * sigma * sigma)).exp();
    let lo = center.saturating_sub(120);
    let hi = (center + 200).min(signal.len());
    for (i, sample) in signal.iter_mut().enumerate().take(hi).skip(lo) {
        let x = i as f64 - center as f64;
        *sample += gauss(x, -80.0, 15.0, 0.12) // P
            + gauss(x, -12.0, 5.0, -0.18)        // Q
            + gauss(x, 0.0, 6.0, 1.0)            // R
            + gauss(x, 14.0, 6.0, -0.22)         // S
            + gauss(x, 110.0, 30.0, 0.25); // T
    }
}

/// The heartbeat-estimation application.
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatEstimation {
    /// Simulated duration (ms).
    pub duration_ms: u32,
    /// Level-crossing delta.
    pub delta: f64,
    /// Liquid recurrent connection probability.
    pub liquid_p: f64,
}

impl Default for HeartbeatEstimation {
    fn default() -> Self {
        Self {
            duration_ms: 5000,
            delta: 0.22,
            liquid_p: 0.15,
        }
    }
}

impl HeartbeatEstimation {
    /// Estimates the mean R-R interval (ms) from readout spike trains:
    /// the dominant inter-burst interval of the readout population.
    ///
    /// The liquid synchronizes to QRS bursts, so readout ISIs cluster at
    /// the RR interval; we take the median of ISIs in the plausible
    /// 300–2000 ms band.
    pub fn estimate_rr(&self, record: &SpikeRecord) -> Option<f64> {
        let first_readout = CHANNELS + LIQUID;
        let mut isis: Vec<u32> = Vec::new();
        for i in first_readout..first_readout + READOUT {
            isis.extend(
                record
                    .train(i)
                    .isis()
                    .into_iter()
                    .filter(|&d| (300..=2000).contains(&d)),
            );
        }
        if isis.is_empty() {
            return None;
        }
        isis.sort_unstable();
        Some(isis[isis.len() / 2] as f64)
    }

    /// Estimation accuracy in `[0, 1]`: `1 − |estimate − truth| / truth`
    /// (clamped), the paper's "estimation accuracy" for §V-B.
    pub fn estimate_accuracy(&self, record: &SpikeRecord, truth_rr: f64) -> f64 {
        match self.estimate_rr(record) {
            Some(est) if truth_rr > 0.0 => (1.0 - (est - truth_rr).abs() / truth_rr).max(0.0),
            _ => 0.0,
        }
    }

    /// The ECG trace and its encoded input spike trains for a given seed.
    pub fn encoded_input(&self, seed: u64) -> (EcgTrace, Vec<SpikeTrain>) {
        let ecg = EcgTrace::generate(self.duration_ms, seed);
        let (up, down) = level_crossing_encode(&ecg.signal, self.delta);
        (ecg, vec![up, down])
    }
}

impl App for HeartbeatEstimation {
    fn name(&self) -> String {
        "HE".to_owned()
    }

    fn build(&self, seed: u64) -> Result<Network, CoreError> {
        let (_, trains) = self.encoded_input(seed);
        let mut b = NetworkBuilder::new();
        b.seed(seed);
        let input = b.add_input_group("lc", CHANNELS, Generator::explicit(trains))?;
        let liquid = b.add_group("liquid", LIQUID, NeuronKind::lif_default())?;
        let readout = b.add_group("readout", READOUT, NeuronKind::lif_default())?;

        // strong fan-in from the two LC channels into the whole liquid.
        // LIF pulse kicks are w/τm (τm = 20 ms), so single-event relay
        // needs w ≳ 13·20 = 260
        b.connect(
            input,
            liquid,
            ConnectPattern::Full,
            WeightInit::Uniform {
                lo: 180.0,
                hi: 400.0,
            },
            1,
        )?;
        // sparse recurrent reservoir with mixed-sign weights, kept weak
        // enough that the liquid relays beat bursts instead of reverberating
        b.connect(
            liquid,
            liquid,
            ConnectPattern::RecurrentRandom { p: self.liquid_p },
            WeightInit::Uniform {
                lo: -60.0,
                hi: 70.0,
            },
            2,
        )?;
        // full readout of the liquid: a beat burst (tens of liquid spikes
        // within a few ms) must reach readout threshold
        b.connect(
            liquid,
            readout,
            ConnectPattern::Full,
            WeightInit::Uniform { lo: 15.0, hi: 40.0 },
            1,
        )?;
        Ok(b.build()?)
    }

    fn sim_steps(&self) -> u32 {
        self.duration_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ecg_has_plausible_beats() {
        let ecg = EcgTrace::generate(10_000, 1);
        // 60–90 BPM over 10 s → 10–15 beats
        assert!(
            (9..=16).contains(&ecg.r_peaks.len()),
            "{}",
            ecg.r_peaks.len()
        );
        let rr = ecg.mean_rr();
        assert!((600.0..1000.0).contains(&rr), "mean RR {rr}");
    }

    #[test]
    fn r_peaks_dominate_signal() {
        let ecg = EcgTrace::generate(5000, 2);
        for &p in &ecg.r_peaks {
            assert!(ecg.signal[p as usize] > 0.8, "R peak at {p} too small");
        }
    }

    #[test]
    fn encoding_produces_spikes_per_beat() {
        let app = HeartbeatEstimation::default();
        let (ecg, trains) = app.encoded_input(3);
        let up_spikes = trains[0].len();
        // each QRS produces several up crossings
        assert!(
            up_spikes >= ecg.r_peaks.len(),
            "{up_spikes} up-spikes for {} beats",
            ecg.r_peaks.len()
        );
    }

    #[test]
    fn topology_matches_table1() {
        let net = HeartbeatEstimation::default().build(0).unwrap();
        assert_eq!(net.num_neurons(), CHANNELS + LIQUID + READOUT);
        let (_, liquid) = net.group_by_name("liquid").unwrap();
        assert_eq!(liquid.size, 64);
        let (_, readout) = net.group_by_name("readout").unwrap();
        assert_eq!(readout.size, 16);
    }

    #[test]
    fn rr_estimate_tracks_ground_truth() {
        let app = HeartbeatEstimation::default();
        let (net, _) = (app.build(5).unwrap(), ());
        let mut sim = neuromap_snn::Simulator::new(net);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5 ^ 0xA99);
        let record = sim.run(app.sim_steps(), &mut rng).unwrap();
        let (ecg, _) = app.encoded_input(5);
        let acc = app.estimate_accuracy(&record, ecg.mean_rr());
        assert!(
            acc > 0.7,
            "accuracy {acc} too low — reservoir not tracking beats"
        );
    }

    #[test]
    fn jittered_spikes_degrade_accuracy() {
        // the §V-B effect: ISI distortion on the readout lowers accuracy
        let app = HeartbeatEstimation::default();
        let (net, record) = app.run(7).unwrap();
        drop(net);
        let (ecg, _) = app.encoded_input(7);
        let clean_acc = app.estimate_accuracy(&record, ecg.mean_rr());

        // rebuild a record with heavy alternating jitter on readout trains
        // (jittered times can reorder, so sort before recording)
        let mut jittered = SpikeRecord::new(record.num_neurons(), record.steps());
        for i in 0..record.num_neurons() as u32 {
            let train = record.train(i);
            let mut times: Vec<u32> = train
                .times()
                .iter()
                .enumerate()
                .map(|(k, &t)| {
                    if i >= CHANNELS + LIQUID && k % 2 == 1 {
                        t + 140
                    } else {
                        t
                    }
                })
                .collect();
            times.sort_unstable();
            times.dedup();
            for t in times {
                jittered.record(i, t);
            }
        }
        let jit_acc = app.estimate_accuracy(&jittered, ecg.mean_rr());
        assert!(
            jit_acc <= clean_acc,
            "jitter must not improve accuracy: {jit_acc} !<= {clean_acc}"
        );
    }
}
