//! Structured-trace repro: runs the `dense_burst16` engine-comparison
//! workload with event tracing on, proves the two engines emit
//! byte-identical event streams, writes the Perfetto/Chrome trace-viewer
//! export to `TRACE_noc.json` at the repo root (load it at
//! `ui.perfetto.dev` or `chrome://tracing`), and prints the congestion
//! spotter's ranking of the hottest `(router, port, VC)` lanes with the
//! flows that dominate them.
//!
//! Run: `cargo run --release -p neuromap-bench --bin repro_trace`

use neuromap_bench::noc_workloads::engine_workloads;
use neuromap_hw::energy::EnergyModel;
use neuromap_noc::config::NocConfig;
use neuromap_noc::sim::oracle::CycleSim;
use neuromap_noc::sim::NocSim;

/// Congested lanes the spotter ranks.
const TOP_LANES: usize = 8;
/// Dominant flows named per lane.
const TOP_FLOWS: usize = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = engine_workloads()
        .into_iter()
        .find(|w| w.name == "dense_burst16")
        .expect("dense_burst16 workload exists");
    let cfg = NocConfig {
        trace: true,
        ..w.cfg
    };
    let duration = w.flows.iter().map(|f| f.send_step + 1).max().unwrap_or(1);

    let mut event = NocSim::new((w.topo)(), cfg, EnergyModel::default());
    let (stats, _) = event.run_with_duration(&w.flows, duration)?;
    let trace = event.take_trace().expect("tracing was on");

    let mut oracle = CycleSim::new((w.topo)(), cfg, EnergyModel::default());
    oracle.run_with_duration(&w.flows, duration)?;
    let oracle_trace = oracle.take_trace().expect("tracing was on");
    assert_eq!(
        trace.to_bytes(),
        oracle_trace.to_bytes(),
        "engines must emit byte-identical event streams"
    );

    println!(
        "noc/{}: {} events over {} cycles, {} delivered, digest {:#018x}",
        w.name,
        trace.len(),
        stats.total_cycles,
        stats.delivered,
        stats.digest()?
    );

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TRACE_noc.json");
    std::fs::write(out, trace.to_perfetto_json())?;
    println!("wrote {out} (open at ui.perfetto.dev or chrome://tracing)");

    let report = trace.spot_congestion(TOP_LANES, TOP_FLOWS);
    if report.lanes.is_empty() {
        println!("spotter: no lane ever blocked on credit");
    } else {
        println!("spotter: top congested lanes —");
        print!("{report}");
    }
    Ok(())
}
