//! Ablation of this reproduction's design choices (see DESIGN.md §core):
//!
//! 1. **PSO variants** — pure binary PSO (the paper's algorithm) vs the
//!    memetic additions used at quick scale: baseline warm starts and
//!    greedy polish. Shows what each buys at a fixed compute budget.
//! 2. **Objective** — the paper's per-synapse Eq. 8 (`CutSpikes`) vs the
//!    multicast-aware packet objective (`CutPackets`), each evaluated under
//!    both traffic accountings.
//!
//! Run: `cargo run --release -p neuromap-bench --bin repro_ablation [--paper]`

use neuromap_apps::hello_world::HelloWorld;
use neuromap_apps::synthetic::Synthetic;
use neuromap_apps::App;
use neuromap_bench::{config_for, print_table, Scale, SEED};
use neuromap_core::partition::{FitnessKind, PartitionProblem, Partitioner};
use neuromap_core::pipeline::{evaluate_mapping, TrafficMode};
use neuromap_core::pso::{PsoConfig, PsoPartitioner};
use neuromap_core::SpikeGraph;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    println!("# Ablation — PSO design choices ({scale:?} scale)\n");

    let hw = HelloWorld {
        steps: scale.sim_ms(),
        ..HelloWorld::default()
    };
    let s22 = Synthetic {
        steps: scale.sim_ms(),
        ..Synthetic::new(2, 200)
    };
    let apps: Vec<(String, SpikeGraph)> = vec![
        (hw.name(), hw.spike_graph(SEED)?),
        (s22.name(), s22.spike_graph(SEED)?),
    ];

    println!("## 1. warm start and polish (objective: Eq. 8 cut spikes)\n");
    let base = scale.pso(0xAB1A);
    let variants: [(&str, PsoConfig); 4] = [
        (
            "pure PSO",
            PsoConfig {
                seed_baselines: false,
                polish_passes: 0,
                ..base
            },
        ),
        (
            "+ warm start",
            PsoConfig {
                seed_baselines: true,
                polish_passes: 0,
                ..base
            },
        ),
        (
            "+ polish",
            PsoConfig {
                seed_baselines: false,
                polish_passes: 8,
                ..base
            },
        ),
        (
            "+ both (default)",
            PsoConfig {
                seed_baselines: true,
                polish_passes: 8,
                ..base
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, graph) in &apps {
        let cfg = config_for(graph.num_neurons());
        let problem = PartitionProblem::new(
            graph,
            cfg.arch.num_crossbars(),
            cfg.arch.neurons_per_crossbar(),
        )?;
        let mut row = vec![name.clone()];
        for (_, vcfg) in &variants {
            let pso = PsoPartitioner::new(PsoConfig {
                fitness: FitnessKind::CutSpikes,
                ..*vcfg
            });
            let m = pso.partition(&problem)?;
            row.push(problem.cut_spikes(m.assignment()).to_string());
        }
        rows.push(row);
    }
    print_table(
        &[
            "app",
            "pure PSO",
            "+ warm start",
            "+ polish",
            "+ both (default)",
        ],
        &rows,
    );

    println!("\n## 2. objective × traffic accounting (energy in pJ)\n");
    let mut rows = Vec::new();
    for (name, graph) in &apps {
        for traffic in [TrafficMode::PerSynapse, TrafficMode::PerCrossbar] {
            let mut cfg = config_for(graph.num_neurons());
            cfg.traffic = traffic;
            let problem = PartitionProblem::new(
                graph,
                cfg.arch.num_crossbars(),
                cfg.arch.neurons_per_crossbar(),
            )?;
            let mut row = vec![name.clone(), format!("{traffic:?}")];
            for fitness in [FitnessKind::CutSpikes, FitnessKind::CutPackets] {
                let pso = PsoPartitioner::new(PsoConfig {
                    fitness,
                    ..scale.pso(0xAB1A)
                });
                let m = pso.partition(&problem)?;
                let report = evaluate_mapping(graph, m, "pso", &cfg)?;
                row.push(format!("{:.0}", report.global_energy_pj));
            }
            rows.push(row);
        }
    }
    print_table(
        &[
            "app",
            "traffic accounting",
            "optimize CutSpikes",
            "optimize CutPackets",
        ],
        &rows,
    );
    println!("\nmatching the objective to the traffic accounting should win its own column");
    Ok(())
}
