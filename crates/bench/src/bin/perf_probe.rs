//! Quick wall-clock probe of the PSO hot path at paper scale — used to
//! track the perf trajectory across PRs (complements the criterion
//! benches, which measure the evaluation kernels in isolation).
//!
//! Usage: `cargo run --release -p neuromap-bench --bin perf_probe [swarm] [iters]`
//!
//! `perf_probe multilevel` probes the multilevel V-cycle
//! ([`neuromap_core::multilevel`]) on the `synth_32x32grid` scenario:
//! per-level sizes, matching rates, refinement moves/accepts, and
//! per-level wall time.
//!
//! `perf_probe noc` instead probes the interconnect engines on the
//! dense-saturation workloads of [`neuromap_bench::noc_workloads`]: it
//! times the event engine against the cycle oracle and prints the event
//! scheduler's diagnostic counters ([`SchedCounters`]) — wake cycles,
//! per-port wakes vs the retired global scheme's counterfactual lane
//! scans, and the wake-queue peaks — so dense-regime scheduling
//! regressions show up as counter shifts, not just wall-clock noise.

use neuromap_apps::synthetic::{LargeArch, Synthetic};
use neuromap_apps::App;
use neuromap_bench::noc_workloads::dense_workloads;
use neuromap_bench::{arch_for, SEED};
use neuromap_core::eval::SwarmKernel;
use neuromap_core::multilevel::{vcycle, MultilevelConfig};
use neuromap_core::partition::PartitionProblem;
use neuromap_core::pso::{PsoConfig, PsoPartitioner};
use neuromap_hw::energy::EnergyModel;
use neuromap_noc::config::NocConfig;
use neuromap_noc::sim::oracle::CycleSim;
use neuromap_noc::sim::NocSim;
use std::time::Instant;

/// One-line swarm-evaluator kernel report for a crossbar count: which
/// kernel `SwarmEval` will actually run, with a loud marker on the
/// scalar fallback — the perf cliff past the batched envelopes used to
/// be invisible in probe output.
fn kernel_line(num_crossbars: usize) -> String {
    let kernel = SwarmKernel::for_crossbars(num_crossbars);
    format!(
        "swarm-eval kernel: {kernel}{}",
        if kernel == SwarmKernel::Scalar {
            "  ** SCALAR FALLBACK: past the batched envelopes **"
        } else {
            ""
        }
    )
}

/// Congested lanes the probe's spotter prints per workload.
const SPOTTER_TOP_LANES: usize = 4;
/// Dominant flows the spotter names per lane.
const SPOTTER_TOP_FLOWS: usize = 2;

/// Event-vs-oracle probe over the dense-saturation workloads.
fn probe_noc() {
    for w in dense_workloads() {
        let duration = w.flows.iter().map(|f| f.send_step + 1).max().unwrap_or(1);

        let start = Instant::now();
        let mut event = NocSim::new((w.topo)(), w.cfg, EnergyModel::default());
        let (ev, _, trace) = event
            .run_traced(&w.flows, duration)
            .expect("event engine drains");
        let event_s = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let mut oracle = CycleSim::new((w.topo)(), w.cfg, EnergyModel::default());
        let (or, _, _) = oracle
            .run_traced(&w.flows, duration)
            .expect("oracle drains");
        let oracle_s = start.elapsed().as_secs_f64();

        assert_eq!(
            ev.digest().unwrap(),
            or.digest().unwrap(),
            "{}: engines diverge",
            w.name
        );
        let s = trace.sched;
        println!(
            "noc/{}: event {:.1} ms, oracle {:.1} ms ({:.1}x), digest {:#018x}",
            w.name,
            event_s * 1e3,
            oracle_s * 1e3,
            oracle_s / event_s,
            ev.digest().unwrap()
        );
        println!(
            "  attended {} cycles ({} with progress); wakes: {} ports / {} router visits vs {} legacy lane scans ({:.1}x fewer)",
            trace.attended_cycles.len(),
            trace.progress_cycles.len(),
            s.port_wakes,
            s.router_visits,
            s.legacy_sweep_lanes,
            s.legacy_sweep_lanes as f64 / s.port_wakes.max(1) as f64
        );
        println!(
            "  head updates {}, peak ready {}, peak wake heap {}",
            s.head_updates, s.peak_ready, s.peak_wake_heap
        );

        // congestion spotter over the structured event trace — a
        // separate run with tracing on, so the timed comparison above
        // stays trace-free
        let traced_cfg = NocConfig {
            trace: true,
            ..w.cfg
        };
        let mut traced = NocSim::new((w.topo)(), traced_cfg, EnergyModel::default());
        traced
            .run_with_duration(&w.flows, duration)
            .expect("traced event run drains");
        let buf = traced.take_trace().expect("tracing was on");
        let report = buf.spot_congestion(SPOTTER_TOP_LANES, SPOTTER_TOP_FLOWS);
        if report.lanes.is_empty() {
            println!("  spotter: no lane ever blocked on credit");
        } else {
            println!("  spotter: top congested lanes —");
            for line in report.to_string().lines() {
                println!("    {line}");
            }
        }
    }
}

/// Multilevel V-cycle probe on the 32 × 32-grid scenario: per-level
/// sizes, matching rates, refinement moves/accepts, and per-level wall
/// time — the decomposition trajectory behind the `multilevel/*` bench
/// ratios, printed level by level (coarsest last).
fn probe_multilevel() {
    let scenario = LargeArch::grid32();
    let graph = scenario.spike_graph(SEED).expect("scenario generates");
    let problem = PartitionProblem::new(&graph, scenario.num_crossbars(), scenario.capacity())
        .expect("feasible");
    println!(
        "graph: {} neurons, {} synapses; arch: {} crossbars x {}",
        graph.num_neurons(),
        graph.num_synapses(),
        scenario.num_crossbars(),
        scenario.capacity()
    );
    println!("{}", kernel_line(scenario.num_crossbars()));
    let cfg = MultilevelConfig {
        pso: PsoConfig {
            swarm_size: 8,
            iterations: 8,
            ..PsoConfig::default()
        },
        ..MultilevelConfig::default()
    };
    let start = Instant::now();
    let out = vcycle(&problem, &cfg).expect("vcycle runs");
    let total = start.elapsed().as_secs_f64();
    for (l, s) in out.levels.iter().enumerate() {
        println!(
            "  level {l}: {} nodes, {} synapses, cap {}, matched {:.0}%, refine {}/{} accepted, {:.1} ms",
            s.num_neurons,
            s.num_synapses,
            s.capacity,
            s.matching_rate * 100.0,
            s.refine_accepted,
            s.refine_proposed,
            s.wall_s * 1e3
        );
    }
    println!(
        "vcycle: {total:.3} s total, cut-spikes {}, projected coarse cut {}{}",
        out.cost,
        out.projected_cost,
        if out.used_projection {
            " (projection won)"
        } else {
            ""
        }
    );
}

/// Prints usage to stderr and exits non-zero — bad arguments must not
/// silently degrade into a default-parameter run (the probe's numbers
/// are compared across PRs, so a typo would quietly probe the wrong
/// configuration).
fn usage(complaint: &str) -> ! {
    eprintln!("perf_probe: {complaint}");
    eprintln!("usage: perf_probe [SWARM [ITERS]] | perf_probe noc | perf_probe multilevel");
    eprintln!("  SWARM       positive swarm size (default 1000 when absent)");
    eprintln!("  ITERS       positive iteration count (default 100 when absent)");
    eprintln!("  noc         probe the interconnect engines instead");
    eprintln!("  multilevel  probe the multilevel V-cycle on the 32x32-grid scenario");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("noc") {
        if args.len() > 2 {
            usage("`noc` takes no further arguments");
        }
        probe_noc();
        return;
    }
    if args.get(1).map(String::as_str) == Some("multilevel") {
        if args.len() > 2 {
            usage("`multilevel` takes no further arguments");
        }
        probe_multilevel();
        return;
    }
    if args.len() > 3 {
        usage("too many arguments");
    }
    let swarm: usize = match args.get(1) {
        None => 1000,
        Some(s) => match s.parse() {
            Ok(v) if v > 0 => v,
            _ => usage(&format!("invalid swarm size `{s}`")),
        },
    };
    let iters: u32 = match args.get(2) {
        None => 100,
        Some(s) => match s.parse() {
            Ok(v) if v > 0 => v,
            _ => usage(&format!("invalid iteration count `{s}`")),
        },
    };

    let app = Synthetic::new(2, 400);
    let graph = app.spike_graph(SEED).expect("synthetic app simulates");
    let arch = arch_for(graph.num_neurons());
    let problem = PartitionProblem::new(&graph, arch.num_crossbars(), arch.neurons_per_crossbar())
        .expect("feasible");
    println!(
        "graph: {} neurons, {} synapses; arch: {} crossbars x {}",
        graph.num_neurons(),
        graph.num_synapses(),
        arch.num_crossbars(),
        arch.neurons_per_crossbar()
    );
    println!("{}", kernel_line(arch.num_crossbars()));

    let cfg = PsoConfig {
        swarm_size: swarm,
        iterations: iters,
        ..PsoConfig::paper()
    };
    let start = Instant::now();
    let (mapping, trace) = PsoPartitioner::new(cfg)
        .partition_traced(&problem)
        .expect("pso runs");
    let elapsed = start.elapsed();
    println!(
        "pso swarm={swarm} iters={iters} threads={}: {:.3} s, best cut-spikes {}",
        cfg.threads,
        elapsed.as_secs_f64(),
        problem.cut_spikes(mapping.assignment())
    );
    println!("converged at iteration {}", trace.converged_at);
}
