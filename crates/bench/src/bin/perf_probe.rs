//! Quick wall-clock probe of the PSO hot path at paper scale — used to
//! track the perf trajectory across PRs (complements the criterion
//! benches, which measure the evaluation kernels in isolation).
//!
//! Usage: `cargo run --release -p neuromap-bench --bin perf_probe [swarm] [iters]`
//!
//! `perf_probe noc` instead probes the interconnect engines on the
//! dense-saturation workloads of [`neuromap_bench::noc_workloads`]: it
//! times the event engine against the cycle oracle and prints the event
//! scheduler's diagnostic counters ([`SchedCounters`]) — wake cycles,
//! per-port wakes vs the retired global scheme's counterfactual lane
//! scans, and the wake-queue peaks — so dense-regime scheduling
//! regressions show up as counter shifts, not just wall-clock noise.

use neuromap_apps::synthetic::Synthetic;
use neuromap_apps::App;
use neuromap_bench::noc_workloads::dense_workloads;
use neuromap_bench::{arch_for, SEED};
use neuromap_core::partition::PartitionProblem;
use neuromap_core::pso::{PsoConfig, PsoPartitioner};
use neuromap_hw::energy::EnergyModel;
use neuromap_noc::sim::oracle::CycleSim;
use neuromap_noc::sim::NocSim;
use std::time::Instant;

/// Event-vs-oracle probe over the dense-saturation workloads.
fn probe_noc() {
    for w in dense_workloads() {
        let duration = w.flows.iter().map(|f| f.send_step + 1).max().unwrap_or(1);

        let start = Instant::now();
        let mut event = NocSim::new((w.topo)(), w.cfg, EnergyModel::default());
        let (ev, _, trace) = event
            .run_traced(&w.flows, duration)
            .expect("event engine drains");
        let event_s = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let mut oracle = CycleSim::new((w.topo)(), w.cfg, EnergyModel::default());
        let (or, _, _) = oracle
            .run_traced(&w.flows, duration)
            .expect("oracle drains");
        let oracle_s = start.elapsed().as_secs_f64();

        assert_eq!(ev.digest(), or.digest(), "{}: engines diverge", w.name);
        let s = trace.sched;
        println!(
            "noc/{}: event {:.1} ms, oracle {:.1} ms ({:.1}x), digest {:#018x}",
            w.name,
            event_s * 1e3,
            oracle_s * 1e3,
            oracle_s / event_s,
            ev.digest()
        );
        println!(
            "  attended {} cycles ({} with progress); wakes: {} ports / {} router visits vs {} legacy lane scans ({:.1}x fewer)",
            trace.attended_cycles.len(),
            trace.progress_cycles.len(),
            s.port_wakes,
            s.router_visits,
            s.legacy_sweep_lanes,
            s.legacy_sweep_lanes as f64 / s.port_wakes.max(1) as f64
        );
        println!(
            "  head updates {}, peak ready {}, peak wake heap {}",
            s.head_updates, s.peak_ready, s.peak_wake_heap
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("noc") {
        probe_noc();
        return;
    }
    let swarm: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let iters: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);

    let app = Synthetic::new(2, 400);
    let graph = app.spike_graph(SEED).expect("synthetic app simulates");
    let arch = arch_for(graph.num_neurons());
    let problem = PartitionProblem::new(&graph, arch.num_crossbars(), arch.neurons_per_crossbar())
        .expect("feasible");
    println!(
        "graph: {} neurons, {} synapses; arch: {} crossbars x {}",
        graph.num_neurons(),
        graph.num_synapses(),
        arch.num_crossbars(),
        arch.neurons_per_crossbar()
    );

    let cfg = PsoConfig {
        swarm_size: swarm,
        iterations: iters,
        ..PsoConfig::paper()
    };
    let start = Instant::now();
    let (mapping, trace) = PsoPartitioner::new(cfg)
        .partition_traced(&problem)
        .expect("pso runs");
    let elapsed = start.elapsed();
    println!(
        "pso swarm={swarm} iters={iters} threads={}: {:.3} s, best cut-spikes {}",
        cfg.threads,
        elapsed.as_secs_f64(),
        problem.cut_spikes(mapping.assignment())
    );
    println!("converged at iteration {}", trace.converged_at);
}
