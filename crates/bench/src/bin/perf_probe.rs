//! Quick wall-clock probe of the PSO hot path at paper scale — used to
//! track the perf trajectory across PRs (complements the criterion
//! benches, which measure the evaluation kernels in isolation).
//!
//! Usage: `cargo run --release -p neuromap-bench --bin perf_probe [swarm] [iters]`

use neuromap_apps::synthetic::Synthetic;
use neuromap_apps::App;
use neuromap_bench::{arch_for, SEED};
use neuromap_core::partition::PartitionProblem;
use neuromap_core::pso::{PsoConfig, PsoPartitioner};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let swarm: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let iters: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);

    let app = Synthetic::new(2, 400);
    let graph = app.spike_graph(SEED).expect("synthetic app simulates");
    let arch = arch_for(graph.num_neurons());
    let problem = PartitionProblem::new(&graph, arch.num_crossbars(), arch.neurons_per_crossbar())
        .expect("feasible");
    println!(
        "graph: {} neurons, {} synapses; arch: {} crossbars x {}",
        graph.num_neurons(),
        graph.num_synapses(),
        arch.num_crossbars(),
        arch.neurons_per_crossbar()
    );

    let cfg = PsoConfig {
        swarm_size: swarm,
        iterations: iters,
        ..PsoConfig::paper()
    };
    let start = Instant::now();
    let (mapping, trace) = PsoPartitioner::new(cfg)
        .partition_traced(&problem)
        .expect("pso runs");
    let elapsed = start.elapsed();
    println!(
        "pso swarm={swarm} iters={iters} threads={}: {:.3} s, best cut-spikes {}",
        cfg.threads,
        elapsed.as_secs_f64(),
        problem.cut_spikes(mapping.assignment())
    );
    println!("converged at iteration {}", trace.converged_at);
}
