//! Runs every reproduction binary in sequence (Fig. 5, Table II, Fig. 6,
//! Fig. 7, plus the placement-stage study). Output is the full
//! experimental record for EXPERIMENTS.md.
//!
//! Run: `cargo run --release -p neuromap-bench --bin repro_all [--paper]`

use std::process::Command;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let paper = std::env::args().any(|a| a == "--paper");
    let bins = [
        "repro_fig5",
        "repro_table2",
        "repro_fig6",
        "repro_fig7",
        "repro_placement",
    ];
    let exe = std::env::current_exe()?;
    let dir = exe.parent().expect("binary has a parent directory");
    for bin in bins {
        let mut cmd = Command::new(dir.join(bin));
        if paper {
            cmd.arg("--paper");
        }
        let status = cmd.status()?;
        if !status.success() {
            return Err(format!("{bin} failed with {status}").into());
        }
        println!("\n{}\n", "=".repeat(78));
    }
    Ok(())
}
