//! Reproduces Fig. 5 of Das et al. (DATE 2018): normalized energy
//! consumption on the global synapse interconnect for NEUTRAMS, PACMAN and
//! the proposed PSO, across 8 synthetic and 4 realistic applications.
//!
//! Paper shapes to check:
//! * PSO ≤ PACMAN ≤ NEUTRAMS (≈1.0) on (almost) every workload;
//! * gains shrink as synapse density grows (4x200 ≈ comparable, sparse
//!   1x200 > 40% improvement);
//! * realistic apps: PSO saves ~38% vs NEUTRAMS / ~33% vs PACMAN on
//!   average.
//!
//! Run: `cargo run --release -p neuromap-bench --bin repro_fig5 [--paper]`

use neuromap_bench::{
    config_for, fig5_partitioners, print_table, realistic_graphs, synthetic_graphs, Scale,
};
use neuromap_core::pipeline::run_pipeline;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    println!("# Fig. 5 — normalized energy on the global synapse interconnect ({scale:?} scale)\n");

    let mut workloads = synthetic_graphs(scale)?;
    workloads.extend(realistic_graphs(scale)?);

    let mut rows = Vec::new();
    let mut improvements_vs_neutrams = Vec::new();
    let mut improvements_vs_pacman = Vec::new();
    let mut realistic_gain_neutrams = Vec::new();
    let mut realistic_gain_pacman = Vec::new();

    for (name, graph) in &workloads {
        let cfg = config_for(graph.num_neurons());
        let mut energies = Vec::new();
        for part in fig5_partitioners(scale) {
            let report = run_pipeline(graph, part.as_ref(), &cfg)?;
            energies.push(report.global_energy_pj);
        }
        let base = energies[0].max(1e-12); // NEUTRAMS
        let norm: Vec<f64> = energies.iter().map(|e| e / base).collect();
        let is_realistic = !name.starts_with("synth");
        let gain_n = 1.0 - norm[2];
        let gain_p = if energies[1] > 0.0 {
            1.0 - energies[2] / energies[1]
        } else {
            0.0
        };
        improvements_vs_neutrams.push(gain_n);
        improvements_vs_pacman.push(gain_p);
        if is_realistic {
            realistic_gain_neutrams.push(gain_n);
            realistic_gain_pacman.push(gain_p);
        }
        rows.push(vec![
            name.clone(),
            format!("{:.3}", norm[0]),
            format!("{:.3}", norm[1]),
            format!("{:.3}", norm[2]),
            format!("{:.1}%", gain_n * 100.0),
            format!("{:.1}%", gain_p * 100.0),
        ]);
    }

    print_table(
        &[
            "workload",
            "NEUTRAMS",
            "PACMAN",
            "PSO",
            "PSO vs NEUTRAMS",
            "PSO vs PACMAN",
        ],
        &rows,
    );

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64 * 100.0;
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min) * 100.0;
    let max = |v: &[f64]| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max) * 100.0;

    println!();
    println!(
        "all workloads: PSO vs NEUTRAMS {:.1}%..{:.1}% (avg {:.1}%) | paper: 2.4%..48.7% (avg 20.2%)",
        min(&improvements_vs_neutrams),
        max(&improvements_vs_neutrams),
        avg(&improvements_vs_neutrams),
    );
    println!(
        "all workloads: PSO vs PACMAN   {:.1}%..{:.1}% (avg {:.1}%) | paper: 1.5%..45.4% (avg 17.2%)",
        min(&improvements_vs_pacman),
        max(&improvements_vs_pacman),
        avg(&improvements_vs_pacman),
    );
    println!(
        "realistic:     PSO vs NEUTRAMS avg {:.1}% | paper: 27.0%..52.1% (avg 38%)",
        avg(&realistic_gain_neutrams),
    );
    println!(
        "realistic:     PSO vs PACMAN   avg {:.1}% | paper: 21.2%..48.7% (avg 33%)",
        avg(&realistic_gain_pacman),
    );
    Ok(())
}
