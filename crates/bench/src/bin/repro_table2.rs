//! Reproduces Table II of Das et al. (DATE 2018): SNN metrics on the
//! global synapse interconnect — ISI distortion, spike disorder count,
//! throughput and maximum latency — for PACMAN vs the proposed PSO on the
//! four realistic applications.
//!
//! Paper shapes to check:
//! * PSO lowers ISI distortion (paper: −37% on average);
//! * PSO lowers disorder count (paper: −63% on average);
//! * PSO lowers max latency (paper: −22%, range 2–35%);
//! * PACMAN's *throughput* is usually higher — it simply pushes more
//!   spikes through the interconnect;
//! * §V-B: for the temporally coded HE app, lower ISI distortion means
//!   higher estimation accuracy (paper: 20% distortion ↓ ⇒ >5% accuracy ↑).
//!
//! Run: `cargo run --release -p neuromap-bench --bin repro_table2 [--paper]`

use neuromap_apps::heartbeat::HeartbeatEstimation;
use neuromap_bench::{config_for, print_table, realistic_graphs, Scale, SEED};
use neuromap_core::baselines::PacmanPartitioner;
use neuromap_core::partition::{PartitionProblem, Partitioner};
use neuromap_core::pipeline::{evaluate_mapping_detailed, PipelineConfig, Report};
use neuromap_core::pso::PsoPartitioner;
use neuromap_core::SpikeGraph;
use neuromap_noc::stats::Delivery;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    println!(
        "# Table II — SNN metric evaluation on the global synapse interconnect ({scale:?} scale)\n"
    );

    let graphs = realistic_graphs(scale)?;
    let mut rows = Vec::new();
    let mut isi_gains = Vec::new();
    let mut disorder_gains = Vec::new();
    let mut latency_gains = Vec::new();
    let mut he_data: Option<[(Report, Vec<Delivery>); 2]> = None;

    for (name, graph) in &graphs {
        let cfg = config_for(graph.num_neurons());
        let (pacman, pacman_log) = run(graph, &PacmanPartitioner::new(), &cfg)?;
        let pso_part = PsoPartitioner::new(scale.pso(0xF165));
        let (pso, pso_log) = run(graph, &pso_part, &cfg)?;

        let gain = |a: f64, b: f64| if a > 0.0 { (1.0 - b / a) * 100.0 } else { 0.0 };
        isi_gains.push(gain(
            pacman.noc.avg_isi_distortion_cycles,
            pso.noc.avg_isi_distortion_cycles,
        ));
        disorder_gains.push(gain(
            pacman.noc.disorder_fraction,
            pso.noc.disorder_fraction,
        ));
        latency_gains.push(gain(
            pacman.noc.max_latency_cycles as f64,
            pso.noc.max_latency_cycles as f64,
        ));

        for (label, r) in [("PACMAN", &pacman), ("Proposed", &pso)] {
            rows.push(vec![
                name.clone(),
                label.to_owned(),
                format!("{:.1}", r.noc.avg_isi_distortion_cycles),
                format!("{:.3}%", r.noc.disorder_fraction * 100.0),
                format!("{:.2}", r.noc.throughput_aer_per_ms),
                format!("{}", r.noc.max_latency_cycles),
            ]);
        }
        if name == "HE" {
            he_data = Some([(pacman, pacman_log), (pso, pso_log)]);
        }
    }

    print_table(
        &[
            "app",
            "mapping",
            "ISI dist (cyc)",
            "disorder",
            "thrpt (AER/ms)",
            "max latency (cyc)",
        ],
        &rows,
    );

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!();
    println!(
        "avg ISI-distortion reduction: {:.1}% | paper: 37%",
        avg(&isi_gains)
    );
    println!(
        "avg disorder reduction:       {:.1}% | paper: 63%",
        avg(&disorder_gains)
    );
    println!(
        "avg max-latency reduction:    {:.1}% | paper: 22% (2%..35%)",
        avg(&latency_gains)
    );

    // §V-B: temporal-coding sensitivity. CxQuad-class chips are always-on,
    // ultra-low-power parts whose interconnect runs barely faster than the
    // neural dynamics; sweep the interconnect clock down into that regime
    // and decode the R-R interval from the spike streams *as they arrive*.
    // Congestion jitter (which the PSO mapping reduces) then costs real
    // estimation accuracy.
    if let Some([(pacman, _), (pso, _)]) = he_data {
        println!("\n## §V-B — heartbeat-estimation accuracy under ISI distortion\n");
        let app = HeartbeatEstimation {
            duration_ms: scale.sim_ms().max(3000),
            ..HeartbeatEstimation::default()
        };
        let (ecg, _) = app.encoded_input(SEED);
        let truth = ecg.mean_rr();
        let graph = graphs
            .iter()
            .find(|(n, _)| n == "HE")
            .map(|(_, g)| g)
            .expect("HE graph present");

        let mut vb_rows = Vec::new();
        for cycles_per_step in [64u64, 128, 256, 1024] {
            let mut cfg = config_for(graph.num_neurons());
            cfg.noc.cycles_per_step = cycles_per_step;
            let mut line = vec![format!("{cycles_per_step}")];
            for (label, mapping) in [("PACMAN", &pacman.mapping), ("PSO", &pso.mapping)] {
                let (r, log) = evaluate_mapping_detailed(graph, mapping.clone(), label, &cfg)?;
                let acc = temporal_fidelity(&log, cycles_per_step);
                line.push(format!("{:.1}", r.noc.avg_isi_distortion_cycles));
                line.push(format!("{:.1}%", acc * 100.0));
            }
            vb_rows.push(line);
        }
        print_table(
            &[
                "cycles/ms",
                "PACMAN ISI (cyc)",
                "PACMAN fidelity",
                "PSO ISI (cyc)",
                "PSO fidelity",
            ],
            &vb_rows,
        );
        println!(
            "\nfidelity = fraction of beat-scale (300–2000 ms) intervals delivered within ±3% of the sent interval"
        );
        println!("truth RR {truth:.0} ms | paper: 20% ISI-distortion reduction improves estimation accuracy by >5%");
    }
    Ok(())
}

fn run(
    graph: &SpikeGraph,
    part: &dyn Partitioner,
    cfg: &PipelineConfig,
) -> Result<(Report, Vec<Delivery>), Box<dyn std::error::Error>> {
    let problem = PartitionProblem::new(
        graph,
        cfg.arch.num_crossbars(),
        cfg.arch.neurons_per_crossbar(),
    )?;
    let mapping = part.partition(&problem)?;
    Ok(evaluate_mapping_detailed(graph, mapping, part.name(), cfg)?)
}

/// Temporal-code fidelity of the interconnect: per (source neuron,
/// destination crossbar) stream, every **sent** inter-spike interval at
/// beat scale (300–2000 ms) is checked against the corresponding
/// **arrival** interval; a hit means the delivered interval is within ±3%
/// of the sent one. This isolates exactly the information channel the HE
/// application decodes (the R-R interval rides on inter-spike timing), so
/// fidelity loss lower-bounds the application's accuracy loss — the §V-B
/// mechanism.
fn temporal_fidelity(log: &[Delivery], cycles_per_ms: u64) -> f64 {
    use std::collections::HashMap;
    let mut streams: HashMap<(u32, u32), Vec<(u64, u64)>> = HashMap::new();
    for d in log {
        streams
            .entry((d.source_neuron, d.dst_crossbar))
            .or_default()
            .push((d.inject_cycle, d.deliver_cycle));
    }
    let mut total = 0u64;
    let mut hits = 0u64;
    for times in streams.values_mut() {
        times.sort_unstable();
        for w in times.windows(2) {
            let sent = (w[1].0 - w[0].0) as f64 / cycles_per_ms as f64;
            if !(300.0..=2000.0).contains(&sent) {
                continue;
            }
            let recv = w[1].1.abs_diff(w[0].1) as f64 / cycles_per_ms as f64;
            total += 1;
            if (recv - sent).abs() / sent <= 0.03 {
                hits += 1;
            }
        }
    }
    if total == 0 {
        return 0.0;
    }
    hits as f64 / total as f64
}
