//! Reproduces Fig. 6 of Das et al. (DATE 2018): architecture exploration
//! with the handwritten-digit-recognition application — local, global and
//! total synapse energy plus worst-case interconnect latency as the
//! crossbar size sweeps from 90 to 1440 neurons.
//!
//! Paper shapes to check:
//! * local energy **increases** with crossbar size (more synapses served
//!   inside crossbars, at higher per-event cost);
//! * global energy **decreases** (fewer spikes leave the crossbars);
//! * worst-case latency **decreases** (less interconnect congestion);
//! * total energy has an **interior optimum** — neither extreme wins,
//!   which is why the design space needs exploring at all.
//!
//! Run: `cargo run --release -p neuromap-bench --bin repro_fig6 [--paper]`

use neuromap_apps::digit_recognition::DigitRecognition;
use neuromap_apps::App;
use neuromap_bench::{config_for, print_table, Scale, SEED};
use neuromap_core::explore::architecture_sweep;
use neuromap_core::pso::PsoPartitioner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    println!("# Fig. 6 — architecture exploration, digit recognition ({scale:?} scale)\n");

    let app = match scale {
        Scale::Quick => DigitRecognition {
            presentations: 4,
            present_ms: 100,
            rest_ms: 25,
            ..DigitRecognition::default()
        },
        Scale::Paper => DigitRecognition::default(),
    };
    let graph = app.spike_graph(SEED)?;
    println!(
        "application: {} neurons, {} synapses, {} spikes\n",
        graph.num_neurons(),
        graph.num_synapses(),
        graph.total_spikes()
    );

    // the paper sweeps 90 → 1440 neurons per crossbar
    let sizes = [90u32, 180, 360, 720, 1080, 1440];
    let base = config_for(graph.num_neurons());
    let pso = PsoPartitioner::new(scale.pso(0x0F16));
    let points = architecture_sweep(&graph, &base, &sizes, &pso)?;

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.neurons_per_crossbar.to_string(),
                p.num_crossbars.to_string(),
                format!("{:.2}", p.local_energy_uj),
                format!("{:.2}", p.global_energy_uj),
                format!("{:.2}", p.total_energy_uj),
                p.worst_latency_cycles.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "neurons/crossbar",
            "crossbars",
            "local µJ",
            "global µJ",
            "total µJ",
            "worst latency (cyc)",
        ],
        &rows,
    );

    // shape checks
    let local_up = points
        .windows(2)
        .all(|w| w[1].local_energy_uj >= w[0].local_energy_uj * 0.95);
    let global_down = points
        .windows(2)
        .all(|w| w[1].global_energy_uj <= w[0].global_energy_uj * 1.05);
    let best = points
        .iter()
        .min_by(|a, b| a.total_energy_uj.total_cmp(&b.total_energy_uj))
        .expect("non-empty sweep");
    let interior = best.neurons_per_crossbar != sizes[0];
    println!();
    println!("local energy rising:    {local_up} (paper: yes)");
    println!("global energy falling:  {global_down} (paper: yes)");
    println!(
        "total-energy optimum at {} neurons/crossbar — interior optimum: {interior} (paper: intermediate point)",
        best.neurons_per_crossbar
    );
    Ok(())
}
