//! Reproduces Fig. 7 of Das et al. (DATE 2018): interconnect energy vs PSO
//! swarm size (log scale) for hello_world, heartbeat estimation,
//! synth_1x800 and synth_2x200, with iterations fixed at 100.
//!
//! Paper shapes to check:
//! * energy is normalized to the per-application minimum, so every curve
//!   ends ≥ 1.0 and decreases (weakly) with swarm size;
//! * small apps saturate early (paper: synth_2x200 reaches its minimum
//!   near swarm ≈ 105), larger ones keep improving toward 1000.
//!
//! Run: `cargo run --release -p neuromap-bench --bin repro_fig7 [--paper]`

use neuromap_apps::heartbeat::HeartbeatEstimation;
use neuromap_apps::hello_world::HelloWorld;
use neuromap_apps::synthetic::Synthetic;
use neuromap_apps::App;
use neuromap_bench::{config_for, print_table, Scale, SEED};
use neuromap_core::explore::swarm_sweep;
use neuromap_core::pso::PsoConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    println!("# Fig. 7 — exploration with swarm size ({scale:?} scale)\n");

    let (sizes, iterations): (Vec<usize>, u32) = match scale {
        Scale::Quick => (vec![4, 10, 32, 100], 30),
        Scale::Paper => (vec![10, 32, 100, 316, 1000], 100),
    };

    let hw = HelloWorld {
        steps: scale.sim_ms(),
        ..HelloWorld::default()
    };
    let he = HeartbeatEstimation {
        duration_ms: scale.sim_ms().max(3000),
        ..HeartbeatEstimation::default()
    };
    let s18 = Synthetic {
        steps: scale.sim_ms(),
        ..Synthetic::new(1, 800)
    };
    let s22 = Synthetic {
        steps: scale.sim_ms(),
        ..Synthetic::new(2, 200)
    };

    let apps: Vec<(String, neuromap_core::SpikeGraph)> = vec![
        (hw.name(), hw.spike_graph(SEED)?),
        (he.name(), he.spike_graph(SEED)?),
        (s18.name(), s18.spike_graph(SEED)?),
        (s22.name(), s22.spike_graph(SEED)?),
    ];

    let mut rows = Vec::new();
    for (name, graph) in &apps {
        let cfg = config_for(graph.num_neurons());
        // pure PSO (no warm start, no polish): the swarm-size dependence is
        // exactly what this figure measures
        let base = PsoConfig {
            iterations,
            seed: SEED,
            seed_baselines: false,
            polish_passes: 0,
            threads: 4,
            ..PsoConfig::default()
        };
        let points = swarm_sweep(graph, &cfg, &sizes, base)?;
        let min_energy = points
            .iter()
            .map(|p| p.global_energy_pj)
            .fold(f64::INFINITY, f64::min)
            .max(1e-12);
        for p in &points {
            rows.push(vec![
                name.clone(),
                p.swarm_size.to_string(),
                format!("{:.3}", p.global_energy_pj / min_energy),
                p.cut_spikes.to_string(),
                p.converged_at.to_string(),
            ]);
        }
    }

    print_table(
        &[
            "app",
            "swarm size",
            "normalized energy",
            "cut spikes",
            "converged at iter",
        ],
        &rows,
    );
    println!("\npaper: normalized energy decreases with swarm size; no gains past 1000 particles");
    Ok(())
}
