//! Placement-stage study: identity vs hop-optimized cluster placement on
//! 64- and 256-crossbar meshes, tori, and 2 × 2-chip hierarchical
//! fabrics (weighted chip-boundary links), plus the joint
//! partition ⇄ placement loop and Steiner multicast trees.
//!
//! The source paper stops after partitioning, implicitly wiring cluster
//! `k` to router `k`; SpiNeMap (Balaji et al.) showed a second placement
//! stage cuts NoC energy and latency. This repro quantifies that on the
//! staged pipeline: the same PSO partition is mapped through both
//! [`PlacementStrategy`] variants and the full interconnect simulation
//! reports hop-weighted packets, energy and latency for each. Cut packets
//! are placement-invariant by construction — only the *distances* change.
//!
//! A second block per scenario compares three hop-priced flows:
//!
//! * `staged`  — CutHops PSO partition, then one placement pass
//!   (exactly the fallback baseline `core::coopt` computes internally);
//! * `joint`   — [`MappingPipeline::co_optimize`], where the placement
//!   optimizer periodically re-prices the distances the swarm searches
//!   under (never worse than `staged` by construction);
//! * `joint+trees` — the same joint mapping re-simulated with
//!   `NocConfig::multicast_trees` on, so shared multicast prefixes
//!   traverse each link once instead of once per destination.
//!
//! Run: `cargo run --release -p neuromap-bench --bin repro_placement [--paper]`

use neuromap_apps::synthetic::LargeArch;
use neuromap_bench::{print_table, Scale, SEED};
use neuromap_core::coopt::CooptConfig;
use neuromap_core::partition::FitnessKind;
use neuromap_core::pipeline::{MappingPipeline, PipelineConfig, PlacementStrategy};
use neuromap_core::place::PlaceConfig;
use neuromap_core::pso::{PsoConfig, PsoPartitioner};
use neuromap_hw::arch::{Architecture, InterconnectKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_args();
    let (swarm, iters) = match scale {
        Scale::Quick => (8, 4),
        Scale::Paper => (40, 20),
    };
    let scenarios = [
        LargeArch {
            side: 8,
            neurons_per_crossbar: 8,
            synapses_per_neuron: 24,
            fill_percent: 85,
        },
        LargeArch::grid16(),
    ];
    let fabrics = [
        ("mesh", InterconnectKind::Mesh),
        ("torus", InterconnectKind::Torus),
        // multi-chip scale-out: the crossbars split over a 2 × 2 chip
        // grid (each chip a near-square mesh) with latency-4 × width-2
        // boundary links, so the placement stage must also keep chatty
        // clusters off the expensive chip seams
        (
            "hier",
            InterconnectKind::Hier {
                chip_cols: 2,
                chip_rows: 2,
                link_latency: 4,
                link_width: 2,
            },
        ),
    ];

    let mut rows = Vec::new();
    for scenario in scenarios {
        let graph = scenario.spike_graph(SEED)?;
        for (fabric, kind) in fabrics {
            let arch = Architecture::custom(scenario.num_crossbars(), scenario.capacity(), kind)?;
            // AER multicast packetization + an 8.2 MHz-class interconnect:
            // the dense grid traffic needs both to drain inside each
            // timestep (per-synapse unicast at this scale would model a
            // hopelessly underprovisioned chip). Router FIFOs are the
            // realistic shallow depth real neuromorphic NoCs ship
            // (depth 4, not the depth-64 workaround PR 4 needed): on the
            // torus, two virtual channels with dateline assignment keep
            // the wraparound rings deadlock-free under bursty multicast
            // where single-channel dimension-order routing wedges.
            let mut cfg = PipelineConfig::for_arch(arch)
                .with_traffic(neuromap_core::pipeline::TrafficMode::PerCrossbar);
            cfg.noc.cycles_per_step = 8192;
            cfg.noc.buffer_depth = 4;
            if kind == InterconnectKind::Torus {
                cfg.noc.vc_count = 2;
            }
            let pipeline = MappingPipeline::new(cfg);
            let pso = PsoPartitioner::new(PsoConfig {
                swarm_size: swarm,
                iterations: iters,
                fitness: FitnessKind::CutPackets,
                seed_baselines: false,
                polish_passes: 1,
                seed: SEED,
                ..PsoConfig::default()
            });
            // stage 1 once; both placements start from the same partition
            let mapping = pipeline.partition(&graph, &pso)?;
            let optimized =
                pipeline.with_placement(PlacementStrategy::HopOptimized(PlaceConfig::default()));

            let mut identity_hops = 0u64;
            for pipe in [&pipeline, &optimized] {
                let (placed, _, label) = pipe.place(&graph, &mapping)?;
                let report = pipe.evaluate_as(&graph, placed, "pso", &label)?;
                if report.placement == "identity" {
                    identity_hops = report.hop_weighted_packets;
                }
                let delta = if identity_hops == 0 {
                    0.0
                } else {
                    100.0 * (1.0 - report.hop_weighted_packets as f64 / identity_hops as f64)
                };
                rows.push(vec![
                    scenario.name(),
                    fabric.to_owned(),
                    report.placement.clone(),
                    report.hop_weighted_packets.to_string(),
                    format!("{:.2}", report.avg_hops),
                    format!("{:.0}", report.global_energy_pj),
                    format!("{:.1}", report.noc.avg_latency_cycles),
                    format!("{:.1}", report.noc.avg_isi_distortion_cycles),
                    format!("{delta:.1}%"),
                ]);
            }

            // Joint loop + tree routing on the same scenario. `staged`
            // reproduces core::coopt's internal fallback baseline bit for
            // bit (same hop-priced PSO config, same placement optimizer,
            // deterministic seeds), so the three rows isolate (a) the
            // joint re-pricing loop and (b) Steiner multicast trees.
            let coopt_cfg = CooptConfig {
                pso: PsoConfig {
                    swarm_size: swarm,
                    iterations: iters,
                    fitness: FitnessKind::CutHops,
                    seed_baselines: false,
                    polish_passes: 1,
                    seed: SEED,
                    ..PsoConfig::default()
                },
                place: PlaceConfig::default(),
                replace_every: (iters / 4).max(1),
                multilevel: None,
            };
            let staged_map = pipeline.partition(&graph, &PsoPartitioner::new(coopt_cfg.pso))?;
            let (staged_placed, _, _) = optimized.place(&graph, &staged_map)?;
            let joint = pipeline.co_optimize(&graph, &coopt_cfg)?;
            let mut tree_noc = pipeline.config().noc;
            tree_noc.multicast_trees = true;
            let trees = pipeline.with_noc(tree_noc);
            let mut staged_hops = 0u64;
            for (pipe, mapping, label) in [
                (&pipeline, staged_placed, "staged"),
                (&pipeline, joint.mapping.clone(), "joint"),
                (&trees, joint.mapping, "joint+trees"),
            ] {
                let report = pipe.evaluate_as(&graph, mapping, "pso", label)?;
                if label == "staged" {
                    staged_hops = report.hop_weighted_packets;
                }
                let delta = if staged_hops == 0 {
                    0.0
                } else {
                    100.0 * (1.0 - report.hop_weighted_packets as f64 / staged_hops as f64)
                };
                rows.push(vec![
                    scenario.name(),
                    fabric.to_owned(),
                    report.placement.clone(),
                    report.hop_weighted_packets.to_string(),
                    format!("{:.2}", report.avg_hops),
                    format!("{:.0}", report.global_energy_pj),
                    format!("{:.1}", report.noc.avg_latency_cycles),
                    format!("{:.1}", report.noc.avg_isi_distortion_cycles),
                    format!("{delta:.1}%"),
                ]);
            }
        }
    }
    print_table(
        &[
            "scenario",
            "fabric",
            "placement",
            "hop-wt pkts",
            "avg hops",
            "global pJ",
            "avg lat",
            "ISI dist",
            "hop-wt cut",
        ],
        &rows,
    );
    println!("\nidentity = cluster k on router k (the paper's implicit wiring);");
    println!("hop-optimized = core::place QAP local search + SA restarts on the same partition;");
    println!("staged = CutHops PSO then one placement pass (coopt's fallback baseline);");
    println!("joint = core::coopt partition ⇄ placement loop; joint+trees = the joint");
    println!("mapping with Steiner multicast-tree routing. hop-wt cut is vs identity for");
    println!("the first pair of rows and vs staged for the last three.");
    Ok(())
}
