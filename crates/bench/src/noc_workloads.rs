//! The interconnect engine-comparison workloads, shared between the
//! criterion bench (`benches/noc.rs`, which times event vs oracle and
//! emits the gated `ratios` entries of `BENCH_noc.json`) and the
//! `perf_probe` binary's `noc` mode (which prints the event scheduler's
//! diagnostic counters for the dense points).

use neuromap_noc::config::NocConfig;
use neuromap_noc::topology::{Mesh2D, Topology, Torus};
use neuromap_noc::traffic::SpikeFlow;

/// Unicast burst traffic: every crossbar fires every step.
pub fn burst_traffic(crossbars: u32, spikes_per_step: u32, steps: u32) -> Vec<SpikeFlow> {
    let mut flows = Vec::new();
    for step in 0..steps {
        for k in 0..spikes_per_step {
            let src = k % crossbars;
            let dst = (k + 1 + step) % crossbars;
            if src != dst {
                flows.push(SpikeFlow::unicast(k, src, dst, step));
            }
        }
    }
    flows
}

/// Sparse paper-scale traffic: a TrueNorth-class 64-crossbar mesh where
/// only a handful of neurons spike per timestep (SNN activity is sparse),
/// each multicasting to a few destination crossbars. The cycle-driven
/// oracle pays a full router sweep for every cycle of every drain window;
/// the event engine only touches the ports the packets actually want.
pub fn sparse_paper_traffic(crossbars: u32, spikes_per_step: u32, steps: u32) -> Vec<SpikeFlow> {
    let mut flows = Vec::new();
    for step in 0..steps {
        for k in 0..spikes_per_step {
            let src = (step * 7 + k * 13) % crossbars;
            let dsts = vec![
                (src + 1 + step) % crossbars,
                (src + 17 + k) % crossbars,
                (src + 33) % crossbars,
            ];
            flows.push(SpikeFlow::multicast(src * 100 + k, src, dsts, step));
        }
    }
    flows
}

/// Dense saturating multicast: every crossbar fires a fanout-wide
/// multicast every step, enough spikes per step that FIFOs stay full and
/// every router port forwards nearly every cycle — the global-synapse
/// burst regime of the source paper, and the regime where a scheduler
/// that re-scans whole routers degenerates to oracle speed.
pub fn dense_multicast_traffic(
    crossbars: u32,
    spikes_per_step: u32,
    steps: u32,
    fanout: u32,
) -> Vec<SpikeFlow> {
    let mut flows = Vec::new();
    for step in 0..steps {
        for k in 0..spikes_per_step {
            let src = k % crossbars;
            let dsts: Vec<u32> = (1..=fanout)
                .map(|j| (src + j * 5 + step) % crossbars)
                .filter(|&d| d != src)
                .collect();
            flows.push(SpikeFlow::multicast(k, src, dsts, step));
        }
    }
    flows
}

/// One engine-comparison workload: the same flows, topology, and
/// configuration are fed to both engines.
pub struct NocWorkload {
    /// Benchmark id suffix (`engine/<name>` in `BENCH_noc.json`).
    pub name: &'static str,
    /// Spike traffic.
    pub flows: Vec<SpikeFlow>,
    /// Topology factory (both engines get their own instance).
    pub topo: fn() -> Box<dyn Topology>,
    /// Simulator configuration.
    pub cfg: NocConfig,
}

/// Engine-comparison workloads, each also a `ratios` entry in
/// `BENCH_noc.json`. The torus points run realistic shallow router
/// FIFOs (the configuration dimension-order routing deadlocks on
/// without virtual channels) so the VC arbitration path is part of the
/// tracked perf trajectory; the `dense_*` points saturate the network so
/// the per-port wake scheduler's dense-regime speedup is tracked (and
/// floor-gated in `scripts/verify.sh`), not just the sparse win.
pub fn engine_workloads() -> Vec<NocWorkload> {
    vec![
        NocWorkload {
            name: "sparse_paper64",
            flows: sparse_paper_traffic(64, 2, 800),
            topo: || Box::new(Mesh2D::for_crossbars(64)),
            cfg: NocConfig::default(),
        },
        NocWorkload {
            name: "moderate_paper64",
            flows: sparse_paper_traffic(64, 8, 200),
            topo: || Box::new(Mesh2D::for_crossbars(64)),
            cfg: NocConfig::default(),
        },
        NocWorkload {
            name: "dense_burst16",
            flows: burst_traffic(16, 256, 10),
            topo: || Box::new(Mesh2D::for_crossbars(16)),
            cfg: NocConfig::default(),
        },
        NocWorkload {
            name: "dense_torus64",
            flows: dense_multicast_traffic(64, 256, 8, 4),
            topo: || Box::new(Torus::for_crossbars(64)),
            cfg: NocConfig {
                buffer_depth: 4,
                vc_count: 2,
                ..NocConfig::default()
            },
        },
        NocWorkload {
            name: "dense_vc4_burst16",
            flows: dense_multicast_traffic(16, 256, 10, 4),
            topo: || Box::new(Torus::for_crossbars(16)),
            cfg: NocConfig {
                buffer_depth: 4,
                vc_count: 4,
                ..NocConfig::default()
            },
        },
        NocWorkload {
            name: "torus64_vc2_shallow",
            flows: sparse_paper_traffic(64, 8, 200),
            topo: || Box::new(Torus::for_crossbars(64)),
            cfg: NocConfig {
                buffer_depth: 2,
                vc_count: 2,
                ..NocConfig::default()
            },
        },
        NocWorkload {
            name: "torus64_vc4_depth4",
            flows: sparse_paper_traffic(64, 16, 100),
            topo: || Box::new(Torus::for_crossbars(64)),
            cfg: NocConfig {
                buffer_depth: 4,
                vc_count: 4,
                ..NocConfig::default()
            },
        },
    ]
}

/// The dense-saturation subset (what `perf_probe noc` reports on).
pub fn dense_workloads() -> Vec<NocWorkload> {
    engine_workloads()
        .into_iter()
        .filter(|w| w.name.starts_with("dense_"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuromap_hw::energy::EnergyModel;
    use neuromap_noc::sim::NocSim;

    #[test]
    fn workload_names_are_unique_and_configs_valid() {
        let ws = engine_workloads();
        let mut names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ws.len(), "duplicate workload names");
        for w in &ws {
            assert!(w.cfg.validate().is_ok(), "{}", w.name);
            assert!(!w.flows.is_empty(), "{}", w.name);
        }
        assert_eq!(dense_workloads().len(), 3);
    }

    #[test]
    fn dense_vc_workloads_exercise_every_vc() {
        // guards the torus-vs-mesh hop_vc gotcha: a multi-VC workload on
        // a topology whose VC assignment never leaves VC 0 would fail the
        // bench's per-VC gate only at bench time — catch it in the tests
        for w in dense_workloads() {
            if w.cfg.vc_count == 1 {
                continue;
            }
            let mut sim = NocSim::new((w.topo)(), w.cfg, EnergyModel::default());
            let stats = sim
                .run(&w.flows)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                stats.per_vc.iter().all(|v| v.forwarded > 0),
                "{}: every VC must carry traffic: {:?}",
                w.name,
                stats.per_vc
            );
        }
    }
}
