//! # neuromap-bench — reproduction harness for Das et al. (DATE 2018)
//!
//! One binary per table/figure of the paper's evaluation:
//!
//! | Artifact | Binary | Paper content |
//! |---|---|---|
//! | Fig. 5 | `repro_fig5` | normalized interconnect energy, NEUTRAMS vs PACMAN vs PSO |
//! | Table II | `repro_table2` | ISI distortion / disorder / throughput / latency, PACMAN vs PSO |
//! | Fig. 6 | `repro_fig6` | architecture exploration (neurons per crossbar sweep) |
//! | Fig. 7 | `repro_fig7` | swarm-size exploration |
//! | ablation | `repro_ablation` | warm-start/polish and objective ablations |
//! | placement | `repro_placement` | identity vs hop-optimized cluster placement (64/256-crossbar mesh + torus) |
//! | all | `repro_all` | everything above in sequence |
//!
//! Every binary accepts `--paper` for paper-scale parameters (swarm 1000 ×
//! 100 iterations — slow) and defaults to a quick mode that preserves the
//! qualitative shapes. Criterion micro-benchmarks live under `benches/`.

use neuromap_apps::synthetic::Synthetic;
use neuromap_apps::App;
use neuromap_core::baselines::{NeutramsPartitioner, PacmanPartitioner};
use neuromap_core::partition::FitnessKind;
use neuromap_core::partition::Partitioner;
use neuromap_core::pipeline::PipelineConfig;
use neuromap_core::pso::{PsoConfig, PsoPartitioner};
use neuromap_core::{CoreError, SpikeGraph};
use neuromap_hw::arch::{Architecture, InterconnectKind};

pub mod noc_workloads;

/// Crossbar capacity of the CxQuad-class chips the experiments map onto
/// (128 neurons per crossbar, Section II of the paper).
pub const CROSSBAR_NEURONS: u32 = 128;

/// Experiment scale, selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast parameters that preserve the qualitative shapes (default).
    Quick,
    /// The paper's parameters (swarm 1000, 100 iterations) — slow.
    Paper,
}

impl Scale {
    /// Parses `--paper` from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }

    /// PSO configuration at this scale.
    ///
    /// Quick mode uses the memetic setup (baseline warm start + greedy
    /// polish, multicast-aware fitness) so a 40-particle swarm reaches the
    /// solution quality the paper obtains with 1000 particles × 100
    /// iterations; paper mode runs the pure PSO at the paper's parameters
    /// (plus polish, which the interconnect-energy objective still needs
    /// because Eq. 8 is a per-synapse proxy for packet traffic).
    pub fn pso(self, seed: u64) -> PsoConfig {
        match self {
            Scale::Quick => PsoConfig {
                swarm_size: 40,
                iterations: 40,
                seed,
                threads: 4,
                fitness: FitnessKind::CutSpikes,
                seed_baselines: true,
                polish_passes: 8,
                ..PsoConfig::default()
            },
            Scale::Paper => PsoConfig {
                seed,
                threads: 8,
                fitness: FitnessKind::CutSpikes,
                polish_passes: 8,
                ..PsoConfig::paper()
            },
        }
    }

    /// Simulation length (ms) for the realistic apps at this scale.
    pub fn sim_ms(self) -> u32 {
        match self {
            Scale::Quick => 500,
            Scale::Paper => 1000,
        }
    }
}

/// The CxQuad-class architecture an application maps onto: 128-neuron
/// crossbars on a NoC-tree of arity 4, with enough crossbars for the
/// application plus ~15% slack (partitioners need spare capacity to move
/// neurons around), and at least the 4 crossbars of a CxQuad chip.
pub fn arch_for(num_neurons: u32) -> Architecture {
    let needed = (num_neurons as f64 * 1.15 / CROSSBAR_NEURONS as f64).ceil() as usize;
    let crossbars = needed.max(4);
    // small applications use proportionally smaller crossbars so that the
    // mapping problem is non-degenerate (everything fitting on one
    // crossbar has a trivial zero-traffic solution)
    let capacity = if (num_neurons as u64) < 4 * CROSSBAR_NEURONS as u64 {
        (num_neurons as f64 * 1.15 / 4.0).ceil() as u32
    } else {
        CROSSBAR_NEURONS
    };
    Architecture::custom(
        crossbars,
        capacity.max(2),
        InterconnectKind::Tree { arity: 4 },
    )
    .expect("non-zero dimensions")
}

/// Pipeline configuration for an application of `num_neurons` neurons:
/// the CxQuad-class architecture of [`arch_for`] with an 8.2 MHz-class
/// interconnect (8192 cycles per 1 ms SNN timestep): fast enough that
/// dense workloads drain, slow enough that burst tails occasionally cross
/// timestep boundaries — the regime where spike disorder appears.
pub fn config_for(num_neurons: u32) -> PipelineConfig {
    let mut cfg = PipelineConfig::for_arch(arch_for(num_neurons));
    cfg.noc.cycles_per_step = 8192;
    cfg
}

/// The three partitioners of Fig. 5, in plot order.
pub fn fig5_partitioners(scale: Scale) -> Vec<Box<dyn Partitioner>> {
    vec![
        Box::new(NeutramsPartitioner::new()),
        Box::new(PacmanPartitioner::new()),
        Box::new(PsoPartitioner::new(scale.pso(0xF165))),
    ]
}

/// Builds the spike graphs of the realistic applications at the given
/// scale (shortened simulations in quick mode).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn realistic_graphs(scale: Scale) -> Result<Vec<(String, SpikeGraph)>, CoreError> {
    use neuromap_apps::digit_recognition::DigitRecognition;
    use neuromap_apps::heartbeat::HeartbeatEstimation;
    use neuromap_apps::hello_world::HelloWorld;
    use neuromap_apps::image_smoothing::ImageSmoothing;

    let hw = HelloWorld {
        steps: scale.sim_ms(),
        ..HelloWorld::default()
    };
    let is = ImageSmoothing {
        steps: scale.sim_ms(),
        ..ImageSmoothing::default()
    };
    let hd = match scale {
        Scale::Quick => DigitRecognition {
            presentations: 4,
            present_ms: 100,
            rest_ms: 25,
            ..DigitRecognition::default()
        },
        Scale::Paper => DigitRecognition::default(),
    };
    let he = HeartbeatEstimation {
        duration_ms: scale.sim_ms().max(3000),
        ..HeartbeatEstimation::default()
    };

    Ok(vec![
        (hw.name(), hw.spike_graph(SEED)?),
        (is.name(), is.spike_graph(SEED)?),
        (hd.name(), hd.spike_graph(SEED)?),
        (he.name(), he.spike_graph(SEED)?),
    ])
}

/// Builds the spike graphs of the eight synthetic Fig. 5 topologies.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn synthetic_graphs(scale: Scale) -> Result<Vec<(String, SpikeGraph)>, CoreError> {
    neuromap_apps::synthetic::fig5_topologies()
        .into_iter()
        .map(|t| {
            let t = Synthetic {
                steps: scale.sim_ms(),
                ..t
            };
            Ok((t.name(), t.spike_graph(SEED)?))
        })
        .collect()
}

/// Fixed seed for all reproduction binaries.
pub const SEED: u64 = 2018;

/// Prints a markdown-style table: header row + aligned columns.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_capacity_has_slack() {
        let arch = arch_for(1024);
        assert!(arch.total_neuron_capacity() as f64 >= 1024.0 * 1.1);
        assert_eq!(arch.neurons_per_crossbar(), CROSSBAR_NEURONS);
        // small apps get 4 proportionally smaller crossbars
        let small = arch_for(126);
        assert_eq!(small.num_crossbars(), 4);
        assert!(small.neurons_per_crossbar() < CROSSBAR_NEURONS);
        assert!(small.total_neuron_capacity() >= 126);
    }

    #[test]
    fn quick_scale_is_default() {
        // from_args in a test harness has no --paper flag
        assert_eq!(Scale::from_args(), Scale::Quick);
    }

    #[test]
    fn partitioner_lineup() {
        let names: Vec<&str> = fig5_partitioners(Scale::Quick)
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(names, vec!["neutrams", "pacman", "pso"]);
    }
}
