//! Ablation benchmark for the paper's §III claim: "PSO is computationally
//! less expensive with faster convergence compared to its counterparts
//! such as genetic algorithm (GA) or simulated annealing (SA)".
//!
//! All three optimizers run to a comparable solution quality on the same
//! problem; criterion reports the wall-clock each needs.

use criterion::{criterion_group, criterion_main, Criterion};
use neuromap_core::baselines::{GaConfig, GaPartitioner, SaConfig, SaPartitioner};
use neuromap_core::graph::SpikeGraph;
use neuromap_core::partition::{PartitionProblem, Partitioner};
use neuromap_core::pso::{PsoConfig, PsoPartitioner};

/// Four dense clusters bridged in a chain — optimum = 3 bridge cuts.
fn problem_graph() -> SpikeGraph {
    let clusters = 4u32;
    let size = 12u32;
    let n = clusters * size;
    let mut synapses = Vec::new();
    for c in 0..clusters {
        let base = c * size;
        for a in 0..size {
            for b in 0..size {
                if a != b {
                    synapses.push((base + a, base + b));
                }
            }
        }
        if c + 1 < clusters {
            synapses.push((base + size - 1, base + size));
        }
    }
    SpikeGraph::from_parts(n, synapses, vec![10; n as usize]).expect("valid graph")
}

fn bench_optimizers(c: &mut Criterion) {
    let graph = problem_graph();
    let problem = PartitionProblem::new(&graph, 4, 14).expect("feasible");
    // parameters tuned so each optimizer reliably finds the 3-bridge cut
    let pso = PsoPartitioner::new(PsoConfig {
        swarm_size: 30,
        iterations: 30,
        ..PsoConfig::default()
    });
    let sa = SaPartitioner::new(SaConfig {
        moves: 30_000,
        ..SaConfig::default()
    });
    let ga = GaPartitioner::new(GaConfig {
        population: 40,
        generations: 60,
        ..GaConfig::default()
    });

    // quality sanity: all three reach the optimum of 30 cut spikes
    let optimum = 30;
    for (name, m) in [
        ("pso", pso.partition(&problem).expect("pso solves")),
        ("sa", sa.partition(&problem).expect("sa solves")),
        ("ga", ga.partition(&problem).expect("ga solves")),
    ] {
        let cut = problem.cut_spikes(m.assignment());
        assert!(
            cut <= optimum * 2,
            "{name} quality degraded: {cut} vs optimum {optimum}"
        );
    }

    let mut group = c.benchmark_group("optimizer_wall_clock");
    group.sample_size(10);
    group.bench_function("pso", |b| {
        b.iter(|| pso.partition(&problem).expect("pso solves"))
    });
    group.bench_function("sa", |b| {
        b.iter(|| sa.partition(&problem).expect("sa solves"))
    });
    group.bench_function("ga", |b| {
        b.iter(|| ga.partition(&problem).expect("ga solves"))
    });
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
