//! Microbenchmark: SNN simulation throughput (the CARLsim-substitute
//! substrate) across population sizes and with/without STDP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neuromap_snn::generator::Generator;
use neuromap_snn::network::{ConnectPattern, Network, NetworkBuilder, WeightInit};
use neuromap_snn::neuron::NeuronKind;
use neuromap_snn::simulator::{SimConfig, Simulator};
use neuromap_snn::stdp::StdpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn feedforward(width: u32, plastic: bool) -> Network {
    let mut b = NetworkBuilder::new();
    let input = b
        .add_input_group("in", width, Generator::poisson(40.0))
        .expect("valid group");
    let out = b
        .add_group("out", width, NeuronKind::izhikevich_rs())
        .expect("valid group");
    let w = WeightInit::Constant(160.0 / width as f32);
    if plastic {
        b.connect_plastic(input, out, ConnectPattern::Full, w, 1)
            .expect("valid projection");
    } else {
        b.connect(input, out, ConnectPattern::Full, w, 1)
            .expect("valid projection");
    }
    b.build().expect("valid network")
}

fn bench_sim_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("snn_run_100ms");
    group.sample_size(20);
    for width in [64u32, 256, 512] {
        let net = feedforward(width, false);
        group.bench_with_input(BenchmarkId::from_parameter(width), &net, |b, n| {
            b.iter(|| {
                let mut sim = Simulator::new(n.clone());
                let mut rng = StdRng::seed_from_u64(1);
                sim.run(100, &mut rng).expect("simulation runs")
            });
        });
    }
    group.finish();
}

fn bench_stdp_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("snn_stdp");
    group.sample_size(20);
    for (name, plastic) in [("static", false), ("plastic", true)] {
        let net = feedforward(256, plastic);
        group.bench_with_input(BenchmarkId::from_parameter(name), &net, |b, n| {
            let cfg = SimConfig {
                dt_ms: 1.0,
                stdp: plastic.then(StdpConfig::default),
            };
            b.iter(|| {
                let mut sim = Simulator::with_config(n.clone(), cfg);
                let mut rng = StdRng::seed_from_u64(1);
                sim.run(100, &mut rng).expect("simulation runs")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_step, bench_stdp_overhead);
criterion_main!(benches);
