//! Microbenchmark: the Eq. 8 cut-spike cost kernel — the inner loop of
//! every partitioner — across graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neuromap_core::graph::SpikeGraph;
use neuromap_core::partition::PartitionProblem;

fn layered(layers: u32, width: u32) -> SpikeGraph {
    let mut synapses = Vec::new();
    for l in 0..layers.saturating_sub(1) {
        for a in 0..width {
            for b in 0..width {
                synapses.push((l * width + a, (l + 1) * width + b));
            }
        }
    }
    let n = layers * width;
    SpikeGraph::from_parts(n, synapses, vec![20; n as usize]).expect("valid graph")
}

fn bench_cut_spikes(c: &mut Criterion) {
    let mut group = c.benchmark_group("cut_spikes");
    for (layers, width) in [(2u32, 100u32), (3, 200), (4, 200)] {
        let graph = layered(layers, width);
        let crossbars = 16;
        let cap = (graph.num_neurons() / 12).max(2);
        let problem = PartitionProblem::new(&graph, crossbars, cap).expect("feasible");
        let assignment: Vec<u32> = (0..graph.num_neurons())
            .map(|i| i % crossbars as u32)
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{layers}x{width}")),
            &assignment,
            |b, a| b.iter(|| std::hint::black_box(problem.cut_spikes(a))),
        );
    }
    group.finish();
}

fn bench_cut_packets(c: &mut Criterion) {
    let graph = layered(3, 200);
    let problem = PartitionProblem::new(&graph, 16, 64).expect("feasible");
    let assignment: Vec<u32> = (0..graph.num_neurons()).map(|i| i % 16).collect();
    c.bench_function("cut_packets/3x200", |b| {
        b.iter(|| std::hint::black_box(problem.cut_packets(&assignment)))
    });
}

criterion_group!(benches, bench_cut_spikes, bench_cut_packets);
criterion_main!(benches);
