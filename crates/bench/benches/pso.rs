//! Microbenchmark: full PSO partitioning runs vs swarm size and problem
//! size — the cost model behind the paper's "35 minutes on Google Cloud"
//! remark and our Fig. 7 sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neuromap_core::graph::SpikeGraph;
use neuromap_core::partition::{PartitionProblem, Partitioner};
use neuromap_core::pso::{PsoConfig, PsoPartitioner};

fn chain_clusters(clusters: u32, size: u32) -> SpikeGraph {
    // `clusters` dense blobs in a chain — a partitioning problem with a
    // known good structure
    let n = clusters * size;
    let mut synapses = Vec::new();
    for c in 0..clusters {
        let base = c * size;
        for a in 0..size {
            for b in 0..size {
                if a != b {
                    synapses.push((base + a, base + b));
                }
            }
        }
        if c + 1 < clusters {
            synapses.push((base, base + size)); // bridge
        }
    }
    SpikeGraph::from_parts(n, synapses, vec![15; n as usize]).expect("valid graph")
}

fn bench_swarm_size(c: &mut Criterion) {
    let graph = chain_clusters(4, 16);
    let problem = PartitionProblem::new(&graph, 4, 20).expect("feasible");
    let mut group = c.benchmark_group("pso_swarm");
    group.sample_size(10);
    for swarm in [10usize, 40, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(swarm), &swarm, |b, &n| {
            let pso = PsoPartitioner::new(PsoConfig {
                swarm_size: n,
                iterations: 20,
                ..PsoConfig::default()
            });
            b.iter(|| pso.partition(&problem).expect("feasible problem"));
        });
    }
    group.finish();
}

fn bench_problem_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("pso_problem");
    group.sample_size(10);
    for (clusters, size) in [(4u32, 16u32), (8, 16), (8, 32)] {
        let graph = chain_clusters(clusters, size);
        let problem = PartitionProblem::new(&graph, clusters as usize, size + 8).expect("feasible");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}n", graph.num_neurons())),
            &problem,
            |b, p| {
                let pso = PsoPartitioner::new(PsoConfig {
                    swarm_size: 20,
                    iterations: 15,
                    ..PsoConfig::default()
                });
                b.iter(|| pso.partition(p).expect("feasible problem"));
            },
        );
    }
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    let graph = chain_clusters(8, 32);
    let problem = PartitionProblem::new(&graph, 8, 40).expect("feasible");
    let mut group = c.benchmark_group("pso_threads");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let pso = PsoPartitioner::new(PsoConfig {
                swarm_size: 64,
                iterations: 10,
                threads: t,
                ..PsoConfig::default()
            });
            b.iter(|| pso.partition(&problem).expect("feasible problem"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_swarm_size, bench_problem_size, bench_threads);
criterion_main!(benches);
