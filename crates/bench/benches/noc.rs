//! Interconnect benchmarks: the event-driven engine against the
//! cycle-driven oracle, plus simulation throughput across topologies,
//! load levels, and multicast settings.
//!
//! Writes a `BENCH_noc.json` summary (same shape as `BENCH_eval.json`:
//! a `benchmarks` array of `{id, median_ns, mean_ns, samples}`) so the
//! interconnect perf trajectory is tracked across PRs, plus the derived
//! `noc_sparse_speedup` / `noc_dense_speedup` ratios the event engine is
//! held to. Before timing anything, every engine-comparison workload is
//! differentially checked: the two engines must produce byte-identical
//! statistics (digest equality), so the numbers always compare equals.
//!
//! The engine-comparison workloads (including the dense-saturation
//! points gated by `scripts/verify.sh`) live in
//! `neuromap_bench::noc_workloads`, shared with `perf_probe noc`.
//!
//! Knobs: `NEUROMAP_BENCH_FAST=1` — 1-sample smoke run (CI gate).

use criterion::{BenchmarkId, Criterion};
use neuromap_bench::noc_workloads::{burst_traffic, engine_workloads, NocWorkload};
use neuromap_hw::energy::EnergyModel;
use neuromap_noc::config::NocConfig;
use neuromap_noc::sim::oracle::CycleSim;
use neuromap_noc::sim::NocSim;
use neuromap_noc::topology::{HierTopology, Mesh2D, NocTree, Star, Topology};
use neuromap_noc::traffic::SpikeFlow;

/// Differential gate: both engines must digest-match on `w` before their
/// timings are worth comparing. Returns the shared digest.
fn assert_engines_agree(w: &NocWorkload) -> u64 {
    let mut event = NocSim::new((w.topo)(), w.cfg, EnergyModel::default());
    let mut oracle = CycleSim::new((w.topo)(), w.cfg, EnergyModel::default());
    let ev = event.run(&w.flows).expect("event engine drains");
    let or = oracle.run(&w.flows).expect("oracle drains");
    assert_eq!(
        ev.digest().unwrap(),
        or.digest().unwrap(),
        "{}: engines diverge — benchmark numbers would be meaningless",
        w.name
    );
    if w.cfg.vc_count > 1 {
        assert!(
            ev.per_vc.iter().all(|v| v.forwarded > 0),
            "{}: VC workload must exercise every VC: {:?}",
            w.name,
            ev.per_vc
        );
    }
    ev.digest().unwrap()
}

fn bench_engines(c: &mut Criterion) {
    for w in engine_workloads() {
        let digest = assert_engines_agree(&w);
        println!("engine/{}: differential digest {digest:#018x} OK", w.name);
        let mut group = c.benchmark_group(format!("engine/{}", w.name));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("event"), &w, |b, w| {
            b.iter(|| {
                let mut sim = NocSim::new((w.topo)(), w.cfg, EnergyModel::default());
                sim.run(&w.flows).expect("traffic drains")
            });
        });
        group.bench_with_input(BenchmarkId::from_parameter("oracle"), &w, |b, w| {
            b.iter(|| {
                let mut sim = CycleSim::new((w.topo)(), w.cfg, EnergyModel::default());
                sim.run(&w.flows).expect("traffic drains")
            });
        });
        group.finish();
    }
}

/// Event-vs-oracle on the multi-chip hierarchical fabric (2 × 2 chips of
/// a 4 × 4 mesh joined by latency-4 × width-2 boundary links, 2 VCs) —
/// the `hier_engine/multichip64` group and paired ratio in
/// `BENCH_noc.json`. Digest-gated like the flat `engine/*` groups, so
/// the engines must byte-agree across chip-boundary links before their
/// timings are compared.
fn bench_hier_engines(c: &mut Criterion) {
    let w = NocWorkload {
        name: "multichip64",
        flows: burst_traffic(64, 128, 10),
        topo: || Box::new(HierTopology::for_crossbars(64, 2, 2, 4, 2).expect("valid fabric")),
        cfg: NocConfig {
            vc_count: 2,
            ..NocConfig::default()
        },
    };
    let digest = assert_engines_agree(&w);
    println!(
        "hier_engine/{}: differential digest {digest:#018x} OK",
        w.name
    );
    let mut group = c.benchmark_group(format!("hier_engine/{}", w.name));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("event"), &w, |b, w| {
        b.iter(|| {
            let mut sim = NocSim::new((w.topo)(), w.cfg, EnergyModel::default());
            sim.run(&w.flows).expect("traffic drains")
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("oracle"), &w, |b, w| {
        b.iter(|| {
            let mut sim = CycleSim::new((w.topo)(), w.cfg, EnergyModel::default());
            sim.run(&w.flows).expect("traffic drains")
        });
    });
    group.finish();
}

/// Trace-overhead bench: the event engine with [`NocConfig::trace`] on
/// vs off over the dense point. Tracing is opt-in and must be zero-cost
/// when off (the `engine/*` groups above run untraced and their gated
/// ratios would catch a regression); this group tracks the cost when it
/// is *on* — `noc_trace_overhead` in `BENCH_noc.json`, ceiling-gated by
/// `scripts/verify.sh` so the hot loops never silently pick up
/// per-event work that makes tracing unusable on dense traffic.
fn bench_trace_overhead(c: &mut Criterion) {
    let w = engine_workloads()
        .into_iter()
        .find(|w| w.name == "dense_burst16")
        .expect("dense_burst16 workload exists");
    let traced_cfg = NocConfig {
        trace: true,
        ..w.cfg
    };
    let mut group = c.benchmark_group("trace/dense_burst16");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("off"), &w, |b, w| {
        b.iter(|| {
            let mut sim = NocSim::new((w.topo)(), w.cfg, EnergyModel::default());
            sim.run(&w.flows).expect("traffic drains")
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("on"), &w, |b, w| {
        b.iter(|| {
            let mut sim = NocSim::new((w.topo)(), traced_cfg, EnergyModel::default());
            sim.run(&w.flows).expect("traffic drains")
        });
    });
    group.finish();
}

/// Per-destination DOR routes vs Steiner multicast trees
/// ([`NocConfig::multicast_trees`]) on a 64-router mesh under fan-out-6
/// multicast — the `trees/mesh64_multicast` paired ratio in
/// `BENCH_noc.json`. Before timing, the tree configuration is
/// differentially gated (both engines must digest-match with trees on,
/// mirroring the `engine/*` groups) and trees must actually shed link
/// traffic relative to per-destination routes.
fn bench_tree_routing(c: &mut Criterion) {
    // clustered destinations (two corner blocks): dimension-order routes
    // reach each cluster through parallel columns, while the Steiner
    // attach rule rides one path into the cluster and fans out locally —
    // spread-out destinations would degenerate to the DOR union
    let flows: Vec<SpikeFlow> = (0..200u32)
        .map(|i| SpikeFlow::multicast(i, i % 64, vec![48, 54, 55, 56, 62, 63], i / 40))
        .collect();
    let per_dest = NocConfig {
        multicast: true,
        ..NocConfig::default()
    };
    let trees = NocConfig {
        multicast_trees: true,
        ..per_dest
    };
    let mesh = || -> Box<dyn Topology> { Box::new(Mesh2D::for_crossbars(64)) };
    let ev = {
        let mut event = NocSim::new(mesh(), trees, EnergyModel::default());
        let mut oracle = CycleSim::new(mesh(), trees, EnergyModel::default());
        let ev = event.run(&flows).expect("event engine drains");
        let or = oracle.run(&flows).expect("oracle drains");
        assert_eq!(
            ev.digest().unwrap(),
            or.digest().unwrap(),
            "trees/mesh64_multicast: engines diverge under tree routing — \
             benchmark numbers would be meaningless"
        );
        ev
    };
    let pd = NocSim::new(mesh(), per_dest, EnergyModel::default())
        .run(&flows)
        .expect("traffic drains");
    assert_eq!(
        ev.delivered, pd.delivered,
        "routing must not change deliveries"
    );
    assert!(
        ev.counters.link_flits < pd.counters.link_flits,
        "REGRESSION: Steiner trees must shed link traffic on fan-out-6 \
         multicast ({} !< {})",
        ev.counters.link_flits,
        pd.counters.link_flits
    );
    println!(
        "trees/mesh64_multicast: link flits {} -> {} ({:.1}% lower)",
        pd.counters.link_flits,
        ev.counters.link_flits,
        100.0 * (1.0 - ev.counters.link_flits as f64 / pd.counters.link_flits as f64)
    );
    let mut group = c.benchmark_group("trees/mesh64_multicast");
    group.sample_size(10);
    for (name, cfg) in [("perdest", per_dest), ("trees", trees)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &flows, |b, f| {
            b.iter(|| {
                let mut sim = NocSim::new(mesh(), cfg, EnergyModel::default());
                sim.run(f).expect("traffic drains")
            });
        });
    }
    group.finish();
}

type TopoFactory = fn() -> Box<dyn Topology>;

fn bench_topologies(c: &mut Criterion) {
    let flows = burst_traffic(16, 64, 20);
    let mut group = c.benchmark_group("noc_topology");
    group.sample_size(20);
    let make: Vec<(&str, TopoFactory)> = vec![
        ("mesh16", || Box::new(Mesh2D::for_crossbars(16))),
        ("tree16", || Box::new(NocTree::new(16, 4))),
        ("star16", || Box::new(Star::new(16))),
    ];
    for (name, mk) in make {
        group.bench_with_input(BenchmarkId::from_parameter(name), &flows, |b, f| {
            b.iter(|| {
                let mut sim = NocSim::new(mk(), NocConfig::default(), EnergyModel::default());
                sim.run(f).expect("traffic drains")
            });
        });
    }
    group.finish();
}

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_load");
    group.sample_size(20);
    for spikes_per_step in [16u32, 64, 256] {
        let flows = burst_traffic(16, spikes_per_step, 10);
        group.bench_with_input(
            BenchmarkId::from_parameter(spikes_per_step),
            &flows,
            |b, f| {
                b.iter(|| {
                    let mut sim = NocSim::new(
                        Box::new(Mesh2D::for_crossbars(16)),
                        NocConfig::default(),
                        EnergyModel::default(),
                    );
                    sim.run(f).expect("traffic drains")
                });
            },
        );
    }
    group.finish();
}

fn bench_multicast(c: &mut Criterion) {
    let flows: Vec<SpikeFlow> = (0..200u32)
        .map(|i| SpikeFlow::multicast(i, i % 16, vec![1, 3, 5, 7, 9, 11], i / 40))
        .collect();
    let mut group = c.benchmark_group("noc_multicast");
    group.sample_size(20);
    for (name, mc) in [("multicast", true), ("unicast", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &flows, |b, f| {
            let cfg = NocConfig {
                multicast: mc,
                ..NocConfig::default()
            };
            b.iter(|| {
                let mut sim =
                    NocSim::new(Box::new(NocTree::new(16, 4)), cfg, EnergyModel::default());
                sim.run(f).expect("traffic drains")
            });
        });
    }
    group.finish();
}

/// Oracle-vs-event median ratio for one engine group, if both ran.
fn speedup(c: &Criterion, group: &str) -> Option<f64> {
    let median = |id: String| {
        c.summaries()
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.median_ns)
    };
    let oracle = median(format!("{group}/oracle"))?;
    let event = median(format!("{group}/event"))?;
    (event > 0.0).then_some(oracle / event)
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    bench_engines(&mut c);
    bench_hier_engines(&mut c);
    bench_trace_overhead(&mut c);
    bench_tree_routing(&mut c);
    bench_topologies(&mut c);
    bench_load(&mut c);
    bench_multicast(&mut c);

    let sparse = speedup(&c, "engine/sparse_paper64");
    let moderate = speedup(&c, "engine/moderate_paper64");
    let dense = speedup(&c, "engine/dense_burst16");
    let engine_ratios: Vec<(String, Option<f64>)> = engine_workloads()
        .iter()
        .map(|w| {
            let group = format!("engine/{}", w.name);
            let s = speedup(&c, &group);
            (group, s)
        })
        .collect();
    for (group, s) in &engine_ratios {
        if let Some(s) = s {
            println!("event engine speedup over oracle, {group}: {s:.1}x");
        }
    }

    // machine-readable summary for cross-PR tracking
    let entries: Vec<String> = c
        .summaries()
        .iter()
        .map(|s| {
            format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}}}",
                s.id, s.median_ns, s.mean_ns, s.samples
            )
        })
        .collect();
    // same-run paired ratios (baseline = oracle, candidate = event): the
    // two engines run back to back in one process, so the ratio is
    // immune to the 1-core box's thermal throttling that pollutes
    // cross-PR absolute ns (ROADMAP caveat from PR 3). The top-level
    // `noc_*_speedup` keys are kept for backwards compatibility.
    // `higher_is_better` marks the good direction per entry: the engine
    // ratios are genuine speedups, while the trace and tree entries
    // record known-cost overheads that sit below 1 by design.
    let mut ratios: Vec<String> = engine_ratios
        .iter()
        .filter_map(|(group, speedup)| {
            speedup.map(|s| {
                format!(
                    "    {{\"id\": \"{group}\", \"baseline\": \"{group}/oracle\", \"candidate\": \"{group}/event\", \"speedup\": {s:.2}, \"higher_is_better\": true}}"
                )
            })
        })
        .collect();
    // multi-chip hierarchical fabric: same-run oracle-vs-event pair,
    // same shape as the flat engine ratios
    if let Some(s) = speedup(&c, "hier_engine/multichip64") {
        println!("event engine speedup over oracle, hier_engine/multichip64: {s:.1}x");
        ratios.push(format!(
            "    {{\"id\": \"hier_engine/multichip64\", \"baseline\": \"hier_engine/multichip64/oracle\", \"candidate\": \"hier_engine/multichip64/event\", \"speedup\": {s:.2}, \"higher_is_better\": true}}"
        ));
    }
    // trace overhead: same-run paired on/off medians of the event
    // engine on the dense point — on/off, so 1.00 means tracing is free
    // and the verify gate holds the ceiling
    let median = |id: &str| {
        c.summaries()
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.median_ns)
    };
    let trace_overhead = match (
        median("trace/dense_burst16/off"),
        median("trace/dense_burst16/on"),
    ) {
        (Some(off), Some(on)) if off > 0.0 => on / off,
        _ => 0.0,
    };
    if trace_overhead > 0.0 {
        println!("event engine trace overhead, trace/dense_burst16: {trace_overhead:.2}x");
        ratios.push(format!(
            "    {{\"id\": \"trace/dense_burst16\", \"baseline\": \"trace/dense_burst16/off\", \"candidate\": \"trace/dense_burst16/on\", \"speedup\": {:.2}, \"higher_is_better\": false}}",
            1.0 / trace_overhead
        ));
    }
    // tree routing: same-run paired per-dest vs Steiner-tree medians of
    // the event engine on the fan-out-6 multicast point — trees forward
    // fewer flits but pay for tree construction and per-hop table
    // lookups, so a speedup below 1 is expected; the ratio tracks that
    // overhead across PRs (the link-flit reduction is asserted above)
    if let (Some(pd), Some(tr)) = (
        median("trees/mesh64_multicast/perdest"),
        median("trees/mesh64_multicast/trees"),
    ) {
        if tr > 0.0 {
            let s = pd / tr;
            println!("tree-routing speedup over per-dest routes, trees/mesh64_multicast: {s:.2}x");
            ratios.push(format!(
                "    {{\"id\": \"trees/mesh64_multicast\", \"baseline\": \"trees/mesh64_multicast/perdest\", \"candidate\": \"trees/mesh64_multicast/trees\", \"speedup\": {s:.2}, \"higher_is_better\": false}}"
            ));
        }
    }
    let json = format!(
        "{{\n  \"noc_sparse_speedup\": {:.2},\n  \"noc_moderate_speedup\": {:.2},\n  \"noc_dense_speedup\": {:.2},\n  \"noc_trace_overhead\": {:.2},\n  \"ratios\": [\n{}\n  ],\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
        sparse.unwrap_or(0.0),
        moderate.unwrap_or(0.0),
        dense.unwrap_or(0.0),
        trace_overhead,
        ratios.join(",\n"),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_noc.json");
    std::fs::write(path, &json).expect("write BENCH_noc.json");
    println!("wrote BENCH_noc.json ({} entries)", c.summaries().len());
}
