//! Microbenchmark: interconnect simulation throughput across topologies,
//! load levels, and multicast settings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use neuromap_hw::energy::EnergyModel;
use neuromap_noc::config::NocConfig;
use neuromap_noc::sim::NocSim;
use neuromap_noc::topology::{Mesh2D, NocTree, Star, Topology};
use neuromap_noc::traffic::SpikeFlow;

fn burst_traffic(crossbars: u32, spikes_per_step: u32, steps: u32) -> Vec<SpikeFlow> {
    let mut flows = Vec::new();
    for step in 0..steps {
        for k in 0..spikes_per_step {
            let src = k % crossbars;
            let dst = (k + 1 + step) % crossbars;
            if src != dst {
                flows.push(SpikeFlow::unicast(k, src, dst, step));
            }
        }
    }
    flows
}

type TopoFactory = fn() -> Box<dyn Topology>;

fn bench_topologies(c: &mut Criterion) {
    let flows = burst_traffic(16, 64, 20);
    let mut group = c.benchmark_group("noc_topology");
    group.sample_size(20);
    let make: Vec<(&str, TopoFactory)> = vec![
        ("mesh16", || Box::new(Mesh2D::for_crossbars(16))),
        ("tree16", || Box::new(NocTree::new(16, 4))),
        ("star16", || Box::new(Star::new(16))),
    ];
    for (name, mk) in make {
        group.bench_with_input(BenchmarkId::from_parameter(name), &flows, |b, f| {
            b.iter(|| {
                let mut sim = NocSim::new(mk(), NocConfig::default(), EnergyModel::default());
                sim.run(f).expect("traffic drains")
            });
        });
    }
    group.finish();
}

fn bench_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc_load");
    group.sample_size(20);
    for spikes_per_step in [16u32, 64, 256] {
        let flows = burst_traffic(16, spikes_per_step, 10);
        group.bench_with_input(
            BenchmarkId::from_parameter(spikes_per_step),
            &flows,
            |b, f| {
                b.iter(|| {
                    let mut sim = NocSim::new(
                        Box::new(Mesh2D::for_crossbars(16)),
                        NocConfig::default(),
                        EnergyModel::default(),
                    );
                    sim.run(f).expect("traffic drains")
                });
            },
        );
    }
    group.finish();
}

fn bench_multicast(c: &mut Criterion) {
    let flows: Vec<SpikeFlow> = (0..200u32)
        .map(|i| SpikeFlow::multicast(i, i % 16, vec![1, 3, 5, 7, 9, 11], i / 40))
        .collect();
    let mut group = c.benchmark_group("noc_multicast");
    group.sample_size(20);
    for (name, mc) in [("multicast", true), ("unicast", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &flows, |b, f| {
            let cfg = NocConfig {
                multicast: mc,
                ..NocConfig::default()
            };
            b.iter(|| {
                let mut sim =
                    NocSim::new(Box::new(NocTree::new(16, 4)), cfg, EnergyModel::default());
                sim.run(f).expect("traffic drains")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topologies, bench_load, bench_multicast);
criterion_main!(benches);
