//! Evaluation-engine benchmarks: full recompute vs the incremental
//! per-candidate path vs the batched swarm path, at paper scale, plus an
//! end-to-end PSO timing — and the 256-crossbar `synth_16x16grid`
//! scenario, which **gates the batched envelope**: the bench aborts if
//! `SwarmEval` ever falls back to the per-candidate scalar path at 256
//! crossbars, so a regression fails CI loudly instead of silently
//! slowing down. Writes a `BENCH_eval.json` summary so the perf
//! trajectory is tracked across PRs (`scripts/verify.sh` diffs the key
//! set).
//!
//! Knobs:
//! * `NEUROMAP_BENCH_FAST=1` — 1-sample smoke run (CI gate);
//! * `NEUROMAP_BENCH_PAPER=1` — also time `PsoConfig::paper()`
//!   (swarm 1000 × 100 iterations) end to end on the synthetic workload.

use criterion::{black_box, BenchmarkId, Criterion};
use neuromap_apps::digit_recognition::DigitRecognition;
use neuromap_apps::synthetic::{LargeArch, MultiChip, Synthetic};
use neuromap_apps::App;
use neuromap_bench::{arch_for, SEED};
use neuromap_core::coopt::{co_optimize, CooptConfig};
use neuromap_core::eval::{EvalEngine, SwarmEval, SwarmKernel, SwarmScratch};
use neuromap_core::multilevel::{vcycle, MultilevelConfig};
use neuromap_core::partition::{FitnessKind, PartitionProblem};
use neuromap_core::pipeline::TrafficMode;
use neuromap_core::place::{optimize_placement, PlaceConfig, TrafficMatrix};
use neuromap_core::pso::{PsoConfig, PsoPartitioner};
use neuromap_core::SpikeGraph;
use neuromap_noc::topology::{DistanceLut, HierTopology, Mesh2D};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn workloads() -> Vec<(String, SpikeGraph)> {
    let synth = Synthetic::new(2, 400);
    let digit = DigitRecognition {
        presentations: 4,
        present_ms: 100,
        rest_ms: 25,
        ..DigitRecognition::default()
    };
    vec![
        (
            synth.name(),
            synth.spike_graph(SEED).expect("synthetic simulates"),
        ),
        (
            digit.name(),
            digit.spike_graph(SEED).expect("digit app simulates"),
        ),
    ]
}

/// Random positions for a swarm (capacity is irrelevant to evaluation
/// cost).
fn random_swarm(n: usize, c: usize, lanes: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..lanes * n).map(|_| rng.gen_range(0..c as u32)).collect()
}

fn bench_full_vs_incremental(c: &mut Criterion, name: &str, graph: &SpikeGraph) {
    let arch = arch_for(graph.num_neurons());
    let problem = PartitionProblem::new(graph, arch.num_crossbars(), arch.neurons_per_crossbar())
        .expect("feasible");
    let n = graph.num_neurons() as usize;
    let nc = arch.num_crossbars();
    let mut group = c.benchmark_group(format!("move/{name}"));
    group.sample_size(10);
    for kind in [FitnessKind::CutSpikes, FitnessKind::CutPackets] {
        let tag = format!("{kind:?}");
        // full recompute per move (what the seed optimizers paid)
        group.bench_with_input(BenchmarkId::new("full", &tag), &kind, |b, &kind| {
            let a: Vec<u32> = (0..n).map(|i| (i % nc) as u32).collect();
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % n;
                let mut m = a.clone();
                m[i] = (m[i] + 1) % nc as u32;
                black_box(problem.cost(kind, &m))
            });
        });
        // O(deg) incremental move through the engine
        group.bench_with_input(BenchmarkId::new("incremental", &tag), &kind, |b, &kind| {
            let engine = EvalEngine::new(problem, kind);
            let mut a: Vec<u32> = (0..n).map(|i| (i % nc) as u32).collect();
            let mut state = engine.init(&a);
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % n;
                let to = (a[i] + 1) % nc as u32;
                black_box(engine.apply_move(&mut state, &mut a, i, to))
            });
        });
    }
    group.finish();
}

fn bench_swarm_eval(c: &mut Criterion, name: &str, graph: &SpikeGraph) {
    let arch = arch_for(graph.num_neurons());
    let problem = PartitionProblem::new(graph, arch.num_crossbars(), arch.neurons_per_crossbar())
        .expect("feasible");
    bench_swarm_eval_on(c, name, &problem, 100);
}

/// Scalar-vs-batched swarm scoring on an explicit problem instance.
fn bench_swarm_eval_on(
    c: &mut Criterion,
    name: &str,
    problem: &PartitionProblem<'_>,
    lanes: usize,
) {
    let n = problem.graph().num_neurons() as usize;
    let positions = random_swarm(n, problem.num_crossbars(), lanes, 7);
    let mut group = c.benchmark_group(format!("swarm_eval/{name}"));
    group.sample_size(10);
    for kind in [FitnessKind::CutSpikes, FitnessKind::CutPackets] {
        let tag = format!("{kind:?}");
        // per-candidate scalar loop (the seed's evaluation strategy)
        group.bench_with_input(BenchmarkId::new("scalar", &tag), &kind, |b, &kind| {
            b.iter(|| {
                let mut acc = 0u64;
                for lane in 0..lanes {
                    acc ^= problem.cost(kind, &positions[lane * n..(lane + 1) * n]);
                }
                black_box(acc)
            });
        });
        // batched neuron-major tiles
        group.bench_with_input(BenchmarkId::new("batched", &tag), &kind, |b, &kind| {
            let evaluator = SwarmEval::new(*problem, kind);
            let mut scratch = SwarmScratch::default();
            let mut out = vec![0u64; lanes];
            b.iter(|| {
                evaluator.eval_swarm(&positions, lanes, &mut scratch, &mut out);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

/// The 256-crossbar large-architecture scenario: envelope gate + timings.
///
/// The scenario's trajectory in `BENCH_eval.json` is the regression
/// record for the multi-word batched evaluator and the fused
/// decode/repair kernel; before timing anything the bench *asserts* that
/// the tiled path still covers 256 crossbars for both objectives.
fn bench_large_arch(c: &mut Criterion) {
    let scenario = LargeArch::grid16();
    let graph = scenario.spike_graph(SEED).expect("scenario builds");
    let problem = PartitionProblem::new(&graph, scenario.num_crossbars(), scenario.capacity())
        .expect("feasible");
    let name = scenario.name();

    // ---- envelope gate (fail loudly, do not time a regression) ----
    // the hop-aware objective carries the mesh's hop table; like the
    // other objectives it must stay on the batched byte-tile path at the
    // full 256-crossbar envelope
    let lut = DistanceLut::new(&Mesh2D::for_crossbars(scenario.num_crossbars()));
    let problem_hops = problem.with_hops(&lut).expect("lut covers the arch");
    for (kind, p) in [
        (FitnessKind::CutSpikes, &problem),
        (FitnessKind::CutPackets, &problem),
        (FitnessKind::CutHops, &problem_hops),
    ] {
        let evaluator = SwarmEval::new(*p, kind);
        assert_eq!(
            evaluator.kernel(),
            SwarmKernel::ByteTile,
            "REGRESSION: SwarmEval must run the byte-tile kernel for {kind:?} \
             at {} crossbars, not {}",
            scenario.num_crossbars(),
            evaluator.kernel()
        );
    }
    assert_eq!(
        SwarmEval::new(problem, FitnessKind::CutPackets).mask_words(),
        4,
        "256 crossbars must use the 4-word mask stride"
    );

    bench_swarm_eval_on(c, &name, &problem, 64);

    // hop-weighted scoring: scalar per-candidate scan vs the weighted
    // byte-tile reduction, same group/key shape as the other objectives
    {
        let lanes = 64;
        let n = problem_hops.graph().num_neurons() as usize;
        let positions = random_swarm(n, problem_hops.num_crossbars(), lanes, 7);
        let mut group = c.benchmark_group(format!("swarm_eval/{name}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("scalar", "CutHops"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for lane in 0..lanes {
                    acc ^= problem_hops.cut_hops(&positions[lane * n..(lane + 1) * n]);
                }
                black_box(acc)
            });
        });
        group.bench_function(BenchmarkId::new("batched", "CutHops"), |b| {
            let evaluator = SwarmEval::new(problem_hops, FitnessKind::CutHops);
            let mut scratch = SwarmScratch::default();
            let mut out = vec![0u64; lanes];
            b.iter(|| {
                evaluator.eval_swarm(&positions, lanes, &mut scratch, &mut out);
                black_box(out[0])
            });
        });
        group.finish();
    }

    // ---- placement stage on the 256-crossbar scenario ----
    // a packed partition with scrambled cluster ids: the contents of each
    // cluster are grid-local, but identity placement scatters them across
    // the mesh — exactly the situation the placement stage must repair
    bench_placement(c, &name, &graph, &scenario, &lut);

    // full PSO steps (fused decode + repair + batched evaluation)
    let mut group = c.benchmark_group(format!("pso_step/{name}"));
    group.sample_size(10);
    for kind in [FitnessKind::CutSpikes, FitnessKind::CutPackets] {
        let tag = format!("swarm40_iters4/{kind:?}");
        group.bench_with_input(BenchmarkId::from(tag), &kind, |b, &kind| {
            let pso = PsoPartitioner::new(PsoConfig {
                swarm_size: 40,
                iterations: 4,
                fitness: kind,
                seed_baselines: false,
                polish_passes: 0,
                threads: 1,
                ..PsoConfig::default()
            });
            b.iter(|| pso.partition_traced(&problem).expect("feasible"));
        });
    }
    group.finish();
}

/// Times the placement optimizer on the 256-crossbar scenario and gates
/// its quality: the optimized permutation must price strictly below
/// identity on the scrambled-cluster traffic.
fn bench_placement(
    c: &mut Criterion,
    name: &str,
    graph: &SpikeGraph,
    scenario: &LargeArch,
    lut: &DistanceLut,
) {
    let mapping = scenario.scrambled_packed_mapping(0x91A);
    let traffic = TrafficMatrix::from_mapping(graph, &mapping, TrafficMode::PerCrossbar);
    // two restarts keep the timed call representative (identity-greedy +
    // one annealed chain) without making the smoke run minutes long
    let cfg = PlaceConfig {
        threads: 1,
        restarts: 2,
        ..PlaceConfig::default()
    };
    let outcome = optimize_placement(&traffic, lut, &cfg).expect("valid config");
    assert!(
        outcome.optimized_cost < outcome.identity_cost,
        "REGRESSION: placement must beat identity on scrambled clusters \
         ({} !< {})",
        outcome.optimized_cost,
        outcome.identity_cost
    );
    println!(
        "placement/{name}: hop-weighted packets {} -> {} ({:.1}% lower)",
        outcome.identity_cost,
        outcome.optimized_cost,
        100.0 * outcome.relative_gain()
    );
    let mut group = c.benchmark_group(format!("placement/{name}"));
    group.sample_size(10);
    group.bench_function("optimize", |b| {
        b.iter(|| optimize_placement(&traffic, lut, &cfg).expect("valid config"));
    });
    group.finish();
}

/// Staged partition-then-place vs the joint partition ⇄ placement loop
/// (`core::coopt`) on the 64-crossbar scenario, same hop-priced PSO
/// budget and placement optimizer on both sides. The paired
/// `coopt/synth_8x8grid/CutHops` ratio in `BENCH_eval.json` records the
/// joint loop's same-run time-overhead factor (speedup < 1 is expected:
/// the loop re-runs the placement optimizer every `replace_every`
/// iterations). The quality side is *asserted*, not timed — the joint
/// result must never price worse than its own staged fallback.
fn bench_coopt(c: &mut Criterion) {
    let scenario = LargeArch {
        side: 8,
        neurons_per_crossbar: 8,
        synapses_per_neuron: 24,
        fill_percent: 85,
    };
    let graph = scenario.spike_graph(SEED).expect("scenario builds");
    let lut = DistanceLut::new(&Mesh2D::for_crossbars(scenario.num_crossbars()));
    let problem = PartitionProblem::new(&graph, scenario.num_crossbars(), scenario.capacity())
        .expect("feasible")
        .with_hops(&lut)
        .expect("lut covers the arch");
    let cfg = CooptConfig {
        pso: PsoConfig {
            swarm_size: 8,
            iterations: 8,
            fitness: FitnessKind::CutHops,
            seed_baselines: false,
            polish_passes: 1,
            threads: 1,
            seed: SEED,
            ..PsoConfig::default()
        },
        place: PlaceConfig {
            threads: 1,
            restarts: 2,
            ..PlaceConfig::default()
        },
        replace_every: 2,
        multilevel: None,
    };
    let out =
        co_optimize(&problem, &lut, TrafficMode::PerCrossbar, &cfg).expect("scenario co-optimizes");
    assert!(
        out.joint_cost <= out.staged_cost || !out.used_joint,
        "REGRESSION: co_optimize returned a joint result pricing worse than \
         its staged fallback ({} > {})",
        out.joint_cost,
        out.staged_cost
    );
    println!(
        "coopt/{}: hop-weighted packets staged {} / joint {} (used joint: {})",
        scenario.name(),
        out.staged_cost,
        out.joint_cost,
        out.used_joint
    );
    let mut group = c.benchmark_group(format!("coopt/{}", scenario.name()));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("staged", "CutHops"), |b| {
        let pso = PsoPartitioner::new(cfg.pso);
        b.iter(|| {
            let (m, _) = pso.partition_traced(&problem).expect("feasible");
            let traffic = TrafficMatrix::from_mapping(&graph, &m, TrafficMode::PerCrossbar);
            optimize_placement(&traffic, &lut, &cfg.place).expect("valid config")
        });
    });
    group.bench_function(BenchmarkId::new("joint", "CutHops"), |b| {
        b.iter(|| {
            co_optimize(&problem, &lut, TrafficMode::PerCrossbar, &cfg)
                .expect("scenario co-optimizes")
        });
    });
    group.finish();
}

/// Flat PSO vs the multilevel V-cycle on the 1024-crossbar
/// `synth_32x32grid` scenario — the `multilevel/*` paired ratio in
/// `BENCH_eval.json`, floor-gated by `scripts/verify.sh`.
///
/// At 1024 crossbars the batched evaluator's byte-tile envelope is
/// exceeded, so flat PSO pays the scalar per-candidate path *and* a
/// dense `n × c` velocity field per particle (~28 MB each) — the regime
/// the multilevel coarsen–partition–refine path exists for. Both sides
/// get the same seed and objective; the quality side is *asserted*, not
/// timed: the V-cycle's final cut must never price worse than the flat
/// swarm's, so the timed ratio is a genuine equal-or-better-quality
/// speedup rather than a quality trade.
fn bench_multilevel(c: &mut Criterion) {
    let scenario = LargeArch::grid32();
    let graph = scenario.spike_graph(SEED).expect("scenario builds");
    let problem = PartitionProblem::new(&graph, scenario.num_crossbars(), scenario.capacity())
        .expect("feasible");
    // both sides search with the *identical* swarm configuration — the
    // V-cycle simply runs it on the ~8x-smaller coarsest graph and
    // spends the savings on O(deg) boundary refinement; even this small
    // budget (8 particles x 8 iterations) costs flat PSO seconds per run
    // at 1024 crossbars, so a paper-scale flat budget would take hours
    let swarm_cfg = PsoConfig {
        swarm_size: 8,
        iterations: 8,
        fitness: FitnessKind::CutSpikes,
        seed_baselines: false,
        polish_passes: 0,
        threads: 1,
        seed: SEED,
        ..PsoConfig::default()
    };
    let flat_cfg = swarm_cfg;
    let ml_cfg = MultilevelConfig {
        pso: swarm_cfg,
        threads: 1,
        ..MultilevelConfig::default()
    };

    // ---- quality gate (fail loudly, do not time a quality trade) ----
    let (flat_map, _) = PsoPartitioner::new(flat_cfg)
        .partition_traced(&problem)
        .expect("feasible");
    let flat_cut = problem.cut_spikes(flat_map.assignment());
    let out = vcycle(&problem, &ml_cfg).expect("vcycle runs");
    assert!(
        out.cost <= flat_cut,
        "REGRESSION: the V-cycle must match or beat flat PSO's cut at this \
         budget ({} !<= {})",
        out.cost,
        flat_cut
    );
    println!(
        "multilevel/{}: cut-spikes flat {} / vcycle {} ({} levels, projection won: {})",
        scenario.name(),
        flat_cut,
        out.cost,
        out.levels.len(),
        out.used_projection
    );

    let mut group = c.benchmark_group(format!("multilevel/{}", scenario.name()));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("flat", "CutSpikes"), |b| {
        let pso = PsoPartitioner::new(flat_cfg);
        b.iter(|| pso.partition_traced(&problem).expect("feasible"));
    });
    group.bench_function(BenchmarkId::new("vcycle", "CutSpikes"), |b| {
        b.iter(|| vcycle(&problem, &ml_cfg).expect("vcycle runs"));
    });
    group.finish();
}

/// The 1024-crossbar multi-chip scenario (`synth_4chip16x16`): u16
/// word-tile envelope gate + batched-vs-scalar timings behind the
/// `hier/*` paired ratios in `BENCH_eval.json` (floor-gated ≥ 2× by
/// `scripts/verify.sh`).
///
/// Before timing anything the bench *asserts which kernel actually
/// runs* — [`SwarmEval::kernel`] must report the u16 word-tile for all
/// three objectives at 1024 crossbars — and spot-checks the batched
/// costs bit-identical against the scalar reference on the real
/// scenario, so a silent fallback or a kernel divergence fails CI
/// loudly instead of being timed as if nothing happened.
fn bench_hier(c: &mut Criterion) {
    let scenario = MultiChip::four_chip16();
    let graph = scenario.spike_graph(SEED).expect("scenario builds");
    let problem = PartitionProblem::new(&graph, scenario.num_crossbars(), scenario.capacity())
        .expect("feasible");
    let name = scenario.name();

    // hop-aware objective under the fabric's *weighted* distances:
    // chip-boundary hops priced latency × width
    let topo = HierTopology::for_crossbars(
        scenario.num_crossbars(),
        scenario.chip_cols as usize,
        scenario.chip_rows as usize,
        scenario.link_latency,
        scenario.link_width,
    )
    .expect("scenario parameters are valid");
    let lut = topo.distance_lut();
    let problem_hops = problem.with_hops(&lut).expect("lut covers the arch");
    let objectives = [
        (FitnessKind::CutSpikes, &problem),
        (FitnessKind::CutPackets, &problem),
        (FitnessKind::CutHops, &problem_hops),
    ];

    // ---- kernel gate (fail loudly, do not time a fallback) ----
    for (kind, p) in objectives {
        let evaluator = SwarmEval::new(*p, kind);
        assert_eq!(
            evaluator.kernel(),
            SwarmKernel::WordTile,
            "REGRESSION: SwarmEval must run the u16 word-tile kernel for \
             {kind:?} at {} crossbars, not {}",
            scenario.num_crossbars(),
            evaluator.kernel()
        );
    }

    // ---- bit-identity spot check on the actual scenario ----
    let lanes = 64;
    let n = graph.num_neurons() as usize;
    let positions = random_swarm(n, problem.num_crossbars(), lanes, 7);
    for (kind, p) in objectives {
        let evaluator = SwarmEval::new(*p, kind);
        let mut scratch = SwarmScratch::default();
        let mut out = vec![0u64; lanes];
        evaluator.eval_swarm(&positions, lanes, &mut scratch, &mut out);
        for lane in 0..lanes {
            assert_eq!(
                out[lane],
                p.cost(kind, &positions[lane * n..(lane + 1) * n]),
                "word-tile diverges from the scalar reference for {kind:?} lane {lane}"
            );
        }
    }

    // scalar vs batched timings; `paired_ratios` pairs the ids into the
    // `hier/synth_4chip16x16/<kind>` ratios
    let mut group = c.benchmark_group(format!("hier/{name}"));
    group.sample_size(10);
    for (kind, p) in objectives {
        let tag = format!("{kind:?}");
        group.bench_with_input(BenchmarkId::new("scalar", &tag), &kind, |b, &kind| {
            b.iter(|| {
                let mut acc = 0u64;
                for lane in 0..lanes {
                    acc ^= p.cost(kind, &positions[lane * n..(lane + 1) * n]);
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", &tag), &kind, |b, &kind| {
            let evaluator = SwarmEval::new(*p, kind);
            let mut scratch = SwarmScratch::default();
            let mut out = vec![0u64; lanes];
            b.iter(|| {
                evaluator.eval_swarm(&positions, lanes, &mut scratch, &mut out);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

fn bench_pso_step(c: &mut Criterion, name: &str, graph: &SpikeGraph) {
    let arch = arch_for(graph.num_neurons());
    let problem = PartitionProblem::new(graph, arch.num_crossbars(), arch.neurons_per_crossbar())
        .expect("feasible");
    let mut group = c.benchmark_group(format!("pso_step/{name}"));
    group.sample_size(10);
    // swarm 100 × 10 iterations ≈ 1/100th of a paper-scale run
    group.bench_function("swarm100_iters10", |b| {
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 100,
            iterations: 10,
            seed_baselines: false,
            polish_passes: 0,
            ..PsoConfig::default()
        });
        b.iter(|| pso.partition_traced(&problem).expect("feasible"));
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    let apps = workloads();
    for (name, graph) in &apps {
        bench_full_vs_incremental(&mut c, name, graph);
        bench_swarm_eval(&mut c, name, graph);
        bench_pso_step(&mut c, name, graph);
    }

    // 16 × 16 = 256 crossbars: the multi-word envelope, gated + timed
    bench_large_arch(&mut c);

    // joint partition ⇄ placement loop vs its staged fallback (64 crossbars)
    bench_coopt(&mut c);

    // 32 × 32 = 1024 crossbars: flat PSO vs the multilevel V-cycle
    bench_multilevel(&mut c);

    // 2 × 2 chips × (16 × 16) = 1024 crossbars: the u16 word-tile
    // envelope on the multi-chip scenario, gated + timed
    bench_hier(&mut c);

    // end-to-end paper-scale run (slow; opt-in)
    let mut paper_seconds: Option<f64> = None;
    if std::env::var("NEUROMAP_BENCH_PAPER")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        let (name, graph) = &apps[0];
        let arch = arch_for(graph.num_neurons());
        let problem =
            PartitionProblem::new(graph, arch.num_crossbars(), arch.neurons_per_crossbar())
                .expect("feasible");
        let start = Instant::now();
        let pso = PsoPartitioner::new(PsoConfig::paper());
        let (m, _) = pso.partition_traced(&problem).expect("feasible");
        let secs = start.elapsed().as_secs_f64();
        println!(
            "paper-scale PSO ({name}, swarm 1000 x 100 iters): {secs:.2} s, cut spikes {}",
            problem.cut_spikes(m.assignment())
        );
        paper_seconds = Some(secs);
    }

    // machine-readable summary for cross-PR tracking
    let mut entries: Vec<String> = c
        .summaries()
        .iter()
        .map(|s| {
            format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}}}",
                s.id, s.median_ns, s.mean_ns, s.samples
            )
        })
        .collect();
    if let Some(secs) = paper_seconds {
        entries.push(format!(
            "    {{\"id\": \"pso_paper_end_to_end\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": 1}}",
            secs * 1e9,
            secs * 1e9
        ));
    }
    // same-run paired ratios: baseline and candidate are measured back to
    // back in one process, so the ratio is immune to the 1-core box's
    // thermal throttling that makes cross-PR *absolute* ns unreliable
    // (ROADMAP caveat from PR 3) — cross-PR reads should compare these
    let ratios = paired_ratios(&c);
    let json = format!(
        "{{\n  \"ratios\": [\n{}\n  ],\n  \"benchmarks\": [\n{}\n  ]\n}}\n",
        ratios.join(",\n"),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    std::fs::write(path, &json).expect("write BENCH_eval.json");
    println!("wrote BENCH_eval.json ({} entries)", c.summaries().len());
}

/// Builds `{id, baseline, candidate, speedup, higher_is_better}`
/// entries for every same-run baseline/candidate pair: `scalar` vs
/// `batched` swarm scoring, `full` vs `incremental` move pricing, `flat`
/// vs `vcycle` multilevel partitioning, and `staged` vs `joint`
/// co-optimization. `higher_is_better` tells readers (and the verify
/// gate) which direction is good: the coopt pair deliberately records
/// the joint loop's *time overhead*, so its speedup sits below 1 by
/// design and a naive "bigger is better" read would misfire.
fn paired_ratios(c: &Criterion) -> Vec<String> {
    const PAIRS: [(&str, &str, bool); 4] = [
        ("/scalar/", "/batched/", true),
        ("/full/", "/incremental/", true),
        ("/flat/", "/vcycle/", true),
        ("/staged/", "/joint/", false),
    ];
    let median = |id: &str| {
        c.summaries()
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.median_ns)
    };
    let mut out = Vec::new();
    for s in c.summaries() {
        for (base_marker, cand_marker, higher_is_better) in PAIRS {
            if !s.id.contains(base_marker) {
                continue;
            }
            let cand_id = s.id.replace(base_marker, cand_marker);
            let Some(cand) = median(&cand_id) else {
                continue;
            };
            if cand <= 0.0 {
                continue;
            }
            out.push(format!(
                "    {{\"id\": \"{}\", \"baseline\": \"{}\", \"candidate\": \"{}\", \"speedup\": {:.2}, \"higher_is_better\": {}}}",
                s.id.replace(base_marker, "/"),
                s.id,
                cand_id,
                s.median_ns / cand,
                higher_is_better
            ));
        }
    }
    out
}
