//! Congestion-spotter smoke gate (run by `scripts/verify.sh` and CI):
//! on the saturating `dense_burst16` workload the spotter must actually
//! find congestion — depth-4 FIFOs under 256 spikes/step guarantee
//! credit stalls, so an empty report means the trace layer or the
//! spotter's accumulation broke, not that the network is calm.

use neuromap_bench::noc_workloads::engine_workloads;
use neuromap_hw::energy::EnergyModel;
use neuromap_noc::config::NocConfig;
use neuromap_noc::sim::NocSim;

#[test]
fn spotter_finds_congested_lanes_on_dense_burst16() {
    let w = engine_workloads()
        .into_iter()
        .find(|w| w.name == "dense_burst16")
        .expect("dense_burst16 workload exists");
    let cfg = NocConfig {
        trace: true,
        ..w.cfg
    };
    let duration = w.flows.iter().map(|f| f.send_step + 1).max().unwrap_or(1);
    let mut sim = NocSim::new((w.topo)(), cfg, EnergyModel::default());
    sim.run_with_duration(&w.flows, duration)
        .expect("dense burst drains");
    let trace = sim.take_trace().expect("tracing was on");
    let report = trace.spot_congestion(4, 2);

    assert!(
        !report.lanes.is_empty(),
        "dense_burst16 saturates depth-4 FIFOs — the spotter must find blocked lanes"
    );
    let top = &report.lanes[0];
    assert!(top.blocked_cycles > 0, "top lane must have credit stalls");
    assert!(
        top.peak_occupancy as usize == w.cfg.buffer_depth,
        "a saturated lane should hit the FIFO depth ({}), got {}",
        w.cfg.buffer_depth,
        top.peak_occupancy
    );
    assert!(
        !top.top_flows.is_empty(),
        "the spotter must name the flows dominating the hot lane"
    );
    // ranking invariant: non-increasing blocked-cycles down the list
    for pair in report.lanes.windows(2) {
        assert!(pair[0].blocked_cycles >= pair[1].blocked_cycles);
    }
}
