//! Per-(router, output-port) wake scheduling for the event engine.
//!
//! [`PortSched`] is the indexed ready-set that replaced [`crate::sim::NocSim`]'s
//! original global wake heap. Every output port of every router gets a
//! dense *pair id* (`port_base[r] + o`), ordered exactly like the
//! oracle's sweep (routers ascending, ports in neighbor order), and three
//! structures drive the clock:
//!
//! * a **ready bitset** of pair ids due this cycle, walked by a scan
//!   cursor — membership is the bit itself, so waking an already-queued
//!   pair is a no-op and the ready set is bounded by the total pair count
//!   however saturated the traffic gets. Pops are strictly ascending
//!   within a cycle (in-sweep wakes only ever target pairs ahead of the
//!   cursor), so a find-first-set word walk replaces a binary heap: in
//!   the dense regime, where nearly every pair is ready every cycle,
//!   examining a pair costs two bit operations instead of an
//!   `O(log pairs)` sift;
//! * a **next-cycle wake list** for triggers that target a pair the sweep
//!   already passed this cycle (the oracle would only see the change at
//!   `now + 1`);
//! * a **busy-expiry queue** of `(cycle, pair)` entries, one per forward —
//!   a draining port re-enqueues only itself, never a whole router. The
//!   queue arrives cycle-sorted for free: every expiry is scheduled at
//!   `now + flits` for a constant flit count.
//!
//! On top of the wake queues the scheduler keeps the persistent head
//! state the sweep used to recompute from scratch: per FIFO lane, the
//! bitmask of `(output port, VC)` slots its head packet wants (bit
//! `o * vcs + w`, variable-width so arbitrary-degree topologies fit), a
//! per-(pair, VC) count of heads wanting that slot (O(1) eligibility),
//! and a **blocked** bit per (pair, VC) — the wanted-port reverse index:
//! set when an idle sweep finds a head wanting a credit-full downstream
//! lane, so the credit release wakes exactly the pairs that were waiting
//! on it.
//!
//! See the [`crate::sim`] module docs for why this wake set covers every
//! cycle at which the cycle-driven oracle can make progress.

use std::collections::VecDeque;

use crate::stats::SchedCounters;

/// Sentinel pair id for "no upstream pair" (local-injection lanes).
const NO_PAIR: u32 = u32::MAX;

/// Per-spike multicast-tree routing table: for every spike and every
/// router on one of its destinations' tree paths, the `(egress port, VC)`
/// bit that destination's path takes out of the router
/// ([`crate::topology::Topology::multicast_route`]).
///
/// Built once per run by `sim::build_tree_table` (only when multicast
/// *and* tree routing are enabled — in that mode spike ids are dense
/// `0..schedule.len()`, each appearing exactly once) and consumed by both
/// engines, which is what keeps them byte-identical under tree routing.
/// Entries are keyed `(router << 32) | dest_crossbar` and sorted per
/// spike, so a lookup is a binary search over that spike's slice.
#[derive(Debug, Clone)]
pub(crate) struct TreeTable {
    /// Per-spike slice bounds into `entries` (`offsets.len()` = spikes + 1).
    offsets: Vec<u32>,
    /// Sorted `((router << 32) | dest, (port, VC) bit)` entries per spike.
    entries: Vec<(u64, u16)>,
}

impl TreeTable {
    /// Assembles the table from per-spike entry lists; each list is
    /// sorted and deduplicated here (duplicate destinations in a packet
    /// produce identical entries).
    pub(crate) fn from_spikes(per_spike: Vec<Vec<(u64, u16)>>) -> Self {
        let mut offsets = Vec::with_capacity(per_spike.len() + 1);
        let mut entries = Vec::new();
        offsets.push(0u32);
        for mut spike_entries in per_spike {
            spike_entries.sort_unstable();
            spike_entries.dedup();
            entries.extend_from_slice(&spike_entries);
            offsets.push(entries.len() as u32);
        }
        Self { offsets, entries }
    }

    /// The `(port, VC)` bit destination `d` of spike `spike` takes out of
    /// router `r`.
    ///
    /// # Panics
    ///
    /// Panics if the spike's tree has no entry for `(r, d)` — a packet
    /// only ever holds destination `d` at routers on `d`'s tree path
    /// (splits follow the bits, which follow the paths), so a miss means
    /// the table and the simulation disagree.
    pub(crate) fn bit(&self, spike: u64, r: usize, d: u32) -> usize {
        let s = spike as usize;
        let slice = &self.entries[self.offsets[s] as usize..self.offsets[s + 1] as usize];
        let key = (r as u64) << 32 | u64::from(d);
        let i = slice
            .binary_search_by_key(&key, |&(k, _)| k)
            .unwrap_or_else(|_| panic!("spike {spike} holds dest {d} off its tree at router {r}"));
        slice[i].1 as usize
    }
}

/// Wake position meaning "before the sweep started": every woken pair is
/// still ahead, so all wakes go to the ready heap.
pub(crate) const PRE_SWEEP: u32 = 0;

fn bit_test(bits: &[u64], i: usize) -> bool {
    bits[i / 64] & (1 << (i % 64)) != 0
}

fn bit_set(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1 << (i % 64);
}

fn bit_clear(bits: &mut [u64], i: usize) {
    bits[i / 64] &= !(1 << (i % 64));
}

/// The per-(router, output-port) wake scheduler (see the module docs).
pub(crate) struct PortSched {
    vcs: usize,
    nc: usize,
    /// Pair id of router `r`'s port 0; last entry = total pair count.
    port_base: Vec<u32>,
    /// Router owning each pair id.
    router_of: Vec<u32>,
    /// Flat lane-slot base per router (slot = `lane_base[r] + fi`).
    lane_base: Vec<u32>,
    /// 64-bit words per lane head mask, per router.
    mask_words: Vec<u32>,
    /// Word offset of router `r`'s lane-0 mask.
    mask_base: Vec<u32>,
    /// Wanted-(port, VC) bitmask per lane head (zero for empty lanes).
    head_mask: Vec<u64>,
    /// Inject cycle of each lane head (arbitration tiebreak input).
    head_inject: Vec<u64>,
    /// Heads currently wanting `(pair, w)`, indexed `pair * vcs + w`.
    want: Vec<u32>,
    /// Blocked bit per `(pair, w)`: a head wants it but the downstream
    /// lane was credit-full at the pair's last idle sweep.
    blocked: Vec<u64>,
    /// Upstream pair feeding each ingress lane slot (`NO_PAIR` for the
    /// local-injection lane 0).
    ups_pair: Vec<u32>,
    /// Flattened `(router, dest crossbar) → wanted bit` routing table:
    /// one load replaces a route-LUT walk plus a VC-table walk per dest.
    dest_bit: Vec<u16>,
    /// Per-spike tree routing table overriding `dest_bit` when multicast
    /// tree routing is enabled (`None` otherwise — the unicast-route
    /// bit layout stays untouched).
    tree: Option<TreeTable>,
    /// Ready-set bitset (bit = pair id is due this cycle).
    ready: Vec<u64>,
    /// Word index the ascending ready scan has reached this cycle.
    scan: usize,
    /// Set bits in `ready` (peak-tracking only).
    ready_len: u32,
    next_wakes: Vec<u32>,
    in_next: Vec<u64>,
    /// Busy-port expiries, at most one live entry per pair (a busy port
    /// cannot forward again before its expiry fires). Every forward
    /// schedules its expiry at `now + flits` with `now` nondecreasing, so
    /// entries arrive cycle-sorted and a plain queue suffices.
    expiries: VecDeque<(u64, u32)>,
    last_router: u32,
    pub(crate) counters: SchedCounters,
}

impl PortSched {
    /// Builds the scheduler over the router graph. `ports[r]` lists
    /// router `r`'s egress ports as `(neighbor, our position on the
    /// neighbor)`; `dest_bit[r * nc + k]` is the `(egress port, VC)` bit
    /// a head at `r` wants for destination crossbar `k` (entries for
    /// locally hosted crossbars are never read); `tree` overrides the
    /// per-destination bits per spike under multicast tree routing.
    pub(crate) fn new(
        ports: &[Vec<(usize, usize)>],
        vcs: usize,
        dest_bit: Vec<u16>,
        nc: usize,
        tree: Option<TreeTable>,
    ) -> Self {
        let nr = ports.len();
        let mut port_base = Vec::with_capacity(nr + 1);
        let mut lane_base = Vec::with_capacity(nr + 1);
        let mut mask_words = Vec::with_capacity(nr);
        let mut mask_base = Vec::with_capacity(nr);
        let (mut pairs, mut lanes, mut words) = (0u32, 0u32, 0u32);
        for p in ports {
            let deg = p.len();
            let nf = 1 + deg * vcs;
            port_base.push(pairs);
            lane_base.push(lanes);
            mask_base.push(words);
            let w = ((deg * vcs).max(1)).div_ceil(64) as u32;
            mask_words.push(w);
            pairs += deg as u32;
            lanes += nf as u32;
            words += nf as u32 * w;
        }
        port_base.push(pairs);
        lane_base.push(lanes);

        let mut router_of = vec![0u32; pairs as usize];
        let mut ups_pair = vec![NO_PAIR; lanes as usize];
        for (r, p) in ports.iter().enumerate() {
            for o in 0..p.len() {
                router_of[(port_base[r] + o as u32) as usize] = r as u32;
            }
            // the lane block of our ingress port `pos` is fed by that
            // neighbor's egress pair pointing back at us
            for (pos, &(nbr, _)) in p.iter().enumerate() {
                let up = port_base[nbr]
                    + ports[nbr]
                        .iter()
                        .position(|&(x, _)| x == r)
                        .expect("links are bidirectional") as u32;
                for w in 0..vcs {
                    ups_pair[(lane_base[r] + 1 + (pos * vcs + w) as u32) as usize] = up;
                }
            }
        }

        let p = pairs as usize;
        Self {
            vcs,
            nc,
            port_base,
            router_of,
            lane_base,
            mask_words,
            mask_base,
            head_mask: vec![0; words as usize],
            head_inject: vec![0; lanes as usize],
            want: vec![0; p * vcs],
            blocked: vec![0; (p * vcs).div_ceil(64).max(1)],
            ups_pair,
            dest_bit,
            tree,
            ready: vec![0; p.div_ceil(64).max(1)],
            scan: 0,
            ready_len: 0,
            next_wakes: Vec::new(),
            in_next: vec![0; p.div_ceil(64).max(1)],
            expiries: VecDeque::new(),
            last_router: u32::MAX,
            counters: SchedCounters::default(),
        }
    }

    /// Total (router, output-port) pair count.
    #[cfg(test)]
    pub(crate) fn total_pairs(&self) -> u32 {
        *self.port_base.last().expect("non-empty")
    }

    /// The `(output port, VC)` bit a head of spike `spike` at router `r`
    /// wants for destination crossbar `d` — from the spike's tree when
    /// tree routing is on, from the unicast-route table otherwise.
    pub(crate) fn route_bit(&self, spike: u64, r: usize, d: u32) -> usize {
        match &self.tree {
            Some(t) => t.bit(spike, r, d),
            None => self.dest_bit[r * self.nc + d as usize] as usize,
        }
    }

    /// Starts an attended cycle: rewinds the ready scan, then drains the
    /// next-cycle wake list and every busy expiry due by `now` into the
    /// ready set.
    pub(crate) fn begin_cycle(&mut self, now: u64) {
        self.counters.wake_cycles += 1;
        self.last_router = u32::MAX;
        self.scan = 0;
        while let Some(p) = self.next_wakes.pop() {
            bit_clear(&mut self.in_next, p as usize);
            self.push_ready(p);
        }
        while let Some(&(c, p)) = self.expiries.front() {
            if c > now {
                break;
            }
            self.expiries.pop_front();
            self.push_ready(p);
        }
    }

    /// Accumulates the counterfactual whole-sweep cost for this cycle
    /// (`active_lanes` = Σ degree × VCs over routers with queued work).
    pub(crate) fn note_sweep(&mut self, active_lanes: u64) {
        self.counters.legacy_sweep_lanes += active_lanes;
    }

    fn push_ready(&mut self, pair: u32) {
        let (wi, wb) = (pair as usize / 64, 1u64 << (pair % 64));
        // a pair behind the scan cursor was already examined this cycle;
        // callers route those through `next_wakes` (see `wake`)
        debug_assert!(wi >= self.scan, "ready push behind the scan cursor");
        if self.ready[wi] & wb != 0 {
            return; // already queued this cycle — the dedup that keeps
                    // the ready set bounded under saturated drains
        }
        self.ready[wi] |= wb;
        self.ready_len += 1;
        self.counters.peak_ready = self.counters.peak_ready.max(u64::from(self.ready_len));
    }

    /// Wakes `pair` relative to the sweep position `pos` (the pair id
    /// currently being processed, plus one — [`PRE_SWEEP`] before the
    /// sweep): pairs still ahead join this cycle's ready set, pairs
    /// already passed wake next cycle, and the in-flight pair itself is
    /// skipped (it just forwarded, so its busy expiry re-examines it).
    fn wake(&mut self, pair: u32, pos: u32) {
        if pair >= pos {
            self.push_ready(pair);
        } else if pair + 1 < pos && !bit_test(&self.in_next, pair as usize) {
            bit_set(&mut self.in_next, pair as usize);
            self.next_wakes.push(pair);
            self.track_wake_heap();
        }
        // pair + 1 == pos: the pair being processed right now — it is
        // (or is about to be) busy, and its expiry wake covers it
    }

    /// Pops the lowest ready pair, returning `(pair, router, port)`.
    /// Pops are strictly ascending within a cycle (in-sweep wakes only
    /// ever target pairs ahead of the current position), which is what
    /// makes the pop order the oracle's sweep order. Call
    /// [`PortSched::count_visit`] once the pop turns out to be real work
    /// (the engine skips pairs on routers that drained empty — e.g. stale
    /// busy expiries — before counting, mirroring what the retired global
    /// scheme's active-router set never examined).
    pub(crate) fn pop_ready(&mut self) -> Option<(u32, usize, usize)> {
        let mut wi = self.scan;
        while wi < self.ready.len() {
            let word = self.ready[wi];
            if word != 0 {
                self.ready[wi] = word & (word - 1); // clear lowest set bit
                self.scan = wi;
                self.ready_len -= 1;
                let pair = (wi * 64) as u32 + word.trailing_zeros();
                let r = self.router_of[pair as usize];
                return Some((
                    pair,
                    r as usize,
                    (pair - self.port_base[r as usize]) as usize,
                ));
            }
            wi += 1;
        }
        self.scan = wi;
        None
    }

    /// Counts a popped pair as an examined port wake (see
    /// [`PortSched::pop_ready`]).
    pub(crate) fn count_visit(&mut self, pair: u32) {
        self.counters.port_wakes += 1;
        let r = self.router_of[pair as usize];
        if r != self.last_router {
            self.counters.router_visits += 1;
            self.last_router = r;
        }
    }

    /// Whether any head at the pair's router currently wants `(pair, w)`.
    pub(crate) fn wanted(&self, pair: u32, w: usize) -> bool {
        self.want[pair as usize * self.vcs + w] > 0
    }

    /// How many lane heads at the pair's router currently want
    /// `(pair, w)` — the candidate count, letting the arbitration scan
    /// stop as soon as it has found them all.
    pub(crate) fn want_count(&self, pair: u32, w: usize) -> u32 {
        self.want[pair as usize * self.vcs + w]
    }

    /// Marks `(pair, w)` as blocked on a full downstream lane; the
    /// credit release will wake the pair ([`PortSched::credit_freed`]).
    pub(crate) fn set_blocked(&mut self, pair: u32, w: usize) {
        bit_set(&mut self.blocked, pair as usize * self.vcs + w);
    }

    /// A credit on router `r`'s ingress lane `fi` went from full to free:
    /// wakes the upstream pair if it was blocked on that lane's VC.
    pub(crate) fn credit_freed(&mut self, r: usize, fi: usize, pos: u32) {
        let up = self.ups_pair[(self.lane_base[r] + fi as u32) as usize];
        debug_assert_ne!(up, NO_PAIR, "injection lanes hold no credits");
        let w = (fi - 1) % self.vcs;
        let bi = up as usize * self.vcs + w;
        if bit_test(&self.blocked, bi) {
            bit_clear(&mut self.blocked, bi);
            self.wake(up, pos);
        }
    }

    /// Installs the route mask of lane `fi`'s new head (a push onto an
    /// empty lane, or a pop exposing the next packet) and wakes every
    /// output port the head wants.
    pub(crate) fn set_head(
        &mut self,
        r: usize,
        fi: usize,
        spike: u64,
        dests: &[u32],
        inject: u64,
        pos: u32,
    ) {
        self.counters.head_updates += 1;
        let words = self.mask_words[r] as usize;
        let base = (self.mask_base[r] + fi as u32 * self.mask_words[r]) as usize;
        debug_assert!(
            self.head_mask[base..base + words].iter().all(|&m| m == 0),
            "stale head mask"
        );
        let want_base = self.port_base[r] as usize * self.vcs;
        self.head_inject[(self.lane_base[r] + fi as u32) as usize] = inject;
        for &d in dests {
            let bit = self.route_bit(spike, r, d);
            let (wi, wb) = (base + bit / 64, 1u64 << (bit % 64));
            if self.head_mask[wi] & wb == 0 {
                self.head_mask[wi] |= wb;
                self.want[want_base + bit] += 1;
                self.wake(self.port_base[r] + (bit / self.vcs) as u32, pos);
            }
        }
    }

    /// Removes lane `fi`'s head mask (its head was popped).
    pub(crate) fn clear_head(&mut self, r: usize, fi: usize) {
        let words = self.mask_words[r] as usize;
        let base = (self.mask_base[r] + fi as u32 * self.mask_words[r]) as usize;
        let want_base = self.port_base[r] as usize * self.vcs;
        for wi in 0..words {
            let mut m = self.head_mask[base + wi];
            self.head_mask[base + wi] = 0;
            while m != 0 {
                let bit = wi * 64 + m.trailing_zeros() as usize;
                self.want[want_base + bit] -= 1;
                m &= m - 1;
            }
        }
    }

    /// Clears one `(port, VC)` bit of lane `fi`'s head after a multicast
    /// split forwarded that branch (the head itself stays queued).
    pub(crate) fn shrink_head(&mut self, r: usize, fi: usize, bit: usize) {
        let base = (self.mask_base[r] + fi as u32 * self.mask_words[r]) as usize;
        let (wi, wb) = (base + bit / 64, 1u64 << (bit % 64));
        debug_assert!(self.head_mask[wi] & wb != 0, "split bit not in mask");
        self.head_mask[wi] &= !wb;
        self.want[self.port_base[r] as usize * self.vcs + bit] -= 1;
    }

    /// Whether lane `fi`'s head wants `(port, VC)` bit `bit`.
    pub(crate) fn head_wants(&self, r: usize, fi: usize, bit: usize) -> bool {
        let base = (self.mask_base[r] + fi as u32 * self.mask_words[r]) as usize;
        self.head_mask[base + bit / 64] & (1 << (bit % 64)) != 0
    }

    /// Inject cycle of lane `fi`'s head (valid while the lane has one).
    pub(crate) fn head_inject(&self, r: usize, fi: usize) -> u64 {
        self.head_inject[(self.lane_base[r] + fi as u32) as usize]
    }

    /// Schedules the pair's busy-expiry wake. Expiry cycles must be
    /// scheduled in nondecreasing order (they are `now + flits` for a
    /// constant `flits`), which keeps the queue sorted.
    pub(crate) fn schedule_expiry(&mut self, cycle: u64, pair: u32) {
        debug_assert!(
            self.expiries.back().is_none_or(|&(c, _)| c <= cycle),
            "expiries must be scheduled cycle-sorted"
        );
        self.expiries.push_back((cycle, pair));
        self.track_wake_heap();
    }

    /// Earliest pending busy expiry, if any.
    pub(crate) fn next_expiry(&self) -> Option<u64> {
        self.expiries.front().map(|&(c, _)| c)
    }

    /// Whether any wake is pending for the next cycle.
    pub(crate) fn has_next_wakes(&self) -> bool {
        !self.next_wakes.is_empty()
    }

    fn track_wake_heap(&mut self) {
        self.counters.peak_wake_heap = self
            .counters
            .peak_wake_heap
            .max((self.expiries.len() + self.next_wakes.len()) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-router line, 1 VC: router 0 ↔ router 1, one crossbar each.
    fn line_sched() -> PortSched {
        let ports = vec![vec![(1usize, 0usize)], vec![(0usize, 0usize)]];
        // dest_bit: at router 0, crossbar 1 exits via port 0 (bit 0);
        // at router 1, crossbar 0 exits via port 0 (bit 0)
        PortSched::new(&ports, 1, vec![0, 0, 0, 0], 2, None)
    }

    #[test]
    fn pair_ids_follow_sweep_order() {
        let ports = vec![
            vec![(1, 0), (2, 0)], // router 0: 2 ports → pairs 0, 1
            vec![(0, 0)],         // router 1: pair 2
            vec![(0, 1)],         // router 2: pair 3
        ];
        let s = PortSched::new(&ports, 2, vec![0; 9], 3, None);
        assert_eq!(s.total_pairs(), 4);
        assert_eq!(s.port_base, vec![0, 2, 3, 4]);
        assert_eq!(s.router_of, vec![0, 0, 1, 2]);
    }

    #[test]
    fn duplicate_wakes_collapse_to_one_ready_entry() {
        let mut s = line_sched();
        for _ in 0..100 {
            s.wake(0, PRE_SWEEP);
            s.wake(1, PRE_SWEEP);
        }
        assert_eq!(s.ready_len, 2, "membership bitset must dedup");
        assert_eq!(s.counters.peak_ready, 2);
        assert_eq!(s.pop_ready().map(|(p, _, _)| p), Some(0));
        assert_eq!(s.pop_ready().map(|(p, _, _)| p), Some(1));
        assert!(s.pop_ready().is_none());
    }

    #[test]
    fn in_sweep_wakes_split_by_position() {
        let ports = vec![vec![(1, 0), (2, 0)], vec![(0, 0)], vec![(0, 1)]];
        let mut s = PortSched::new(&ports, 1, vec![0; 9], 3, None);
        // processing pair 1 (pos = 2): pair 3 is ahead → ready now;
        // pair 0 is behind → next cycle; pair 1 itself → skipped
        s.wake(3, 2);
        s.wake(0, 2);
        s.wake(1, 2);
        assert_eq!(s.ready_len, 1);
        assert!(s.has_next_wakes());
        assert_eq!(s.pop_ready().map(|(p, _, _)| p), Some(3));
        assert!(s.pop_ready().is_none(), "pair 1 must not self-wake");
        s.begin_cycle(10);
        assert_eq!(s.pop_ready().map(|(p, _, _)| p), Some(0));
        assert!(!s.has_next_wakes());
    }

    #[test]
    fn expiries_drain_only_when_due() {
        let mut s = line_sched();
        s.schedule_expiry(3, 0);
        s.schedule_expiry(5, 1);
        s.begin_cycle(2);
        assert!(s.pop_ready().is_none());
        s.begin_cycle(3);
        assert_eq!(s.pop_ready().map(|(p, _, _)| p), Some(0));
        s.begin_cycle(7);
        assert_eq!(s.pop_ready().map(|(p, _, _)| p), Some(1));
    }

    #[test]
    fn blocked_credit_release_wakes_the_upstream_pair() {
        let mut s = line_sched();
        // router 0's pair toward router 1 blocks on VC 0
        s.set_blocked(0, 0);
        // freeing router 1's ingress lane 1 (fed by pair 0) wakes pair 0
        s.credit_freed(1, 1, PRE_SWEEP);
        assert_eq!(s.pop_ready().map(|(p, _, _)| p), Some(0));
        // a second release without a blocked bit wakes nothing
        s.credit_freed(1, 1, PRE_SWEEP);
        assert!(s.pop_ready().is_none());
    }

    #[test]
    fn head_masks_track_want_counts() {
        let mut s = line_sched();
        s.set_head(0, 0, 0, &[1], 7, PRE_SWEEP);
        assert!(s.wanted(0, 0));
        assert!(s.head_wants(0, 0, 0));
        assert_eq!(s.head_inject(0, 0), 7);
        assert_eq!(s.pop_ready().map(|(p, _, _)| p), Some(0));
        s.clear_head(0, 0);
        assert!(!s.wanted(0, 0));
        assert!(!s.head_wants(0, 0, 0));
    }
}
