//! # neuromap-noc — time-multiplexed interconnect simulator
//!
//! A Noxim-class network-on-chip simulator extended the way the paper
//! extends Noxim into **Noxim++** (Section IV):
//!
//! 1. *interconnect models for representative neuromorphic hardware* —
//!    [`topology::Mesh2D`] (TrueNorth/HiCANN), [`topology::NocTree`]
//!    (CxQuad), [`topology::Torus`], [`topology::Star`], and an idealized
//!    [`topology::PointToPoint`];
//! 2. *SNN-related metrics* — spike **disorder count** and **inter-spike
//!    interval (ISI) distortion** ([`stats::NocStats`]);
//! 3. *multicast* — spike packets delivered to a selected subset of
//!    crossbars ([`packet::Packet`] carries a destination set that is split
//!    at routing branch points).
//!
//! Routers are input-buffered with configurable depth, per-output
//! arbitration ([`router::Arbitration`]), link serialization by packet size
//! in flits, and backpressure — the congestion mechanisms that produce the
//! latency, disorder and distortion effects the paper measures.
//!
//! Two engines implement this model: the event-driven [`sim::NocSim`]
//! (production — runtime scales with traffic events, not simulated
//! cycles) and the cycle-driven [`sim::oracle::CycleSim`] reference it is
//! differentially verified against, byte-for-byte. See the [`sim`] module
//! docs for the event model and the equivalence argument.
//!
//! ## Quickstart
//!
//! ```
//! use neuromap_noc::config::NocConfig;
//! use neuromap_noc::sim::NocSim;
//! use neuromap_noc::topology::Mesh2D;
//! use neuromap_noc::traffic::SpikeFlow;
//! use neuromap_hw::energy::EnergyModel;
//!
//! // 4 crossbars on a 2x2 mesh; one spike from crossbar 0 to 3
//! let topo = Mesh2D::for_crossbars(4);
//! let flows = vec![SpikeFlow::unicast(/*neuron*/ 7, /*src*/ 0, /*dst*/ 3, /*step*/ 0)];
//! let mut sim = NocSim::new(Box::new(topo), NocConfig::default(), EnergyModel::default());
//! let stats = sim.run(&flows).unwrap();
//! assert_eq!(stats.delivered, 1);
//! assert!(stats.max_latency_cycles >= 2); // two mesh hops
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
mod error;
pub mod packet;
pub mod router;
mod sched;
pub mod sim;
pub mod stats;
pub mod topology;
pub mod trace;
pub mod traffic;

pub use config::NocConfig;
pub use error::NocError;
pub use sim::{EngineKind, NocSim};
pub use stats::NocStats;
pub use trace::{SpotterReport, TraceBuf, TraceEvent};
