//! Simulator configuration — the knobs Noxim exposes, plus the Noxim++
//! extensions (multicast, SNN-time scaling).

use crate::error::NocError;
use crate::router::Arbitration;
use serde::{Deserialize, Serialize};

/// Configuration of the interconnect simulation.
///
/// The fields mirror Noxim's configurables quoted in the paper
/// ("buffer size, network size, packet size, packet injection rate, routing
/// algorithm, selection strategy"): network size comes from the topology,
/// injection comes from the SNN spike traffic, the rest is here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocConfig {
    /// Input-FIFO depth per ingress port, in packets.
    pub buffer_depth: usize,
    /// Packet size in flits (AER address + timestamp over the link width).
    pub flits_per_packet: u32,
    /// Router pipeline delay in cycles (arbitration + switch).
    pub router_delay: u32,
    /// Interconnect cycles per SNN timestep (1 ms): the clock-domain ratio
    /// between the NoC and the neural dynamics.
    pub cycles_per_step: u64,
    /// Output-port arbitration policy.
    pub arbitration: Arbitration,
    /// Whether one spike to many crossbars travels as a single multicast
    /// packet (Noxim++ extension) or as unicast clones.
    pub multicast: bool,
    /// Route multicast packets along Steiner-style trees
    /// ([`crate::topology::Topology::multicast_route`]) instead of
    /// branch-splitting along the per-destination unicast routes. Only
    /// meaningful when [`NocConfig::multicast`] is on (unicast clones
    /// carry one destination each, so there is no tree to build); off by
    /// default, which is bit-identical to the pre-tree engines. Both
    /// engines consume the same per-spike tree table, so the differential
    /// byte-identity invariants (digest, delivery log, trace) hold under
    /// tree routing too. Absent in configuration files written before
    /// tree routing, hence the serde default.
    #[serde(default)]
    pub multicast_trees: bool,
    /// Hard cycle budget; exceeded ⇒ [`NocError::CycleBudgetExhausted`].
    pub max_cycles: u64,
    /// Virtual channels per ingress port. Every ingress port carries
    /// `vc_count` independent FIFOs of [`NocConfig::buffer_depth`] packets,
    /// each with its own credit counter; the VC a packet occupies on a
    /// link is assigned by [`crate::topology::Topology::hop_vc`]
    /// (dateline-based on the torus, which makes shallow-buffer torus
    /// routing deadlock-free — see [`crate::router`]). The default of 1
    /// is bit-identical to the pre-VC engines. Deserialization defaults
    /// absent fields to 1, so pre-VC configuration files stay valid.
    #[serde(default = "default_vc_count")]
    pub vc_count: usize,
    /// Attach the event scheduler's diagnostic counters
    /// ([`crate::stats::SchedCounters`]) to the run's statistics. Off by
    /// default: the counters describe the event engine's per-port wake
    /// scheduler, which the cycle-driven oracle does not have, so
    /// enabling them breaks stats byte-identity between the engines (the
    /// differential corpus keeps this off). Absent in configuration
    /// files written before the per-port scheduler, hence the serde
    /// default.
    #[serde(default)]
    pub sched_stats: bool,
    /// Record a structured event trace ([`crate::trace::TraceBuf`]) of
    /// the run, retrievable via `take_trace` on either engine. Off by
    /// default and zero-cost when off (no buffer is allocated, no event
    /// is recorded, and the engines' output — including the golden
    /// digests — is byte-identical to a build without the trace layer).
    /// When on, both engines emit byte-identical event streams; see
    /// [`crate::trace`] for the invariants. Absent in configuration
    /// files written before the trace layer, hence the serde default.
    #[serde(default)]
    pub trace: bool,
}

/// Serde default for [`NocConfig::vc_count`]: one virtual channel, the
/// pre-VC behavior.
fn default_vc_count() -> usize {
    1
}

/// Upper bound on [`NocConfig::vc_count`] (the engines track VC
/// eligibility in a 32-bit mask; real routers carry far fewer).
pub const MAX_VCS: usize = 32;

impl Default for NocConfig {
    fn default() -> Self {
        Self {
            buffer_depth: 4,
            flits_per_packet: 2,
            router_delay: 1,
            cycles_per_step: 1024,
            arbitration: Arbitration::RoundRobin,
            multicast: true,
            multicast_trees: false,
            max_cycles: 500_000_000,
            vc_count: 1,
            sched_stats: false,
            trace: false,
        }
    }
}

impl NocConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`NocError::InvalidConfig`] naming the first invalid field
    /// (zero buffer depth, zero flits, zero cycles per step).
    pub fn validate(&self) -> Result<(), NocError> {
        if self.buffer_depth == 0 {
            return Err(NocError::InvalidConfig {
                name: "buffer_depth",
                value: "0".into(),
            });
        }
        if self.flits_per_packet == 0 {
            return Err(NocError::InvalidConfig {
                name: "flits_per_packet",
                value: "0".into(),
            });
        }
        if self.cycles_per_step == 0 {
            return Err(NocError::InvalidConfig {
                name: "cycles_per_step",
                value: "0".into(),
            });
        }
        if self.max_cycles == 0 {
            return Err(NocError::InvalidConfig {
                name: "max_cycles",
                value: "0".into(),
            });
        }
        if self.vc_count == 0 || self.vc_count > MAX_VCS {
            return Err(NocError::InvalidConfig {
                name: "vc_count",
                value: self.vc_count.to_string(),
            });
        }
        Ok(())
    }

    /// Cycles a packet spends between leaving one router and arriving at
    /// the next: pipeline delay plus link serialization of the trailing
    /// flits, never less than one cycle. Shared by the event-driven engine
    /// and the cycle-driven oracle so the timing model cannot drift.
    pub fn hop_latency(&self) -> u64 {
        (self.router_delay + self.flits_per_packet - 1).max(1) as u64
    }

    /// Cycles an output port stays busy serializing one packet.
    pub fn serialization_cycles(&self) -> u64 {
        self.flits_per_packet as u64
    }

    /// Parses a configuration from JSON (the counterpart of Noxim's
    /// externally loaded configuration file).
    ///
    /// # Errors
    ///
    /// [`NocError::InvalidConfig`] when the JSON is malformed or a field is
    /// out of domain.
    pub fn from_json(json: &str) -> Result<Self, NocError> {
        let cfg: NocConfig = serde_json::from_str(json).map_err(|e| NocError::InvalidConfig {
            name: "json",
            value: e.to_string(),
        })?;
        cfg.validate()?;
        Ok(cfg)
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(NocConfig::default().validate().is_ok());
    }

    #[test]
    fn zero_fields_rejected() {
        let c = NocConfig {
            buffer_depth: 0,
            ..NocConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NocConfig {
            flits_per_packet: 0,
            ..NocConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NocConfig {
            cycles_per_step: 0,
            ..NocConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn hop_latency_never_zero() {
        let c = NocConfig {
            router_delay: 0,
            flits_per_packet: 1,
            ..NocConfig::default()
        };
        assert_eq!(c.hop_latency(), 1);
        let c = NocConfig {
            router_delay: 1,
            flits_per_packet: 2,
            ..NocConfig::default()
        };
        assert_eq!(c.hop_latency(), 2);
        assert_eq!(c.serialization_cycles(), 2);
    }

    #[test]
    fn vc_count_out_of_domain_rejected() {
        let c = NocConfig {
            vc_count: 0,
            ..NocConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(NocError::InvalidConfig {
                name: "vc_count",
                ..
            })
        ));
        let c = NocConfig {
            vc_count: MAX_VCS + 1,
            ..NocConfig::default()
        };
        assert!(c.validate().is_err());
        let c = NocConfig {
            vc_count: MAX_VCS,
            ..NocConfig::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn pre_vc_json_parses_with_one_vc() {
        // a configuration file written before virtual channels existed
        // must keep parsing, defaulting to the single-VC behavior
        let json = r#"{
            "buffer_depth": 4, "flits_per_packet": 2, "router_delay": 1,
            "cycles_per_step": 1024, "arbitration": "RoundRobin",
            "multicast": true, "max_cycles": 1000
        }"#;
        let c = NocConfig::from_json(json).unwrap();
        assert_eq!(c.vc_count, 1);
        assert!(!c.sched_stats, "scheduler counters default to off");
        assert!(!c.trace, "tracing defaults to off");
        assert!(!c.multicast_trees, "tree routing defaults to off");
    }

    #[test]
    fn json_roundtrip() {
        let c = NocConfig::default();
        let j = c.to_json();
        assert_eq!(NocConfig::from_json(&j).unwrap(), c);
        let c = NocConfig {
            vc_count: 4,
            sched_stats: true,
            trace: true,
            multicast_trees: true,
            ..NocConfig::default()
        };
        assert_eq!(NocConfig::from_json(&c.to_json()).unwrap(), c);
    }

    #[test]
    fn bad_json_reports_config_error() {
        assert!(matches!(
            NocConfig::from_json("{"),
            Err(NocError::InvalidConfig { .. })
        ));
    }
}
