//! Spike packets carried by the interconnect.

use serde::{Deserialize, Serialize};

/// A spike packet in flight: one AER event travelling toward one or more
/// destination crossbars.
///
/// With multicast enabled a packet starts with the full destination set of
/// its spike; the router replicates it only at branch points, splitting the
/// set — the Noxim++ multicast extension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Monotonically increasing id of the originating spike event
    /// (stable across multicast splits; used for tracing).
    pub spike_id: u64,
    /// Global id of the source neuron.
    pub source_neuron: u32,
    /// Crossbar the spike originated from.
    pub src_crossbar: u32,
    /// Remaining destination crossbars.
    pub dests: Vec<u32>,
    /// SNN timestep of the spike.
    pub send_step: u32,
    /// Cycle at which the packet entered the network (after AER encoding).
    pub inject_cycle: u64,
}

impl Packet {
    /// Splits off the destinations in `take` into a new packet, leaving the
    /// remainder in `self`. Used at multicast branch points.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `take` is not a subset of `self.dests`.
    pub fn split(&mut self, take: &[u32]) -> Packet {
        debug_assert!(take.iter().all(|d| self.dests.contains(d)));
        self.dests.retain(|d| !take.contains(d));
        Packet {
            spike_id: self.spike_id,
            source_neuron: self.source_neuron,
            src_crossbar: self.src_crossbar,
            dests: take.to_vec(),
            send_step: self.send_step,
            inject_cycle: self.inject_cycle,
        }
    }

    /// Splits off every destination matching `pred` into a new packet,
    /// preserving relative order on both sides — a single-pass equivalent
    /// of collecting the matches and calling [`Packet::split`].
    ///
    /// The dominant case in the simulators is "every destination matches"
    /// (unicast, or a multicast with no branch here): that path moves the
    /// existing vector instead of allocating.
    pub fn take_dests_where(&mut self, pred: impl Fn(u32) -> bool) -> Packet {
        let taken = if self.dests.iter().all(|&d| pred(d)) {
            std::mem::take(&mut self.dests)
        } else {
            let mut taken = Vec::new();
            self.dests.retain(|&d| {
                if pred(d) {
                    taken.push(d);
                    false
                } else {
                    true
                }
            });
            taken
        };
        Packet {
            spike_id: self.spike_id,
            source_neuron: self.source_neuron,
            src_crossbar: self.src_crossbar,
            dests: taken,
            send_step: self.send_step,
            inject_cycle: self.inject_cycle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(dests: Vec<u32>) -> Packet {
        Packet {
            spike_id: 1,
            source_neuron: 5,
            src_crossbar: 0,
            dests,
            send_step: 3,
            inject_cycle: 42,
        }
    }

    #[test]
    fn split_partitions_destinations() {
        let mut p = packet(vec![1, 2, 3]);
        let q = p.split(&[2]);
        assert_eq!(p.dests, vec![1, 3]);
        assert_eq!(q.dests, vec![2]);
        assert_eq!(q.spike_id, p.spike_id);
        assert_eq!(q.inject_cycle, p.inject_cycle);
    }

    #[test]
    fn split_all_empties_original() {
        let mut p = packet(vec![1, 2]);
        let q = p.split(&[1, 2]);
        assert!(p.dests.is_empty());
        assert_eq!(q.dests, vec![1, 2]);
    }

    #[test]
    fn take_where_matches_filter_plus_split() {
        // the predicate path must agree with the collect-then-split path
        // (the oracle engine uses the latter, the event engine the former)
        let dests = vec![4, 1, 7, 2, 9];
        let pred = |d: u32| d % 2 == 1;
        let mut a = packet(dests.clone());
        let taken = a.take_dests_where(pred);
        let mut b = packet(dests.clone());
        let via: Vec<u32> = dests.iter().copied().filter(|&d| pred(d)).collect();
        let split = b.split(&via);
        assert_eq!(taken, split);
        assert_eq!(a, b);
    }

    #[test]
    fn take_where_none_leaves_packet_intact() {
        let mut p = packet(vec![1, 2, 3]);
        let q = p.take_dests_where(|_| false);
        assert!(q.dests.is_empty());
        assert_eq!(p.dests, vec![1, 2, 3]);
    }
}
