//! Output-port arbitration policies.
//!
//! When several input FIFOs hold head-of-line packets wanting the same
//! output link, the arbiter picks one per cycle. The policy shapes which
//! traffic is delayed under congestion — and therefore the disorder and
//! ISI-distortion metrics. Noxim calls this the "selection strategy".

use serde::{Deserialize, Serialize};

/// Arbitration policy for contended output ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Arbitration {
    /// Rotating priority across input ports (fair, the Noxim default).
    RoundRobin,
    /// The packet injected earliest wins (minimizes disorder, costs logic).
    OldestFirst,
    /// Lowest input-port index wins (cheap, can starve).
    FixedPriority,
}

impl Arbitration {
    /// Picks the winning candidate among `(input_port, inject_cycle)`
    /// entries. `cursor` is the round-robin state for this output port
    /// (index of the port *after* the previous winner).
    ///
    /// Returns the position in `candidates` of the winner, or `None` if
    /// empty.
    pub fn pick(&self, candidates: &[(usize, u64)], cursor: usize) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            Arbitration::RoundRobin => {
                // first candidate whose port >= cursor, else wrap to smallest
                candidates
                    .iter()
                    .enumerate()
                    .filter(|(_, &(port, _))| port >= cursor)
                    .min_by_key(|(_, &(port, _))| port)
                    .or_else(|| candidates.iter().enumerate().min_by_key(|(_, &(p, _))| p))
                    .map(|(i, _)| i)
            }
            Arbitration::OldestFirst => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &(port, cyc))| (cyc, port))
                .map(|(i, _)| i),
            Arbitration::FixedPriority => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &(port, _))| port)
                .map(|(i, _)| i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_candidates_yield_none() {
        for a in [
            Arbitration::RoundRobin,
            Arbitration::OldestFirst,
            Arbitration::FixedPriority,
        ] {
            assert_eq!(a.pick(&[], 0), None);
        }
    }

    #[test]
    fn fixed_priority_prefers_low_port() {
        let c = vec![(3, 10), (1, 99), (2, 0)];
        assert_eq!(Arbitration::FixedPriority.pick(&c, 0), Some(1));
    }

    #[test]
    fn oldest_first_prefers_early_injection() {
        let c = vec![(3, 10), (1, 99), (2, 4)];
        assert_eq!(Arbitration::OldestFirst.pick(&c, 0), Some(2));
    }

    #[test]
    fn oldest_first_ties_break_by_port() {
        let c = vec![(3, 10), (1, 10)];
        assert_eq!(Arbitration::OldestFirst.pick(&c, 0), Some(1));
    }

    #[test]
    fn round_robin_rotates() {
        let c = vec![(0, 0), (1, 0), (2, 0)];
        // cursor 0 → port 0; cursor 1 → port 1; cursor 3 → wraps to port 0
        assert_eq!(Arbitration::RoundRobin.pick(&c, 0), Some(0));
        assert_eq!(Arbitration::RoundRobin.pick(&c, 1), Some(1));
        assert_eq!(Arbitration::RoundRobin.pick(&c, 3), Some(0));
    }

    #[test]
    fn round_robin_skips_absent_ports() {
        let c = vec![(0, 0), (4, 0)];
        assert_eq!(Arbitration::RoundRobin.pick(&c, 2), Some(1)); // port 4
    }

    #[test]
    fn round_robin_never_starves_a_persistent_candidate() {
        // all ports always want the output (saturated input FIFOs), the
        // cursor advances past each winner exactly as the engines do:
        // every port must win once per full rotation — the no-starvation
        // invariant the simulator-level fairness test builds on
        let ports = 5usize;
        let candidates: Vec<(usize, u64)> = (0..ports).map(|p| (p, 0)).collect();
        let mut cursor = 0usize;
        let mut wins = vec![0u32; ports];
        let rounds = 7;
        for _ in 0..ports * rounds {
            let w = Arbitration::RoundRobin
                .pick(&candidates, cursor)
                .expect("candidates present");
            let (port, _) = candidates[w];
            wins[port] += 1;
            cursor = port + 1;
        }
        assert!(
            wins.iter().all(|&w| w == rounds as u32),
            "round-robin must serve every persistent candidate equally: {wins:?}"
        );
    }

    #[test]
    fn fixed_priority_starves_low_priority_candidates() {
        // the counterexample round-robin protects against: under fixed
        // priority a persistent port 0 monopolizes the output
        let candidates = vec![(0usize, 5u64), (1, 0), (2, 3)];
        for cursor in 0..4 {
            assert_eq!(
                Arbitration::FixedPriority.pick(&candidates, cursor),
                Some(0)
            );
        }
    }
}
