//! Output-port arbitration policies and virtual-channel selection.
//!
//! When several input FIFOs hold head-of-line packets wanting the same
//! output link, the arbiter picks one per cycle. The policy shapes which
//! traffic is delayed under congestion — and therefore the disorder and
//! ISI-distortion metrics. Noxim calls this the "selection strategy".
//!
//! # Virtual channels and the torus dateline invariant
//!
//! With [`crate::config::NocConfig::vc_count`] > 1 every ingress port
//! carries that many independent FIFOs ("virtual channels"), each with
//! its own credit counter. A hop occupies exactly one VC, chosen
//! *statelessly* by [`crate::topology::Topology::hop_vc`] from the
//! current router and the destination router — packets carry no VC state,
//! so multicast branch-splitting stays well-defined: a branch holds the
//! destinations that share both the egress port **and** the hop VC.
//!
//! Deadlock freedom is an acyclicity property of the *channel-dependency
//! graph*: nodes are `(directed link, VC)` pairs, and an edge `a → b`
//! exists when some packet can hold channel `a` while waiting for channel
//! `b` at the joint router. Dimension-order routing on a mesh/tree/star
//! already orders the links acyclically, and because `hop_vc` is a pure
//! function of `(router, destination)`, adding VCs cannot create a cycle
//! there: any cycle among `(link, VC)` nodes would project to a closed
//! walk among the links alone (a packet never traverses the same link
//! twice), contradicting the acyclic link order.
//!
//! The torus is the interesting case: its wraparound links close each
//! ring into a cycle, so single-channel dimension-order routing *can*
//! deadlock (bursty traffic with shallow FIFOs wedges — the PR-4
//! finding). The fix is the classic **dateline** scheme. Per ring and
//! direction, split the VCs into a lower and an upper half and assign:
//!
//! * **lower half** while the remaining path in the current dimension
//!   still has the wraparound link ahead of it (the packet has not yet
//!   crossed the dateline);
//! * **upper half** once no wraparound remains (it crossed the dateline,
//!   or never needed it).
//!
//! The wraparound link is therefore only ever traversed on the lower
//! half, and the lower → upper transition happens exactly once, at the
//! dateline. Ordering the channels "lower half along the ring, then the
//! wrap link, then upper half along the ring" makes every dependency
//! strictly increasing, so the channel-dependency graph is acyclic and
//! the torus becomes deadlock-free with `vc_count ≥ 2` — verified
//! constructively by the channel-dependency-graph walk in the topology
//! tests and empirically by the deadlock regression in
//! `tests/noc_properties.rs`.

use serde::{Deserialize, Serialize};

/// Arbitration policy for contended output ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Arbitration {
    /// Rotating priority across input ports (fair, the Noxim default).
    RoundRobin,
    /// The packet injected earliest wins (minimizes disorder, costs logic).
    OldestFirst,
    /// Lowest input-port index wins (cheap, can starve).
    FixedPriority,
}

impl Arbitration {
    /// Picks the winning candidate among `(input_port, inject_cycle)`
    /// entries. `cursor` is the round-robin state for this output port
    /// (index of the port *after* the previous winner).
    ///
    /// Returns the position in `candidates` of the winner, or `None` if
    /// empty.
    pub fn pick(&self, candidates: &[(usize, u64)], cursor: usize) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        if candidates.len() == 1 {
            // every policy picks the sole candidate — the common case on
            // lightly shared ports
            return Some(0);
        }
        match self {
            Arbitration::RoundRobin => {
                // first candidate whose port >= cursor, else wrap to smallest
                candidates
                    .iter()
                    .enumerate()
                    .filter(|(_, &(port, _))| port >= cursor)
                    .min_by_key(|(_, &(port, _))| port)
                    .or_else(|| candidates.iter().enumerate().min_by_key(|(_, &(p, _))| p))
                    .map(|(i, _)| i)
            }
            Arbitration::OldestFirst => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &(port, cyc))| (cyc, port))
                .map(|(i, _)| i),
            Arbitration::FixedPriority => candidates
                .iter()
                .enumerate()
                .min_by_key(|(_, &(port, _))| port)
                .map(|(i, _)| i),
        }
    }
}

/// Round-robin selection of the virtual channel an output port serves
/// this cycle.
///
/// `eligible` is a bitmask of VCs that both hold a candidate head and
/// have a free downstream credit; `cursor` is the port's VC cursor (the
/// VC *after* the previous winner, like [`Arbitration::pick`]'s
/// round-robin state). Returns the lowest eligible VC `>= cursor`,
/// wrapping to the lowest eligible VC overall; `None` iff no VC is
/// eligible. With a single VC this degenerates to "forward iff the
/// downstream credit is free" — the pre-VC engines' behavior.
pub fn pick_vc(eligible: u32, cursor: usize) -> Option<usize> {
    if eligible == 0 {
        return None;
    }
    let ge = if cursor >= 32 {
        0
    } else {
        eligible >> cursor << cursor
    };
    let mask = if ge != 0 { ge } else { eligible };
    Some(mask.trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_candidates_yield_none() {
        for a in [
            Arbitration::RoundRobin,
            Arbitration::OldestFirst,
            Arbitration::FixedPriority,
        ] {
            assert_eq!(a.pick(&[], 0), None);
        }
    }

    #[test]
    fn fixed_priority_prefers_low_port() {
        let c = vec![(3, 10), (1, 99), (2, 0)];
        assert_eq!(Arbitration::FixedPriority.pick(&c, 0), Some(1));
    }

    #[test]
    fn oldest_first_prefers_early_injection() {
        let c = vec![(3, 10), (1, 99), (2, 4)];
        assert_eq!(Arbitration::OldestFirst.pick(&c, 0), Some(2));
    }

    #[test]
    fn oldest_first_ties_break_by_port() {
        let c = vec![(3, 10), (1, 10)];
        assert_eq!(Arbitration::OldestFirst.pick(&c, 0), Some(1));
    }

    #[test]
    fn round_robin_rotates() {
        let c = vec![(0, 0), (1, 0), (2, 0)];
        // cursor 0 → port 0; cursor 1 → port 1; cursor 3 → wraps to port 0
        assert_eq!(Arbitration::RoundRobin.pick(&c, 0), Some(0));
        assert_eq!(Arbitration::RoundRobin.pick(&c, 1), Some(1));
        assert_eq!(Arbitration::RoundRobin.pick(&c, 3), Some(0));
    }

    #[test]
    fn round_robin_skips_absent_ports() {
        let c = vec![(0, 0), (4, 0)];
        assert_eq!(Arbitration::RoundRobin.pick(&c, 2), Some(1)); // port 4
    }

    #[test]
    fn round_robin_never_starves_a_persistent_candidate() {
        // all ports always want the output (saturated input FIFOs), the
        // cursor advances past each winner exactly as the engines do:
        // every port must win once per full rotation — the no-starvation
        // invariant the simulator-level fairness test builds on
        let ports = 5usize;
        let candidates: Vec<(usize, u64)> = (0..ports).map(|p| (p, 0)).collect();
        let mut cursor = 0usize;
        let mut wins = vec![0u32; ports];
        let rounds = 7;
        for _ in 0..ports * rounds {
            let w = Arbitration::RoundRobin
                .pick(&candidates, cursor)
                .expect("candidates present");
            let (port, _) = candidates[w];
            wins[port] += 1;
            cursor = port + 1;
        }
        assert!(
            wins.iter().all(|&w| w == rounds as u32),
            "round-robin must serve every persistent candidate equally: {wins:?}"
        );
    }

    #[test]
    fn pick_vc_rotates_and_wraps() {
        assert_eq!(pick_vc(0, 0), None);
        assert_eq!(pick_vc(0b01, 0), Some(0));
        // single VC: cursor past it wraps back — the vc_count=1 case
        assert_eq!(pick_vc(0b01, 1), Some(0));
        assert_eq!(pick_vc(0b11, 0), Some(0));
        assert_eq!(pick_vc(0b11, 1), Some(1));
        assert_eq!(pick_vc(0b11, 2), Some(0));
        // skips ineligible VCs below the cursor
        assert_eq!(pick_vc(0b101, 1), Some(2));
        assert_eq!(pick_vc(0b101, 3), Some(0));
        // cursor beyond the mask width wraps cleanly
        assert_eq!(pick_vc(0b100, 40), Some(2));
    }

    #[test]
    fn pick_vc_never_starves_a_persistent_vc() {
        // all 4 VCs persistently eligible, cursor advanced past each
        // winner: every VC wins once per rotation
        let mut cursor = 0usize;
        let mut wins = [0u32; 4];
        for _ in 0..4 * 5 {
            let w = pick_vc(0b1111, cursor).unwrap();
            wins[w] += 1;
            cursor = w + 1;
        }
        assert!(wins.iter().all(|&w| w == 5), "{wins:?}");
    }

    #[test]
    fn fixed_priority_starves_low_priority_candidates() {
        // the counterexample round-robin protects against: under fixed
        // priority a persistent port 0 monopolizes the output
        let candidates = vec![(0usize, 5u64), (1, 0), (2, 3)];
        for cursor in 0..4 {
            assert_eq!(
                Arbitration::FixedPriority.pick(&candidates, cursor),
                Some(0)
            );
        }
    }
}
