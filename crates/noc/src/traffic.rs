//! Spike traffic: the injection schedule derived from a partitioned SNN.
//!
//! A [`SpikeFlow`] is one spike of one neuron that must leave its crossbar:
//! the source crossbar, the set of destination crossbars holding its global
//! postsynaptic neurons, and the SNN timestep of the spike. The simulator
//! turns flows into AER packets, serializing simultaneous spikes of one
//! crossbar through its encoder (one packet per cycle), which fixes the
//! *intended* delivery order that the disorder metric is measured against.

use serde::{Deserialize, Serialize};

/// One spike event bound for one or more remote crossbars.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeFlow {
    /// Global id of the spiking neuron.
    pub source_neuron: u32,
    /// Crossbar hosting the neuron.
    pub src_crossbar: u32,
    /// Destination crossbars (deduplicated, excluding the source crossbar).
    pub dst_crossbars: Vec<u32>,
    /// SNN timestep at which the neuron fired.
    pub send_step: u32,
}

impl SpikeFlow {
    /// A flow to a single destination.
    pub fn unicast(source_neuron: u32, src: u32, dst: u32, send_step: u32) -> Self {
        Self {
            source_neuron,
            src_crossbar: src,
            dst_crossbars: vec![dst],
            send_step,
        }
    }

    /// A flow to several destinations (candidates for multicast).
    ///
    /// Destinations are deduplicated and the source crossbar is removed.
    pub fn multicast(source_neuron: u32, src: u32, mut dsts: Vec<u32>, send_step: u32) -> Self {
        dsts.sort_unstable();
        dsts.dedup();
        dsts.retain(|&d| d != src);
        Self {
            source_neuron,
            src_crossbar: src,
            dst_crossbars: dsts,
            send_step,
        }
    }

    /// Number of unicast packets this flow costs without multicast support.
    pub fn unicast_cost(&self) -> usize {
        self.dst_crossbars.len()
    }
}

/// Sorts flows into canonical injection order: by step, then source
/// crossbar, then source neuron, then destination set — the order the AER
/// encoders see them.
///
/// The destination set participates so the order is *total*: per-synapse
/// traffic emits several flows with the same `(step, crossbar, neuron)`
/// key (one per cut synapse), and a key-only sort would let the caller's
/// input order leak into the injection schedule. With a total order,
/// permuting the input flows cannot change the simulation.
pub fn sort_canonical(flows: &mut [SpikeFlow]) {
    flows.sort_by(canonical_cmp);
}

/// The total injection order of [`sort_canonical`], as a comparator —
/// for sorting borrowed flow slices without cloning the flows.
pub fn canonical_cmp(a: &SpikeFlow, b: &SpikeFlow) -> std::cmp::Ordering {
    (
        a.send_step,
        a.src_crossbar,
        a.source_neuron,
        &a.dst_crossbars,
    )
        .cmp(&(
            b.send_step,
            b.src_crossbar,
            b.source_neuron,
            &b.dst_crossbars,
        ))
}

/// Total packet count of a flow schedule under the given multicast setting.
pub fn packet_count(flows: &[SpikeFlow], multicast: bool) -> u64 {
    flows
        .iter()
        .map(|f| {
            if f.dst_crossbars.is_empty() {
                0
            } else if multicast {
                1
            } else {
                f.unicast_cost() as u64
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicast_dedups_and_drops_source() {
        let f = SpikeFlow::multicast(1, 2, vec![3, 2, 3, 0], 5);
        assert_eq!(f.dst_crossbars, vec![0, 3]);
    }

    #[test]
    fn canonical_sort_orders_by_step_then_source() {
        let mut flows = vec![
            SpikeFlow::unicast(9, 1, 0, 2),
            SpikeFlow::unicast(1, 0, 1, 2),
            SpikeFlow::unicast(5, 0, 1, 1),
        ];
        sort_canonical(&mut flows);
        assert_eq!(flows[0].send_step, 1);
        assert_eq!(flows[1].src_crossbar, 0);
        assert_eq!(flows[2].src_crossbar, 1);
    }

    #[test]
    fn canonical_sort_is_total_over_destinations() {
        // same (step, crossbar, neuron) key, different destinations — the
        // per-synapse traffic shape; order must not depend on input order
        let a = SpikeFlow::unicast(5, 0, 3, 1);
        let b = SpikeFlow::unicast(5, 0, 1, 1);
        let mut fwd = vec![a.clone(), b.clone()];
        let mut rev = vec![b, a];
        sort_canonical(&mut fwd);
        sort_canonical(&mut rev);
        assert_eq!(fwd, rev);
        assert_eq!(fwd[0].dst_crossbars, vec![1]);
    }

    #[test]
    fn packet_count_respects_multicast() {
        let flows = vec![
            SpikeFlow::multicast(0, 0, vec![1, 2, 3], 0),
            SpikeFlow::unicast(1, 1, 0, 0),
        ];
        assert_eq!(packet_count(&flows, true), 2);
        assert_eq!(packet_count(&flows, false), 4);
    }

    #[test]
    fn empty_destination_flow_costs_nothing() {
        let f = SpikeFlow::multicast(0, 1, vec![1], 0); // only dst == src
        assert_eq!(packet_count(&[f], false), 0);
    }
}
