//! Interconnect statistics: the conventional metrics (latency, throughput,
//! energy) and the two SNN metrics the paper introduces (spike disorder
//! count, ISI distortion).

use neuromap_hw::energy::EnergyModel;
use serde::{Deserialize, Serialize};

use crate::error::NocError;

/// One completed delivery: a spike that reached a destination crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// Source neuron of the spike.
    pub source_neuron: u32,
    /// Crossbar it was sent from.
    pub src_crossbar: u32,
    /// Crossbar it was delivered to.
    pub dst_crossbar: u32,
    /// SNN timestep of the spike.
    pub send_step: u32,
    /// Cycle the packet entered the network.
    pub inject_cycle: u64,
    /// Cycle the packet reached the destination crossbar.
    pub deliver_cycle: u64,
}

impl Delivery {
    /// Builds a delivery record, asserting the causality invariant
    /// `deliver_cycle >= inject_cycle`. Both engines construct their
    /// delivery logs through here, so an engine bug that ever produced an
    /// inverted pair fails loudly at the record instead of wrapping
    /// silently inside [`Delivery::latency`] in release builds.
    pub fn new(
        source_neuron: u32,
        src_crossbar: u32,
        dst_crossbar: u32,
        send_step: u32,
        inject_cycle: u64,
        deliver_cycle: u64,
    ) -> Self {
        assert!(
            deliver_cycle >= inject_cycle,
            "delivery precedes injection: inject_cycle {inject_cycle} > deliver_cycle {deliver_cycle} \
             (neuron {source_neuron}, crossbar {src_crossbar} -> {dst_crossbar})"
        );
        Self {
            source_neuron,
            src_crossbar,
            dst_crossbar,
            send_step,
            inject_cycle,
            deliver_cycle,
        }
    }

    /// Network latency in cycles.
    ///
    /// Debug-checked against underflow; [`Delivery::new`] guarantees the
    /// invariant for engine-produced records.
    pub fn latency(&self) -> u64 {
        debug_assert!(
            self.deliver_cycle >= self.inject_cycle,
            "inverted delivery: inject_cycle {} > deliver_cycle {}",
            self.inject_cycle,
            self.deliver_cycle
        );
        self.deliver_cycle - self.inject_cycle
    }
}

/// Raw event counters accumulated during simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Packets injected (AER encode events).
    pub packets_injected: u64,
    /// Spike deliveries (AER decode events).
    pub deliveries: u64,
    /// Packets traversing a router switch.
    pub router_traversals: u64,
    /// Flits traversing inter-router links.
    pub link_flits: u64,
    /// Flits written into input buffers.
    pub buffer_flits: u64,
}

/// Per-virtual-channel event counters, aggregated over every router.
///
/// Both engines count these at the same state-changing events (FIFO
/// pushes and link forwards), so the vectors are part of the differential
/// byte-identity contract between [`crate::sim::NocSim`] and
/// [`crate::sim::oracle::CycleSim`] and are folded into
/// [`NocStats::digest`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VcCounters {
    /// Packets buffered into this VC's ingress FIFOs (arrival pushes;
    /// local injection queues are VC-less and not counted).
    pub enqueued: u64,
    /// Packets forwarded across links on this VC.
    pub forwarded: u64,
    /// Times this VC was eligible at a forwarding output port (candidate
    /// head + free downstream credit) but lost the VC round-robin — the
    /// VC-level contention ("stall") signal.
    pub arb_losses: u64,
    /// Peak occupancy reached by any single (ingress, VC) FIFO, packets.
    pub peak_occupancy: u64,
}

/// Counters of the event engine's per-(router, output-port) wake
/// scheduler — diagnostic observability for the dense-traffic regime.
///
/// The engine always accumulates these (a handful of integer adds per
/// wake); they are attached to [`NocStats`] only when
/// [`crate::config::NocConfig::sched_stats`] is set, and serialized only
/// when attached, so default-configuration digests stay byte-identical.
/// The cycle-driven oracle has no scheduler and never attaches them —
/// enable the flag only outside differential engine comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedCounters {
    /// Cycles the engine attended (woke up and drained its ready set).
    pub wake_cycles: u64,
    /// (router, output port) pairs popped from the ready set — the
    /// per-port unit of scheduler work.
    pub port_wakes: u64,
    /// Distinct routers visited while draining the ready set, summed over
    /// wake cycles (pops are pair-ordered, so same-router pops are
    /// contiguous).
    pub router_visits: u64,
    /// FIFO-head route masks (re)computed — once per packet becoming a
    /// lane head, not per port sweep.
    pub head_updates: u64,
    /// Counterfactual cost of the retired global scheme: `(port, VC)`
    /// pairs a whole-active-router sweep would have examined, summed over
    /// the engine's wake cycles (a lower bound — the global scheme also
    /// attended cycles this engine skips).
    pub legacy_sweep_lanes: u64,
    /// Peak size of the ready set (deduplicated; bounded by the total
    /// port-pair count).
    pub peak_ready: u64,
    /// Peak combined size of the busy-expiry heap and the next-cycle wake
    /// list (each bounded by the total port-pair count).
    pub peak_wake_heap: u64,
}

/// Scheduler trace of one engine run, returned by
/// [`crate::sim::NocSim::run_traced`] (and, for the progress log only,
/// [`crate::sim::oracle::CycleSim::run_traced`]). Feeds the liveness and
/// wake-bound properties in `tests/noc_properties.rs`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimTrace {
    /// Cycles the event engine attended, ascending. Empty for the oracle
    /// (it attends every cycle of every drain window by construction).
    pub attended_cycles: Vec<u64>,
    /// Cycles at which at least one packet was forwarded, ascending.
    pub progress_cycles: Vec<u64>,
    /// Scheduler counters ([`SchedCounters::default`] for the oracle).
    pub sched: SchedCounters,
}

/// Full statistics of one interconnect simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocStats {
    /// Number of spike deliveries.
    pub delivered: u64,
    /// Total simulated cycles (time of last delivery).
    pub total_cycles: u64,
    /// Average delivery latency in cycles.
    pub avg_latency_cycles: f64,
    /// Median (p50) delivery latency in cycles.
    pub p50_latency_cycles: u64,
    /// 99th-percentile delivery latency in cycles — the congestion tail.
    pub p99_latency_cycles: u64,
    /// Maximum delivery latency in cycles (the paper's Table II latency).
    pub max_latency_cycles: u64,
    /// Delivered AER packets per millisecond of SNN time.
    pub throughput_aer_per_ms: f64,
    /// Fraction of spikes arriving out of order at their destination
    /// crossbar, in `[0, 1]`.
    pub disorder_fraction: f64,
    /// Average over (source neuron, destination crossbar) streams of the
    /// maximum |ISI(sent) − ISI(received)| in cycles.
    pub avg_isi_distortion_cycles: f64,
    /// Maximum ISI distortion across all streams, in cycles.
    pub max_isi_distortion_cycles: u64,
    /// Interconnect (global-synapse) energy in picojoules.
    pub global_energy_pj: f64,
    /// Raw event counters.
    pub counters: Counters,
    /// Per-VC counters, one entry per virtual channel — empty (and
    /// omitted from the serialized form, keeping single-VC digests
    /// byte-identical to the pre-VC wire shape) when the simulation ran
    /// with `vc_count == 1`.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub per_vc: Vec<VcCounters>,
    /// Event-scheduler counters — attached only when
    /// [`crate::config::NocConfig::sched_stats`] is enabled (and omitted
    /// from the serialized form otherwise, keeping every default-config
    /// digest byte-identical to the pre-scheduler wire shape).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sched: Option<SchedCounters>,
}

impl NocStats {
    /// Computes all statistics from the delivery log.
    ///
    /// `duration_steps` is the SNN duration in timesteps; with
    /// `cycles_per_step` it fixes the wall-clock the throughput is
    /// normalized by (1 step = 1 ms).
    pub fn from_deliveries(
        deliveries: &[Delivery],
        counters: Counters,
        energy: &EnergyModel,
        flits_per_packet: u32,
        duration_steps: u32,
        cycles_per_step: u64,
    ) -> Self {
        let delivered = deliveries.len() as u64;
        let total_cycles = deliveries
            .iter()
            .map(|d| d.deliver_cycle)
            .max()
            .unwrap_or(0);
        // one latency pass + one sort feed avg, max and both percentiles
        // (summing before the sort — u64 addition is order-independent)
        let mut lat: Vec<u64> = deliveries.iter().map(|d| d.latency()).collect();
        let avg_latency = if delivered == 0 {
            0.0
        } else {
            lat.iter().sum::<u64>() as f64 / delivered as f64
        };
        lat.sort_unstable();
        let max_latency = lat.last().copied().unwrap_or(0);
        let (p50, p99) = percentiles_of_sorted(&lat);

        let duration_ms = duration_steps.max(1) as f64;
        let throughput = delivered as f64 / duration_ms;

        let disorder = disorder_fraction(deliveries);
        let (avg_isi, max_isi) = isi_distortion(deliveries);

        let global_energy_pj = energy.packet_energy_total(&counters, flits_per_packet);

        Self {
            delivered,
            total_cycles: total_cycles.max(duration_steps as u64 * cycles_per_step),
            avg_latency_cycles: avg_latency,
            p50_latency_cycles: p50,
            p99_latency_cycles: p99,
            max_latency_cycles: max_latency,
            throughput_aer_per_ms: throughput,
            disorder_fraction: disorder,
            avg_isi_distortion_cycles: avg_isi,
            max_isi_distortion_cycles: max_isi,
            global_energy_pj,
            counters,
            per_vc: Vec::new(),
            sched: None,
        }
    }

    /// Attaches per-VC counters (builder style). The engines pass an
    /// empty vector for single-VC runs so the serialized shape — and
    /// therefore [`NocStats::digest`] — stays byte-identical to the
    /// pre-VC engines.
    pub fn with_per_vc(mut self, per_vc: Vec<VcCounters>) -> Self {
        self.per_vc = per_vc;
        self
    }

    /// Attaches scheduler counters (builder style). The event engine only
    /// calls this when [`crate::config::NocConfig::sched_stats`] is set,
    /// so the serialized shape — and therefore [`NocStats::digest`] —
    /// is unchanged for every pre-existing configuration.
    pub fn with_sched(mut self, sched: SchedCounters) -> Self {
        self.sched = Some(sched);
        self
    }

    /// Canonical (compact) JSON serialization — the byte string
    /// [`NocStats::digest`] hashes.
    ///
    /// # Errors
    ///
    /// [`NocError::Serialization`] if the serializer fails (it cannot for
    /// the current field set, but library code must not panic on it).
    pub fn to_json(&self) -> Result<String, NocError> {
        serde_json::to_string(self).map_err(|e| NocError::Serialization {
            context: "NocStats",
            detail: e.to_string(),
        })
    }

    /// FNV-1a digest of the canonical JSON serialization.
    ///
    /// Two statistics blocks digest equal iff their serialized bytes are
    /// identical — including the exact bit patterns of the float fields.
    /// The differential test suite and `BENCH_noc.json` use this to assert
    /// that the event-driven engine and the cycle-driven oracle agree
    /// byte-for-byte, not merely approximately.
    ///
    /// # Errors
    ///
    /// Propagates [`NocError::Serialization`] from [`NocStats::to_json`].
    pub fn digest(&self) -> Result<u64, NocError> {
        let json = self.to_json()?;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Ok(h)
    }
}

/// Energy helpers on top of the raw counters.
trait EnergyExt {
    fn packet_energy_total(&self, counters: &Counters, flits_per_packet: u32) -> f64;
}

impl EnergyExt for EnergyModel {
    fn packet_energy_total(&self, c: &Counters, _flits_per_packet: u32) -> f64 {
        c.packets_injected as f64 * self.encode_pj
            + c.deliveries as f64 * self.decode_pj
            + c.router_traversals as f64 * self.router_hop_pj
            + c.link_flits as f64 * self.link_flit_pj
            + c.buffer_flits as f64 * self.buffer_flit_pj
    }
}

/// Latency percentiles `(p50, p99)` of a delivery log (nearest-rank).
pub fn latency_percentiles(deliveries: &[Delivery]) -> (u64, u64) {
    let mut lat: Vec<u64> = deliveries.iter().map(|d| d.latency()).collect();
    lat.sort_unstable();
    percentiles_of_sorted(&lat)
}

/// Nearest-rank `(p50, p99)` of an already-sorted latency slice.
fn percentiles_of_sorted(lat: &[u64]) -> (u64, u64) {
    if lat.is_empty() {
        return (0, 0);
    }
    let rank = |p: f64| -> u64 {
        let idx = ((p * lat.len() as f64).ceil() as usize).clamp(1, lat.len()) - 1;
        lat[idx]
    };
    (rank(0.50), rank(0.99))
}

/// Fraction of deliveries arriving out of order at their destination.
///
/// Spike order is defined at the SNN level: a spike fired at timestep
/// `t + 1` carries later information than one fired at `t` (spikes within
/// the same timestep are simultaneous — their relative AER serialization
/// order carries no information). Per destination crossbar, deliveries are
/// ordered by send step (ties by inject cycle); each adjacent cross-step
/// pair delivered in inverted order counts once. The fraction is
/// inversions / deliveries — the paper's "fraction of total spikes arriving
/// out of order at the neurons", caused by congestion delaying older
/// spikes past newer ones (the paper's crossbar-arbitration example).
pub fn disorder_fraction(deliveries: &[Delivery]) -> f64 {
    if deliveries.is_empty() {
        return 0.0;
    }
    // one sort groups the per-destination streams in their sorted order
    // at once (the engines call this on every run: a HashMap of
    // per-stream Vecs showed up in the dense-regime bench profile).
    // Packed keys — (dst, step) and (neuron, input index) each fused
    // into one u64 — keep the exact lexicographic order of the field
    // tuple while most comparisons resolve on the first word; the unique
    // index makes the unstable sort reproduce the stable order exactly.
    let mut sorted: Vec<(u64, u64, u64)> = deliveries
        .iter()
        .enumerate()
        .map(|(i, d)| {
            (
                (u64::from(d.dst_crossbar) << 32) | u64::from(d.send_step),
                d.inject_cycle,
                (u64::from(d.source_neuron) << 32) | i as u64,
            )
        })
        .collect();
    sorted.sort_unstable();
    let deliver = |key: &(u64, u64, u64)| deliveries[(key.2 & 0xffff_ffff) as usize].deliver_cycle;
    let inversions = sorted
        .windows(2)
        .filter(|w| {
            let (a, b) = (w[0], w[1]);
            // same dst, strictly later step, delivered earlier
            a.0 >> 32 == b.0 >> 32 && a.0 < b.0 && deliver(&a) > deliver(&b)
        })
        .count() as u64;
    inversions as f64 / deliveries.len() as f64
}

/// ISI distortion per (source neuron, destination crossbar) stream:
/// max |ISI(inject) − ISI(deliver)| in cycles; returns `(mean, max)` over
/// streams with at least two spikes.
pub fn isi_distortion(deliveries: &[Delivery]) -> (f64, u64) {
    // single sort instead of a HashMap of per-stream Vecs (see
    // `disorder_fraction`): streams are the maximal runs sharing
    // `(source_neuron, dst_crossbar)` — packed into one u64 stream key —
    // with times sorted within each run
    let mut sorted: Vec<(u64, u64, u64)> = deliveries
        .iter()
        .map(|d| {
            (
                (u64::from(d.source_neuron) << 32) | u64::from(d.dst_crossbar),
                d.inject_cycle,
                d.deliver_cycle,
            )
        })
        .collect();
    sorted.sort_unstable();
    let mut sum = 0u64;
    let mut count = 0u64;
    let mut global_max = 0u64;
    let mut i = 0;
    while i < sorted.len() {
        let (stream, ..) = sorted[i];
        let mut stream_max = 0u64;
        let mut j = i + 1;
        while j < sorted.len() && sorted[j].0 == stream {
            let (_, ai, ad) = sorted[j - 1];
            let (_, bi, bd) = sorted[j];
            let sent_isi = bi - ai;
            let recv_isi = bd.abs_diff(ad);
            stream_max = stream_max.max(sent_isi.abs_diff(recv_isi));
            j += 1;
        }
        if j > i + 1 {
            sum += stream_max;
            count += 1;
            global_max = global_max.max(stream_max);
        }
        i = j;
    }
    let mean = if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64
    };
    (mean, global_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(src: u32, dst: u32, inj: u64, del: u64) -> Delivery {
        Delivery {
            source_neuron: src,
            src_crossbar: 0,
            dst_crossbar: dst,
            send_step: (inj / 100) as u32,
            inject_cycle: inj,
            deliver_cycle: del,
        }
    }

    #[test]
    fn latency_accessor() {
        assert_eq!(d(0, 1, 10, 25).latency(), 15);
    }

    #[test]
    fn constructor_accepts_causal_pairs() {
        let del = Delivery::new(3, 0, 1, 0, 10, 10);
        assert_eq!(del.latency(), 0);
        assert_eq!(Delivery::new(3, 0, 1, 0, 10, 25).latency(), 15);
    }

    #[test]
    #[should_panic(expected = "delivery precedes injection")]
    fn constructor_rejects_inverted_pairs() {
        let _ = Delivery::new(3, 0, 1, 0, 25, 10);
    }

    #[test]
    fn ordered_deliveries_have_zero_disorder() {
        let ds = vec![d(0, 1, 0, 5), d(1, 1, 1, 6), d(2, 1, 2, 7)];
        assert_eq!(disorder_fraction(&ds), 0.0);
    }

    #[test]
    fn inverted_pair_detected() {
        // sent in steps 0 and 1 (fixture derives step = inject/100), the
        // later spike arrives first
        let ds = vec![d(0, 1, 0, 209), d(1, 1, 100, 105)];
        assert!((disorder_fraction(&ds) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_step_reordering_is_not_disorder() {
        // both sent in step 0: sub-step serialization order is free
        let ds = vec![d(0, 1, 0, 9), d(1, 1, 1, 5)];
        assert_eq!(disorder_fraction(&ds), 0.0);
    }

    #[test]
    fn disorder_is_per_destination() {
        // inversion across different destinations doesn't count
        let ds = vec![d(0, 1, 0, 209), d(1, 2, 100, 105)];
        assert_eq!(disorder_fraction(&ds), 0.0);
    }

    #[test]
    fn isi_distortion_of_uniform_delay_is_zero() {
        let ds = vec![d(7, 1, 0, 4), d(7, 1, 100, 104), d(7, 1, 200, 204)];
        let (mean, max) = isi_distortion(&ds);
        assert_eq!(mean, 0.0);
        assert_eq!(max, 0);
    }

    #[test]
    fn isi_distortion_detects_jitter() {
        // second spike delayed 6 extra cycles: recv ISIs 106, 94
        let ds = vec![d(7, 1, 0, 4), d(7, 1, 100, 110), d(7, 1, 200, 204)];
        let (mean, max) = isi_distortion(&ds);
        assert_eq!(max, 6);
        assert!((mean - 6.0).abs() < 1e-12);
    }

    #[test]
    fn single_spike_streams_ignored() {
        let ds = vec![d(1, 1, 0, 5), d(2, 1, 10, 12)];
        let (mean, max) = isi_distortion(&ds);
        assert_eq!((mean, max), (0.0, 0));
    }

    #[test]
    fn stats_assembly() {
        let ds = vec![d(0, 1, 0, 10), d(0, 1, 100, 110)];
        let counters = Counters {
            packets_injected: 2,
            deliveries: 2,
            router_traversals: 4,
            link_flits: 4,
            buffer_flits: 4,
        };
        let em = EnergyModel::default();
        let s = NocStats::from_deliveries(&ds, counters, &em, 2, 1, 1024);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.max_latency_cycles, 10);
        assert!(s.global_energy_pj > 0.0);
        assert!(s.throughput_aer_per_ms > 0.0);
    }

    #[test]
    fn digest_distinguishes_stats() {
        let ds = vec![d(0, 1, 0, 10), d(0, 1, 100, 110)];
        let counters = Counters {
            packets_injected: 2,
            deliveries: 2,
            router_traversals: 4,
            link_flits: 4,
            buffer_flits: 4,
        };
        let em = EnergyModel::default();
        let a = NocStats::from_deliveries(&ds, counters, &em, 2, 1, 1024);
        let b = NocStats::from_deliveries(&ds, counters, &em, 2, 1, 1024);
        assert_eq!(
            a.digest().unwrap(),
            b.digest().unwrap(),
            "identical stats digest equal"
        );
        let c = NocStats::from_deliveries(&ds[..1], counters, &em, 2, 1, 1024);
        assert_ne!(
            a.digest().unwrap(),
            c.digest().unwrap(),
            "different stats digest apart"
        );
        // digest hashes exactly the canonical to_json bytes
        assert!(a.to_json().unwrap().starts_with('{'));
    }

    #[test]
    fn empty_per_vc_is_omitted_from_the_wire_shape() {
        // the single-VC serialized form must not mention per_vc at all —
        // this is what keeps vc_count=1 digests byte-identical to the
        // pre-VC engines
        let ds = vec![d(0, 1, 0, 10)];
        let c = Counters::default();
        let em = EnergyModel::default();
        let s = NocStats::from_deliveries(&ds, c, &em, 2, 1, 1024);
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("per_vc"), "{json}");
        // with per-VC counters attached the field serializes and changes
        // the digest
        let sv = s.clone().with_per_vc(vec![VcCounters::default(); 2]);
        let jv = serde_json::to_string(&sv).unwrap();
        assert!(jv.contains("per_vc"), "{jv}");
        assert_ne!(s.digest().unwrap(), sv.digest().unwrap());
        // and round-trips, including the omitted form
        let back: NocStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let back: NocStats = serde_json::from_str(&jv).unwrap();
        assert_eq!(back, sv);
    }

    #[test]
    fn absent_sched_counters_are_omitted_from_the_wire_shape() {
        // the default-config serialized form must not mention sched at
        // all — this keeps every pre-scheduler digest (including the
        // golden pre-VC digests) byte-identical
        let ds = vec![d(0, 1, 0, 10)];
        let s = NocStats::from_deliveries(
            &ds,
            Counters::default(),
            &EnergyModel::default(),
            2,
            1,
            1024,
        );
        let json = serde_json::to_string(&s).unwrap();
        assert!(!json.contains("sched"), "{json}");
        // attaching the counters serializes them and changes the digest
        let ss = s.clone().with_sched(SchedCounters {
            port_wakes: 7,
            ..SchedCounters::default()
        });
        let js = serde_json::to_string(&ss).unwrap();
        assert!(js.contains("sched"), "{js}");
        assert!(js.contains("port_wakes"), "{js}");
        assert_ne!(s.digest().unwrap(), ss.digest().unwrap());
        // and both forms round-trip
        let back: NocStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let back: NocStats = serde_json::from_str(&js).unwrap();
        assert_eq!(back, ss);
    }

    #[test]
    fn per_vc_counters_fold_into_the_digest() {
        let ds = vec![d(0, 1, 0, 10)];
        let em = EnergyModel::default();
        let base = NocStats::from_deliveries(&ds, Counters::default(), &em, 2, 1, 1024);
        let a = base.clone().with_per_vc(vec![
            VcCounters {
                forwarded: 3,
                ..VcCounters::default()
            },
            VcCounters::default(),
        ]);
        let b = base.with_per_vc(vec![
            VcCounters {
                forwarded: 4,
                ..VcCounters::default()
            },
            VcCounters::default(),
        ]);
        assert_ne!(
            a.digest().unwrap(),
            b.digest().unwrap(),
            "vc traffic split must be visible"
        );
    }

    #[test]
    fn percentiles_nearest_rank() {
        let ds: Vec<Delivery> = (1..=100u64).map(|k| d(0, 1, 0, k)).collect();
        let (p50, p99) = latency_percentiles(&ds);
        assert_eq!(p50, 50);
        assert_eq!(p99, 99);
        assert_eq!(latency_percentiles(&[]), (0, 0));
        let single = vec![d(0, 1, 5, 12)];
        assert_eq!(latency_percentiles(&single), (7, 7));
    }

    #[test]
    fn percentiles_ordered() {
        let ds = vec![d(0, 1, 0, 3), d(1, 1, 0, 30), d(2, 1, 0, 300)];
        let (p50, p99) = latency_percentiles(&ds);
        assert!(p50 <= p99);
    }

    #[test]
    fn energy_scales_with_counters() {
        let em = EnergyModel::default();
        let ds: Vec<Delivery> = Vec::new();
        let small = Counters {
            packets_injected: 1,
            deliveries: 1,
            router_traversals: 1,
            link_flits: 1,
            buffer_flits: 1,
        };
        let large = Counters {
            packets_injected: 10,
            deliveries: 10,
            router_traversals: 10,
            link_flits: 10,
            buffer_flits: 10,
        };
        let s1 = NocStats::from_deliveries(&ds, small, &em, 1, 1, 1);
        let s2 = NocStats::from_deliveries(&ds, large, &em, 1, 1, 1);
        assert!((s2.global_energy_pj - 10.0 * s1.global_energy_pj).abs() < 1e-9);
    }
}
