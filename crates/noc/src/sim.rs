//! The interconnect simulation engines.
//!
//! Two engines share one timing model — input-buffered routers with
//! per-ingress virtual-channel FIFOs, credit-based backpressure per
//! `(ingress, VC)` lane, per-output arbitration (VC round-robin nested in
//! the configured policy), link serialization by packet size,
//! deterministic routing and VC assignment from the
//! [`crate::topology::Topology`], and multicast branch splitting by
//! `(egress port, VC)`:
//!
//! * [`NocSim`] — the **event-driven** production engine. Wakes are
//!   tracked at **(router, output-port) pair** granularity by
//!   [`crate::sched::PortSched`]: an arrival heap keyed by
//!   `(cycle, seq)` plus the injection cursor decide *which cycles* run,
//!   and within an attended cycle a deduplicated ready-set of pair ids
//!   decides *which ports* are examined — a port is visited only when
//!   something that could enable it changed. Runtime scales with the
//!   number of events (injections, hops, head changes, credit releases),
//!   not with simulated cycles × routers × ports — which is what keeps
//!   dense saturated bursts fast, not just sparse spike traffic.
//! * [`oracle::CycleSim`] — the **cycle-driven reference oracle**: the
//!   original engine advancing one cycle at a time and sweeping every
//!   router. Slow but simple enough to audit; the differential test suite
//!   (`tests/noc_properties.rs`) holds the event engine to byte-identical
//!   [`NocStats`] and delivery logs against it.
//!
//! # The per-port wake invariant, and why the outputs are identical
//!
//! In the oracle, output port `o` of router `r` forwards at cycle `t`
//! exactly when, at `r`'s position in the cycle-`t` sweep, three
//! conditions meet: the port is **idle** (`busy_until[o] <= t`), some
//! FIFO head at `r` **wants** an `(o, w)` slot, and the downstream
//! `(ingress, w)` lane has a **free credit**. The event engine gives every
//! pair the dense id `port_base[r] + o`, so ascending pair id *is* the
//! oracle's sweep order, and maintains:
//!
//! > every transition that can switch a pair's three-way conjunction from
//! > false to true schedules a wake for exactly that pair, at exactly the
//! > first cycle and sweep position at which the oracle could act on it.
//!
//! Case by case: **busy → idle** — every forward schedules the pair's own
//! busy expiry at `now + flits`; **want 0 → 1** — a packet becoming a
//! lane head (arrival or injection into an empty lane, or a pop exposing
//! the next packet) installs its route mask and wakes each newly wanted
//! pair; **credit full → free** — a pair that examines a wanted-but-full
//! `(o, w)` sets a *blocked* bit (the wanted-port reverse index), and the
//! full→free transition on that downstream lane (arrival fully stripped,
//! or the downstream head popped) clears the bit and wakes only the
//! blocked upstream pair. The blocked bit cannot go stale: while the
//! credit is full the wanting head cannot leave through `(o, w)`, so the
//! want count stays positive until the very transition that clears the
//! bit. A woken pair that turns out busy is covered by its expiry; one
//! that finds a full credit re-arms its blocked bit — so the invariant is
//! self-sustaining.
//!
//! In-cycle ordering matches the oracle because wakes are
//! position-aware: a wake raised while the sweep is at pair `P` targets
//! pair `q > P` in *this* cycle's ready heap (the oracle's later sweep
//! positions see in-cycle changes), targets `q < P` at `now + 1` (the
//! oracle re-sees it next cycle), and skips `q == P` (that pair just
//! forwarded; its busy expiry re-examines it). Ready-heap pops are
//! therefore strictly ascending within a cycle — the sweep order — and a
//! membership bitset dedups wakes so saturated drains cannot grow the
//! queues past the pair count. Pairs never woken are provable no-ops,
//! skipped cycles change no state, and both engines walk the same state
//! trajectory — bit-for-bit, including round-robin cursors, credit
//! occupancy, and the per-VC counters.
//!
//! Virtual channels do not weaken the argument: the added state (per-VC
//! credits, per-port VC cursors, per-VC statistics) also only changes at
//! forwards and arrivals, both of which schedule wakes, and the VC
//! assignment is a pure function of `(router, destination)` — nothing
//! time-dependent enters the arbitration beyond what already did.

use crate::config::NocConfig;
use crate::error::NocError;
use crate::packet::Packet;
use crate::router::pick_vc;
use crate::sched::{PortSched, TreeTable, PRE_SWEEP};
use crate::stats::{Counters, Delivery, NocStats, SchedCounters, SimTrace, VcCounters};
use crate::topology::{RouteLut, Topology};
use crate::trace::{TraceBuf, TraceEvent};
use crate::traffic::SpikeFlow;
use neuromap_hw::energy::EnergyModel;
use std::collections::VecDeque;

pub mod oracle;

/// Selects which interconnect engine a caller drives.
///
/// The engines are output-identical; the choice only trades speed
/// ([`EngineKind::EventDriven`]) against auditability
/// ([`EngineKind::CycleOracle`], useful for cross-checking and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum EngineKind {
    /// The event-driven production engine ([`NocSim`]).
    #[default]
    EventDriven,
    /// The cycle-driven reference oracle ([`oracle::CycleSim`]).
    CycleOracle,
}

/// A packet in transit on a link, due to arrive at a router.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Arrival {
    pub(crate) cycle: u64,
    pub(crate) seq: u64,
    pub(crate) router: usize,
    /// FIFO *lane* on the receiving router ([`lane`]:
    /// `1 + ingress_port * vc_count + vc`). The lane identifies both
    /// which per-VC FIFO the packet enters and which credit it holds.
    pub(crate) ingress: usize,
    pub(crate) packet: Packet,
}

/// Event-engine arrival: like [`Arrival`] but carrying a slab id instead
/// of the packet, so the arrival queue and the FIFOs move 4-byte handles
/// while the packets themselves stay put in the schedule slab.
struct EvArrival {
    cycle: u64,
    router: usize,
    /// FIFO lane on the receiving router (see [`Arrival::ingress`]).
    ingress: usize,
    pid: u32,
}

/// FIFO-lane index of `(ingress port position, virtual channel)`; lane 0
/// is the VC-less local-injection queue. With one VC this is the classic
/// `1 + position` ingress index, so the layout (and therefore every
/// cursor and credit index) is bit-compatible with the pre-VC engines.
pub(crate) fn lane(position: usize, vc: usize, vc_count: usize) -> usize {
    1 + position * vc_count + vc
}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Rejects flows naming crossbars the topology does not serve.
pub(crate) fn validate_flows(topo: &dyn Topology, flows: &[SpikeFlow]) -> Result<(), NocError> {
    let nc = topo.num_crossbars();
    for f in flows {
        let all = f
            .dst_crossbars
            .iter()
            .chain(std::iter::once(&f.src_crossbar));
        for &c in all {
            if c as usize >= nc {
                return Err(NocError::UnknownCrossbar {
                    crossbar: c,
                    available: nc,
                });
            }
        }
    }
    Ok(())
}

/// Expands flows into an injection schedule: canonical AER-encoder order,
/// one packet per crossbar per cycle. Shared by both engines so the
/// schedules they simulate are one and the same.
pub(crate) fn build_schedule(
    topo: &dyn Topology,
    config: &NocConfig,
    flows: &[SpikeFlow],
) -> Vec<Packet> {
    // canonical order via packed key-index tuples: `(step, src)` and
    // `(neuron, flow index)` each fuse into one u64, so the sort runs on
    // plain integer pairs (no comparator closure). Flows equal in
    // `(step, src, neuron)` still need the dest-set tiebreak to keep the
    // order total — those runs are found and reordered in a second pass
    // (they are rare: same neuron firing twice in one step).
    let mut keys: Vec<(u64, u64)> = flows
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.dst_crossbars.is_empty())
        .map(|(i, f)| {
            (
                (u64::from(f.send_step) << 32) | u64::from(f.src_crossbar),
                (u64::from(f.source_neuron) << 32) | i as u64,
            )
        })
        .collect();
    keys.sort_unstable();
    let flow_of = |key: &(u64, u64)| (key.1 & 0xffff_ffff) as usize;
    let mut s = 0;
    while s < keys.len() {
        let mut e = s + 1;
        while e < keys.len() && keys[e].0 == keys[s].0 && keys[e].1 >> 32 == keys[s].1 >> 32 {
            e += 1;
        }
        if e - s > 1 {
            // stable, so ties equal in dest set too keep their flow order
            // (byte-equal flows — they inject identically either way)
            keys[s..e].sort_by(|a, b| {
                flows[flow_of(a)]
                    .dst_crossbars
                    .cmp(&flows[flow_of(b)].dst_crossbars)
            });
        }
        s = e;
    }

    // canonical pass computes each packet's slot key without building the
    // packet: `(inject cycle, src and neuron packed into one word,
    // generation index)` — the generation is both the stable-order
    // tiebreak and the index into a side table holding what
    // materialization needs. Sorting 24-byte integer triples and
    // constructing every packet once, in final order, replaces the old
    // build-then-permute shuffle.
    let n_slots: usize = if config.multicast {
        keys.len()
    } else {
        keys.iter()
            .map(|k| flows[flow_of(k)].dst_crossbars.len())
            .sum()
    };
    let mut slots: Vec<(u64, u64, u64)> = Vec::with_capacity(n_slots);
    // (spike id, flow index, dest index) per generation
    let mut meta: Vec<(u32, u32, u32)> = Vec::with_capacity(n_slots);
    // per-crossbar rank within the current step window
    let mut rank: Vec<u64> = vec![0; topo.num_crossbars()];
    let mut current_step = u32::MAX;
    for (spike_id, key) in keys.iter().enumerate() {
        let step = (key.0 >> 32) as u32;
        let src = key.0 as u32;
        let neuron = (key.1 >> 32) as u32;
        let fi = flow_of(key) as u32;
        if step != current_step {
            current_step = step;
            rank.iter_mut().for_each(|r| *r = 0);
        }
        let base = u64::from(step) * config.cycles_per_step;
        let n_dests = if config.multicast {
            1
        } else {
            flows[fi as usize].dst_crossbars.len()
        };
        for di in 0..n_dests as u32 {
            let r = &mut rank[src as usize];
            slots.push((
                base + *r,
                (u64::from(src) << 32) | u64::from(neuron),
                meta.len() as u64,
            ));
            meta.push((spike_id as u32, fi, di));
            *r += 1;
        }
    }
    slots.sort_unstable();
    slots
        .into_iter()
        .map(|(inject_cycle, src_neuron, gen)| {
            let (spike_id, fi, di) = meta[gen as usize];
            let f = &flows[fi as usize];
            Packet {
                spike_id: spike_id as u64,
                source_neuron: src_neuron as u32,
                src_crossbar: (src_neuron >> 32) as u32,
                dests: if config.multicast {
                    f.dst_crossbars.clone()
                } else {
                    vec![f.dst_crossbars[di as usize]]
                },
                send_step: f.send_step,
                inject_cycle,
            }
        })
        .collect()
}

/// Delivers (and removes) every destination of `packet` hosted at `router`.
/// With tracing on, each delivery also emits a [`TraceEvent::Delivered`].
pub(crate) fn strip_local(
    hosted: &[u32],
    topo: &dyn Topology,
    router: usize,
    packet: &mut Packet,
    now: u64,
    deliveries: &mut Vec<Delivery>,
    mut events: Option<&mut TraceBuf>,
) {
    debug_assert!(hosted.iter().all(|&k| topo.endpoint(k) == router));
    if packet.dests.iter().all(|d| !hosted.contains(d)) {
        return;
    }
    let (source_neuron, src_crossbar, send_step, inject_cycle, spike_id) = (
        packet.source_neuron,
        packet.src_crossbar,
        packet.send_step,
        packet.inject_cycle,
        packet.spike_id,
    );
    packet.dests.retain(|&d| {
        if hosted.contains(&d) {
            deliveries.push(Delivery::new(
                source_neuron,
                src_crossbar,
                d,
                send_step,
                inject_cycle,
                now,
            ));
            if let Some(t) = events.as_deref_mut() {
                t.push(TraceEvent::Delivered {
                    cycle: now,
                    spike_id,
                    router: router as u32,
                    dst_crossbar: d,
                });
            }
            false
        } else {
            true
        }
    });
}

/// Builds the per-spike Steiner-tree routing table for a schedule, or
/// `None` when tree routing is off (unicast clones, or
/// [`NocConfig::multicast_trees`] unset) — in which case both engines
/// fall back to the destination-indexed unicast route masks, bit-identical
/// to the pre-tree behavior.
///
/// In multicast mode the schedule carries exactly one packet per spike
/// with dense `spike_id`s (`0..schedule.len()`), so the table is indexed
/// directly by spike id. Each destination's tree path is walked from the
/// source router; every hop records `(router, dest) → port * vc_count + vc`
/// with the port found by position in [`Topology::neighbors`] — tree hops
/// need not follow the unicast shortest path, so the route LUT cannot be
/// used here. Shared by both engines so they consume the same trees.
pub(crate) fn build_tree_table(
    topo: &dyn Topology,
    config: &NocConfig,
    schedule: &[Packet],
) -> Option<TreeTable> {
    if !(config.multicast && config.multicast_trees) {
        return None;
    }
    let vcs = config.vc_count;
    let mut per_spike: Vec<Vec<(u64, u16)>> = vec![Vec::new(); schedule.len()];
    for p in schedule {
        let src_router = topo.endpoint(p.src_crossbar);
        let dest_routers: Vec<usize> = p.dests.iter().map(|&d| topo.endpoint(d)).collect();
        let paths = topo.multicast_route(src_router, &dest_routers, vcs);
        let entries = &mut per_spike[p.spike_id as usize];
        for (path, &d) in paths.iter().zip(p.dests.iter()) {
            let mut cur = src_router;
            for &(next, vc) in path {
                let port = topo
                    .neighbors(cur)
                    .iter()
                    .position(|&n| n == next)
                    .expect("tree hop must traverse a link of the topology");
                entries.push((
                    ((cur as u64) << 32) | u64::from(d),
                    (port * vcs + vc) as u16,
                ));
                cur = next;
            }
            debug_assert_eq!(
                cur,
                topo.endpoint(d),
                "tree path must end at the dest router"
            );
        }
    }
    Some(TreeTable::from_spikes(per_spike))
}

/// Per-router runtime state.
struct RouterState {
    /// Input FIFO lanes: lane 0 = local injection, then one lane per
    /// `(ingress port, VC)` pair in [`lane`] order. Lanes queue slab ids
    /// ([`EvArrival::pid`]); the packets live in the schedule slab.
    fifos: Vec<VecDeque<u32>>,
    /// Arbitration cursor per `(output port, VC)`:
    /// `rr_cursor[o * vc_count + vc]`, over FIFO-lane indices.
    rr_cursor: Vec<usize>,
    /// Round-robin cursor over VCs, per output port.
    vc_cursor: Vec<usize>,
    /// Output port busy (serializing) until this cycle (exclusive).
    busy_until: Vec<u64>,
    /// Credits consumed on each ingress FIFO lane of *this* router
    /// (occupancy + packets already in flight toward it).
    credits_used: Vec<usize>,
    /// Packets currently queued across this router's FIFOs.
    queued: usize,
}

/// The event-driven interconnect simulator.
///
/// See the crate-level docs for a usage example, and the module docs for
/// the event model and its equivalence argument against
/// [`oracle::CycleSim`].
pub struct NocSim {
    topo: std::sync::Arc<dyn Topology>,
    config: NocConfig,
    energy: EnergyModel,
    /// Event trace of the last successful run, present iff
    /// [`NocConfig::trace`] was set. See [`NocSim::take_trace`].
    trace: Option<TraceBuf>,
}

impl std::fmt::Debug for NocSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NocSim")
            .field("topology", &self.topo.name())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl NocSim {
    /// Creates a simulator over a topology with the given configuration and
    /// energy model.
    pub fn new(topo: Box<dyn Topology>, config: NocConfig, energy: EnergyModel) -> Self {
        Self::shared(std::sync::Arc::from(topo), config, energy)
    }

    /// Like [`NocSim::new`], but over a *shared* topology: the mapping
    /// pipeline's sweep stages build each router graph once and hand the
    /// same `Arc` to every simulator instance instead of re-deriving the
    /// topology per sweep point.
    pub fn shared(
        topo: std::sync::Arc<dyn Topology>,
        config: NocConfig,
        energy: EnergyModel,
    ) -> Self {
        Self {
            topo,
            config,
            energy,
            trace: None,
        }
    }

    /// The topology in use.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Takes the structured event trace of the last successful run.
    ///
    /// `Some` iff [`NocConfig::trace`] was set and the last run
    /// succeeded; taking it leaves `None` until the next traced run.
    pub fn take_trace(&mut self) -> Option<TraceBuf> {
        self.trace.take()
    }

    /// Runs the spike schedule to completion and returns aggregate
    /// statistics. The SNN duration is inferred from the last send step.
    ///
    /// # Errors
    ///
    /// * [`NocError::InvalidConfig`] for invalid configurations.
    /// * [`NocError::UnknownCrossbar`] for flows naming absent crossbars.
    /// * [`NocError::CycleBudgetExhausted`] if traffic cannot drain.
    pub fn run(&mut self, flows: &[SpikeFlow]) -> Result<NocStats, NocError> {
        let duration = flows.iter().map(|f| f.send_step + 1).max().unwrap_or(1);
        self.run_with_duration(flows, duration)
            .map(|(stats, _)| stats)
    }

    /// Like [`NocSim::run`], but with an explicit SNN duration (timesteps)
    /// and returning the raw delivery log alongside the statistics.
    ///
    /// # Errors
    ///
    /// Same as [`NocSim::run`].
    pub fn run_with_duration(
        &mut self,
        flows: &[SpikeFlow],
        duration_steps: u32,
    ) -> Result<(NocStats, Vec<Delivery>), NocError> {
        self.config.validate()?;
        validate_flows(self.topo.as_ref(), flows)?;
        let schedule = build_schedule(self.topo.as_ref(), &self.config, flows);
        self.trace = None;
        let mut events = self.config.trace.then(|| TraceBuf::new(&self.config));
        let (deliveries, counters, per_vc, sched) =
            self.simulate(schedule, None, events.as_mut())?;
        self.trace = events;
        let mut stats = NocStats::from_deliveries(
            &deliveries,
            counters,
            &self.energy,
            self.config.flits_per_packet,
            duration_steps,
            self.config.cycles_per_step,
        )
        .with_per_vc(per_vc);
        if self.config.sched_stats {
            stats = stats.with_sched(sched);
        }
        Ok((stats, deliveries))
    }

    /// Like [`NocSim::run_with_duration`], but also returning the
    /// scheduler trace ([`SimTrace`]): the attended cycles, the
    /// forward-progress cycles, and the [`SchedCounters`]. The liveness
    /// and wake-bound properties in `tests/noc_properties.rs` compare
    /// these against [`oracle::CycleSim::run_traced`].
    ///
    /// # Errors
    ///
    /// Same as [`NocSim::run`] (the trace is lost on error).
    pub fn run_traced(
        &mut self,
        flows: &[SpikeFlow],
        duration_steps: u32,
    ) -> Result<(NocStats, Vec<Delivery>, SimTrace), NocError> {
        self.config.validate()?;
        validate_flows(self.topo.as_ref(), flows)?;
        let schedule = build_schedule(self.topo.as_ref(), &self.config, flows);
        self.trace = None;
        let mut events = self.config.trace.then(|| TraceBuf::new(&self.config));
        let mut trace = SimTrace::default();
        let (deliveries, counters, per_vc, sched) =
            self.simulate(schedule, Some(&mut trace), events.as_mut())?;
        self.trace = events;
        trace.sched = sched;
        let mut stats = NocStats::from_deliveries(
            &deliveries,
            counters,
            &self.energy,
            self.config.flits_per_packet,
            duration_steps,
            self.config.cycles_per_step,
        )
        .with_per_vc(per_vc);
        if self.config.sched_stats {
            stats = stats.with_sched(sched);
        }
        Ok((stats, deliveries, trace))
    }

    /// The event-driven main loop.
    #[allow(clippy::type_complexity)]
    fn simulate(
        &self,
        schedule: Vec<Packet>,
        mut trace: Option<&mut SimTrace>,
        mut events: Option<&mut TraceBuf>,
    ) -> Result<(Vec<Delivery>, Counters, Vec<VcCounters>, SchedCounters), NocError> {
        let cfg = &self.config;
        let topo = self.topo.as_ref();
        let nr = topo.num_routers();
        let lut = RouteLut::new(topo);
        let vcs = cfg.vc_count;
        let nc = topo.num_crossbars();

        // crossbar → hosting router, and the reverse for arrival stripping
        let endpoint_of: Vec<usize> = (0..nc as u32).map(|k| topo.endpoint(k)).collect();
        let mut hosted: Vec<Vec<u32>> = vec![Vec::new(); nr];
        for (k, &r) in endpoint_of.iter().enumerate() {
            hosted[r].push(k as u32);
        }

        // per-router egress ports: (neighbor, our port position on the
        // neighbor — the downstream lane is derived per VC via `lane`)
        let ports: Vec<Vec<(usize, usize)>> = (0..nr)
            .map(|r| {
                topo.neighbors(r)
                    .iter()
                    .map(|&nbr| {
                        let down_pos = topo
                            .neighbors(nbr)
                            .iter()
                            .position(|&x| x == r)
                            .expect("links are bidirectional");
                        (nbr, down_pos)
                    })
                    .collect()
            })
            .collect();

        // flattened (router, dest crossbar) → wanted (egress port, VC) bit
        // table: one load replaces a route-LUT walk plus a VC-table walk
        // everywhere the engine asks "which (o, w) does dest d leave by".
        // Entries for locally hosted crossbars are never read: arrival
        // stripping removes local dests before any head is installed.
        let mut dest_bit: Vec<u16> = Vec::with_capacity(nr * nc);
        for r in 0..nr {
            for &er in endpoint_of.iter().take(nc) {
                if er == r {
                    dest_bit.push(0);
                } else {
                    let hv = if vcs == 1 { 0 } else { topo.hop_vc(r, er, vcs) };
                    dest_bit.push((lut.egress_port(r, er) as usize * vcs + hv) as u16);
                }
            }
        }
        // per-spike Steiner-tree table (None ⇒ unicast-route masks above)
        let tree = build_tree_table(topo, cfg, &schedule);
        let mut sched = PortSched::new(&ports, vcs, dest_bit, nc, tree);

        let mut routers: Vec<RouterState> = (0..nr)
            .map(|r| {
                let deg = ports[r].len();
                RouterState {
                    fifos: vec![VecDeque::new(); 1 + deg * vcs],
                    rr_cursor: vec![0; deg * vcs],
                    vc_cursor: vec![0; deg],
                    busy_until: vec![0; deg],
                    credits_used: vec![0; 1 + deg * vcs],
                    queued: 0,
                }
            })
            .collect();

        // (port, VC) lanes a whole-active-router sweep would examine, per
        // router — the cost unit of the retired global scheme, accumulated
        // per attended cycle over routers currently holding queued packets
        let lanes_of: Vec<u64> = (0..nr).map(|r| (ports[r].len() * vcs) as u64).collect();
        let mut active_lanes = 0u64;

        // the schedule vector doubles as the packet slab: FIFOs and the
        // arrival queue move u32 slab ids, and a forward that takes every
        // remaining dest re-forwards the same entry with zero packet
        // traffic (only multicast branch points append a new entry)
        let mut slab: Vec<Packet> = schedule;
        // branch appends land past this bound — only the original schedule
        // entries are injection sources
        let num_injections = slab.len();
        let mut next_inject = 0usize;
        // every dest in the schedule becomes exactly one delivery
        let mut deliveries: Vec<Delivery> =
            Vec::with_capacity(slab.iter().map(|p| p.dests.len()).sum());
        let mut counters = Counters::default();
        // per-VC counters, aggregated over all routers; empty (and never
        // updated) in the single-VC case so the serialized statistics
        // stay byte-identical to the pre-VC engines
        let mut per_vc: Vec<VcCounters> = if vcs > 1 {
            vec![VcCounters::default(); vcs]
        } else {
            Vec::new()
        };
        // arrivals are pushed at `now + hop_latency` with `now`
        // nondecreasing, so push order IS arrival order — a plain queue
        // replaces the oracle's arrival heap (no `O(log n)` sift per hop)
        let mut in_transit: VecDeque<EvArrival> = VecDeque::new();
        let mut candidates: Vec<(usize, u64)> = Vec::new();
        let mut queued_packets = 0usize; // packets sitting in any FIFO
        let mut now = 0u64;
        let flits = cfg.flits_per_packet;
        let hop_latency = cfg.hop_latency();

        // consume the slab in inject order (it is already sorted)
        while next_inject < num_injections || queued_packets > 0 || !in_transit.is_empty() {
            if now > cfg.max_cycles {
                return Err(NocError::CycleBudgetExhausted {
                    budget: cfg.max_cycles,
                    in_flight: queued_packets + in_transit.len(),
                });
            }

            // fast-forward across idle gaps — placed after the budget
            // check, like the oracle's, so an event due past the budget is
            // still processed once before the budget fires on the cycle
            // after it
            if queued_packets == 0 {
                let mut jump = u64::MAX;
                if next_inject < num_injections {
                    jump = jump.min(slab[next_inject].inject_cycle);
                }
                if let Some(a) = in_transit.front() {
                    jump = jump.min(a.cycle);
                }
                if jump > now && jump != u64::MAX {
                    now = jump;
                }
            }

            // this cycle is attended: collect pending per-port wakes —
            // next-cycle wakes raised by the previous sweep and every
            // busy expiry due by now — into the ready heap
            sched.begin_cycle(now);
            if let Some(t) = trace.as_deref_mut() {
                t.attended_cycles.push(now);
            }

            // 1. link arrivals due now
            while let Some(a) = in_transit.front() {
                if a.cycle > now {
                    break;
                }
                let a = in_transit.pop_front().expect("peeked");
                counters.router_traversals += 1;
                let packet = &mut slab[a.pid as usize];
                strip_local(
                    &hosted[a.router],
                    topo,
                    a.router,
                    packet,
                    now,
                    &mut deliveries,
                    events.as_deref_mut(),
                );
                if packet.dests.is_empty() {
                    let state = &mut routers[a.router];
                    state.credits_used[a.ingress] -= 1;
                    if state.credits_used[a.ingress] == cfg.buffer_depth - 1 {
                        // full → free: wake the upstream pair if blocked
                        sched.credit_freed(a.router, a.ingress, PRE_SWEEP);
                        if let Some(t) = events.as_deref_mut() {
                            t.credit_freed(now, a.router as u32, a.ingress as u32);
                        }
                    }
                } else {
                    counters.buffer_flits += flits as u64;
                    let state = &mut routers[a.router];
                    state.fifos[a.ingress].push_back(a.pid);
                    debug_assert!(
                        state.fifos[a.ingress].len() <= cfg.buffer_depth,
                        "ingress FIFO overflows its credit-bounded depth"
                    );
                    if vcs > 1 {
                        let vc = &mut per_vc[(a.ingress - 1) % vcs];
                        vc.enqueued += 1;
                        vc.peak_occupancy =
                            vc.peak_occupancy.max(state.fifos[a.ingress].len() as u64);
                    }
                    if let Some(t) = events.as_deref_mut() {
                        t.push(TraceEvent::Enqueued {
                            cycle: now,
                            spike_id: packet.spike_id,
                            router: a.router as u32,
                            lane: a.ingress as u32,
                            occupancy: state.fifos[a.ingress].len() as u32,
                        });
                    }
                    state.queued += 1;
                    if state.queued == 1 {
                        active_lanes += lanes_of[a.router];
                    }
                    queued_packets += 1;
                    if state.fifos[a.ingress].len() == 1 {
                        // the packet became a lane head: install its route
                        // mask and wake the pairs it wants
                        sched.set_head(
                            a.router,
                            a.ingress,
                            packet.spike_id,
                            &packet.dests,
                            packet.inject_cycle,
                            PRE_SWEEP,
                        );
                    }
                    // credit stays consumed until the packet leaves the FIFO
                }
            }

            // 2. injections due now
            while next_inject < num_injections && slab[next_inject].inject_cycle <= now {
                let pid = next_inject as u32;
                next_inject += 1;
                counters.packets_injected += 1;
                counters.router_traversals += 1;
                let p = &mut slab[pid as usize];
                let src_router = endpoint_of[p.src_crossbar as usize];
                if let Some(t) = events.as_deref_mut() {
                    t.push(TraceEvent::Injected {
                        cycle: now,
                        spike_id: p.spike_id,
                        source_neuron: p.source_neuron,
                        src_crossbar: p.src_crossbar,
                        router: src_router as u32,
                    });
                }
                strip_local(
                    &hosted[src_router],
                    topo,
                    src_router,
                    p,
                    now,
                    &mut deliveries,
                    events.as_deref_mut(),
                );
                if !p.dests.is_empty() {
                    let state = &mut routers[src_router];
                    state.fifos[0].push_back(pid);
                    if let Some(t) = events.as_deref_mut() {
                        t.push(TraceEvent::Enqueued {
                            cycle: now,
                            spike_id: p.spike_id,
                            router: src_router as u32,
                            lane: 0,
                            occupancy: state.fifos[0].len() as u32,
                        });
                    }
                    state.queued += 1;
                    if state.queued == 1 {
                        active_lanes += lanes_of[src_router];
                    }
                    queued_packets += 1;
                    if state.fifos[0].len() == 1 {
                        sched.set_head(
                            src_router,
                            0,
                            p.spike_id,
                            &p.dests,
                            p.inject_cycle,
                            PRE_SWEEP,
                        );
                    }
                }
            }
            sched.note_sweep(active_lanes);

            // 3. arbitration & forwarding over woken pairs only. Pops are
            // strictly ascending pair ids — the oracle's sweep order — and
            // a pair that was never woken is a provable no-op (its idle ∧
            // wanted ∧ credit-free conjunction cannot have turned true
            // since it was last examined; see the module docs)
            let mut progress = false;
            while let Some((pair, r, o)) = sched.pop_ready() {
                if routers[r].queued == 0 {
                    // router drained since the wake was raised (e.g. a
                    // stale busy expiry): no heads, so no candidates —
                    // the oracle's no-op sweep of an empty router
                    continue;
                }
                sched.count_visit(pair);
                let (nbr, down_pos) = ports[r][o];
                if routers[r].busy_until[o] > now {
                    // still serializing: its expiry wake re-examines it
                    continue;
                }
                // wake position for anything this pop changes: pairs ahead
                // of `pair` see it this cycle, pairs behind see it next
                let pos = pair + 1;
                // eligible VCs: a candidate head wants (o, w) and the
                // downstream (ingress, w) lane has a free credit. A wanted
                // VC found credit-full arms the blocked bit, so the
                // full→free transition wakes this pair again.
                let mut eligible = 0u32;
                for w in 0..vcs {
                    if !sched.wanted(pair, w) {
                        continue;
                    }
                    if routers[nbr].credits_used[lane(down_pos, w, vcs)] >= cfg.buffer_depth {
                        sched.set_blocked(pair, w);
                        continue; // backpressure on this VC
                    }
                    eligible |= 1 << w;
                }
                let Some(w) = pick_vc(eligible, routers[r].vc_cursor[o]) else {
                    continue;
                };
                // everything below (until the downstream credit take)
                // touches only router `r`: borrow it once
                let state = &mut routers[r];
                let bit = o * vcs + w;
                // candidates: FIFO lanes whose head routes some dest via
                // (o, w), in lane order like the oracle's scan — cut
                // short once the want count says every candidate is found
                candidates.clear();
                let nf = state.fifos.len();
                let mut remaining = sched.want_count(pair, w);
                for fi in 0..nf {
                    if sched.head_wants(r, fi, bit) {
                        candidates.push((fi, sched.head_inject(r, fi)));
                        remaining -= 1;
                        if remaining == 0 {
                            break;
                        }
                    }
                }
                let win_pos = cfg
                    .arbitration
                    .pick(&candidates, state.rr_cursor[bit])
                    .expect("an eligible VC has a candidate");
                let (fi, _) = candidates[win_pos];
                state.rr_cursor[bit] = fi + 1;
                state.vc_cursor[o] = w + 1;
                if vcs > 1 {
                    per_vc[w].forwarded += 1;
                    for (w2, vc_stat) in per_vc.iter_mut().enumerate() {
                        if w2 != w && eligible & (1 << w2) != 0 {
                            vc_stat.arb_losses += 1;
                        }
                    }
                }

                // split off the dests routed via this (port, VC). When
                // every remaining dest leaves here — unicast, and every
                // non-branching multicast hop — the slab entry itself is
                // forwarded: no packet is constructed or moved at all.
                let head_pid = *state.fifos[fi].front().expect("candidate fifo has a head");
                let head_spike = slab[head_pid as usize].spike_id;
                let all = slab[head_pid as usize]
                    .dests
                    .iter()
                    .all(|&d| sched.route_bit(head_spike, r, d) == bit);
                // trace capture: occupancy after a pop, and whether the
                // pop freed our own previously-full ingress lane (emitted
                // after the branch, once the router borrow is released)
                let mut dequeued_occ: Option<u32> = None;
                let mut freed_own = false;
                let branch_pid = if all {
                    state.fifos[fi].pop_front().expect("head exists");
                    if events.is_some() {
                        dequeued_occ = Some(state.fifos[fi].len() as u32);
                    }
                    state.queued -= 1;
                    if state.queued == 0 {
                        active_lanes -= lanes_of[r];
                    }
                    queued_packets -= 1;
                    sched.clear_head(r, fi);
                    if fi > 0 {
                        state.credits_used[fi] -= 1;
                        if state.credits_used[fi] == cfg.buffer_depth - 1 {
                            // full → free on our own ingress lane
                            sched.credit_freed(r, fi, pos);
                            freed_own = true;
                        }
                    }
                    if let Some(&next_pid) = state.fifos[fi].front() {
                        // the pop exposed a new head: install its mask and
                        // wake the pairs it wants
                        let next_head = &slab[next_pid as usize];
                        sched.set_head(
                            r,
                            fi,
                            next_head.spike_id,
                            &next_head.dests,
                            next_head.inject_cycle,
                            pos,
                        );
                    }
                    head_pid
                } else {
                    // multicast split: the head stays, minus this branch
                    let branch = slab[head_pid as usize]
                        .take_dests_where(|d| sched.route_bit(head_spike, r, d) == bit);
                    sched.shrink_head(r, fi, bit);
                    slab.push(branch);
                    (slab.len() - 1) as u32
                };
                if let Some(t) = events.as_deref_mut() {
                    let bp = &slab[branch_pid as usize];
                    t.push(TraceEvent::Forwarded {
                        cycle: now,
                        spike_id: bp.spike_id,
                        router: r as u32,
                        port: o as u32,
                        vc: w as u32,
                        dests: bp.dests.len() as u32,
                    });
                    if let Some(occupancy) = dequeued_occ {
                        t.push(TraceEvent::Dequeued {
                            cycle: now,
                            router: r as u32,
                            lane: fi as u32,
                            occupancy,
                        });
                    }
                    if freed_own {
                        t.credit_freed(now, r as u32, fi as u32);
                    }
                }

                counters.link_flits += flits as u64;
                state.busy_until[o] = now + flits as u64;
                sched.schedule_expiry(now + flits as u64, pair);
                let down_lane = lane(down_pos, w, vcs);
                routers[nbr].credits_used[down_lane] += 1;
                debug_assert!(
                    routers[nbr].credits_used[down_lane] <= cfg.buffer_depth,
                    "credits must never exceed the FIFO depth"
                );
                if routers[nbr].credits_used[down_lane] == cfg.buffer_depth {
                    if let Some(t) = events.as_deref_mut() {
                        t.credit_full(now, nbr as u32, down_lane as u32);
                    }
                }
                progress = true;
                debug_assert!(
                    in_transit
                        .back()
                        .is_none_or(|b| b.cycle <= now + hop_latency),
                    "arrival pushes must stay cycle-ordered"
                );
                in_transit.push_back(EvArrival {
                    cycle: now + hop_latency,
                    router: nbr,
                    ingress: down_lane,
                    pid: branch_pid,
                });
            }
            if progress {
                if let Some(t) = trace.as_deref_mut() {
                    t.progress_cycles.push(now);
                }
            }

            // 4. advance the clock to the next cycle that can matter
            if queued_packets == 0 {
                // empty network: step one cycle like the oracle does, so
                // the budget check lands on the same cycle before the
                // next iteration's fast-forward takes the big jump
                now += 1;
                continue;
            }
            let mut next = u64::MAX;
            if next_inject < num_injections {
                next = next.min(slab[next_inject].inject_cycle);
            }
            if let Some(a) = in_transit.front() {
                next = next.min(a.cycle);
            }
            // wakes raised for pairs the sweep had already passed are due
            // exactly next cycle; everything else that can enable a pair
            // is a busy expiry (every forward scheduled one), an arrival,
            // or an injection — all already in `next`
            if sched.has_next_wakes() {
                next = next.min(now + 1);
            }
            if let Some(e) = sched.next_expiry() {
                next = next.min(e);
            }
            if next == u64::MAX {
                // every queued packet is credit-starved with nothing in
                // flight to free credits: the oracle would idle up to the
                // budget and fail — jump straight to that outcome
                next = cfg.max_cycles + 1;
            }
            debug_assert!(next > now, "the clock must advance every iteration");
            now = next;
        }

        counters.deliveries = deliveries.len() as u64;
        Ok((deliveries, counters, per_vc, sched.counters))
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::CycleSim;
    use super::*;
    use crate::router::Arbitration;
    use crate::topology::{Mesh2D, NocTree, PointToPoint, Star, Torus};

    fn sim(topo: Box<dyn Topology>) -> NocSim {
        NocSim::new(topo, NocConfig::default(), EnergyModel::default())
    }

    #[test]
    fn single_packet_mesh() {
        let mut s = sim(Box::new(Mesh2D::for_crossbars(4)));
        let flows = vec![SpikeFlow::unicast(1, 0, 3, 0)];
        let stats = s.run(&flows).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.counters.packets_injected, 1);
        // 2 hops × (router_delay 1 + flits 2 − 1) = 4 cycles minimum
        assert_eq!(stats.max_latency_cycles, 4);
    }

    #[test]
    fn all_topologies_deliver_everything() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh2D::for_crossbars(8)),
            Box::new(Torus::for_crossbars(8)),
            Box::new(NocTree::new(8, 2)),
            Box::new(Star::new(8)),
            Box::new(PointToPoint::new(8)),
        ];
        let mut flows = Vec::new();
        for step in 0..5u32 {
            for src in 0..8u32 {
                flows.push(SpikeFlow::unicast(src * 100, src, (src + 3) % 8, step));
            }
        }
        for topo in topos {
            let name = topo.name();
            let mut s = sim(topo);
            let stats = s.run(&flows).unwrap();
            assert_eq!(stats.delivered, 40, "{name}");
        }
    }

    #[test]
    fn multicast_injects_fewer_packets_than_unicast() {
        let flows = vec![SpikeFlow::multicast(0, 0, vec![1, 2, 3], 0); 10];
        let run = |multicast: bool| {
            let cfg = NocConfig {
                multicast,
                ..NocConfig::default()
            };
            let mut s = NocSim::new(Box::new(NocTree::new(4, 4)), cfg, EnergyModel::default());
            s.run(&flows).unwrap()
        };
        let mc = run(true);
        let uc = run(false);
        assert_eq!(mc.delivered, 30);
        assert_eq!(uc.delivered, 30);
        assert_eq!(mc.counters.packets_injected, 10);
        assert_eq!(uc.counters.packets_injected, 30);
        assert!(mc.counters.link_flits < uc.counters.link_flits);
        assert!(mc.global_energy_pj < uc.global_energy_pj);
    }

    #[test]
    fn congestion_raises_latency() {
        // many sources all talking to crossbar 0 in the same step
        let burst: Vec<SpikeFlow> = (0..64)
            .map(|i| SpikeFlow::unicast(i, 1 + (i % 7), 0, 0))
            .collect();
        let single = vec![SpikeFlow::unicast(0, 1, 0, 0)];
        let mut s = sim(Box::new(Mesh2D::for_crossbars(8)));
        let lat_burst = s.run(&burst).unwrap().max_latency_cycles;
        let mut s = sim(Box::new(Mesh2D::for_crossbars(8)));
        let lat_single = s.run(&single).unwrap().max_latency_cycles;
        assert!(
            lat_burst > lat_single,
            "congestion must add latency: {lat_burst} !> {lat_single}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let flows: Vec<SpikeFlow> = (0..50)
            .map(|i| SpikeFlow::unicast(i, i % 4, (i + 1) % 4, i / 10))
            .collect();
        let run = || {
            let mut s = sim(Box::new(NocTree::new(4, 2)));
            s.run(&flows).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unknown_crossbar_rejected() {
        let mut s = sim(Box::new(Star::new(2)));
        let err = s.run(&[SpikeFlow::unicast(0, 0, 5, 0)]).unwrap_err();
        assert!(matches!(err, NocError::UnknownCrossbar { crossbar: 5, .. }));
    }

    #[test]
    fn same_crossbar_flow_counts_as_immediate_delivery() {
        // a unicast flow whose destination equals its source is delivered
        // at injection with zero latency (degenerate but legal input)
        let mut s = sim(Box::new(Star::new(3)));
        let stats = s.run(&[SpikeFlow::unicast(0, 1, 1, 0)]).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.max_latency_cycles, 0);
    }

    #[test]
    fn empty_flow_list() {
        let mut s = sim(Box::new(Mesh2D::for_crossbars(4)));
        let stats = s.run(&[]).unwrap();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.avg_latency_cycles, 0.0);
    }

    #[test]
    fn serialization_spreads_same_step_spikes() {
        // 10 spikes from the same crossbar in one step are AER-serialized:
        // inject cycles are consecutive
        let flows: Vec<SpikeFlow> = (0..10).map(|i| SpikeFlow::unicast(i, 0, 1, 0)).collect();
        let mut s = sim(Box::new(PointToPoint::new(2)));
        let (_, deliveries) = s.run_with_duration(&flows, 1).unwrap();
        let mut injects: Vec<u64> = deliveries.iter().map(|d| d.inject_cycle).collect();
        injects.sort_unstable();
        let expected: Vec<u64> = (0..10).collect();
        assert_eq!(injects, expected);
    }

    #[test]
    fn backpressure_does_not_lose_packets() {
        // tiny buffers + heavy burst through one tree root; the in-engine
        // debug assertions also bound credits and FIFO occupancy here
        let cfg = NocConfig {
            buffer_depth: 1,
            ..NocConfig::default()
        };
        let flows: Vec<SpikeFlow> = (0..200)
            .map(|i| SpikeFlow::unicast(i, i % 4, ((i % 4) + 4) % 8, 0))
            .collect();
        let mut s = NocSim::new(Box::new(NocTree::new(8, 2)), cfg, EnergyModel::default());
        let stats = s.run(&flows).unwrap();
        assert_eq!(stats.delivered, 200);
    }

    #[test]
    fn oldest_first_reduces_disorder() {
        // cross traffic from many crossbars to one destination
        let mut flows = Vec::new();
        for step in 0..20u32 {
            for src in 1..9u32 {
                for k in 0..3u32 {
                    flows.push(SpikeFlow::unicast(src * 10 + k, src, 0, step));
                }
            }
        }
        let run = |arb| {
            let cfg = NocConfig {
                arbitration: arb,
                ..NocConfig::default()
            };
            let mut s = NocSim::new(
                Box::new(Mesh2D::for_crossbars(9)),
                cfg,
                EnergyModel::default(),
            );
            s.run(&flows).unwrap().disorder_fraction
        };
        let rr = run(Arbitration::RoundRobin);
        let of = run(Arbitration::OldestFirst);
        assert!(
            of <= rr,
            "oldest-first should not increase disorder: {of} !<= {rr}"
        );
    }

    #[test]
    fn latency_monotone_in_hops_without_congestion() {
        let mut s = sim(Box::new(Mesh2D::grid(4, 1, 4)));
        let near = s.run(&[SpikeFlow::unicast(0, 0, 1, 0)]).unwrap();
        let mut s = sim(Box::new(Mesh2D::grid(4, 1, 4)));
        let far = s.run(&[SpikeFlow::unicast(0, 0, 3, 0)]).unwrap();
        assert!(far.max_latency_cycles > near.max_latency_cycles);
    }

    #[test]
    fn round_robin_serves_every_contending_source() {
        // 4 leaves stream to leaf 0 through the star hub: all traffic
        // contends for the hub's single output port toward leaf 0. Under
        // round-robin no input FIFO may starve — within any window of
        // deliveries, every source keeps making progress.
        let spikes_per_src = 40u32;
        let mut flows = Vec::new();
        for step in 0..spikes_per_src {
            for src in 1..5u32 {
                flows.push(SpikeFlow::unicast(src * 1000 + step, src, 0, step));
            }
        }
        let mut s = NocSim::new(
            Box::new(Star::new(5)),
            NocConfig::default(),
            EnergyModel::default(),
        );
        let (stats, deliveries) = s.run_with_duration(&flows, spikes_per_src).unwrap();
        assert_eq!(stats.delivered, (4 * spikes_per_src) as u64);
        // fairness: in every window of 8 consecutive deliveries at the
        // destination, each of the 4 sources appears at least once
        let order: Vec<u32> = deliveries.iter().map(|d| d.src_crossbar).collect();
        for w in order.windows(8) {
            for src in 1..5u32 {
                assert!(
                    w.contains(&src),
                    "source {src} starved in delivery window {w:?}"
                );
            }
        }
    }

    #[test]
    fn vc_engines_agree_and_split_traffic_smoke() {
        // shallow-FIFO 4x4 torus with 2 VCs under multicast cross-ring
        // traffic: the engines must agree byte-for-byte, the per-VC
        // counters must be populated, and the dateline assignment must
        // actually route packets over both VCs (the cross-crate corpus
        // in tests/noc_properties.rs is the full campaign)
        let mut flows = Vec::new();
        for step in 0..6u32 {
            for src in 0..16u32 {
                flows.push(SpikeFlow::multicast(
                    src * 17 + step,
                    src,
                    vec![(src + 2) % 16, (src + 9) % 16],
                    step,
                ));
            }
        }
        let cfg = NocConfig {
            buffer_depth: 2,
            vc_count: 2,
            ..NocConfig::default()
        };
        let mut ev = NocSim::new(
            Box::new(Torus::for_crossbars(16)),
            cfg,
            EnergyModel::default(),
        );
        let mut or = CycleSim::new(
            Box::new(Torus::for_crossbars(16)),
            cfg,
            EnergyModel::default(),
        );
        let (es, ed) = ev.run_with_duration(&flows, 6).unwrap();
        let (os, od) = or.run_with_duration(&flows, 6).unwrap();
        assert_eq!(ed, od, "delivery logs must be identical");
        assert_eq!(
            es.digest().unwrap(),
            os.digest().unwrap(),
            "stats must be byte-identical"
        );
        assert_eq!(es.per_vc.len(), 2);
        assert!(es.per_vc.iter().all(|v| v.forwarded > 0), "{:?}", es.per_vc);
        assert_eq!(
            es.per_vc.iter().map(|v| v.forwarded).sum::<u64>() * u64::from(cfg.flits_per_packet),
            es.counters.link_flits,
            "per-VC forwards must partition the link traffic"
        );
        assert!(es
            .per_vc
            .iter()
            .all(|v| v.peak_occupancy <= cfg.buffer_depth as u64));
    }

    #[test]
    fn sched_counters_attach_only_when_enabled() {
        let flows: Vec<SpikeFlow> = (0..40)
            .map(|i| SpikeFlow::unicast(i, i % 4, (i + 2) % 8, i / 8))
            .collect();
        let mut s = sim(Box::new(Mesh2D::for_crossbars(8)));
        let default_stats = s.run(&flows).unwrap();
        assert!(default_stats.sched.is_none(), "sched counters are opt-in");

        let cfg = NocConfig {
            sched_stats: true,
            ..NocConfig::default()
        };
        let mut s = NocSim::new(
            Box::new(Mesh2D::for_crossbars(8)),
            cfg,
            EnergyModel::default(),
        );
        let stats = s.run(&flows).unwrap();
        let sched = stats.sched.expect("enabled counters attach");
        assert!(sched.wake_cycles > 0);
        assert!(sched.port_wakes > 0);
        assert!(sched.head_updates > 0);
        // everything except the counter attachment is unchanged
        assert_eq!(stats.delivered, default_stats.delivered);
        assert_eq!(stats.counters, default_stats.counters);
        assert_ne!(stats.digest().unwrap(), default_stats.digest().unwrap());
    }

    #[test]
    fn saturated_drain_keeps_wake_queues_bounded() {
        // the dedup satellite: a hotspot burst into a 4x4 mesh re-wakes
        // the same few pairs thousands of times; the membership bitsets
        // must collapse that to at most one queue entry per pair, so the
        // peak queue sizes stay bounded by the pair count however long
        // the saturated drain runs
        let flows: Vec<SpikeFlow> = (0..600)
            .map(|i| SpikeFlow::unicast(i, 1 + (i % 15), 0, 0))
            .collect();
        let mut s = sim(Box::new(Mesh2D::for_crossbars(16)));
        let (stats, _, trace) = s.run_traced(&flows, 1).unwrap();
        assert_eq!(stats.delivered, 600);
        // 4x4 mesh: 24 bidirectional links → 48 (router, port) pairs
        let pairs = 48;
        assert!(
            trace.sched.peak_ready <= pairs,
            "ready set must stay within the pair count: {} > {pairs}",
            trace.sched.peak_ready
        );
        assert!(
            trace.sched.peak_wake_heap <= 2 * pairs,
            "expiries (≤ pairs) + next-cycle wakes (≤ pairs) exceeded: {}",
            trace.sched.peak_wake_heap
        );
        // and the drain really was saturated enough to exercise dedup
        assert!(trace.sched.port_wakes > 2 * pairs);
    }

    #[test]
    fn traces_agree_between_engines() {
        let mut flows = Vec::new();
        for step in 0..5u32 {
            for src in 0..8u32 {
                flows.push(SpikeFlow::multicast(
                    src * 13 + step,
                    src,
                    vec![(src + 1) % 8, (src + 4) % 8],
                    step,
                ));
            }
        }
        let cfg = NocConfig {
            buffer_depth: 2,
            ..NocConfig::default()
        };
        let mut ev = NocSim::new(Box::new(NocTree::new(8, 2)), cfg, EnergyModel::default());
        let mut or = CycleSim::new(Box::new(NocTree::new(8, 2)), cfg, EnergyModel::default());
        let (es, ed, et) = ev.run_traced(&flows, 5).unwrap();
        let (os, od, ot) = or.run_traced(&flows, 5).unwrap();
        assert_eq!(ed, od);
        assert_eq!(es.digest().unwrap(), os.digest().unwrap());
        assert_eq!(
            et.progress_cycles, ot.progress_cycles,
            "both engines must forward at the same cycles"
        );
        // every progress cycle is an attended cycle, and attended cycles
        // are strictly ascending
        assert!(et.attended_cycles.windows(2).all(|w| w[0] < w[1]));
        let attended: std::collections::HashSet<u64> = et.attended_cycles.iter().copied().collect();
        assert!(et.progress_cycles.iter().all(|c| attended.contains(c)));
    }

    #[test]
    fn single_vc_config_produces_no_per_vc_counters() {
        let mut s = sim(Box::new(Mesh2D::for_crossbars(4)));
        let stats = s.run(&[SpikeFlow::unicast(1, 0, 3, 0)]).unwrap();
        assert!(stats.per_vc.is_empty());
    }

    #[test]
    fn cycle_budget_fires_instead_of_hanging() {
        // traffic that cannot drain within the budget must error out, and
        // both engines must report the identical error
        let cfg = NocConfig {
            max_cycles: 40,
            ..NocConfig::default()
        };
        let flows: Vec<SpikeFlow> = (0..500)
            .map(|i| SpikeFlow::unicast(i, 1 + (i % 7), 0, 0))
            .collect();
        let mut ev = NocSim::new(
            Box::new(Mesh2D::for_crossbars(8)),
            cfg,
            EnergyModel::default(),
        );
        let mut or = CycleSim::new(
            Box::new(Mesh2D::for_crossbars(8)),
            cfg,
            EnergyModel::default(),
        );
        let e = ev.run(&flows).unwrap_err();
        assert!(matches!(
            e,
            NocError::CycleBudgetExhausted { budget: 40, .. }
        ));
        assert_eq!(e, or.run(&flows).unwrap_err());
    }

    #[test]
    fn budget_error_agrees_when_wake_jumps_past_budget() {
        // a lone injection far beyond the budget: the event engine jumps
        // straight over max_cycles and must still fail like the oracle,
        // which walks there cycle by cycle
        let cfg = NocConfig {
            max_cycles: 100,
            cycles_per_step: 1024,
            ..NocConfig::default()
        };
        let flows = vec![SpikeFlow::unicast(0, 0, 3, 5)]; // injects at cycle 5120
        let mut ev = NocSim::new(
            Box::new(Mesh2D::for_crossbars(4)),
            cfg,
            EnergyModel::default(),
        );
        let mut or = CycleSim::new(
            Box::new(Mesh2D::for_crossbars(4)),
            cfg,
            EnergyModel::default(),
        );
        assert_eq!(ev.run(&flows).unwrap_err(), or.run(&flows).unwrap_err());
    }

    #[test]
    fn event_engine_matches_oracle_smoke() {
        // the cross-crate differential proptest corpus is in
        // tests/noc_properties.rs; this is the in-crate smoke version
        let mut flows = Vec::new();
        for step in 0..10u32 {
            for src in 0..8u32 {
                flows.push(SpikeFlow::multicast(
                    src * 31 + step,
                    src,
                    vec![(src + 1) % 8, (src + 3) % 8, (src + 5) % 8],
                    step,
                ));
            }
        }
        let cfg = NocConfig {
            buffer_depth: 2,
            ..NocConfig::default()
        };
        let mut ev = NocSim::new(Box::new(NocTree::new(8, 2)), cfg, EnergyModel::default());
        let mut or = CycleSim::new(Box::new(NocTree::new(8, 2)), cfg, EnergyModel::default());
        let (es, ed) = ev.run_with_duration(&flows, 10).unwrap();
        let (os, od) = or.run_with_duration(&flows, 10).unwrap();
        assert_eq!(ed, od, "delivery logs must be identical");
        assert_eq!(es, os);
        assert_eq!(
            es.digest().unwrap(),
            os.digest().unwrap(),
            "stats must be byte-identical"
        );
    }

    #[test]
    fn event_trace_off_by_default_and_byte_identical_when_on() {
        let mut flows = Vec::new();
        for step in 0..6u32 {
            for src in 0..8u32 {
                flows.push(SpikeFlow::multicast(
                    src * 19 + step,
                    src,
                    vec![(src + 1) % 8, (src + 5) % 8],
                    step,
                ));
            }
        }
        // off (the default): no trace is retained, stats digest unchanged
        let mut plain = sim(Box::new(Mesh2D::for_crossbars(8)));
        let plain_stats = plain.run(&flows).unwrap();
        assert!(plain.take_trace().is_none(), "tracing is opt-in");

        let cfg = NocConfig {
            trace: true,
            ..NocConfig::default()
        };
        let mut ev = NocSim::new(
            Box::new(Mesh2D::for_crossbars(8)),
            cfg,
            EnergyModel::default(),
        );
        let mut or = CycleSim::new(
            Box::new(Mesh2D::for_crossbars(8)),
            cfg,
            EnergyModel::default(),
        );
        let es = ev.run(&flows).unwrap();
        let os = or.run(&flows).unwrap();
        assert_eq!(
            es.digest().unwrap(),
            plain_stats.digest().unwrap(),
            "tracing must not perturb the statistics"
        );
        let et = ev.take_trace().expect("traced run retains events");
        let ot = or.take_trace().expect("traced run retains events");
        assert!(!et.is_empty());
        assert_eq!(
            et.to_bytes(),
            ot.to_bytes(),
            "engines must emit byte-identical event streams"
        );
        assert_eq!(es.digest().unwrap(), os.digest().unwrap());
        // the stream accounts for every injection and delivery
        let injected = et
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Injected { .. }))
            .count() as u64;
        let delivered = et
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Delivered { .. }))
            .count() as u64;
        assert_eq!(injected, es.counters.packets_injected);
        assert_eq!(delivered, es.delivered);
        // a second take returns nothing until the next traced run
        assert!(ev.take_trace().is_none());
    }
}
