//! The interconnect simulation engines.
//!
//! Two engines share one timing model — input-buffered routers with
//! per-ingress virtual-channel FIFOs, credit-based backpressure per
//! `(ingress, VC)` lane, per-output arbitration (VC round-robin nested in
//! the configured policy), link serialization by packet size,
//! deterministic routing and VC assignment from the
//! [`crate::topology::Topology`], and multicast branch splitting by
//! `(egress port, VC)`:
//!
//! * [`NocSim`] — the **event-driven** production engine. A wake list
//!   (arrival heap keyed by `(cycle, seq)`, output-port busy expiries,
//!   the injection cursor) drives the clock straight to the next cycle at
//!   which the cycle-accurate semantics can make progress, and only
//!   routers holding queued packets are swept. Runtime scales with the
//!   number of events (injections, hops, port conflicts), not with the
//!   simulated cycle count — the regime sparse SNN spike traffic lives in.
//! * [`oracle::CycleSim`] — the **cycle-driven reference oracle**: the
//!   original engine advancing one cycle at a time and sweeping every
//!   router. Slow but simple enough to audit; the differential test suite
//!   (`tests/noc_properties.rs`) holds the event engine to byte-identical
//!   [`NocStats`] and delivery logs against it.
//!
//! # Why the outputs are identical, not merely close
//!
//! Between two consecutive wake cycles no router state can change: an
//! output port forwards in the cycle-driven engine only when it is idle,
//! the downstream credit is free, and some input FIFO head routes through
//! it — and each of those conditions last changed at an arrival, an
//! injection, a busy-port expiry, or a forward in the previous sweep (all
//! of which schedule wakes, forwards via the `progress → now + 1` wake).
//! Sweeping a router with empty FIFOs is a no-op, so restricting the
//! sweep to active routers is also exact. The wake set therefore covers
//! every cycle in which the oracle makes progress, skipped cycles are
//! provable no-ops, and both engines walk the same state trajectory —
//! bit-for-bit, including round-robin cursors and credit occupancy.
//!
//! Virtual channels do not weaken the argument: the added state (per-VC
//! credits, per-port VC cursors, per-VC statistics) also only changes at
//! forwards and arrivals, both of which schedule wakes, and the VC
//! assignment is a pure function of `(router, destination)` — nothing
//! time-dependent enters the arbitration beyond what already did.

use crate::config::NocConfig;
use crate::error::NocError;
use crate::packet::Packet;
use crate::router::pick_vc;
use crate::stats::{Counters, Delivery, NocStats, VcCounters};
use crate::topology::{RouteLut, Topology};
use crate::traffic::{sort_canonical, SpikeFlow};
use neuromap_hw::energy::EnergyModel;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

pub mod oracle;

/// Selects which interconnect engine a caller drives.
///
/// The engines are output-identical; the choice only trades speed
/// ([`EngineKind::EventDriven`]) against auditability
/// ([`EngineKind::CycleOracle`], useful for cross-checking and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum EngineKind {
    /// The event-driven production engine ([`NocSim`]).
    #[default]
    EventDriven,
    /// The cycle-driven reference oracle ([`oracle::CycleSim`]).
    CycleOracle,
}

/// A packet in transit on a link, due to arrive at a router.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct Arrival {
    pub(crate) cycle: u64,
    pub(crate) seq: u64,
    pub(crate) router: usize,
    /// FIFO *lane* on the receiving router ([`lane`]:
    /// `1 + ingress_port * vc_count + vc`). The lane identifies both
    /// which per-VC FIFO the packet enters and which credit it holds.
    pub(crate) ingress: usize,
    pub(crate) packet: Packet,
}

/// FIFO-lane index of `(ingress port position, virtual channel)`; lane 0
/// is the VC-less local-injection queue. With one VC this is the classic
/// `1 + position` ingress index, so the layout (and therefore every
/// cursor and credit index) is bit-compatible with the pre-VC engines.
pub(crate) fn lane(position: usize, vc: usize, vc_count: usize) -> usize {
    1 + position * vc_count + vc
}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Rejects flows naming crossbars the topology does not serve.
pub(crate) fn validate_flows(topo: &dyn Topology, flows: &[SpikeFlow]) -> Result<(), NocError> {
    let nc = topo.num_crossbars();
    for f in flows {
        let all = f
            .dst_crossbars
            .iter()
            .chain(std::iter::once(&f.src_crossbar));
        for &c in all {
            if c as usize >= nc {
                return Err(NocError::UnknownCrossbar {
                    crossbar: c,
                    available: nc,
                });
            }
        }
    }
    Ok(())
}

/// Expands flows into an injection schedule: canonical AER-encoder order,
/// one packet per crossbar per cycle. Shared by both engines so the
/// schedules they simulate are one and the same.
pub(crate) fn build_schedule(
    topo: &dyn Topology,
    config: &NocConfig,
    flows: &[SpikeFlow],
) -> Vec<Packet> {
    let mut sorted: Vec<SpikeFlow> = flows
        .iter()
        .filter(|f| !f.dst_crossbars.is_empty())
        .cloned()
        .collect();
    sort_canonical(&mut sorted);

    let mut packets = Vec::new();
    // per-crossbar rank within the current step window
    let mut rank: Vec<u64> = vec![0; topo.num_crossbars()];
    let mut current_step = u32::MAX;
    for (spike_id, f) in sorted.iter().enumerate() {
        let spike_id = spike_id as u64;
        if f.send_step != current_step {
            current_step = f.send_step;
            rank.iter_mut().for_each(|r| *r = 0);
        }
        let base = f.send_step as u64 * config.cycles_per_step;
        if config.multicast {
            let r = &mut rank[f.src_crossbar as usize];
            packets.push(Packet {
                spike_id,
                source_neuron: f.source_neuron,
                src_crossbar: f.src_crossbar,
                dests: f.dst_crossbars.clone(),
                send_step: f.send_step,
                inject_cycle: base + *r,
            });
            *r += 1;
        } else {
            for &d in &f.dst_crossbars {
                let r = &mut rank[f.src_crossbar as usize];
                packets.push(Packet {
                    spike_id,
                    source_neuron: f.source_neuron,
                    src_crossbar: f.src_crossbar,
                    dests: vec![d],
                    send_step: f.send_step,
                    inject_cycle: base + *r,
                });
                *r += 1;
            }
        }
    }
    packets.sort_by_key(|p| (p.inject_cycle, p.src_crossbar, p.source_neuron));
    packets
}

/// Delivers (and removes) every destination of `packet` hosted at `router`.
pub(crate) fn strip_local(
    hosted: &[u32],
    topo: &dyn Topology,
    router: usize,
    packet: &mut Packet,
    now: u64,
    deliveries: &mut Vec<Delivery>,
) {
    debug_assert!(hosted.iter().all(|&k| topo.endpoint(k) == router));
    if packet.dests.iter().all(|d| !hosted.contains(d)) {
        return;
    }
    packet.dests.retain(|&d| {
        if hosted.contains(&d) {
            deliveries.push(Delivery {
                source_neuron: packet.source_neuron,
                src_crossbar: packet.src_crossbar,
                dst_crossbar: d,
                send_step: packet.send_step,
                inject_cycle: packet.inject_cycle,
                deliver_cycle: now,
            });
            false
        } else {
            true
        }
    });
}

/// Per-router runtime state.
struct RouterState {
    /// Input FIFO lanes: lane 0 = local injection, then one lane per
    /// `(ingress port, VC)` pair in [`lane`] order.
    fifos: Vec<VecDeque<Packet>>,
    /// Arbitration cursor per `(output port, VC)`:
    /// `rr_cursor[o * vc_count + vc]`, over FIFO-lane indices.
    rr_cursor: Vec<usize>,
    /// Round-robin cursor over VCs, per output port.
    vc_cursor: Vec<usize>,
    /// Output port busy (serializing) until this cycle (exclusive).
    busy_until: Vec<u64>,
    /// Credits consumed on each ingress FIFO lane of *this* router
    /// (occupancy + packets already in flight toward it).
    credits_used: Vec<usize>,
    /// Packets currently queued across this router's FIFOs.
    queued: usize,
}

/// The event-driven interconnect simulator.
///
/// See the crate-level docs for a usage example, and the module docs for
/// the event model and its equivalence argument against
/// [`oracle::CycleSim`].
pub struct NocSim {
    topo: std::sync::Arc<dyn Topology>,
    config: NocConfig,
    energy: EnergyModel,
}

impl std::fmt::Debug for NocSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NocSim")
            .field("topology", &self.topo.name())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl NocSim {
    /// Creates a simulator over a topology with the given configuration and
    /// energy model.
    pub fn new(topo: Box<dyn Topology>, config: NocConfig, energy: EnergyModel) -> Self {
        Self::shared(std::sync::Arc::from(topo), config, energy)
    }

    /// Like [`NocSim::new`], but over a *shared* topology: the mapping
    /// pipeline's sweep stages build each router graph once and hand the
    /// same `Arc` to every simulator instance instead of re-deriving the
    /// topology per sweep point.
    pub fn shared(
        topo: std::sync::Arc<dyn Topology>,
        config: NocConfig,
        energy: EnergyModel,
    ) -> Self {
        Self {
            topo,
            config,
            energy,
        }
    }

    /// The topology in use.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Runs the spike schedule to completion and returns aggregate
    /// statistics. The SNN duration is inferred from the last send step.
    ///
    /// # Errors
    ///
    /// * [`NocError::InvalidConfig`] for invalid configurations.
    /// * [`NocError::UnknownCrossbar`] for flows naming absent crossbars.
    /// * [`NocError::CycleBudgetExhausted`] if traffic cannot drain.
    pub fn run(&mut self, flows: &[SpikeFlow]) -> Result<NocStats, NocError> {
        let duration = flows.iter().map(|f| f.send_step + 1).max().unwrap_or(1);
        self.run_with_duration(flows, duration)
            .map(|(stats, _)| stats)
    }

    /// Like [`NocSim::run`], but with an explicit SNN duration (timesteps)
    /// and returning the raw delivery log alongside the statistics.
    ///
    /// # Errors
    ///
    /// Same as [`NocSim::run`].
    pub fn run_with_duration(
        &mut self,
        flows: &[SpikeFlow],
        duration_steps: u32,
    ) -> Result<(NocStats, Vec<Delivery>), NocError> {
        self.config.validate()?;
        validate_flows(self.topo.as_ref(), flows)?;
        let schedule = build_schedule(self.topo.as_ref(), &self.config, flows);
        let (deliveries, counters, per_vc) = self.simulate(schedule)?;
        let stats = NocStats::from_deliveries(
            &deliveries,
            counters,
            &self.energy,
            self.config.flits_per_packet,
            duration_steps,
            self.config.cycles_per_step,
        )
        .with_per_vc(per_vc);
        Ok((stats, deliveries))
    }

    /// The event-driven main loop.
    #[allow(clippy::type_complexity)]
    fn simulate(
        &self,
        schedule: Vec<Packet>,
    ) -> Result<(Vec<Delivery>, Counters, Vec<VcCounters>), NocError> {
        let cfg = &self.config;
        let topo = self.topo.as_ref();
        let nr = topo.num_routers();
        let lut = RouteLut::new(topo);
        let vcs = cfg.vc_count;
        // flattened VC routing table (the VC of the hop leaving r toward
        // destination router d); empty in the single-VC fast case
        let vc_lut: Vec<u8> = if vcs > 1 {
            let mut t = Vec::with_capacity(nr * nr);
            for r in 0..nr {
                for d in 0..nr {
                    t.push(topo.hop_vc(r, d, vcs) as u8);
                }
            }
            t
        } else {
            Vec::new()
        };
        let hop_vc = |r: usize, dst_router: usize| -> usize {
            if vcs == 1 {
                0
            } else {
                vc_lut[r * nr + dst_router] as usize
            }
        };

        // crossbar → hosting router, and the reverse for arrival stripping
        let endpoint_of: Vec<usize> = (0..topo.num_crossbars() as u32)
            .map(|k| topo.endpoint(k))
            .collect();
        let mut hosted: Vec<Vec<u32>> = vec![Vec::new(); nr];
        for (k, &r) in endpoint_of.iter().enumerate() {
            hosted[r].push(k as u32);
        }

        // per-router egress ports: (neighbor, our port position on the
        // neighbor — the downstream lane is derived per VC via `lane`)
        let ports: Vec<Vec<(usize, usize)>> = (0..nr)
            .map(|r| {
                topo.neighbors(r)
                    .iter()
                    .map(|&nbr| {
                        let down_pos = topo
                            .neighbors(nbr)
                            .iter()
                            .position(|&x| x == r)
                            .expect("links are bidirectional");
                        (nbr, down_pos)
                    })
                    .collect()
            })
            .collect();

        let mut routers: Vec<RouterState> = (0..nr)
            .map(|r| {
                let deg = ports[r].len();
                RouterState {
                    fifos: vec![VecDeque::new(); 1 + deg * vcs],
                    rr_cursor: vec![0; deg * vcs],
                    vc_cursor: vec![0; deg],
                    busy_until: vec![0; deg],
                    credits_used: vec![0; 1 + deg * vcs],
                    queued: 0,
                }
            })
            .collect();

        let mut deliveries: Vec<Delivery> = Vec::new();
        let mut counters = Counters::default();
        // per-VC counters, aggregated over all routers; empty (and never
        // updated) in the single-VC case so the serialized statistics
        // stay byte-identical to the pre-VC engines
        let mut per_vc: Vec<VcCounters> = if vcs > 1 {
            vec![VcCounters::default(); vcs]
        } else {
            Vec::new()
        };
        let mut in_transit: BinaryHeap<Reverse<Arrival>> = BinaryHeap::new();
        // output-port busy expiries; lazily drained, duplicates harmless
        let mut busy_wakes: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        // routers with at least one queued packet, swept in ascending order
        let mut active: BTreeSet<usize> = BTreeSet::new();
        let mut sweep: Vec<usize> = Vec::new();
        let mut candidates: Vec<(usize, u64)> = Vec::new();
        // per-FIFO-lane scratch for the sweep: wanted-(egress, VC) bitmask
        // and inject cycle (mask path taken when deg × vcs fits in 128)
        let max_fifos = (0..nr).map(|r| 1 + ports[r].len() * vcs).max().unwrap_or(1);
        let mut masks: Vec<u128> = vec![0; max_fifos];
        let mut injects: Vec<u64> = vec![0; max_fifos];
        let mut seq = 0u64;
        let mut next_inject = 0usize;
        let mut queued_packets = 0usize; // packets sitting in any FIFO
        let mut now = 0u64;
        let flits = cfg.flits_per_packet;
        let hop_latency = cfg.hop_latency();

        let total = schedule.len();
        while next_inject < total || queued_packets > 0 || !in_transit.is_empty() {
            if now > cfg.max_cycles {
                return Err(NocError::CycleBudgetExhausted {
                    budget: cfg.max_cycles,
                    in_flight: queued_packets + in_transit.len(),
                });
            }

            // fast-forward across idle gaps — placed after the budget
            // check, like the oracle's, so an event due past the budget is
            // still processed once before the budget fires on the cycle
            // after it
            if queued_packets == 0 {
                let mut jump = u64::MAX;
                if next_inject < total {
                    jump = jump.min(schedule[next_inject].inject_cycle);
                }
                if let Some(Reverse(a)) = in_transit.peek() {
                    jump = jump.min(a.cycle);
                }
                if jump > now && jump != u64::MAX {
                    now = jump;
                }
            }

            // 1. link arrivals due now
            while let Some(Reverse(a)) = in_transit.peek() {
                if a.cycle > now {
                    break;
                }
                let Reverse(mut a) = in_transit.pop().expect("peeked");
                counters.router_traversals += 1;
                strip_local(
                    &hosted[a.router],
                    topo,
                    a.router,
                    &mut a.packet,
                    now,
                    &mut deliveries,
                );
                if a.packet.dests.is_empty() {
                    routers[a.router].credits_used[a.ingress] -= 1;
                } else {
                    counters.buffer_flits += flits as u64;
                    let state = &mut routers[a.router];
                    state.fifos[a.ingress].push_back(a.packet);
                    debug_assert!(
                        state.fifos[a.ingress].len() <= cfg.buffer_depth,
                        "ingress FIFO overflows its credit-bounded depth"
                    );
                    if vcs > 1 {
                        let vc = &mut per_vc[(a.ingress - 1) % vcs];
                        vc.enqueued += 1;
                        vc.peak_occupancy =
                            vc.peak_occupancy.max(state.fifos[a.ingress].len() as u64);
                    }
                    state.queued += 1;
                    queued_packets += 1;
                    active.insert(a.router);
                    // credit stays consumed until the packet leaves the FIFO
                }
            }

            // 2. injections due now
            while next_inject < total && schedule[next_inject].inject_cycle <= now {
                let mut p = schedule[next_inject].clone();
                next_inject += 1;
                counters.packets_injected += 1;
                counters.router_traversals += 1;
                let src_router = endpoint_of[p.src_crossbar as usize];
                strip_local(
                    &hosted[src_router],
                    topo,
                    src_router,
                    &mut p,
                    now,
                    &mut deliveries,
                );
                if !p.dests.is_empty() {
                    routers[src_router].fifos[0].push_back(p);
                    routers[src_router].queued += 1;
                    queued_packets += 1;
                    active.insert(src_router);
                }
            }

            // 3. arbitration & forwarding over active routers only — a
            // router with empty FIFOs offers no candidates, so skipping it
            // is exactly the oracle's no-op sweep of that router
            let mut progress = false;
            sweep.clear();
            sweep.extend(active.iter().copied());
            for &r in &sweep {
                let deg = ports[r].len();
                let nf = 1 + deg * vcs;
                // wanted-(port, VC) bitmask per FIFO-lane head (bit
                // `o * vcs + w`); recomputed whenever a forward changes a
                // head, so later ports in this cycle see exactly what the
                // oracle's per-port rescan would see
                let use_masks = deg * vcs <= 128;
                let head_mask = |head: &Packet| -> u128 {
                    head.dests.iter().fold(0u128, |m, &d| {
                        let er = endpoint_of[d as usize];
                        m | 1u128 << (lut.egress_port(r, er) as usize * vcs + hop_vc(r, er))
                    })
                };
                if use_masks {
                    for fi in 0..nf {
                        match routers[r].fifos[fi].front() {
                            Some(head) => {
                                masks[fi] = head_mask(head);
                                injects[fi] = head.inject_cycle;
                            }
                            None => masks[fi] = 0,
                        }
                    }
                }
                for (o, &(nbr, down_pos)) in ports[r].iter().enumerate() {
                    if routers[r].busy_until[o] > now {
                        continue;
                    }
                    // eligible VCs: a candidate head wants (o, w) and the
                    // downstream (ingress, w) lane has a free credit —
                    // with one VC this is exactly the pre-VC "skip the
                    // port when the downstream FIFO is credit-full"
                    let mut eligible = 0u32;
                    for w in 0..vcs {
                        if routers[nbr].credits_used[lane(down_pos, w, vcs)] >= cfg.buffer_depth {
                            continue; // backpressure on this VC
                        }
                        let wanted = if use_masks {
                            let bit = 1u128 << (o * vcs + w);
                            (0..nf).any(|fi| masks[fi] & bit != 0)
                        } else {
                            routers[r].fifos.iter().any(|fifo| {
                                fifo.front().is_some_and(|head| {
                                    head.dests.iter().any(|&d| {
                                        let er = endpoint_of[d as usize];
                                        lut.egress_port(r, er) == o as u32 && hop_vc(r, er) == w
                                    })
                                })
                            })
                        };
                        if wanted {
                            eligible |= 1 << w;
                        }
                    }
                    let Some(w) = pick_vc(eligible, routers[r].vc_cursor[o]) else {
                        continue;
                    };
                    // candidates: FIFO lanes whose head routes some dest
                    // via (o, w)
                    candidates.clear();
                    if use_masks {
                        let bit = 1u128 << (o * vcs + w);
                        for fi in 0..nf {
                            if masks[fi] & bit != 0 {
                                candidates.push((fi, injects[fi]));
                            }
                        }
                    } else {
                        for (fi, fifo) in routers[r].fifos.iter().enumerate() {
                            if let Some(head) = fifo.front() {
                                if head.dests.iter().any(|&d| {
                                    let er = endpoint_of[d as usize];
                                    lut.egress_port(r, er) == o as u32 && hop_vc(r, er) == w
                                }) {
                                    candidates.push((fi, head.inject_cycle));
                                }
                            }
                        }
                    }
                    let win_pos = cfg
                        .arbitration
                        .pick(&candidates, routers[r].rr_cursor[o * vcs + w])
                        .expect("an eligible VC has a candidate");
                    let (fi, _) = candidates[win_pos];
                    routers[r].rr_cursor[o * vcs + w] = fi + 1;
                    routers[r].vc_cursor[o] = w + 1;
                    if vcs > 1 {
                        per_vc[w].forwarded += 1;
                        for (w2, vc_stat) in per_vc.iter_mut().enumerate() {
                            if w2 != w && eligible & (1 << w2) != 0 {
                                vc_stat.arb_losses += 1;
                            }
                        }
                    }

                    // split off the dests routed via this (port, VC)
                    let head = routers[r].fifos[fi]
                        .front_mut()
                        .expect("candidate fifo has a head");
                    let branch = head.take_dests_where(|d| {
                        let er = endpoint_of[d as usize];
                        lut.egress_port(r, er) == o as u32 && hop_vc(r, er) == w
                    });
                    if head.dests.is_empty() {
                        routers[r].fifos[fi].pop_front().expect("head exists");
                        routers[r].queued -= 1;
                        queued_packets -= 1;
                        if fi > 0 {
                            routers[r].credits_used[fi] -= 1;
                        }
                    }
                    if use_masks {
                        match routers[r].fifos[fi].front() {
                            Some(head) => {
                                masks[fi] = head_mask(head);
                                injects[fi] = head.inject_cycle;
                            }
                            None => masks[fi] = 0,
                        }
                    }

                    counters.link_flits += flits as u64;
                    routers[r].busy_until[o] = now + flits as u64;
                    busy_wakes.push(Reverse(now + flits as u64));
                    let down_lane = lane(down_pos, w, vcs);
                    routers[nbr].credits_used[down_lane] += 1;
                    debug_assert!(
                        routers[nbr].credits_used[down_lane] <= cfg.buffer_depth,
                        "credits must never exceed the FIFO depth"
                    );
                    seq += 1;
                    progress = true;
                    in_transit.push(Reverse(Arrival {
                        cycle: now + hop_latency,
                        seq,
                        router: nbr,
                        ingress: down_lane,
                        packet: branch,
                    }));
                }
                if routers[r].queued == 0 {
                    active.remove(&r);
                }
            }

            // 4. advance the clock to the next cycle that can matter
            if queued_packets == 0 {
                // empty network: step one cycle like the oracle does, so
                // the budget check lands on the same cycle before the
                // next iteration's fast-forward takes the big jump
                now += 1;
                continue;
            }
            let mut next = u64::MAX;
            if next_inject < total {
                next = next.min(schedule[next_inject].inject_cycle);
            }
            if let Some(Reverse(a)) = in_transit.peek() {
                next = next.min(a.cycle);
            }
            // a forward changed credits/FIFO heads that earlier-swept
            // routers can only react to next cycle; otherwise the next
            // possible change is a busy port falling idle
            if progress {
                next = next.min(now + 1);
            }
            while matches!(busy_wakes.peek(), Some(&Reverse(w)) if w <= now) {
                busy_wakes.pop();
            }
            if let Some(&Reverse(w)) = busy_wakes.peek() {
                next = next.min(w);
            }
            if next == u64::MAX {
                // every queued packet is credit-starved with nothing in
                // flight to free credits: the oracle would idle up to the
                // budget and fail — jump straight to that outcome
                next = cfg.max_cycles + 1;
            }
            debug_assert!(next > now, "the clock must advance every iteration");
            now = next;
        }

        counters.deliveries = deliveries.len() as u64;
        Ok((deliveries, counters, per_vc))
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::CycleSim;
    use super::*;
    use crate::router::Arbitration;
    use crate::topology::{Mesh2D, NocTree, PointToPoint, Star, Torus};

    fn sim(topo: Box<dyn Topology>) -> NocSim {
        NocSim::new(topo, NocConfig::default(), EnergyModel::default())
    }

    #[test]
    fn single_packet_mesh() {
        let mut s = sim(Box::new(Mesh2D::for_crossbars(4)));
        let flows = vec![SpikeFlow::unicast(1, 0, 3, 0)];
        let stats = s.run(&flows).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.counters.packets_injected, 1);
        // 2 hops × (router_delay 1 + flits 2 − 1) = 4 cycles minimum
        assert_eq!(stats.max_latency_cycles, 4);
    }

    #[test]
    fn all_topologies_deliver_everything() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh2D::for_crossbars(8)),
            Box::new(Torus::for_crossbars(8)),
            Box::new(NocTree::new(8, 2)),
            Box::new(Star::new(8)),
            Box::new(PointToPoint::new(8)),
        ];
        let mut flows = Vec::new();
        for step in 0..5u32 {
            for src in 0..8u32 {
                flows.push(SpikeFlow::unicast(src * 100, src, (src + 3) % 8, step));
            }
        }
        for topo in topos {
            let name = topo.name();
            let mut s = sim(topo);
            let stats = s.run(&flows).unwrap();
            assert_eq!(stats.delivered, 40, "{name}");
        }
    }

    #[test]
    fn multicast_injects_fewer_packets_than_unicast() {
        let flows = vec![SpikeFlow::multicast(0, 0, vec![1, 2, 3], 0); 10];
        let run = |multicast: bool| {
            let cfg = NocConfig {
                multicast,
                ..NocConfig::default()
            };
            let mut s = NocSim::new(Box::new(NocTree::new(4, 4)), cfg, EnergyModel::default());
            s.run(&flows).unwrap()
        };
        let mc = run(true);
        let uc = run(false);
        assert_eq!(mc.delivered, 30);
        assert_eq!(uc.delivered, 30);
        assert_eq!(mc.counters.packets_injected, 10);
        assert_eq!(uc.counters.packets_injected, 30);
        assert!(mc.counters.link_flits < uc.counters.link_flits);
        assert!(mc.global_energy_pj < uc.global_energy_pj);
    }

    #[test]
    fn congestion_raises_latency() {
        // many sources all talking to crossbar 0 in the same step
        let burst: Vec<SpikeFlow> = (0..64)
            .map(|i| SpikeFlow::unicast(i, 1 + (i % 7), 0, 0))
            .collect();
        let single = vec![SpikeFlow::unicast(0, 1, 0, 0)];
        let mut s = sim(Box::new(Mesh2D::for_crossbars(8)));
        let lat_burst = s.run(&burst).unwrap().max_latency_cycles;
        let mut s = sim(Box::new(Mesh2D::for_crossbars(8)));
        let lat_single = s.run(&single).unwrap().max_latency_cycles;
        assert!(
            lat_burst > lat_single,
            "congestion must add latency: {lat_burst} !> {lat_single}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let flows: Vec<SpikeFlow> = (0..50)
            .map(|i| SpikeFlow::unicast(i, i % 4, (i + 1) % 4, i / 10))
            .collect();
        let run = || {
            let mut s = sim(Box::new(NocTree::new(4, 2)));
            s.run(&flows).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unknown_crossbar_rejected() {
        let mut s = sim(Box::new(Star::new(2)));
        let err = s.run(&[SpikeFlow::unicast(0, 0, 5, 0)]).unwrap_err();
        assert!(matches!(err, NocError::UnknownCrossbar { crossbar: 5, .. }));
    }

    #[test]
    fn same_crossbar_flow_counts_as_immediate_delivery() {
        // a unicast flow whose destination equals its source is delivered
        // at injection with zero latency (degenerate but legal input)
        let mut s = sim(Box::new(Star::new(3)));
        let stats = s.run(&[SpikeFlow::unicast(0, 1, 1, 0)]).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.max_latency_cycles, 0);
    }

    #[test]
    fn empty_flow_list() {
        let mut s = sim(Box::new(Mesh2D::for_crossbars(4)));
        let stats = s.run(&[]).unwrap();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.avg_latency_cycles, 0.0);
    }

    #[test]
    fn serialization_spreads_same_step_spikes() {
        // 10 spikes from the same crossbar in one step are AER-serialized:
        // inject cycles are consecutive
        let flows: Vec<SpikeFlow> = (0..10).map(|i| SpikeFlow::unicast(i, 0, 1, 0)).collect();
        let mut s = sim(Box::new(PointToPoint::new(2)));
        let (_, deliveries) = s.run_with_duration(&flows, 1).unwrap();
        let mut injects: Vec<u64> = deliveries.iter().map(|d| d.inject_cycle).collect();
        injects.sort_unstable();
        let expected: Vec<u64> = (0..10).collect();
        assert_eq!(injects, expected);
    }

    #[test]
    fn backpressure_does_not_lose_packets() {
        // tiny buffers + heavy burst through one tree root; the in-engine
        // debug assertions also bound credits and FIFO occupancy here
        let cfg = NocConfig {
            buffer_depth: 1,
            ..NocConfig::default()
        };
        let flows: Vec<SpikeFlow> = (0..200)
            .map(|i| SpikeFlow::unicast(i, i % 4, ((i % 4) + 4) % 8, 0))
            .collect();
        let mut s = NocSim::new(Box::new(NocTree::new(8, 2)), cfg, EnergyModel::default());
        let stats = s.run(&flows).unwrap();
        assert_eq!(stats.delivered, 200);
    }

    #[test]
    fn oldest_first_reduces_disorder() {
        // cross traffic from many crossbars to one destination
        let mut flows = Vec::new();
        for step in 0..20u32 {
            for src in 1..9u32 {
                for k in 0..3u32 {
                    flows.push(SpikeFlow::unicast(src * 10 + k, src, 0, step));
                }
            }
        }
        let run = |arb| {
            let cfg = NocConfig {
                arbitration: arb,
                ..NocConfig::default()
            };
            let mut s = NocSim::new(
                Box::new(Mesh2D::for_crossbars(9)),
                cfg,
                EnergyModel::default(),
            );
            s.run(&flows).unwrap().disorder_fraction
        };
        let rr = run(Arbitration::RoundRobin);
        let of = run(Arbitration::OldestFirst);
        assert!(
            of <= rr,
            "oldest-first should not increase disorder: {of} !<= {rr}"
        );
    }

    #[test]
    fn latency_monotone_in_hops_without_congestion() {
        let mut s = sim(Box::new(Mesh2D::grid(4, 1, 4)));
        let near = s.run(&[SpikeFlow::unicast(0, 0, 1, 0)]).unwrap();
        let mut s = sim(Box::new(Mesh2D::grid(4, 1, 4)));
        let far = s.run(&[SpikeFlow::unicast(0, 0, 3, 0)]).unwrap();
        assert!(far.max_latency_cycles > near.max_latency_cycles);
    }

    #[test]
    fn round_robin_serves_every_contending_source() {
        // 4 leaves stream to leaf 0 through the star hub: all traffic
        // contends for the hub's single output port toward leaf 0. Under
        // round-robin no input FIFO may starve — within any window of
        // deliveries, every source keeps making progress.
        let spikes_per_src = 40u32;
        let mut flows = Vec::new();
        for step in 0..spikes_per_src {
            for src in 1..5u32 {
                flows.push(SpikeFlow::unicast(src * 1000 + step, src, 0, step));
            }
        }
        let mut s = NocSim::new(
            Box::new(Star::new(5)),
            NocConfig::default(),
            EnergyModel::default(),
        );
        let (stats, deliveries) = s.run_with_duration(&flows, spikes_per_src).unwrap();
        assert_eq!(stats.delivered, (4 * spikes_per_src) as u64);
        // fairness: in every window of 8 consecutive deliveries at the
        // destination, each of the 4 sources appears at least once
        let order: Vec<u32> = deliveries.iter().map(|d| d.src_crossbar).collect();
        for w in order.windows(8) {
            for src in 1..5u32 {
                assert!(
                    w.contains(&src),
                    "source {src} starved in delivery window {w:?}"
                );
            }
        }
    }

    #[test]
    fn vc_engines_agree_and_split_traffic_smoke() {
        // shallow-FIFO 4x4 torus with 2 VCs under multicast cross-ring
        // traffic: the engines must agree byte-for-byte, the per-VC
        // counters must be populated, and the dateline assignment must
        // actually route packets over both VCs (the cross-crate corpus
        // in tests/noc_properties.rs is the full campaign)
        let mut flows = Vec::new();
        for step in 0..6u32 {
            for src in 0..16u32 {
                flows.push(SpikeFlow::multicast(
                    src * 17 + step,
                    src,
                    vec![(src + 2) % 16, (src + 9) % 16],
                    step,
                ));
            }
        }
        let cfg = NocConfig {
            buffer_depth: 2,
            vc_count: 2,
            ..NocConfig::default()
        };
        let mut ev = NocSim::new(
            Box::new(Torus::for_crossbars(16)),
            cfg,
            EnergyModel::default(),
        );
        let mut or = CycleSim::new(
            Box::new(Torus::for_crossbars(16)),
            cfg,
            EnergyModel::default(),
        );
        let (es, ed) = ev.run_with_duration(&flows, 6).unwrap();
        let (os, od) = or.run_with_duration(&flows, 6).unwrap();
        assert_eq!(ed, od, "delivery logs must be identical");
        assert_eq!(es.digest(), os.digest(), "stats must be byte-identical");
        assert_eq!(es.per_vc.len(), 2);
        assert!(es.per_vc.iter().all(|v| v.forwarded > 0), "{:?}", es.per_vc);
        assert_eq!(
            es.per_vc.iter().map(|v| v.forwarded).sum::<u64>() * u64::from(cfg.flits_per_packet),
            es.counters.link_flits,
            "per-VC forwards must partition the link traffic"
        );
        assert!(es
            .per_vc
            .iter()
            .all(|v| v.peak_occupancy <= cfg.buffer_depth as u64));
    }

    #[test]
    fn single_vc_config_produces_no_per_vc_counters() {
        let mut s = sim(Box::new(Mesh2D::for_crossbars(4)));
        let stats = s.run(&[SpikeFlow::unicast(1, 0, 3, 0)]).unwrap();
        assert!(stats.per_vc.is_empty());
    }

    #[test]
    fn cycle_budget_fires_instead_of_hanging() {
        // traffic that cannot drain within the budget must error out, and
        // both engines must report the identical error
        let cfg = NocConfig {
            max_cycles: 40,
            ..NocConfig::default()
        };
        let flows: Vec<SpikeFlow> = (0..500)
            .map(|i| SpikeFlow::unicast(i, 1 + (i % 7), 0, 0))
            .collect();
        let mut ev = NocSim::new(
            Box::new(Mesh2D::for_crossbars(8)),
            cfg,
            EnergyModel::default(),
        );
        let mut or = CycleSim::new(
            Box::new(Mesh2D::for_crossbars(8)),
            cfg,
            EnergyModel::default(),
        );
        let e = ev.run(&flows).unwrap_err();
        assert!(matches!(
            e,
            NocError::CycleBudgetExhausted { budget: 40, .. }
        ));
        assert_eq!(e, or.run(&flows).unwrap_err());
    }

    #[test]
    fn budget_error_agrees_when_wake_jumps_past_budget() {
        // a lone injection far beyond the budget: the event engine jumps
        // straight over max_cycles and must still fail like the oracle,
        // which walks there cycle by cycle
        let cfg = NocConfig {
            max_cycles: 100,
            cycles_per_step: 1024,
            ..NocConfig::default()
        };
        let flows = vec![SpikeFlow::unicast(0, 0, 3, 5)]; // injects at cycle 5120
        let mut ev = NocSim::new(
            Box::new(Mesh2D::for_crossbars(4)),
            cfg,
            EnergyModel::default(),
        );
        let mut or = CycleSim::new(
            Box::new(Mesh2D::for_crossbars(4)),
            cfg,
            EnergyModel::default(),
        );
        assert_eq!(ev.run(&flows).unwrap_err(), or.run(&flows).unwrap_err());
    }

    #[test]
    fn event_engine_matches_oracle_smoke() {
        // the cross-crate differential proptest corpus is in
        // tests/noc_properties.rs; this is the in-crate smoke version
        let mut flows = Vec::new();
        for step in 0..10u32 {
            for src in 0..8u32 {
                flows.push(SpikeFlow::multicast(
                    src * 31 + step,
                    src,
                    vec![(src + 1) % 8, (src + 3) % 8, (src + 5) % 8],
                    step,
                ));
            }
        }
        let cfg = NocConfig {
            buffer_depth: 2,
            ..NocConfig::default()
        };
        let mut ev = NocSim::new(Box::new(NocTree::new(8, 2)), cfg, EnergyModel::default());
        let mut or = CycleSim::new(Box::new(NocTree::new(8, 2)), cfg, EnergyModel::default());
        let (es, ed) = ev.run_with_duration(&flows, 10).unwrap();
        let (os, od) = or.run_with_duration(&flows, 10).unwrap();
        assert_eq!(ed, od, "delivery logs must be identical");
        assert_eq!(es, os);
        assert_eq!(es.digest(), os.digest(), "stats must be byte-identical");
    }
}
