//! The cycle-driven interconnect simulation engine.
//!
//! Input-buffered routers, credit-based backpressure, per-output
//! arbitration, link serialization by packet size, deterministic routing
//! from the [`crate::topology::Topology`], and multicast branch splitting.
//! The engine fast-forwards across idle gaps (spike traffic is bursty at
//! SNN-timestep boundaries), so runtime scales with traffic, not with the
//! cycle count of the simulated interval.

use crate::config::NocConfig;
use crate::error::NocError;
use crate::packet::Packet;
use crate::stats::{Counters, Delivery, NocStats};
use crate::topology::Topology;
use crate::traffic::{sort_canonical, SpikeFlow};
use neuromap_hw::energy::EnergyModel;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A packet in transit on a link, due to arrive at a router.
#[derive(Debug, PartialEq, Eq)]
struct Arrival {
    cycle: u64,
    seq: u64,
    router: usize,
    ingress: usize,
    packet: Packet,
}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-router runtime state.
struct RouterState {
    /// Input FIFOs: index 0 = local injection, `1 + i` = ingress from
    /// `neighbors[i]`.
    fifos: Vec<VecDeque<Packet>>,
    /// Round-robin cursor per output port.
    rr_cursor: Vec<usize>,
    /// Output port busy (serializing) until this cycle (exclusive).
    busy_until: Vec<u64>,
    /// Credits consumed on each ingress FIFO of *this* router
    /// (occupancy + packets already in flight toward it).
    credits_used: Vec<usize>,
}

/// The interconnect simulator.
///
/// See the crate-level docs for a usage example.
pub struct NocSim {
    topo: Box<dyn Topology>,
    config: NocConfig,
    energy: EnergyModel,
}

impl std::fmt::Debug for NocSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NocSim")
            .field("topology", &self.topo.name())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl NocSim {
    /// Creates a simulator over a topology with the given configuration and
    /// energy model.
    pub fn new(topo: Box<dyn Topology>, config: NocConfig, energy: EnergyModel) -> Self {
        Self {
            topo,
            config,
            energy,
        }
    }

    /// The topology in use.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Runs the spike schedule to completion and returns aggregate
    /// statistics. The SNN duration is inferred from the last send step.
    ///
    /// # Errors
    ///
    /// * [`NocError::InvalidConfig`] for invalid configurations.
    /// * [`NocError::UnknownCrossbar`] for flows naming absent crossbars.
    /// * [`NocError::CycleBudgetExhausted`] if traffic cannot drain.
    pub fn run(&mut self, flows: &[SpikeFlow]) -> Result<NocStats, NocError> {
        let duration = flows.iter().map(|f| f.send_step + 1).max().unwrap_or(1);
        self.run_with_duration(flows, duration)
            .map(|(stats, _)| stats)
    }

    /// Like [`NocSim::run`], but with an explicit SNN duration (timesteps)
    /// and returning the raw delivery log alongside the statistics.
    ///
    /// # Errors
    ///
    /// Same as [`NocSim::run`].
    pub fn run_with_duration(
        &mut self,
        flows: &[SpikeFlow],
        duration_steps: u32,
    ) -> Result<(NocStats, Vec<Delivery>), NocError> {
        self.config.validate()?;
        let nc = self.topo.num_crossbars();
        for f in flows {
            let all = f
                .dst_crossbars
                .iter()
                .chain(std::iter::once(&f.src_crossbar));
            for &c in all {
                if c as usize >= nc {
                    return Err(NocError::UnknownCrossbar {
                        crossbar: c,
                        available: nc,
                    });
                }
            }
        }

        let schedule = self.build_schedule(flows);
        let (deliveries, counters) = self.simulate(schedule)?;
        let stats = NocStats::from_deliveries(
            &deliveries,
            counters,
            &self.energy,
            self.config.flits_per_packet,
            duration_steps,
            self.config.cycles_per_step,
        );
        Ok((stats, deliveries))
    }

    /// Expands flows into an injection schedule: canonical AER-encoder
    /// order, one packet per crossbar per cycle.
    fn build_schedule(&self, flows: &[SpikeFlow]) -> Vec<Packet> {
        let mut sorted: Vec<SpikeFlow> = flows
            .iter()
            .filter(|f| !f.dst_crossbars.is_empty())
            .cloned()
            .collect();
        sort_canonical(&mut sorted);

        let mut packets = Vec::new();
        // per-crossbar rank within the current step window
        let mut rank: Vec<u64> = vec![0; self.topo.num_crossbars()];
        let mut current_step = u32::MAX;
        for (spike_id, f) in sorted.iter().enumerate() {
            let spike_id = spike_id as u64;
            if f.send_step != current_step {
                current_step = f.send_step;
                rank.iter_mut().for_each(|r| *r = 0);
            }
            let base = f.send_step as u64 * self.config.cycles_per_step;
            if self.config.multicast {
                let r = &mut rank[f.src_crossbar as usize];
                packets.push(Packet {
                    spike_id,
                    source_neuron: f.source_neuron,
                    src_crossbar: f.src_crossbar,
                    dests: f.dst_crossbars.clone(),
                    send_step: f.send_step,
                    inject_cycle: base + *r,
                });
                *r += 1;
            } else {
                for &d in &f.dst_crossbars {
                    let r = &mut rank[f.src_crossbar as usize];
                    packets.push(Packet {
                        spike_id,
                        source_neuron: f.source_neuron,
                        src_crossbar: f.src_crossbar,
                        dests: vec![d],
                        send_step: f.send_step,
                        inject_cycle: base + *r,
                    });
                    *r += 1;
                }
            }
        }
        packets.sort_by_key(|p| (p.inject_cycle, p.src_crossbar, p.source_neuron));
        packets
    }

    /// The main event loop.
    fn simulate(&self, schedule: Vec<Packet>) -> Result<(Vec<Delivery>, Counters), NocError> {
        let cfg = &self.config;
        let topo = self.topo.as_ref();
        let nr = topo.num_routers();

        let mut routers: Vec<RouterState> = (0..nr)
            .map(|r| {
                let deg = topo.neighbors(r).len();
                RouterState {
                    fifos: vec![VecDeque::new(); deg + 1],
                    rr_cursor: vec![0; deg],
                    busy_until: vec![0; deg],
                    credits_used: vec![0; deg + 1],
                }
            })
            .collect();

        // crossbars hosted per router, for arrival stripping
        let mut hosted: Vec<Vec<u32>> = vec![Vec::new(); nr];
        for k in 0..topo.num_crossbars() as u32 {
            hosted[topo.endpoint(k)].push(k);
        }

        let mut deliveries: Vec<Delivery> = Vec::new();
        let mut counters = Counters::default();
        let mut in_transit: BinaryHeap<Reverse<Arrival>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut next_inject = 0usize;
        let mut queued_packets = 0usize; // packets sitting in any FIFO
        let mut now = 0u64;
        let flits = cfg.flits_per_packet;
        let hop_latency = (cfg.router_delay + flits - 1).max(1) as u64;

        let total = schedule.len();
        while next_inject < total || queued_packets > 0 || !in_transit.is_empty() {
            if now > cfg.max_cycles {
                return Err(NocError::CycleBudgetExhausted {
                    budget: cfg.max_cycles,
                    in_flight: queued_packets + in_transit.len(),
                });
            }

            // fast-forward across idle gaps
            if queued_packets == 0 {
                let mut jump = u64::MAX;
                if next_inject < total {
                    jump = jump.min(schedule[next_inject].inject_cycle);
                }
                if let Some(Reverse(a)) = in_transit.peek() {
                    jump = jump.min(a.cycle);
                }
                if jump > now && jump != u64::MAX {
                    now = jump;
                }
            }

            // 1. link arrivals due now
            while let Some(Reverse(a)) = in_transit.peek() {
                if a.cycle > now {
                    break;
                }
                let Reverse(mut a) = in_transit.pop().expect("peeked");
                counters.router_traversals += 1;
                strip_local(
                    &hosted[a.router],
                    topo,
                    a.router,
                    &mut a.packet,
                    now,
                    &mut deliveries,
                    &mut counters,
                );
                if a.packet.dests.is_empty() {
                    routers[a.router].credits_used[a.ingress] -= 1;
                } else {
                    counters.buffer_flits += flits as u64;
                    routers[a.router].fifos[a.ingress].push_back(a.packet);
                    queued_packets += 1;
                    // credit stays consumed until the packet leaves the FIFO
                }
            }

            // 2. injections due now
            while next_inject < total && schedule[next_inject].inject_cycle <= now {
                let mut p = schedule[next_inject].clone();
                next_inject += 1;
                counters.packets_injected += 1;
                counters.router_traversals += 1;
                let src_router = topo.endpoint(p.src_crossbar);
                strip_local(
                    &hosted[src_router],
                    topo,
                    src_router,
                    &mut p,
                    now,
                    &mut deliveries,
                    &mut counters,
                );
                if !p.dests.is_empty() {
                    routers[src_router].fifos[0].push_back(p);
                    queued_packets += 1;
                }
            }

            if queued_packets == 0 {
                // nothing to arbitrate; loop back and fast-forward
                if next_inject >= total && in_transit.is_empty() {
                    break;
                }
                now += 1;
                continue;
            }

            // 3. arbitration & forwarding, one winner per output port
            for r in 0..nr {
                let neighbors = topo.neighbors(r).to_vec();
                for (o, &nbr) in neighbors.iter().enumerate() {
                    if routers[r].busy_until[o] > now {
                        continue;
                    }
                    // ingress index on the downstream router
                    let down_ingress = 1 + topo
                        .neighbors(nbr)
                        .iter()
                        .position(|&x| x == r)
                        .expect("links are bidirectional");
                    if routers[nbr].credits_used[down_ingress] >= cfg.buffer_depth {
                        continue; // backpressure
                    }
                    // candidates: FIFOs whose head routes some dest via nbr
                    let mut candidates: Vec<(usize, u64)> = Vec::new();
                    for (fi, fifo) in routers[r].fifos.iter().enumerate() {
                        if let Some(head) = fifo.front() {
                            if head
                                .dests
                                .iter()
                                .any(|&d| topo.route_next(r, topo.endpoint(d)) == nbr)
                            {
                                candidates.push((fi, head.inject_cycle));
                            }
                        }
                    }
                    let Some(win_pos) = cfg.arbitration.pick(&candidates, routers[r].rr_cursor[o])
                    else {
                        continue;
                    };
                    let (fi, _) = candidates[win_pos];
                    routers[r].rr_cursor[o] = fi + 1;

                    // split off the dests routed via this port
                    let head = routers[r].fifos[fi]
                        .front_mut()
                        .expect("candidate fifo has a head");
                    let via: Vec<u32> = head
                        .dests
                        .iter()
                        .copied()
                        .filter(|&d| topo.route_next(r, topo.endpoint(d)) == nbr)
                        .collect();
                    let branch = if via.len() == head.dests.len() {
                        let p = routers[r].fifos[fi].pop_front().expect("head exists");
                        queued_packets -= 1;
                        if fi > 0 {
                            routers[r].credits_used[fi] -= 1;
                        }
                        p
                    } else {
                        head.split(&via)
                    };

                    counters.link_flits += flits as u64;
                    routers[r].busy_until[o] = now + flits as u64;
                    routers[nbr].credits_used[down_ingress] += 1;
                    seq += 1;
                    in_transit.push(Reverse(Arrival {
                        cycle: now + hop_latency,
                        seq,
                        router: nbr,
                        ingress: down_ingress,
                        packet: branch,
                    }));
                }
            }

            now += 1;
        }

        counters.deliveries = deliveries.len() as u64;
        Ok((deliveries, counters))
    }
}

/// Delivers (and removes) every destination of `packet` hosted at `router`.
fn strip_local(
    hosted: &[u32],
    topo: &dyn Topology,
    router: usize,
    packet: &mut Packet,
    now: u64,
    deliveries: &mut Vec<Delivery>,
    counters: &mut Counters,
) {
    debug_assert!(hosted.iter().all(|&k| topo.endpoint(k) == router));
    if packet.dests.iter().all(|d| !hosted.contains(d)) {
        return;
    }
    packet.dests.retain(|&d| {
        if hosted.contains(&d) {
            deliveries.push(Delivery {
                source_neuron: packet.source_neuron,
                src_crossbar: packet.src_crossbar,
                dst_crossbar: d,
                send_step: packet.send_step,
                inject_cycle: packet.inject_cycle,
                deliver_cycle: now,
            });
            let _ = counters;
            false
        } else {
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Mesh2D, NocTree, PointToPoint, Star, Torus};

    fn sim(topo: Box<dyn Topology>) -> NocSim {
        NocSim::new(topo, NocConfig::default(), EnergyModel::default())
    }

    #[test]
    fn single_packet_mesh() {
        let mut s = sim(Box::new(Mesh2D::for_crossbars(4)));
        let flows = vec![SpikeFlow::unicast(1, 0, 3, 0)];
        let stats = s.run(&flows).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.counters.packets_injected, 1);
        // 2 hops × (router_delay 1 + flits 2 − 1) = 4 cycles minimum
        assert_eq!(stats.max_latency_cycles, 4);
    }

    #[test]
    fn all_topologies_deliver_everything() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh2D::for_crossbars(8)),
            Box::new(Torus::for_crossbars(8)),
            Box::new(NocTree::new(8, 2)),
            Box::new(Star::new(8)),
            Box::new(PointToPoint::new(8)),
        ];
        let mut flows = Vec::new();
        for step in 0..5u32 {
            for src in 0..8u32 {
                flows.push(SpikeFlow::unicast(src * 100, src, (src + 3) % 8, step));
            }
        }
        for topo in topos {
            let name = topo.name();
            let mut s = sim(topo);
            let stats = s.run(&flows).unwrap();
            assert_eq!(stats.delivered, 40, "{name}");
        }
    }

    #[test]
    fn multicast_injects_fewer_packets_than_unicast() {
        let flows = vec![SpikeFlow::multicast(0, 0, vec![1, 2, 3], 0); 10];
        let run = |multicast: bool| {
            let cfg = NocConfig {
                multicast,
                ..NocConfig::default()
            };
            let mut s = NocSim::new(Box::new(NocTree::new(4, 4)), cfg, EnergyModel::default());
            s.run(&flows).unwrap()
        };
        let mc = run(true);
        let uc = run(false);
        assert_eq!(mc.delivered, 30);
        assert_eq!(uc.delivered, 30);
        assert_eq!(mc.counters.packets_injected, 10);
        assert_eq!(uc.counters.packets_injected, 30);
        assert!(mc.counters.link_flits < uc.counters.link_flits);
        assert!(mc.global_energy_pj < uc.global_energy_pj);
    }

    #[test]
    fn congestion_raises_latency() {
        // many sources all talking to crossbar 0 in the same step
        let burst: Vec<SpikeFlow> = (0..64)
            .map(|i| SpikeFlow::unicast(i, 1 + (i % 7), 0, 0))
            .collect();
        let single = vec![SpikeFlow::unicast(0, 1, 0, 0)];
        let mut s = sim(Box::new(Mesh2D::for_crossbars(8)));
        let lat_burst = s.run(&burst).unwrap().max_latency_cycles;
        let mut s = sim(Box::new(Mesh2D::for_crossbars(8)));
        let lat_single = s.run(&single).unwrap().max_latency_cycles;
        assert!(
            lat_burst > lat_single,
            "congestion must add latency: {lat_burst} !> {lat_single}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let flows: Vec<SpikeFlow> = (0..50)
            .map(|i| SpikeFlow::unicast(i, i % 4, (i + 1) % 4, i / 10))
            .collect();
        let run = || {
            let mut s = sim(Box::new(NocTree::new(4, 2)));
            s.run(&flows).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unknown_crossbar_rejected() {
        let mut s = sim(Box::new(Star::new(2)));
        let err = s.run(&[SpikeFlow::unicast(0, 0, 5, 0)]).unwrap_err();
        assert!(matches!(err, NocError::UnknownCrossbar { crossbar: 5, .. }));
    }

    #[test]
    fn same_crossbar_flow_counts_as_immediate_delivery() {
        // a unicast flow whose destination equals its source is delivered
        // at injection with zero latency (degenerate but legal input)
        let mut s = sim(Box::new(Star::new(3)));
        let stats = s.run(&[SpikeFlow::unicast(0, 1, 1, 0)]).unwrap();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.max_latency_cycles, 0);
    }

    #[test]
    fn empty_flow_list() {
        let mut s = sim(Box::new(Mesh2D::for_crossbars(4)));
        let stats = s.run(&[]).unwrap();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.avg_latency_cycles, 0.0);
    }

    #[test]
    fn serialization_spreads_same_step_spikes() {
        // 10 spikes from the same crossbar in one step are AER-serialized:
        // inject cycles are consecutive
        let flows: Vec<SpikeFlow> = (0..10).map(|i| SpikeFlow::unicast(i, 0, 1, 0)).collect();
        let mut s = sim(Box::new(PointToPoint::new(2)));
        let (_, deliveries) = s.run_with_duration(&flows, 1).unwrap();
        let mut injects: Vec<u64> = deliveries.iter().map(|d| d.inject_cycle).collect();
        injects.sort_unstable();
        let expected: Vec<u64> = (0..10).collect();
        assert_eq!(injects, expected);
    }

    #[test]
    fn backpressure_does_not_lose_packets() {
        // tiny buffers + heavy burst through one tree root
        let cfg = NocConfig {
            buffer_depth: 1,
            ..NocConfig::default()
        };
        let flows: Vec<SpikeFlow> = (0..200)
            .map(|i| SpikeFlow::unicast(i, i % 4, ((i % 4) + 4) % 8, 0))
            .collect();
        let mut s = NocSim::new(Box::new(NocTree::new(8, 2)), cfg, EnergyModel::default());
        let stats = s.run(&flows).unwrap();
        assert_eq!(stats.delivered, 200);
    }

    #[test]
    fn oldest_first_reduces_disorder() {
        // cross traffic from many crossbars to one destination
        let mut flows = Vec::new();
        for step in 0..20u32 {
            for src in 1..9u32 {
                for k in 0..3u32 {
                    flows.push(SpikeFlow::unicast(src * 10 + k, src, 0, step));
                }
            }
        }
        let run = |arb| {
            let cfg = NocConfig {
                arbitration: arb,
                ..NocConfig::default()
            };
            let mut s = NocSim::new(
                Box::new(Mesh2D::for_crossbars(9)),
                cfg,
                EnergyModel::default(),
            );
            s.run(&flows).unwrap().disorder_fraction
        };
        let rr = run(crate::router::Arbitration::RoundRobin);
        let of = run(crate::router::Arbitration::OldestFirst);
        assert!(
            of <= rr,
            "oldest-first should not increase disorder: {of} !<= {rr}"
        );
    }

    #[test]
    fn latency_monotone_in_hops_without_congestion() {
        let mut s = sim(Box::new(Mesh2D::grid(4, 1, 4)));
        let near = s.run(&[SpikeFlow::unicast(0, 0, 1, 0)]).unwrap();
        let mut s = sim(Box::new(Mesh2D::grid(4, 1, 4)));
        let far = s.run(&[SpikeFlow::unicast(0, 0, 3, 0)]).unwrap();
        assert!(far.max_latency_cycles > near.max_latency_cycles);
    }
}
