//! Structured trace events for the interconnect simulators.
//!
//! When [`crate::config::NocConfig::trace`] is on, both engines
//! ([`crate::sim::NocSim`] and [`crate::sim::oracle::CycleSim`]) record a
//! [`TraceBuf`] of typed [`TraceEvent`]s: packet injected / enqueued /
//! forwarded / delivered, per-lane occupancy changes, and
//! blocked-on-credit spans. Two invariants are load-bearing and gated by
//! tests:
//!
//! - **Zero-cost when off.** With `trace: false` (the default) no event
//!   is recorded, no buffer is allocated, and the engines' behaviour is
//!   bit-for-bit what it was before the trace layer existed: the golden
//!   vc=1 digests in `tests/noc_properties.rs` and the `BENCH_noc.json`
//!   speedup ratios are unaffected. Every emission site is behind an
//!   `Option` that is `None` when tracing is off.
//! - **Byte-identical when on.** The two engines emit the *same* event
//!   stream — [`TraceBuf::to_bytes`] equality — for the same workload,
//!   making the trace a third byte-identity surface alongside the stats
//!   digest and the delivery log. This holds because both engines process
//!   injections at exactly `inject_cycle`, drain arrivals in identical
//!   order, and forward in ascending (router, port) order per cycle; the
//!   trace simply serializes that shared canonical order. A proptest in
//!   `tests/noc_properties.rs` holds both engines to it across the
//!   differential corpus, including under input permutation.
//!
//! On top of the raw stream sit two consumers: a Chrome/Perfetto
//! trace-event JSON exporter ([`TraceBuf::to_perfetto_json`]) for visual
//! timeline inspection, and a congestion spotter
//! ([`TraceBuf::spot_congestion`]) that ranks (router, port, VC) lanes by
//! blocked-cycles and peak occupancy and names the top flows transiting
//! them — the observability half of the ROADMAP "NoC observability" item.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::config::NocConfig;

/// One structured simulator event.
///
/// `cycle` fields are simulator cycles; `lane` is the input-FIFO index on
/// the router (`0` is the VC-less local injection queue; lane
/// `1 + port * vc_count + vc` buffers traffic arriving on ingress
/// `port` / virtual channel `vc`). `spike_id` is the flow identity that
/// survives multicast splits, so one logical spike can appear in many
/// `Forwarded` / `Delivered` events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A packet entered the network at its source router's injection queue.
    Injected {
        /// Cycle the packet was injected.
        cycle: u64,
        /// Flow identity (stable across multicast splits).
        spike_id: u64,
        /// Source neuron within the source crossbar.
        source_neuron: u32,
        /// Source crossbar.
        src_crossbar: u32,
        /// Router hosting the source crossbar.
        router: u32,
    },
    /// A packet was pushed onto an input FIFO (injection or hop arrival).
    Enqueued {
        /// Cycle of the push.
        cycle: u64,
        /// Flow identity.
        spike_id: u64,
        /// Router owning the FIFO.
        router: u32,
        /// Input-FIFO index.
        lane: u32,
        /// Queue occupancy *after* the push.
        occupancy: u32,
    },
    /// A packet (or multicast branch) won arbitration and left on a port.
    Forwarded {
        /// Cycle the head flit left.
        cycle: u64,
        /// Flow identity.
        spike_id: u64,
        /// Router that forwarded.
        router: u32,
        /// Output port index (position in `Topology::neighbors`).
        port: u32,
        /// Virtual channel the packet travels on downstream.
        vc: u32,
        /// Destination count carried by this branch.
        dests: u32,
    },
    /// A packet was popped from an input FIFO (whole-packet forward).
    Dequeued {
        /// Cycle of the pop.
        cycle: u64,
        /// Router owning the FIFO.
        router: u32,
        /// Input-FIFO index.
        lane: u32,
        /// Queue occupancy *after* the pop.
        occupancy: u32,
    },
    /// A packet reached a destination crossbar.
    Delivered {
        /// Delivery cycle.
        cycle: u64,
        /// Flow identity.
        spike_id: u64,
        /// Router hosting the destination crossbar.
        router: u32,
        /// Destination crossbar.
        dst_crossbar: u32,
    },
    /// A downstream lane's credits were exhausted for a span of cycles.
    ///
    /// Emitted once per span, when the lane transitions back from full to
    /// having a free slot (`from_cycle` = cycle it filled, `until_cycle` =
    /// cycle a credit freed). Lane 0 (local injection, unbounded) never
    /// blocks.
    BlockedOnCredit {
        /// Cycle the lane became full.
        from_cycle: u64,
        /// Cycle a slot freed up again.
        until_cycle: u64,
        /// Router owning the full lane.
        router: u32,
        /// Input-FIFO index that was full.
        lane: u32,
    },
}

impl TraceEvent {
    /// Canonical little-endian encoding: a tag byte followed by the
    /// event's fields in declaration order. Used for the byte-identity
    /// comparison between engines.
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            TraceEvent::Injected {
                cycle,
                spike_id,
                source_neuron,
                src_crossbar,
                router,
            } => {
                out.push(0);
                out.extend_from_slice(&cycle.to_le_bytes());
                out.extend_from_slice(&spike_id.to_le_bytes());
                out.extend_from_slice(&source_neuron.to_le_bytes());
                out.extend_from_slice(&src_crossbar.to_le_bytes());
                out.extend_from_slice(&router.to_le_bytes());
            }
            TraceEvent::Enqueued {
                cycle,
                spike_id,
                router,
                lane,
                occupancy,
            } => {
                out.push(1);
                out.extend_from_slice(&cycle.to_le_bytes());
                out.extend_from_slice(&spike_id.to_le_bytes());
                out.extend_from_slice(&router.to_le_bytes());
                out.extend_from_slice(&lane.to_le_bytes());
                out.extend_from_slice(&occupancy.to_le_bytes());
            }
            TraceEvent::Forwarded {
                cycle,
                spike_id,
                router,
                port,
                vc,
                dests,
            } => {
                out.push(2);
                out.extend_from_slice(&cycle.to_le_bytes());
                out.extend_from_slice(&spike_id.to_le_bytes());
                out.extend_from_slice(&router.to_le_bytes());
                out.extend_from_slice(&port.to_le_bytes());
                out.extend_from_slice(&vc.to_le_bytes());
                out.extend_from_slice(&dests.to_le_bytes());
            }
            TraceEvent::Dequeued {
                cycle,
                router,
                lane,
                occupancy,
            } => {
                out.push(3);
                out.extend_from_slice(&cycle.to_le_bytes());
                out.extend_from_slice(&router.to_le_bytes());
                out.extend_from_slice(&lane.to_le_bytes());
                out.extend_from_slice(&occupancy.to_le_bytes());
            }
            TraceEvent::Delivered {
                cycle,
                spike_id,
                router,
                dst_crossbar,
            } => {
                out.push(4);
                out.extend_from_slice(&cycle.to_le_bytes());
                out.extend_from_slice(&spike_id.to_le_bytes());
                out.extend_from_slice(&router.to_le_bytes());
                out.extend_from_slice(&dst_crossbar.to_le_bytes());
            }
            TraceEvent::BlockedOnCredit {
                from_cycle,
                until_cycle,
                router,
                lane,
            } => {
                out.push(5);
                out.extend_from_slice(&from_cycle.to_le_bytes());
                out.extend_from_slice(&until_cycle.to_le_bytes());
                out.extend_from_slice(&router.to_le_bytes());
                out.extend_from_slice(&lane.to_le_bytes());
            }
        }
    }
}

/// Event sink filled by an engine run with [`crate::config::NocConfig::trace`] on.
///
/// Obtained via `NocSim::take_trace` / `CycleSim::take_trace` after a
/// successful run. Holds the raw stream plus enough configuration
/// (`vc_count`, serialization cycles) to decode lanes and render spans.
#[derive(Debug, Clone)]
pub struct TraceBuf {
    events: Vec<TraceEvent>,
    vc_count: u32,
    ser_cycles: u64,
    /// Open credit-full spans, keyed by (router, lane). Keyed access
    /// only — never iterated — so the HashMap cannot leak nondeterminism
    /// into the event stream.
    full_since: HashMap<(u32, u32), u64>,
}

impl TraceBuf {
    /// Empty buffer for a run under `cfg`.
    pub fn new(cfg: &NocConfig) -> Self {
        TraceBuf {
            events: Vec::new(),
            vc_count: cfg.vc_count as u32,
            ser_cycles: cfg.serialization_cycles(),
            full_since: HashMap::new(),
        }
    }

    /// Record one event.
    #[inline]
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// A lane just ran out of credits: open a blocked span.
    #[inline]
    pub fn credit_full(&mut self, cycle: u64, router: u32, lane: u32) {
        self.full_since.entry((router, lane)).or_insert(cycle);
    }

    /// A credit freed on a previously-full lane: close the span and emit
    /// the [`TraceEvent::BlockedOnCredit`] record. No-op if the lane had
    /// no open span.
    #[inline]
    pub fn credit_freed(&mut self, cycle: u64, router: u32, lane: u32) {
        if let Some(from_cycle) = self.full_since.remove(&(router, lane)) {
            self.events.push(TraceEvent::BlockedOnCredit {
                from_cycle,
                until_cycle: cycle,
                router,
                lane,
            });
        }
    }

    /// The recorded stream, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Virtual channels per port in the traced run.
    pub fn vc_count(&self) -> u32 {
        self.vc_count
    }

    /// Decode a lane index into (port, vc), or `None` for the local
    /// injection lane 0.
    pub fn lane_to_port_vc(&self, lane: u32) -> Option<(u32, u32)> {
        if lane == 0 {
            return None;
        }
        let l = lane - 1;
        Some((l / self.vc_count, l % self.vc_count))
    }

    /// Canonical byte encoding of the stream — the cross-engine identity
    /// surface. Two runs traced the same iff their `to_bytes` are equal.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.events.len() * 32);
        for ev in &self.events {
            ev.encode(&mut out);
        }
        out
    }

    /// Render the stream as Chrome/Perfetto trace-event JSON
    /// (`{"traceEvents": [...]}`), loadable in `ui.perfetto.dev` or
    /// `chrome://tracing`. Routers become processes; forwards render as
    /// duration slices (one per output port track), occupancy as counter
    /// tracks per lane, blocked spans as slices on the blocked lane's
    /// track, injections/deliveries as instants.
    pub fn to_perfetto_json(&self) -> String {
        let mut routers = BTreeSet::new();
        for ev in &self.events {
            routers.insert(match *ev {
                TraceEvent::Injected { router, .. }
                | TraceEvent::Enqueued { router, .. }
                | TraceEvent::Forwarded { router, .. }
                | TraceEvent::Dequeued { router, .. }
                | TraceEvent::Delivered { router, .. }
                | TraceEvent::BlockedOnCredit { router, .. } => router,
            });
        }
        let mut parts: Vec<String> = Vec::with_capacity(self.events.len() + routers.len());
        for r in &routers {
            parts.push(format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{r},\"args\":{{\"name\":\"router {r}\"}}}}"
            ));
        }
        for ev in &self.events {
            parts.push(match *ev {
                TraceEvent::Injected {
                    cycle,
                    spike_id,
                    source_neuron,
                    src_crossbar,
                    router,
                } => format!(
                    "{{\"ph\":\"i\",\"name\":\"inject spike {spike_id}\",\"ts\":{cycle},\"pid\":{router},\"tid\":0,\"s\":\"t\",\"args\":{{\"source_neuron\":{source_neuron},\"src_crossbar\":{src_crossbar}}}}}"
                ),
                TraceEvent::Enqueued {
                    cycle,
                    spike_id,
                    router,
                    lane,
                    occupancy,
                } => format!(
                    "{{\"ph\":\"C\",\"name\":\"lane {lane} occupancy\",\"ts\":{cycle},\"pid\":{router},\"args\":{{\"occupancy\":{occupancy},\"spike_id\":{spike_id}}}}}"
                ),
                TraceEvent::Forwarded {
                    cycle,
                    spike_id,
                    router,
                    port,
                    vc,
                    dests,
                } => format!(
                    "{{\"ph\":\"X\",\"name\":\"spike {spike_id} vc{vc}\",\"ts\":{cycle},\"dur\":{},\"pid\":{router},\"tid\":{},\"args\":{{\"port\":{port},\"vc\":{vc},\"dests\":{dests}}}}}",
                    self.ser_cycles,
                    port + 1
                ),
                TraceEvent::Dequeued {
                    cycle,
                    router,
                    lane,
                    occupancy,
                } => format!(
                    "{{\"ph\":\"C\",\"name\":\"lane {lane} occupancy\",\"ts\":{cycle},\"pid\":{router},\"args\":{{\"occupancy\":{occupancy}}}}}"
                ),
                TraceEvent::Delivered {
                    cycle,
                    spike_id,
                    router,
                    dst_crossbar,
                } => format!(
                    "{{\"ph\":\"i\",\"name\":\"deliver spike {spike_id}\",\"ts\":{cycle},\"pid\":{router},\"tid\":0,\"s\":\"t\",\"args\":{{\"dst_crossbar\":{dst_crossbar}}}}}"
                ),
                TraceEvent::BlockedOnCredit {
                    from_cycle,
                    until_cycle,
                    router,
                    lane,
                } => format!(
                    "{{\"ph\":\"X\",\"name\":\"lane {lane} blocked\",\"ts\":{from_cycle},\"dur\":{},\"pid\":{router},\"tid\":{},\"args\":{{\"lane\":{lane}}}}}",
                    until_cycle - from_cycle,
                    100 + lane
                ),
            });
        }
        format!("{{\"traceEvents\":[\n{}\n]}}\n", parts.join(",\n"))
    }

    /// Rank the hottest (router, port, VC) lanes by blocked-cycles then
    /// peak occupancy, naming the top flows transiting each. `top_lanes`
    /// / `top_flows` bound the report size.
    pub fn spot_congestion(&self, top_lanes: usize, top_flows: usize) -> SpotterReport {
        struct LaneAcc {
            blocked_cycles: u64,
            blocked_spans: u32,
            peak_occupancy: u32,
            enqueues: u64,
            flows: HashMap<u64, u64>,
        }
        fn acc(lanes: &mut HashMap<(u32, u32), LaneAcc>, key: (u32, u32)) -> &mut LaneAcc {
            lanes.entry(key).or_insert(LaneAcc {
                blocked_cycles: 0,
                blocked_spans: 0,
                peak_occupancy: 0,
                enqueues: 0,
                flows: HashMap::new(),
            })
        }
        // spike_id -> (source_neuron, src_crossbar)
        let mut origin: HashMap<u64, (u32, u32)> = HashMap::new();
        let mut lanes: HashMap<(u32, u32), LaneAcc> = HashMap::new();
        for ev in &self.events {
            match *ev {
                TraceEvent::Injected {
                    spike_id,
                    source_neuron,
                    src_crossbar,
                    ..
                } => {
                    origin
                        .entry(spike_id)
                        .or_insert((source_neuron, src_crossbar));
                }
                TraceEvent::Enqueued {
                    spike_id,
                    router,
                    lane,
                    occupancy,
                    ..
                } if lane > 0 => {
                    let a = acc(&mut lanes, (router, lane));
                    a.enqueues += 1;
                    a.peak_occupancy = a.peak_occupancy.max(occupancy);
                    *a.flows.entry(spike_id).or_insert(0) += 1;
                }
                TraceEvent::BlockedOnCredit {
                    from_cycle,
                    until_cycle,
                    router,
                    lane,
                } => {
                    let a = acc(&mut lanes, (router, lane));
                    a.blocked_cycles += until_cycle - from_cycle;
                    a.blocked_spans += 1;
                }
                _ => {}
            }
        }
        let mut ranked: Vec<((u32, u32), LaneAcc)> = lanes.into_iter().collect();
        ranked.sort_by(|((ra, la), a), ((rb, lb), b)| {
            b.blocked_cycles
                .cmp(&a.blocked_cycles)
                .then(b.peak_occupancy.cmp(&a.peak_occupancy))
                .then(ra.cmp(rb))
                .then(la.cmp(lb))
        });
        ranked.truncate(top_lanes);
        let hotspots = ranked
            .into_iter()
            .map(|((router, lane), a)| {
                let (port, vc) = self
                    .lane_to_port_vc(lane)
                    .expect("spotter only accumulates lanes > 0");
                let mut flows: Vec<(u64, u64)> = a.flows.into_iter().collect();
                flows.sort_by(|(ida, na), (idb, nb)| nb.cmp(na).then(ida.cmp(idb)));
                flows.truncate(top_flows);
                let top_flows = flows
                    .into_iter()
                    .map(|(spike_id, packets)| {
                        let (source_neuron, src_crossbar) =
                            origin.get(&spike_id).copied().unwrap_or((0, 0));
                        FlowShare {
                            spike_id,
                            source_neuron,
                            src_crossbar,
                            packets,
                        }
                    })
                    .collect();
                LaneHotspot {
                    router,
                    port,
                    vc,
                    lane,
                    blocked_cycles: a.blocked_cycles,
                    blocked_spans: a.blocked_spans,
                    peak_occupancy: a.peak_occupancy,
                    enqueues: a.enqueues,
                    top_flows,
                }
            })
            .collect();
        SpotterReport { lanes: hotspots }
    }
}

/// Congestion ranking produced by [`TraceBuf::spot_congestion`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpotterReport {
    /// Hottest lanes, most-blocked first.
    pub lanes: Vec<LaneHotspot>,
}

/// One ranked (router, port, VC) lane in a [`SpotterReport`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneHotspot {
    /// Router owning the lane.
    pub router: u32,
    /// Ingress port the lane buffers.
    pub port: u32,
    /// Virtual channel within the port.
    pub vc: u32,
    /// Raw input-FIFO index (`1 + port * vc_count + vc`).
    pub lane: u32,
    /// Total cycles the lane spent with zero free credits.
    pub blocked_cycles: u64,
    /// Number of distinct full spans.
    pub blocked_spans: u32,
    /// Highest observed queue occupancy.
    pub peak_occupancy: u32,
    /// Packets pushed onto the lane over the run.
    pub enqueues: u64,
    /// Flows most often transiting the lane, busiest first.
    pub top_flows: Vec<FlowShare>,
}

/// One flow's share of a hotspot lane's traffic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowShare {
    /// Flow identity (stable across multicast splits).
    pub spike_id: u64,
    /// Source neuron of the flow.
    pub source_neuron: u32,
    /// Source crossbar of the flow.
    pub src_crossbar: u32,
    /// Packets of this flow that crossed the lane.
    pub packets: u64,
}

impl fmt::Display for SpotterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lanes.is_empty() {
            return writeln!(f, "spotter: no contended lanes");
        }
        for h in &self.lanes {
            writeln!(
                f,
                "router {:>3} port {} vc {}: blocked {} cycles over {} spans, peak occupancy {}, {} enqueues",
                h.router, h.port, h.vc, h.blocked_cycles, h.blocked_spans, h.peak_occupancy, h.enqueues
            )?;
            for fl in &h.top_flows {
                writeln!(
                    f,
                    "    flow spike {} (neuron {} @ crossbar {}): {} packets",
                    fl.spike_id, fl.source_neuron, fl.src_crossbar, fl.packets
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf() -> TraceBuf {
        TraceBuf::new(&NocConfig {
            vc_count: 2,
            ..NocConfig::default()
        })
    }

    #[test]
    fn byte_encoding_distinguishes_events() {
        let mut a = buf();
        let mut b = buf();
        a.push(TraceEvent::Enqueued {
            cycle: 1,
            spike_id: 7,
            router: 0,
            lane: 1,
            occupancy: 1,
        });
        b.push(TraceEvent::Enqueued {
            cycle: 1,
            spike_id: 7,
            router: 0,
            lane: 2,
            occupancy: 1,
        });
        assert_ne!(a.to_bytes(), b.to_bytes());
        assert_eq!(a.to_bytes(), a.clone().to_bytes());
    }

    #[test]
    fn credit_spans_pair_up() {
        let mut t = buf();
        t.credit_full(10, 3, 1);
        t.credit_full(12, 3, 1); // already full: span start unchanged
        t.credit_freed(15, 3, 1);
        t.credit_freed(16, 3, 1); // no open span: no-op
        assert_eq!(
            t.events(),
            &[TraceEvent::BlockedOnCredit {
                from_cycle: 10,
                until_cycle: 15,
                router: 3,
                lane: 1
            }]
        );
    }

    #[test]
    fn lane_decode_round_trips() {
        let t = buf();
        assert_eq!(t.lane_to_port_vc(0), None);
        assert_eq!(t.lane_to_port_vc(1), Some((0, 0)));
        assert_eq!(t.lane_to_port_vc(2), Some((0, 1)));
        assert_eq!(t.lane_to_port_vc(3), Some((1, 0)));
    }

    #[test]
    fn spotter_ranks_by_blocked_then_occupancy() {
        let mut t = buf();
        t.push(TraceEvent::Injected {
            cycle: 0,
            spike_id: 9,
            source_neuron: 4,
            src_crossbar: 2,
            router: 0,
        });
        for (router, lane, occ) in [(0u32, 1u32, 3u32), (1, 1, 2), (1, 1, 4)] {
            t.push(TraceEvent::Enqueued {
                cycle: 1,
                spike_id: 9,
                router,
                lane,
                occupancy: occ,
            });
        }
        t.credit_full(5, 1, 1);
        t.credit_freed(9, 1, 1);
        let report = t.spot_congestion(8, 4);
        assert_eq!(report.lanes.len(), 2);
        // router 1 lane 1 blocked 4 cycles — outranks router 0's never-blocked lane
        assert_eq!(report.lanes[0].router, 1);
        assert_eq!(report.lanes[0].blocked_cycles, 4);
        assert_eq!(report.lanes[0].peak_occupancy, 4);
        assert_eq!(report.lanes[0].enqueues, 2);
        assert_eq!(report.lanes[0].top_flows.len(), 1);
        assert_eq!(report.lanes[0].top_flows[0].spike_id, 9);
        assert_eq!(report.lanes[0].top_flows[0].src_crossbar, 2);
        assert_eq!(report.lanes[1].router, 0);
        let display = report.to_string();
        assert!(display.contains("router   1 port 0 vc 0"), "{display}");
    }

    #[test]
    fn perfetto_json_names_routers_and_slices() {
        let mut t = buf();
        t.push(TraceEvent::Forwarded {
            cycle: 3,
            spike_id: 1,
            router: 2,
            port: 1,
            vc: 0,
            dests: 1,
        });
        let json = t.to_perfetto_json();
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        assert!(json.contains("\"name\":\"router 2\""), "{json}");
        assert!(json.contains("\"ph\":\"X\""), "{json}");
    }
}
