//! The cycle-driven reference oracle.
//!
//! [`CycleSim`] is the original interconnect engine: it advances the clock
//! one cycle at a time (fast-forwarding only across globally idle gaps)
//! and sweeps every router for arbitration each cycle. That makes it slow
//! — runtime scales with simulated cycles × routers — but easy to audit
//! against the hardware model, which is exactly what a differential oracle
//! needs to be.
//!
//! The production engine ([`super::NocSim`]) must produce byte-identical
//! [`NocStats`] and delivery logs; `tests/noc_properties.rs` enforces this
//! over a randomized corpus of topologies, buffer depths, multicast
//! fan-outs, and backpressured traffic, and `benches/noc.rs` measures the
//! speedup the event model buys. Keep changes to this file to a minimum:
//! its value is that it stays the simple, obviously-cycle-accurate
//! formulation.

use super::{build_schedule, lane, strip_local, validate_flows, Arrival};
use crate::config::NocConfig;
use crate::error::NocError;
use crate::packet::Packet;
use crate::router::pick_vc;
use crate::stats::{Counters, Delivery, NocStats, SimTrace, VcCounters};
use crate::topology::Topology;
use crate::trace::{TraceBuf, TraceEvent};
use crate::traffic::SpikeFlow;
use neuromap_hw::energy::EnergyModel;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Per-router runtime state (mirrors the event engine's, without the
/// queued-packet bookkeeping the wake list needs).
struct RouterState {
    /// Input FIFO lanes: lane 0 = local injection, then one lane per
    /// `(ingress port, VC)` pair in [`lane`] order.
    fifos: Vec<VecDeque<Packet>>,
    /// Arbitration cursor per `(output port, VC)`:
    /// `rr_cursor[o * vc_count + vc]`, over FIFO-lane indices.
    rr_cursor: Vec<usize>,
    /// Round-robin cursor over VCs, per output port.
    vc_cursor: Vec<usize>,
    /// Output port busy (serializing) until this cycle (exclusive).
    busy_until: Vec<u64>,
    /// Credits consumed on each ingress FIFO lane of *this* router
    /// (occupancy + packets already in flight toward it).
    credits_used: Vec<usize>,
}

/// The cycle-driven interconnect simulator (reference oracle).
///
/// Same public surface as [`super::NocSim`]; see the module docs for its
/// role.
pub struct CycleSim {
    topo: std::sync::Arc<dyn Topology>,
    config: NocConfig,
    energy: EnergyModel,
    /// Event trace of the last successful run, present iff
    /// [`NocConfig::trace`] was set (see [`CycleSim::take_trace`]).
    trace: Option<TraceBuf>,
}

impl std::fmt::Debug for CycleSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleSim")
            .field("topology", &self.topo.name())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl CycleSim {
    /// Creates a simulator over a topology with the given configuration and
    /// energy model.
    pub fn new(topo: Box<dyn Topology>, config: NocConfig, energy: EnergyModel) -> Self {
        Self::shared(std::sync::Arc::from(topo), config, energy)
    }

    /// Like [`CycleSim::new`], but over a topology already shared behind
    /// an `Arc` (see [`super::NocSim::shared`]).
    pub fn shared(
        topo: std::sync::Arc<dyn Topology>,
        config: NocConfig,
        energy: EnergyModel,
    ) -> Self {
        Self {
            topo,
            config,
            energy,
            trace: None,
        }
    }

    /// The topology in use.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// Takes the structured event trace of the last successful run
    /// (`Some` iff [`NocConfig::trace`] was set). The stream is
    /// byte-identical to [`super::NocSim::take_trace`]'s for the same
    /// workload — see [`crate::trace`].
    pub fn take_trace(&mut self) -> Option<TraceBuf> {
        self.trace.take()
    }

    /// Runs the spike schedule to completion and returns aggregate
    /// statistics. The SNN duration is inferred from the last send step.
    ///
    /// # Errors
    ///
    /// Same as [`super::NocSim::run`].
    pub fn run(&mut self, flows: &[SpikeFlow]) -> Result<NocStats, NocError> {
        let duration = flows.iter().map(|f| f.send_step + 1).max().unwrap_or(1);
        self.run_with_duration(flows, duration)
            .map(|(stats, _)| stats)
    }

    /// Like [`CycleSim::run`], but with an explicit SNN duration
    /// (timesteps) and returning the raw delivery log alongside the
    /// statistics.
    ///
    /// # Errors
    ///
    /// Same as [`super::NocSim::run`].
    pub fn run_with_duration(
        &mut self,
        flows: &[SpikeFlow],
        duration_steps: u32,
    ) -> Result<(NocStats, Vec<Delivery>), NocError> {
        self.config.validate()?;
        validate_flows(self.topo.as_ref(), flows)?;
        let schedule = build_schedule(self.topo.as_ref(), &self.config, flows);
        self.trace = None;
        let mut events = self.config.trace.then(|| TraceBuf::new(&self.config));
        let (deliveries, counters, per_vc) = self.simulate(schedule, None, events.as_mut())?;
        self.trace = events;
        let stats = NocStats::from_deliveries(
            &deliveries,
            counters,
            &self.energy,
            self.config.flits_per_packet,
            duration_steps,
            self.config.cycles_per_step,
        )
        .with_per_vc(per_vc);
        Ok((stats, deliveries))
    }

    /// Like [`CycleSim::run_with_duration`], but also returning a
    /// [`SimTrace`] with the forward-progress cycles filled in (the
    /// attended-cycle log and scheduler counters stay empty — the oracle
    /// attends every cycle and has no scheduler). The liveness property in
    /// `tests/noc_properties.rs` compares this against
    /// [`super::NocSim::run_traced`].
    ///
    /// # Errors
    ///
    /// Same as [`super::NocSim::run`].
    pub fn run_traced(
        &mut self,
        flows: &[SpikeFlow],
        duration_steps: u32,
    ) -> Result<(NocStats, Vec<Delivery>, SimTrace), NocError> {
        self.config.validate()?;
        validate_flows(self.topo.as_ref(), flows)?;
        let schedule = build_schedule(self.topo.as_ref(), &self.config, flows);
        self.trace = None;
        let mut events = self.config.trace.then(|| TraceBuf::new(&self.config));
        let mut trace = SimTrace::default();
        let (deliveries, counters, per_vc) =
            self.simulate(schedule, Some(&mut trace.progress_cycles), events.as_mut())?;
        self.trace = events;
        let stats = NocStats::from_deliveries(
            &deliveries,
            counters,
            &self.energy,
            self.config.flits_per_packet,
            duration_steps,
            self.config.cycles_per_step,
        )
        .with_per_vc(per_vc);
        Ok((stats, deliveries, trace))
    }

    /// The cycle-by-cycle main loop. `progress`, when given, collects the
    /// cycles at which at least one packet was forwarded; `events`, when
    /// given, records the structured trace (same emission points and
    /// order as the event engine's — see [`crate::trace`]).
    #[allow(clippy::type_complexity)]
    fn simulate(
        &self,
        schedule: Vec<Packet>,
        mut progress: Option<&mut Vec<u64>>,
        mut events: Option<&mut TraceBuf>,
    ) -> Result<(Vec<Delivery>, Counters, Vec<VcCounters>), NocError> {
        let cfg = &self.config;
        let topo = self.topo.as_ref();
        let nr = topo.num_routers();
        let vcs = cfg.vc_count;

        // per-spike Steiner-tree table (shared builder with the event
        // engine); None ⇒ the per-destination unicast-route predicates
        let tree = super::build_tree_table(topo, cfg, &schedule);
        let tree = tree.as_ref();

        let mut routers: Vec<RouterState> = (0..nr)
            .map(|r| {
                let deg = topo.neighbors(r).len();
                RouterState {
                    fifos: vec![VecDeque::new(); 1 + deg * vcs],
                    rr_cursor: vec![0; deg * vcs],
                    vc_cursor: vec![0; deg],
                    busy_until: vec![0; deg],
                    credits_used: vec![0; 1 + deg * vcs],
                }
            })
            .collect();

        // crossbars hosted per router, for arrival stripping
        let mut hosted: Vec<Vec<u32>> = vec![Vec::new(); nr];
        for k in 0..topo.num_crossbars() as u32 {
            hosted[topo.endpoint(k)].push(k);
        }

        let mut deliveries: Vec<Delivery> = Vec::new();
        let mut counters = Counters::default();
        // per-VC counters; empty (never updated) in the single-VC case so
        // the statistics stay byte-identical to the pre-VC oracle
        let mut per_vc: Vec<VcCounters> = if vcs > 1 {
            vec![VcCounters::default(); vcs]
        } else {
            Vec::new()
        };
        let mut in_transit: BinaryHeap<Reverse<Arrival>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut next_inject = 0usize;
        let mut queued_packets = 0usize; // packets sitting in any FIFO
        let mut now = 0u64;
        let flits = cfg.flits_per_packet;
        let hop_latency = cfg.hop_latency();

        let total = schedule.len();
        while next_inject < total || queued_packets > 0 || !in_transit.is_empty() {
            if now > cfg.max_cycles {
                return Err(NocError::CycleBudgetExhausted {
                    budget: cfg.max_cycles,
                    in_flight: queued_packets + in_transit.len(),
                });
            }

            // fast-forward across idle gaps
            if queued_packets == 0 {
                let mut jump = u64::MAX;
                if next_inject < total {
                    jump = jump.min(schedule[next_inject].inject_cycle);
                }
                if let Some(Reverse(a)) = in_transit.peek() {
                    jump = jump.min(a.cycle);
                }
                if jump > now && jump != u64::MAX {
                    now = jump;
                }
            }

            // 1. link arrivals due now
            while let Some(Reverse(a)) = in_transit.peek() {
                if a.cycle > now {
                    break;
                }
                let Reverse(mut a) = in_transit.pop().expect("peeked");
                counters.router_traversals += 1;
                strip_local(
                    &hosted[a.router],
                    topo,
                    a.router,
                    &mut a.packet,
                    now,
                    &mut deliveries,
                    events.as_deref_mut(),
                );
                if a.packet.dests.is_empty() {
                    routers[a.router].credits_used[a.ingress] -= 1;
                    if let Some(t) = events.as_deref_mut() {
                        if routers[a.router].credits_used[a.ingress] == cfg.buffer_depth - 1 {
                            // full → free (the event engine wakes the
                            // blocked upstream pair here)
                            t.credit_freed(now, a.router as u32, a.ingress as u32);
                        }
                    }
                } else {
                    counters.buffer_flits += flits as u64;
                    let spike_id = a.packet.spike_id;
                    routers[a.router].fifos[a.ingress].push_back(a.packet);
                    debug_assert!(
                        routers[a.router].fifos[a.ingress].len() <= cfg.buffer_depth,
                        "ingress FIFO overflows its credit-bounded depth"
                    );
                    if vcs > 1 {
                        let vc = &mut per_vc[(a.ingress - 1) % vcs];
                        vc.enqueued += 1;
                        vc.peak_occupancy = vc
                            .peak_occupancy
                            .max(routers[a.router].fifos[a.ingress].len() as u64);
                    }
                    if let Some(t) = events.as_deref_mut() {
                        t.push(TraceEvent::Enqueued {
                            cycle: now,
                            spike_id,
                            router: a.router as u32,
                            lane: a.ingress as u32,
                            occupancy: routers[a.router].fifos[a.ingress].len() as u32,
                        });
                    }
                    queued_packets += 1;
                    // credit stays consumed until the packet leaves the FIFO
                }
            }

            // 2. injections due now
            while next_inject < total && schedule[next_inject].inject_cycle <= now {
                let mut p = schedule[next_inject].clone();
                next_inject += 1;
                counters.packets_injected += 1;
                counters.router_traversals += 1;
                let src_router = topo.endpoint(p.src_crossbar);
                if let Some(t) = events.as_deref_mut() {
                    t.push(TraceEvent::Injected {
                        cycle: now,
                        spike_id: p.spike_id,
                        source_neuron: p.source_neuron,
                        src_crossbar: p.src_crossbar,
                        router: src_router as u32,
                    });
                }
                strip_local(
                    &hosted[src_router],
                    topo,
                    src_router,
                    &mut p,
                    now,
                    &mut deliveries,
                    events.as_deref_mut(),
                );
                if !p.dests.is_empty() {
                    let spike_id = p.spike_id;
                    routers[src_router].fifos[0].push_back(p);
                    if let Some(t) = events.as_deref_mut() {
                        t.push(TraceEvent::Enqueued {
                            cycle: now,
                            spike_id,
                            router: src_router as u32,
                            lane: 0,
                            occupancy: routers[src_router].fifos[0].len() as u32,
                        });
                    }
                    queued_packets += 1;
                }
            }

            if queued_packets == 0 {
                // nothing to arbitrate; loop back and fast-forward
                if next_inject >= total && in_transit.is_empty() {
                    break;
                }
                now += 1;
                continue;
            }

            // 3. arbitration & forwarding, one winner per output port:
            // round-robin over eligible VCs, then the configured policy
            // over the candidate FIFO lanes of the winning VC
            let mut progressed = false;
            for r in 0..nr {
                let neighbors = topo.neighbors(r).to_vec();
                for (o, &nbr) in neighbors.iter().enumerate() {
                    if routers[r].busy_until[o] > now {
                        continue;
                    }
                    // our port position on the downstream router
                    let down_pos = topo
                        .neighbors(nbr)
                        .iter()
                        .position(|&x| x == r)
                        .expect("links are bidirectional");
                    // a head wants (this port, VC w) when some remaining
                    // destination routes via nbr on VC w
                    let head_wants = |head: &Packet, w: usize| match tree {
                        Some(t) => head
                            .dests
                            .iter()
                            .any(|&d| t.bit(head.spike_id, r, d) == o * vcs + w),
                        None => head.dests.iter().any(|&d| {
                            let dr = topo.endpoint(d);
                            topo.route_next(r, dr) == nbr && topo.hop_vc(r, dr, vcs) == w
                        }),
                    };
                    // eligible VCs: candidate present + free downstream
                    // credit on that VC's lane
                    let mut eligible = 0u32;
                    for w in 0..vcs {
                        if routers[nbr].credits_used[lane(down_pos, w, vcs)] >= cfg.buffer_depth {
                            continue; // backpressure on this VC
                        }
                        if routers[r]
                            .fifos
                            .iter()
                            .any(|fifo| fifo.front().is_some_and(|head| head_wants(head, w)))
                        {
                            eligible |= 1 << w;
                        }
                    }
                    let Some(w) = pick_vc(eligible, routers[r].vc_cursor[o]) else {
                        continue;
                    };
                    let mut candidates: Vec<(usize, u64)> = Vec::new();
                    for (fi, fifo) in routers[r].fifos.iter().enumerate() {
                        if let Some(head) = fifo.front() {
                            if head_wants(head, w) {
                                candidates.push((fi, head.inject_cycle));
                            }
                        }
                    }
                    let win_pos = cfg
                        .arbitration
                        .pick(&candidates, routers[r].rr_cursor[o * vcs + w])
                        .expect("an eligible VC has a candidate");
                    let (fi, _) = candidates[win_pos];
                    routers[r].rr_cursor[o * vcs + w] = fi + 1;
                    routers[r].vc_cursor[o] = w + 1;
                    if vcs > 1 {
                        per_vc[w].forwarded += 1;
                        for (w2, vc_stat) in per_vc.iter_mut().enumerate() {
                            if w2 != w && eligible & (1 << w2) != 0 {
                                vc_stat.arb_losses += 1;
                            }
                        }
                    }

                    // split off the dests routed via this (port, VC)
                    let head = routers[r].fifos[fi]
                        .front_mut()
                        .expect("candidate fifo has a head");
                    let spike = head.spike_id;
                    let via: Vec<u32> = head
                        .dests
                        .iter()
                        .copied()
                        .filter(|&d| match tree {
                            Some(t) => t.bit(spike, r, d) == o * vcs + w,
                            None => {
                                let dr = topo.endpoint(d);
                                topo.route_next(r, dr) == nbr && topo.hop_vc(r, dr, vcs) == w
                            }
                        })
                        .collect();
                    // trace capture, mirroring the event engine's order:
                    // Forwarded, then Dequeued on a pop, then the
                    // full→free span close on our own ingress lane
                    let mut dequeued_occ: Option<u32> = None;
                    let mut freed_own = false;
                    let branch = if via.len() == head.dests.len() {
                        let p = routers[r].fifos[fi].pop_front().expect("head exists");
                        if events.is_some() {
                            dequeued_occ = Some(routers[r].fifos[fi].len() as u32);
                        }
                        queued_packets -= 1;
                        if fi > 0 {
                            routers[r].credits_used[fi] -= 1;
                            if routers[r].credits_used[fi] == cfg.buffer_depth - 1 {
                                freed_own = true;
                            }
                        }
                        p
                    } else {
                        head.split(&via)
                    };
                    if let Some(t) = events.as_deref_mut() {
                        t.push(TraceEvent::Forwarded {
                            cycle: now,
                            spike_id: branch.spike_id,
                            router: r as u32,
                            port: o as u32,
                            vc: w as u32,
                            dests: branch.dests.len() as u32,
                        });
                        if let Some(occupancy) = dequeued_occ {
                            t.push(TraceEvent::Dequeued {
                                cycle: now,
                                router: r as u32,
                                lane: fi as u32,
                                occupancy,
                            });
                        }
                        if freed_own {
                            t.credit_freed(now, r as u32, fi as u32);
                        }
                    }

                    counters.link_flits += flits as u64;
                    routers[r].busy_until[o] = now + flits as u64;
                    let down_lane = lane(down_pos, w, vcs);
                    routers[nbr].credits_used[down_lane] += 1;
                    debug_assert!(
                        routers[nbr].credits_used[down_lane] <= cfg.buffer_depth,
                        "credits must never exceed the FIFO depth"
                    );
                    if let Some(t) = events.as_deref_mut() {
                        if routers[nbr].credits_used[down_lane] == cfg.buffer_depth {
                            t.credit_full(now, nbr as u32, down_lane as u32);
                        }
                    }
                    seq += 1;
                    progressed = true;
                    in_transit.push(Reverse(Arrival {
                        cycle: now + hop_latency,
                        seq,
                        router: nbr,
                        ingress: down_lane,
                        packet: branch,
                    }));
                }
            }
            if progressed {
                if let Some(p) = progress.as_deref_mut() {
                    p.push(now);
                }
            }

            now += 1;
        }

        counters.deliveries = deliveries.len() as u64;
        Ok((deliveries, counters, per_vc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Mesh2D;

    #[test]
    fn oracle_single_packet_timing() {
        let mut s = CycleSim::new(
            Box::new(Mesh2D::for_crossbars(4)),
            NocConfig::default(),
            EnergyModel::default(),
        );
        let stats = s.run(&[SpikeFlow::unicast(1, 0, 3, 0)]).unwrap();
        assert_eq!(stats.delivered, 1);
        // 2 hops × (router_delay 1 + flits 2 − 1) = 4 cycles minimum
        assert_eq!(stats.max_latency_cycles, 4);
    }

    #[test]
    fn oracle_conserves_traffic() {
        let flows: Vec<SpikeFlow> = (0..100)
            .map(|i| SpikeFlow::unicast(i, i % 4, (i + 1) % 4, i / 25))
            .collect();
        let mut s = CycleSim::new(
            Box::new(Mesh2D::for_crossbars(4)),
            NocConfig::default(),
            EnergyModel::default(),
        );
        assert_eq!(s.run(&flows).unwrap().delivered, 100);
    }
}
