use std::error::Error;
use std::fmt;

/// Error type for NoC configuration and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NocError {
    /// A flow references a crossbar with no endpoint in the topology.
    UnknownCrossbar {
        /// Offending crossbar id.
        crossbar: u32,
        /// Crossbars the topology serves.
        available: usize,
    },
    /// The simulation exceeded its cycle budget — usually a routing
    /// deadlock or a pathological configuration.
    CycleBudgetExhausted {
        /// Configured budget.
        budget: u64,
        /// Packets still in flight when the budget ran out.
        in_flight: usize,
    },
    /// A configuration parameter is outside its valid domain.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Offending value, formatted.
        value: String,
    },
    /// Serializing a result (statistics, trace) to JSON failed.
    Serialization {
        /// What was being serialized.
        context: &'static str,
        /// The serializer's error message.
        detail: String,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::UnknownCrossbar {
                crossbar,
                available,
            } => write!(
                f,
                "flow references crossbar {crossbar}, topology serves {available}"
            ),
            NocError::CycleBudgetExhausted { budget, in_flight } => write!(
                f,
                "cycle budget {budget} exhausted with {in_flight} packets in flight"
            ),
            NocError::InvalidConfig { name, value } => {
                write!(f, "invalid value `{value}` for config `{name}`")
            }
            NocError::Serialization { context, detail } => {
                write!(f, "failed to serialize {context}: {detail}")
            }
        }
    }
}

impl Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameters() {
        let e = NocError::CycleBudgetExhausted {
            budget: 100,
            in_flight: 3,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<NocError>();
    }
}
