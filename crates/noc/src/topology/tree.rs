//! Balanced-tree interconnect (the CxQuad NoC-tree).

use super::Topology;

/// A balanced tree of switches with the crossbars at the leaves and
/// deterministic up-down routing: a packet climbs to the lowest common
/// ancestor of source and destination, then descends. CxQuad joins its
/// four crossbars with exactly such a NoC-tree (arity 4, depth 1).
#[derive(Debug, Clone)]
pub struct NocTree {
    /// parent[r] — parent router of r (root points to itself).
    parent: Vec<usize>,
    /// children[r] — child routers of r.
    children: Vec<Vec<usize>>,
    /// depth[r] — distance from root.
    depth: Vec<u32>,
    /// leaf router hosting each crossbar.
    leaves: Vec<usize>,
    neighbors: Vec<Vec<usize>>,
    arity: u32,
}

impl NocTree {
    /// Builds a balanced tree with `leaves` leaf positions (one crossbar
    /// per leaf) and the given `arity`.
    ///
    /// Internal levels are built bottom-up: `ceil(n / arity)` parents per
    /// level until a single root remains. A single-leaf tree degenerates to
    /// one router.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero or `arity < 2`.
    pub fn new(leaves: usize, arity: u32) -> Self {
        assert!(leaves > 0, "at least one leaf required");
        assert!(arity >= 2, "tree arity must be at least 2");

        // level 0 = leaves, higher levels toward the root
        let mut levels: Vec<Vec<usize>> = Vec::new();
        let mut next_id = 0usize;
        let leaf_ids: Vec<usize> = (0..leaves)
            .map(|_| {
                let id = next_id;
                next_id += 1;
                id
            })
            .collect();
        levels.push(leaf_ids.clone());
        while levels.last().expect("non-empty").len() > 1 {
            let prev = levels.last().expect("non-empty").clone();
            let parents: Vec<usize> = (0..prev.len().div_ceil(arity as usize))
                .map(|_| {
                    let id = next_id;
                    next_id += 1;
                    id
                })
                .collect();
            levels.push(parents);
        }

        let n = next_id;
        let mut parent = vec![0usize; n];
        let mut children = vec![Vec::new(); n];
        for w in levels.windows(2) {
            let (lower, upper) = (&w[0], &w[1]);
            for (i, &node) in lower.iter().enumerate() {
                let p = upper[i / arity as usize];
                parent[node] = p;
                children[p].push(node);
            }
        }
        let root = *levels.last().expect("non-empty").last().expect("root");
        parent[root] = root;

        let mut depth = vec![0u32; n];
        // compute depth by walking up (small trees; fine)
        for (r, slot) in depth.iter_mut().enumerate() {
            let mut d = 0;
            let mut cur = r;
            while parent[cur] != cur {
                cur = parent[cur];
                d += 1;
            }
            *slot = d;
        }

        let mut neighbors = vec![Vec::new(); n];
        for r in 0..n {
            if parent[r] != r {
                neighbors[r].push(parent[r]);
            }
            neighbors[r].extend(children[r].iter().copied());
        }

        Self {
            parent,
            children,
            depth,
            leaves: (0..leaves).collect(),
            neighbors,
            arity,
        }
    }

    /// Whether `anc` is an ancestor of (or equal to) `node`.
    fn is_ancestor(&self, anc: usize, node: usize) -> bool {
        let mut cur = node;
        loop {
            if cur == anc {
                return true;
            }
            if self.parent[cur] == cur {
                return false;
            }
            cur = self.parent[cur];
        }
    }

    /// Tree depth of the root (0) — exposed for tests.
    pub fn height(&self) -> u32 {
        *self.depth.iter().max().unwrap_or(&0)
    }
}

impl Topology for NocTree {
    fn num_routers(&self) -> usize {
        self.parent.len()
    }

    fn num_crossbars(&self) -> usize {
        self.leaves.len()
    }

    fn endpoint(&self, k: u32) -> usize {
        self.leaves[k as usize]
    }

    fn neighbors(&self, r: usize) -> &[usize] {
        &self.neighbors[r]
    }

    fn route_next(&self, r: usize, dst: usize) -> usize {
        if r == dst {
            return r;
        }
        if self.is_ancestor(r, dst) {
            // descend into the child subtree containing dst
            for &c in &self.children[r] {
                if self.is_ancestor(c, dst) {
                    return c;
                }
            }
            unreachable!("dst {dst} not under ancestor {r}");
        }
        // otherwise climb
        self.parent[r]
    }

    fn name(&self) -> String {
        format!("tree arity {} ({} leaves)", self.arity, self.leaves.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_lut_climbs_then_descends() {
        use super::super::RouteLut;
        let t = NocTree::new(8, 2);
        let lut = RouteLut::new(&t);
        let (l0, l7) = (t.endpoint(0), t.endpoint(7));
        // leaf 0 climbs: first hop is its parent, reached through port 0
        // (the parent link is pushed before child links)
        assert_eq!(lut.next_router(l0, l7), t.parent[l0]);
        assert_eq!(lut.egress_port(l0, l7), 0);
        // full path through the LUT matches the dynamic hop count
        let mut cur = l0;
        let mut hops = 0;
        while cur != l7 {
            cur = lut.next_router(cur, l7);
            hops += 1;
        }
        assert_eq!(hops, t.hops(l0, l7));
    }

    #[test]
    fn cxquad_tree_shape() {
        // 4 leaves, arity 4: one root + 4 leaves
        let t = NocTree::new(4, 4);
        assert_eq!(t.num_routers(), 5);
        assert_eq!(t.num_crossbars(), 4);
        assert_eq!(t.height(), 1);
        // leaf to leaf = 2 hops via root
        assert_eq!(t.hops(t.endpoint(0), t.endpoint(3)), 2);
    }

    #[test]
    fn binary_tree_depth() {
        let t = NocTree::new(8, 2);
        // 8 + 4 + 2 + 1 routers
        assert_eq!(t.num_routers(), 15);
        assert_eq!(t.height(), 3);
        assert_eq!(t.hops(t.endpoint(0), t.endpoint(7)), 6);
        // siblings are 2 hops apart
        assert_eq!(t.hops(t.endpoint(0), t.endpoint(1)), 2);
    }

    #[test]
    fn uneven_leaf_count() {
        let t = NocTree::new(5, 4);
        // 5 leaves + 2 level-1 nodes + 1 root
        assert_eq!(t.num_routers(), 8);
        assert_eq!(t.num_crossbars(), 5);
        super::super::check_routes(&t).unwrap();
    }

    #[test]
    fn single_leaf_degenerates() {
        let t = NocTree::new(1, 2);
        assert_eq!(t.num_routers(), 1);
        assert_eq!(t.route_next(0, 0), 0);
    }

    #[test]
    fn route_visits_lca() {
        let t = NocTree::new(4, 2);
        // leaves 0,1 share a parent; 0→1 goes up then down
        let l0 = t.endpoint(0);
        let l1 = t.endpoint(1);
        let up = t.route_next(l0, l1);
        assert_eq!(up, t.parent[l0]);
        assert_eq!(t.route_next(up, l1), l1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_one_rejected() {
        let _ = NocTree::new(4, 1);
    }
}
