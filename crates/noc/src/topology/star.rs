//! Star (single shared hub) and idealized point-to-point topologies.

use super::Topology;

/// All crossbars attach to one central hub router: every global spike takes
/// exactly two hops and all traffic contends at the hub — the simplest
/// shared time-multiplexed interconnect.
#[derive(Debug, Clone)]
pub struct Star {
    crossbars: usize,
    neighbors: Vec<Vec<usize>>,
}

impl Star {
    /// Builds a star for `crossbars` crossbars; the hub is router
    /// `crossbars`.
    ///
    /// # Panics
    ///
    /// Panics if `crossbars` is zero.
    pub fn new(crossbars: usize) -> Self {
        assert!(crossbars > 0, "at least one crossbar required");
        let hub = crossbars;
        let mut neighbors = vec![Vec::new(); crossbars + 1];
        for leaf in 0..crossbars {
            neighbors[leaf].push(hub);
            neighbors[hub].push(leaf);
        }
        Self {
            crossbars,
            neighbors,
        }
    }

    /// The hub router id.
    pub fn hub(&self) -> usize {
        self.crossbars
    }
}

impl Topology for Star {
    fn num_routers(&self) -> usize {
        self.crossbars + 1
    }

    fn num_crossbars(&self) -> usize {
        self.crossbars
    }

    fn endpoint(&self, k: u32) -> usize {
        assert!((k as usize) < self.crossbars, "crossbar out of range");
        k as usize
    }

    fn neighbors(&self, r: usize) -> &[usize] {
        &self.neighbors[r]
    }

    fn route_next(&self, r: usize, dst: usize) -> usize {
        if r == dst {
            r
        } else if r == self.hub() {
            dst
        } else {
            self.hub()
        }
    }

    fn name(&self) -> String {
        format!("star ({} crossbars)", self.crossbars)
    }
}

/// Fully connected router graph: every pair of crossbars has a private
/// link. Physically implausible at scale, but a useful idealized bound —
/// it isolates pure serialization effects from path contention.
#[derive(Debug, Clone)]
pub struct PointToPoint {
    crossbars: usize,
    neighbors: Vec<Vec<usize>>,
}

impl PointToPoint {
    /// Builds a complete graph over `crossbars` routers.
    ///
    /// # Panics
    ///
    /// Panics if `crossbars` is zero.
    pub fn new(crossbars: usize) -> Self {
        assert!(crossbars > 0, "at least one crossbar required");
        let neighbors = (0..crossbars)
            .map(|r| (0..crossbars).filter(|&n| n != r).collect())
            .collect();
        Self {
            crossbars,
            neighbors,
        }
    }
}

impl Topology for PointToPoint {
    fn num_routers(&self) -> usize {
        self.crossbars
    }

    fn num_crossbars(&self) -> usize {
        self.crossbars
    }

    fn endpoint(&self, k: u32) -> usize {
        assert!((k as usize) < self.crossbars, "crossbar out of range");
        k as usize
    }

    fn neighbors(&self, r: usize) -> &[usize] {
        &self.neighbors[r]
    }

    fn route_next(&self, r: usize, dst: usize) -> usize {
        if r == dst {
            r
        } else {
            dst
        }
    }

    fn name(&self) -> String {
        format!("point-to-point ({} crossbars)", self.crossbars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_lut_routes_through_hub() {
        use super::super::RouteLut;
        let s = Star::new(5);
        let lut = RouteLut::new(&s);
        for a in 0..5 {
            for b in 0..5 {
                if a == b {
                    continue;
                }
                // a leaf's only egress is port 0, toward the hub
                assert_eq!(lut.next_router(a, b), s.hub());
                assert_eq!(lut.egress_port(a, b), 0);
                // the hub's egress port toward leaf b is b (insertion order)
                assert_eq!(lut.egress_port(s.hub(), b), b as u32);
            }
        }
    }

    #[test]
    fn star_two_hop_property() {
        let s = Star::new(8);
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert_eq!(s.hops(a, b), 2);
                }
            }
        }
    }

    #[test]
    fn star_hub_degree() {
        let s = Star::new(5);
        assert_eq!(s.neighbors(s.hub()).len(), 5);
        assert_eq!(s.neighbors(0), &[s.hub()]);
    }

    #[test]
    fn p2p_single_hop() {
        let p = PointToPoint::new(6);
        for a in 0..6 {
            for b in 0..6 {
                if a != b {
                    assert_eq!(p.hops(a, b), 1);
                }
            }
        }
    }

    #[test]
    fn p2p_degree() {
        let p = PointToPoint::new(4);
        assert_eq!(p.neighbors(2).len(), 3);
    }
}
