//! 2-D mesh and torus with dimension-order routing.

use super::Topology;

/// Shared Steiner-style multicast-tree builder for the grid fabrics
/// ([`Mesh2D`] and [`Torus`]): a dimension-ordered approximation that
/// merges shared prefix hops before branching.
///
/// The smallest destination router id is the *primary*; its plain
/// dimension-order route (with the topology's unicast VC labels, supplied
/// by `walk`) seeds the tree. Every further destination, in ascending
/// router id order, attaches at the existing tree node `v` with
/// `v.x <= d.x` minimizing the east-then-vertical detour
/// `(d.x - v.x) + |d.y - v.y|` (ties to the smallest node id); the
/// connect path runs east first, then vertically, every hop on the
/// per-destination constant `connect_vc(d)`. A destination with no tree
/// node at or west of it falls back to its full dimension-order route
/// from the source. The construction is a pure function of
/// `(src, dest_routers)` — `BTreeMap` iteration keeps the attach scan
/// deterministic — and every returned path is simple: along a connect
/// path the detour metric strictly decreases, so an interior connect node
/// can never have been a cheaper attach candidate than `v`, hence never a
/// tree node the path could revisit.
///
/// Deadlock-freedom: connect paths only ever step east or vertically
/// (never west, never across a torus wraparound), so on the mesh the
/// realized turns stay inside the west-first turn set, and on the torus
/// (where `connect_vc` keeps connect hops on the upper, wrap-free VC
/// half) the dateline argument of [`Torus::hop_vc`] is preserved —
/// verified over the differential corpus by
/// [`super::check_vc_tree_dependencies`].
fn grid_steiner_routes(
    cols: usize,
    src: usize,
    dest_routers: &[usize],
    walk: &dyn Fn(usize) -> Vec<(usize, usize)>,
    connect_vc: &dyn Fn(usize) -> usize,
) -> Vec<Vec<(usize, usize)>> {
    use std::collections::BTreeMap;
    let coords = |r: usize| (r % cols, r / cols);
    // tree node -> the (simple) hop path from src to it
    let mut tree: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
    tree.insert(src, Vec::new());
    let mut uniq: Vec<usize> = dest_routers.to_vec();
    uniq.sort_unstable();
    uniq.dedup();
    let seed = |tree: &mut BTreeMap<usize, Vec<(usize, usize)>>, d: usize| {
        let mut pref = Vec::new();
        for &(next, vc) in &walk(d) {
            pref.push((next, vc));
            tree.entry(next).or_insert_with(|| pref.clone());
        }
    };
    if let Some(&primary) = uniq.first() {
        seed(&mut tree, primary);
    }
    for &d in uniq.iter().skip(1) {
        if tree.contains_key(&d) {
            continue; // already on the tree: ride the existing path
        }
        let (dx, dy) = coords(d);
        let mut best: Option<(usize, usize)> = None; // (detour, node)
        for &v in tree.keys() {
            let (vx, vy) = coords(v);
            if vx <= dx {
                let m = (dx - vx) + vy.abs_diff(dy);
                if best.is_none_or(|(bm, _)| m < bm) {
                    best = Some((m, v));
                }
            }
        }
        let Some((_, v)) = best else {
            seed(&mut tree, d); // nothing at or west of d: full root route
            continue;
        };
        let cvc = connect_vc(d);
        let mut pref = tree[&v].clone();
        let (mut cx, mut cy) = coords(v);
        let mut cur = v;
        while cx < dx {
            cur += 1;
            cx += 1;
            pref.push((cur, cvc));
            tree.entry(cur).or_insert_with(|| pref.clone());
        }
        while cy != dy {
            if cy < dy {
                cur += cols;
                cy += 1;
            } else {
                cur -= cols;
                cy -= 1;
            }
            pref.push((cur, cvc));
            tree.entry(cur).or_insert_with(|| pref.clone());
        }
        debug_assert_eq!(cur, d, "connect path must land on the destination");
    }
    dest_routers.iter().map(|&d| tree[&d].clone()).collect()
}

/// A `cols × rows` mesh of routers, one crossbar per router (row-major),
/// XY dimension-order routing (x first, then y) — deadlock-free and
/// deterministic, the NoC-mesh of TrueNorth-class chips.
#[derive(Debug, Clone)]
pub struct Mesh2D {
    cols: usize,
    rows: usize,
    num_crossbars: usize,
    neighbors: Vec<Vec<usize>>,
}

impl Mesh2D {
    /// Builds a near-square mesh large enough for `crossbars` crossbars.
    ///
    /// # Panics
    ///
    /// Panics if `crossbars` is zero.
    pub fn for_crossbars(crossbars: usize) -> Self {
        assert!(crossbars > 0, "at least one crossbar required");
        let cols = (crossbars as f64).sqrt().ceil() as usize;
        let rows = crossbars.div_ceil(cols);
        Self::grid(cols, rows, crossbars)
    }

    /// Builds an explicit `cols × rows` mesh hosting `crossbars` crossbars
    /// at router ids `0..crossbars` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the grid cannot host the crossbars or any dimension is 0.
    pub fn grid(cols: usize, rows: usize, crossbars: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid dimensions must be positive");
        assert!(crossbars <= cols * rows, "grid too small for crossbars");
        let n = cols * rows;
        let mut neighbors = vec![Vec::new(); n];
        for y in 0..rows {
            for x in 0..cols {
                let id = y * cols + x;
                if x + 1 < cols {
                    neighbors[id].push(id + 1);
                }
                if x > 0 {
                    neighbors[id].push(id - 1);
                }
                if y + 1 < rows {
                    neighbors[id].push(id + cols);
                }
                if y > 0 {
                    neighbors[id].push(id - cols);
                }
            }
        }
        Self {
            cols,
            rows,
            num_crossbars: crossbars,
            neighbors,
        }
    }

    fn coords(&self, r: usize) -> (usize, usize) {
        (r % self.cols, r / self.cols)
    }

    /// Grid width in routers.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid height in routers.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

impl Topology for Mesh2D {
    fn num_routers(&self) -> usize {
        self.cols * self.rows
    }

    fn num_crossbars(&self) -> usize {
        self.num_crossbars
    }

    fn endpoint(&self, k: u32) -> usize {
        assert!((k as usize) < self.num_crossbars, "crossbar out of range");
        k as usize
    }

    fn neighbors(&self, r: usize) -> &[usize] {
        &self.neighbors[r]
    }

    fn route_next(&self, r: usize, dst: usize) -> usize {
        if r == dst {
            return r;
        }
        let (x, y) = self.coords(r);
        let (dx, dy) = self.coords(dst);
        // X first, then Y
        if x < dx {
            r + 1
        } else if x > dx {
            r - 1
        } else if y < dy {
            r + self.cols
        } else {
            r - self.cols
        }
    }

    fn hops(&self, from: usize, to: usize) -> u32 {
        let (x0, y0) = self.coords(from);
        let (x1, y1) = self.coords(to);
        (x0.abs_diff(x1) + y0.abs_diff(y1)) as u32
    }

    /// Dimension-ordered Steiner approximation ([`grid_steiner_routes`]).
    /// Connect hops reuse the mesh's destination-spread VC label
    /// (`d % vc_count`), and the realized turns stay inside the west-first
    /// turn set (west hops only on dimension-order prefixes from the
    /// source), so the `(link, vc)` dependency graph stays acyclic for
    /// every `vc_count` — the mesh link graph already is.
    fn multicast_route(
        &self,
        src: usize,
        dest_routers: &[usize],
        vc_count: usize,
    ) -> Vec<Vec<(usize, usize)>> {
        let vc_of = |d: usize| if vc_count <= 1 { 0 } else { d % vc_count };
        let walk = |d: usize| {
            let mut path = Vec::new();
            let mut cur = src;
            while cur != d {
                cur = self.route_next(cur, d);
                path.push((cur, vc_of(d)));
            }
            path
        };
        grid_steiner_routes(self.cols, src, dest_routers, &walk, &vc_of)
    }

    fn name(&self) -> String {
        format!("mesh {}x{}", self.cols, self.rows)
    }
}

/// A `cols × rows` torus (mesh with wraparound links), shortest-direction
/// dimension-order routing.
#[derive(Debug, Clone)]
pub struct Torus {
    cols: usize,
    rows: usize,
    num_crossbars: usize,
    neighbors: Vec<Vec<usize>>,
}

impl Torus {
    /// Builds a near-square torus for `crossbars` crossbars.
    ///
    /// # Panics
    ///
    /// Panics if `crossbars` is zero.
    pub fn for_crossbars(crossbars: usize) -> Self {
        assert!(crossbars > 0, "at least one crossbar required");
        let cols = (crossbars as f64).sqrt().ceil() as usize;
        let rows = crossbars.div_ceil(cols);
        Self::grid(cols, rows, crossbars)
    }

    /// Builds an explicit `cols × rows` torus hosting `crossbars`
    /// crossbars at router ids `0..crossbars` (row-major) — degenerate
    /// shapes included (a `L × 1` grid is a plain ring, the minimal
    /// wraparound fabric the deadlock regression tests use).
    ///
    /// # Panics
    ///
    /// Panics if the grid cannot host the crossbars or any dimension is 0.
    pub fn grid(cols: usize, rows: usize, crossbars: usize) -> Self {
        assert!(cols > 0 && rows > 0, "grid dimensions must be positive");
        assert!(crossbars <= cols * rows, "grid too small for crossbars");
        let n = cols * rows;
        let mut neighbors = vec![Vec::new(); n];
        for y in 0..rows {
            for x in 0..cols {
                let id = y * cols + x;
                let mut push_unique = |n_id: usize| {
                    if n_id != id && !neighbors[id].contains(&n_id) {
                        neighbors[id].push(n_id);
                    }
                };
                push_unique(y * cols + (x + 1) % cols);
                push_unique(y * cols + (x + cols - 1) % cols);
                push_unique(((y + 1) % rows) * cols + x);
                push_unique(((y + rows - 1) % rows) * cols + x);
            }
        }
        Self {
            cols,
            rows,
            num_crossbars: crossbars,
            neighbors,
        }
    }

    fn coords(&self, r: usize) -> (usize, usize) {
        (r % self.cols, r / self.cols)
    }

    /// Signed step (-1, 0, +1) along one ring of length `len` from `a`
    /// toward `b`, shortest way round (ties go up).
    fn ring_step(a: usize, b: usize, len: usize) -> isize {
        if a == b {
            return 0;
        }
        let fwd = (b + len - a) % len;
        let bwd = (a + len - b) % len;
        if fwd <= bwd {
            1
        } else {
            -1
        }
    }

    /// Whether the remaining route from ring position `pos` to `dpos`
    /// (length-`len` ring, shortest way, ties up) still has the
    /// wraparound link ahead of it — i.e. the packet has not yet crossed
    /// the dateline of this ring and direction.
    fn wrap_ahead(pos: usize, dpos: usize, len: usize) -> bool {
        match Self::ring_step(pos, dpos, len) {
            1 => dpos < pos,  // climbing: wraps iff the target is below
            -1 => dpos > pos, // descending: wraps iff the target is above
            _ => false,
        }
    }
}

impl Topology for Torus {
    fn num_routers(&self) -> usize {
        self.cols * self.rows
    }

    fn num_crossbars(&self) -> usize {
        self.num_crossbars
    }

    fn endpoint(&self, k: u32) -> usize {
        assert!((k as usize) < self.num_crossbars, "crossbar out of range");
        k as usize
    }

    fn neighbors(&self, r: usize) -> &[usize] {
        &self.neighbors[r]
    }

    fn route_next(&self, r: usize, dst: usize) -> usize {
        if r == dst {
            return r;
        }
        let (x, y) = self.coords(r);
        let (dx, dy) = self.coords(dst);
        let sx = Self::ring_step(x, dx, self.cols);
        if sx != 0 {
            let nx = (x as isize + sx).rem_euclid(self.cols as isize) as usize;
            return y * self.cols + nx;
        }
        let sy = Self::ring_step(y, dy, self.rows);
        let ny = (y as isize + sy).rem_euclid(self.rows as isize) as usize;
        ny * self.cols + x
    }

    /// Dateline VC assignment (see [`crate::router`] for the acyclicity
    /// argument): the VCs split into a lower and an upper half per ring;
    /// a hop rides the lower half while the wraparound link is still
    /// ahead in the current dimension and the upper half afterwards, with
    /// destinations spread across the lanes of each half. The wrap link
    /// is only ever traversed on the lower half, so ordering the channels
    /// lower-half → wrap → upper-half breaks the ring's dependency cycle.
    fn hop_vc(&self, r: usize, dst: usize, vc_count: usize) -> usize {
        if vc_count <= 1 || r == dst {
            return 0;
        }
        let (x, y) = self.coords(r);
        let (dx, dy) = self.coords(dst);
        // dimension-order: resolve x first, then y
        let (pos, dpos, len) = if x != dx {
            (x, dx, self.cols)
        } else {
            (y, dy, self.rows)
        };
        let half = vc_count / 2;
        if Self::wrap_ahead(pos, dpos, len) {
            dst % half
        } else {
            half + dst % (vc_count - half)
        }
    }

    /// Dimension-ordered Steiner approximation ([`grid_steiner_routes`])
    /// at two or more VCs; at a single VC the torus degenerates to the
    /// per-destination unicast routes (the trait default), because tree
    /// merging has no wrap-free VC half to put connect hops on — exactly
    /// the regime where single-channel torus routing is deadlock-prone
    /// already. With `vc_count >= 2` the dimension-order prefixes carry
    /// the dateline labels of [`Torus::hop_vc`] and connect paths ride
    /// the upper (never-wrapping) half on non-wrap links only, so wrap
    /// channels remain reachable solely through lower-half
    /// dimension-order chains and the dateline acyclicity argument
    /// survives the tree edges.
    fn multicast_route(
        &self,
        src: usize,
        dest_routers: &[usize],
        vc_count: usize,
    ) -> Vec<Vec<(usize, usize)>> {
        let walk = |d: usize| {
            let mut path = Vec::new();
            let mut cur = src;
            while cur != d {
                let vc = if vc_count <= 1 {
                    0
                } else {
                    self.hop_vc(cur, d, vc_count)
                };
                cur = self.route_next(cur, d);
                path.push((cur, vc));
            }
            path
        };
        if vc_count <= 1 {
            return dest_routers.iter().map(|&d| walk(d)).collect();
        }
        let half = vc_count / 2;
        let connect_vc = |d: usize| half + d % (vc_count - half);
        grid_steiner_routes(self.cols, src, dest_routers, &walk, &connect_vc)
    }

    fn name(&self) -> String {
        format!("torus {}x{}", self.cols, self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_lut_follows_xy_order() {
        use super::super::RouteLut;
        let m = Mesh2D::grid(3, 3, 9);
        let lut = RouteLut::new(&m);
        // 0 -> 8 goes X first: next hop is router 1, and the egress port
        // indexes the +x neighbor
        assert_eq!(lut.next_router(0, 8), 1);
        let p = lut.egress_port(0, 8) as usize;
        assert_eq!(m.neighbors(0)[p], 1);
        // same column: Y moves next
        assert_eq!(lut.next_router(1, 7), 4);
        assert_eq!(lut.egress_port(4, 4), RouteLut::NO_PORT);
    }

    #[test]
    fn mesh_geometry() {
        let m = Mesh2D::for_crossbars(7); // 3x3 grid
        assert_eq!(m.num_routers(), 9);
        assert_eq!(m.num_crossbars(), 7);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn mesh_corner_and_center_degree() {
        let m = Mesh2D::grid(3, 3, 9);
        assert_eq!(m.neighbors(0).len(), 2); // corner
        assert_eq!(m.neighbors(4).len(), 4); // center
        assert_eq!(m.neighbors(1).len(), 3); // edge
    }

    #[test]
    fn mesh_xy_route_is_manhattan() {
        let m = Mesh2D::grid(4, 4, 16);
        assert_eq!(m.hops(0, 15), 6);
        // XY: from 0 (0,0) to 15 (3,3): first along x
        assert_eq!(m.route_next(0, 15), 1);
        assert_eq!(m.route_next(3, 15), 7); // x aligned, move y
    }

    #[test]
    fn mesh_route_terminates_at_destination() {
        let m = Mesh2D::grid(4, 2, 8);
        assert_eq!(m.route_next(5, 5), 5);
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn mesh_overfull_grid_rejected() {
        let _ = Mesh2D::grid(2, 2, 5);
    }

    #[test]
    fn torus_wraps() {
        let t = Torus::for_crossbars(9); // 3x3
                                         // 0 (0,0) to 2 (2,0): wrap left is 1 hop
        assert_eq!(t.hops(0, 2), 1);
        assert_eq!(t.route_next(0, 2), 2);
    }

    #[test]
    fn torus_shorter_than_mesh_on_opposite_corners() {
        let m = Mesh2D::grid(4, 4, 16);
        let t = Torus::for_crossbars(16);
        assert!(t.hops(0, 15) < m.hops(0, 15));
    }

    #[test]
    fn torus_degree_is_four_for_3x3() {
        let t = Torus::for_crossbars(9);
        for r in 0..9 {
            assert_eq!(t.neighbors(r).len(), 4, "router {r}");
        }
    }

    #[test]
    fn torus_grid_builds_a_plain_ring() {
        let ring = Torus::grid(4, 1, 4);
        assert_eq!(ring.num_routers(), 4);
        assert_eq!(ring.num_crossbars(), 4);
        for r in 0..4 {
            assert_eq!(ring.neighbors(r).len(), 2, "router {r}");
        }
        // wraparound: 3 -> 0 is one hop, and ties go the increasing way
        assert_eq!(ring.route_next(3, 0), 0);
        assert_eq!(ring.route_next(0, 2), 1);
        assert_eq!(ring.hops(0, 3), 1);
    }

    #[test]
    #[should_panic(expected = "grid too small")]
    fn torus_overfull_grid_rejected() {
        let _ = Torus::grid(2, 2, 5);
    }

    #[test]
    fn torus_dateline_vc_is_stateless_and_two_valued_at_two_vcs() {
        let t = Torus::for_crossbars(16);
        for r in 0..16 {
            for dst in 0..16 {
                let vc = t.hop_vc(r, dst, 2);
                assert!(vc < 2);
                assert_eq!(vc, t.hop_vc(r, dst, 2), "must be pure");
            }
        }
        // a hop that still has the wrap ahead rides vc 0: 1 -> 0 going
        // left-to-wrap... 2 -> 0 on the 4-ring row goes +x through the
        // wrap (tie up), so at router 2 toward 0 the wrap is ahead
        let ring = Torus::grid(4, 1, 4);
        assert_eq!(ring.route_next(2, 0), 3);
        assert_eq!(ring.hop_vc(2, 0, 2), 0, "pre-dateline hop rides vc 0");
        // after the wrap (router 0 toward 1) no wrap remains: upper half
        assert_eq!(ring.hop_vc(0, 1, 2), 1);
    }
}
