//! Hierarchical multi-chip fabric: an intra-chip grid topology
//! ([`Mesh2D`] or [`Torus`]) nested inside an inter-chip mesh of chips,
//! joined by slower and narrower chip-boundary links.
//!
//! ## Structure
//!
//! Chips tile a `chip_cols × chip_rows` grid; every chip carries an
//! identical `intra_cols × intra_rows` router grid. Router ids are
//! chip-major: global router `chip * intra_cols * intra_rows + local`,
//! with chips and locals both numbered row-major. Adjacent chips are
//! joined by one boundary link per facing row/column (router
//! `(intra_cols - 1, y)` of a chip to router `(0, y)` of its east
//! neighbor, and symmetrically in the vertical dimension), so the union
//! of intra-chip links and boundary links forms one
//! `(chip_cols · intra_cols) × (chip_rows · intra_rows)` global grid.
//!
//! ## Routing and the nesting invariant
//!
//! * **Single chip** — every trait method delegates to the intra-chip
//!   topology verbatim: a 1-chip `HierTopology` routes, labels VCs, and
//!   builds multicast trees byte-identically to the flat [`Mesh2D`] /
//!   [`Torus`] it wraps (differentially pinned in
//!   `tests/hier_properties.rs`).
//! * **Multiple chips** — all traffic routes dimension-ordered (global
//!   X, then global Y) over the global grid. Routes between routers of
//!   the *same* chip stay strictly inside that chip — the **nesting
//!   invariant**: an intra-chip route never traverses a chip boundary.
//!   Torus wraparound links exist as neighbors but are never routed
//!   over in a multi-chip fabric; XY routing on the wrap-free global
//!   grid keeps the `(link, VC)` channel-dependency graph acyclic at
//!   every `vc_count` (memoryless wrap routing on the destination-chip
//!   leg would let a cross-chip packet hand off onto a lower-half wrap
//!   channel and close a seam → wrap → seam dependency cycle).
//!
//! ## Pricing inter-chip hops
//!
//! Chip-boundary links are slower (`link_latency` cycles per hop) and
//! narrower (`link_width_divisor` × fewer wires) than intra-chip links,
//! so [`HierTopology::distance_lut`] builds a **nested weighted
//! [`DistanceLut`]**: intra-chip hops cost 1, each boundary crossing
//! costs [`HierTopology::seam_cost`] (latency × width divisor). The LUT
//! is what `CutHops`, placement, and the joint co-optimization loop
//! consume, so inter-chip traffic is priced as more expensive with no
//! API change upstream.
//!
//! ## Evaluator envelope
//!
//! Multi-chip scenarios routinely exceed the 256-crossbar byte-tile
//! ceiling; the batched swarm evaluator covers them on **u16 lanes** up
//! to `core::eval::TILE16_MAX_CROSSBARS` (1024) crossbars before
//! falling back to the scalar reference kernel.

use super::mesh::{Mesh2D, Torus};
use super::{DistanceLut, Topology};
use crate::error::NocError;

/// The intra-chip fabric every chip instantiates.
#[derive(Debug, Clone)]
enum IntraFabric {
    Mesh(Mesh2D),
    Torus(Torus),
}

impl IntraFabric {
    fn topo(&self) -> &dyn Topology {
        match self {
            IntraFabric::Mesh(m) => m,
            IntraFabric::Torus(t) => t,
        }
    }
}

/// A hierarchical multi-chip topology: a grid of chips, each an
/// identical intra-chip [`Mesh2D`] or [`Torus`], joined by per-row/
/// per-column chip-boundary links that are slower and narrower than the
/// on-chip links. See the module docs for the routing model, the
/// nesting invariant, and the weighted distance table.
#[derive(Debug, Clone)]
pub struct HierTopology {
    chip_cols: usize,
    chip_rows: usize,
    intra_cols: usize,
    intra_rows: usize,
    /// Routers per chip (`intra_cols * intra_rows`).
    nr_intra: usize,
    num_crossbars: usize,
    link_latency: u32,
    link_width_divisor: u32,
    intra: IntraFabric,
    /// Precomputed per-router neighbor lists: the intra-chip neighbors
    /// first (in the intra topology's own order, mapped to global ids —
    /// what keeps 1-chip egress ports byte-identical to the flat
    /// fabric), then any boundary links in fixed +x, -x, +y, -y order.
    neighbors: Vec<Vec<usize>>,
}

impl HierTopology {
    /// Builds a `chip_cols × chip_rows` fabric of mesh chips, each an
    /// `intra_cols × intra_rows` [`Mesh2D`], hosting `crossbars`
    /// crossbars at routers `0..crossbars` (chip-major).
    ///
    /// `link_latency` is the cycle cost multiplier of one chip-boundary
    /// hop and `link_width_divisor` the link-width ratio (on-chip width
    /// over boundary width); both must be ≥ 1 and both inflate the
    /// weighted distance table ([`HierTopology::seam_cost`]).
    ///
    /// # Errors
    ///
    /// [`NocError::InvalidConfig`] on a zero chip/intra dimension, a
    /// zero-latency or zero-width boundary link, a chip grid too small
    /// for `crossbars`, or a weighted diameter overflowing `u32`
    /// (hop-latency overflow on deep hierarchies).
    pub fn mesh(
        chip_cols: usize,
        chip_rows: usize,
        intra_cols: usize,
        intra_rows: usize,
        crossbars: usize,
        link_latency: u32,
        link_width_divisor: u32,
    ) -> Result<Self, NocError> {
        validate(
            chip_cols,
            chip_rows,
            intra_cols,
            intra_rows,
            crossbars,
            link_latency,
            link_width_divisor,
        )?;
        let intra = IntraFabric::Mesh(Mesh2D::grid(
            intra_cols,
            intra_rows,
            intra_cols * intra_rows,
        ));
        Ok(Self::build(
            chip_cols,
            chip_rows,
            intra_cols,
            intra_rows,
            crossbars,
            link_latency,
            link_width_divisor,
            intra,
        ))
    }

    /// Like [`HierTopology::mesh`], but every chip is an intra-chip
    /// [`Torus`]. In a multi-chip fabric the wraparound links exist as
    /// neighbors but routing never uses them (see the module docs); a
    /// 1-chip instance behaves exactly like the flat [`Torus`],
    /// including its `vc_count ≥ 2` dateline requirement.
    ///
    /// # Errors
    ///
    /// Same domain checks as [`HierTopology::mesh`].
    pub fn torus(
        chip_cols: usize,
        chip_rows: usize,
        intra_cols: usize,
        intra_rows: usize,
        crossbars: usize,
        link_latency: u32,
        link_width_divisor: u32,
    ) -> Result<Self, NocError> {
        validate(
            chip_cols,
            chip_rows,
            intra_cols,
            intra_rows,
            crossbars,
            link_latency,
            link_width_divisor,
        )?;
        let intra =
            IntraFabric::Torus(Torus::grid(intra_cols, intra_rows, intra_cols * intra_rows));
        Ok(Self::build(
            chip_cols,
            chip_rows,
            intra_cols,
            intra_rows,
            crossbars,
            link_latency,
            link_width_divisor,
            intra,
        ))
    }

    /// Builds a mesh-chip fabric for `crossbars` crossbars split evenly
    /// across a `chip_cols × chip_rows` chip grid, each chip a
    /// near-square mesh (the [`Mesh2D::for_crossbars`] shape applied
    /// per chip).
    ///
    /// # Errors
    ///
    /// [`NocError::InvalidConfig`] under the same domain checks as
    /// [`HierTopology::mesh`], including a chip grid that does not
    /// cover `crossbars`.
    pub fn for_crossbars(
        crossbars: usize,
        chip_cols: usize,
        chip_rows: usize,
        link_latency: u32,
        link_width_divisor: u32,
    ) -> Result<Self, NocError> {
        let chips = chip_cols.max(1) * chip_rows.max(1);
        let per_chip = crossbars.div_ceil(chips).max(1);
        let intra_cols = (per_chip as f64).sqrt().ceil() as usize;
        let intra_rows = per_chip.div_ceil(intra_cols);
        Self::mesh(
            chip_cols,
            chip_rows,
            intra_cols,
            intra_rows,
            crossbars,
            link_latency,
            link_width_divisor,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        chip_cols: usize,
        chip_rows: usize,
        intra_cols: usize,
        intra_rows: usize,
        crossbars: usize,
        link_latency: u32,
        link_width_divisor: u32,
        intra: IntraFabric,
    ) -> Self {
        let nr_intra = intra_cols * intra_rows;
        let nr = chip_cols * chip_rows * nr_intra;
        let mut neighbors = vec![Vec::new(); nr];
        for chip in 0..chip_cols * chip_rows {
            let (cx, cy) = (chip % chip_cols, chip / chip_cols);
            let base = chip * nr_intra;
            for local in 0..nr_intra {
                let g = base + local;
                let (lx, ly) = (local % intra_cols, local / intra_cols);
                // intra links first, in the intra topology's own order
                for &ln in intra.topo().neighbors(local) {
                    neighbors[g].push(base + ln);
                }
                // then boundary links, +x, -x, +y, -y
                if lx + 1 == intra_cols && cx + 1 < chip_cols {
                    neighbors[g].push((chip + 1) * nr_intra + ly * intra_cols);
                }
                if lx == 0 && cx > 0 {
                    neighbors[g].push((chip - 1) * nr_intra + ly * intra_cols + (intra_cols - 1));
                }
                if ly + 1 == intra_rows && cy + 1 < chip_rows {
                    neighbors[g].push((chip + chip_cols) * nr_intra + lx);
                }
                if ly == 0 && cy > 0 {
                    neighbors[g]
                        .push((chip - chip_cols) * nr_intra + (intra_rows - 1) * intra_cols + lx);
                }
            }
        }
        Self {
            chip_cols,
            chip_rows,
            intra_cols,
            intra_rows,
            nr_intra,
            num_crossbars: crossbars,
            link_latency,
            link_width_divisor,
            intra,
            neighbors,
        }
    }

    /// Number of chips in the fabric.
    pub fn num_chips(&self) -> usize {
        self.chip_cols * self.chip_rows
    }

    /// Routers (and crossbar slots) per chip.
    pub fn routers_per_chip(&self) -> usize {
        self.nr_intra
    }

    /// Chip hosting router `r` (chip-major id layout).
    pub fn chip_of_router(&self, r: usize) -> usize {
        r / self.nr_intra
    }

    /// Chip hosting crossbar `k` (crossbars attach to router `k`).
    pub fn chip_of_crossbar(&self, k: u32) -> usize {
        k as usize / self.nr_intra
    }

    /// Effective cost of one chip-boundary hop in the weighted distance
    /// table: the latency multiplier times the width divisor (a link
    /// with half the wires serializes a packet over twice the cycles).
    pub fn seam_cost(&self) -> u32 {
        self.link_latency * self.link_width_divisor
    }

    fn single_chip(&self) -> bool {
        self.chip_cols == 1 && self.chip_rows == 1
    }

    /// Global grid coordinates of router `r`.
    fn global_coords(&self, r: usize) -> (usize, usize) {
        let (chip, local) = (r / self.nr_intra, r % self.nr_intra);
        let (cx, cy) = (chip % self.chip_cols, chip / self.chip_cols);
        let (lx, ly) = (local % self.intra_cols, local / self.intra_cols);
        (cx * self.intra_cols + lx, cy * self.intra_rows + ly)
    }

    /// Router id at global grid coordinates `(x, y)`.
    fn router_at(&self, x: usize, y: usize) -> usize {
        let (cx, lx) = (x / self.intra_cols, x % self.intra_cols);
        let (cy, ly) = (y / self.intra_rows, y % self.intra_rows);
        (cy * self.chip_cols + cx) * self.nr_intra + ly * self.intra_cols + lx
    }

    /// Weighted route distance between two routers: intra-chip hops
    /// cost 1, chip-boundary hops cost [`HierTopology::seam_cost`].
    /// Matches the dimension-ordered routes exactly (a straight global
    /// walk crosses `|Δchip|` boundaries per dimension); single-chip
    /// pairs delegate so torus wraps price like torus routes.
    fn weighted_router_distance(&self, a: usize, b: usize) -> u32 {
        if self.single_chip() {
            return self.intra.topo().hops(a, b);
        }
        let (ax, ay) = self.global_coords(a);
        let (bx, by) = self.global_coords(b);
        let (ca, cb) = (self.chip_of_router(a), self.chip_of_router(b));
        let (cax, cay) = (ca % self.chip_cols, ca / self.chip_cols);
        let (cbx, cby) = (cb % self.chip_cols, cb / self.chip_cols);
        let seams = (cax.abs_diff(cbx) + cay.abs_diff(cby)) as u32;
        let hops = (ax.abs_diff(bx) + ay.abs_diff(by)) as u32;
        hops - seams + seams * self.seam_cost()
    }

    /// The nested weighted distance table: every router/crossbar pair
    /// priced by [`HierTopology::weighted_router_distance`], so
    /// `CutHops`, placement, and co-optimization see inter-chip hops as
    /// [`HierTopology::seam_cost`] × dearer than on-chip hops. For a
    /// 1-chip fabric this is exactly [`DistanceLut::new`] on the flat
    /// intra topology. Use this instead of `DistanceLut::new(&hier)`
    /// for multi-chip fabrics: a plain BFS prices every link at 1 and
    /// (with torus chips) would follow wrap links the multi-chip routes
    /// never take.
    pub fn distance_lut(&self) -> DistanceLut {
        if self.single_chip() {
            return DistanceLut::new(self);
        }
        let nr = self.num_routers();
        let nc = self.num_crossbars;
        let mut router_hops = vec![0u32; nr * nr];
        for a in 0..nr {
            for b in 0..nr {
                router_hops[a * nr + b] = self.weighted_router_distance(a, b);
            }
        }
        let mut crossbar_hops = vec![0u32; nc * nc];
        for k1 in 0..nc {
            for k2 in 0..nc {
                crossbar_hops[k1 * nc + k2] = router_hops[k1 * nr + k2];
            }
        }
        DistanceLut {
            nr,
            nc,
            router_hops,
            crossbar_hops,
        }
    }
}

/// Domain checks shared by every constructor — typed errors instead of
/// debug asserts, mirroring `PartitionProblem::new`.
fn validate(
    chip_cols: usize,
    chip_rows: usize,
    intra_cols: usize,
    intra_rows: usize,
    crossbars: usize,
    link_latency: u32,
    link_width_divisor: u32,
) -> Result<(), NocError> {
    if chip_cols == 0 || chip_rows == 0 {
        return Err(NocError::InvalidConfig {
            name: "chip_grid",
            value: format!("{chip_cols}x{chip_rows}"),
        });
    }
    if intra_cols == 0 || intra_rows == 0 {
        return Err(NocError::InvalidConfig {
            name: "intra_grid",
            value: format!("{intra_cols}x{intra_rows}"),
        });
    }
    if crossbars == 0 {
        return Err(NocError::InvalidConfig {
            name: "num_crossbars",
            value: "0".into(),
        });
    }
    if link_latency == 0 {
        return Err(NocError::InvalidConfig {
            name: "link_latency",
            value: "0".into(),
        });
    }
    if link_width_divisor == 0 {
        return Err(NocError::InvalidConfig {
            name: "link_width_divisor",
            value: "0".into(),
        });
    }
    let routers = chip_cols
        .checked_mul(chip_rows)
        .and_then(|chips| chips.checked_mul(intra_cols))
        .and_then(|v| v.checked_mul(intra_rows))
        .ok_or(NocError::InvalidConfig {
            name: "chip_grid",
            value: format!("{chip_cols}x{chip_rows} chips of {intra_cols}x{intra_rows}"),
        })?;
    if crossbars > routers {
        return Err(NocError::InvalidConfig {
            name: "num_crossbars",
            value: format!("{crossbars} crossbars on {routers} routers"),
        });
    }
    // weighted diameter must fit the u32 distance table: the farthest
    // pair crosses every chip boundary once per dimension and walks the
    // rest on-chip
    let seam = u64::from(link_latency) * u64::from(link_width_divisor);
    let seams = (chip_cols - 1 + chip_rows - 1) as u64;
    let intra_span = ((intra_cols - 1) * chip_cols + (intra_rows - 1) * chip_rows) as u64;
    if intra_span + seams * seam > u64::from(u32::MAX) {
        return Err(NocError::InvalidConfig {
            name: "link_latency",
            value: format!(
                "weighted diameter {} overflows u32",
                intra_span + seams * seam
            ),
        });
    }
    Ok(())
}

impl Topology for HierTopology {
    fn num_routers(&self) -> usize {
        self.chip_cols * self.chip_rows * self.nr_intra
    }

    fn num_crossbars(&self) -> usize {
        self.num_crossbars
    }

    fn endpoint(&self, k: u32) -> usize {
        assert!((k as usize) < self.num_crossbars, "crossbar out of range");
        k as usize
    }

    fn neighbors(&self, r: usize) -> &[usize] {
        &self.neighbors[r]
    }

    fn route_next(&self, r: usize, dst: usize) -> usize {
        if r == dst {
            return r;
        }
        if self.single_chip() {
            return self.intra.topo().route_next(r, dst);
        }
        let (x, y) = self.global_coords(r);
        let (dx, dy) = self.global_coords(dst);
        // dimension-ordered over the global grid, wrap-free: X then Y
        if x < dx {
            self.router_at(x + 1, y)
        } else if x > dx {
            self.router_at(x - 1, y)
        } else if y < dy {
            self.router_at(x, y + 1)
        } else {
            self.router_at(x, y - 1)
        }
    }

    fn hop_vc(&self, r: usize, dst: usize, vc_count: usize) -> usize {
        if self.single_chip() {
            return self.intra.topo().hop_vc(r, dst, vc_count);
        }
        // multi-chip routing is XY on a wrap-free grid: the link graph
        // restricted to routed links is acyclic under any VC labeling,
        // so spread destinations like the flat mesh does
        if vc_count <= 1 {
            0
        } else {
            dst % vc_count
        }
    }

    fn multicast_route(
        &self,
        src: usize,
        dest_routers: &[usize],
        vc_count: usize,
    ) -> Vec<Vec<(usize, usize)>> {
        if self.single_chip() {
            return self
                .intra
                .topo()
                .multicast_route(src, dest_routers, vc_count);
        }
        // multi-chip: per-destination dimension-ordered walks (the
        // trait-default shape); the engines still merge shared
        // (egress port, VC) prefixes into one packet per branch
        dest_routers
            .iter()
            .map(|&d| {
                let mut path = Vec::new();
                let mut cur = src;
                while cur != d {
                    let next = self.route_next(cur, d);
                    let vc = self.hop_vc(cur, d, vc_count);
                    path.push((next, vc));
                    cur = next;
                }
                path
            })
            .collect()
    }

    fn hops(&self, from: usize, to: usize) -> u32 {
        if self.single_chip() {
            return self.intra.topo().hops(from, to);
        }
        let (x0, y0) = self.global_coords(from);
        let (x1, y1) = self.global_coords(to);
        (x0.abs_diff(x1) + y0.abs_diff(y1)) as u32
    }

    fn name(&self) -> String {
        format!(
            "hier {}x{} chips of {}",
            self.chip_cols,
            self.chip_rows,
            self.intra.topo().name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::super::{check_routes, check_vc_channel_dependencies, RouteLut};
    use super::*;

    #[test]
    fn construction_rejects_degenerate_parameters() {
        let invalid = |r: Result<HierTopology, NocError>, field: &str| match r {
            Err(NocError::InvalidConfig { name, .. }) => {
                assert_eq!(name, field, "wrong field blamed")
            }
            other => panic!("expected InvalidConfig for {field}, got {other:?}"),
        };
        invalid(HierTopology::mesh(0, 1, 4, 4, 16, 1, 1), "chip_grid");
        invalid(HierTopology::mesh(2, 2, 0, 4, 16, 1, 1), "intra_grid");
        invalid(HierTopology::mesh(2, 2, 4, 4, 0, 1, 1), "num_crossbars");
        invalid(HierTopology::mesh(2, 2, 4, 4, 16, 0, 1), "link_latency");
        invalid(
            HierTopology::mesh(2, 2, 4, 4, 16, 1, 0),
            "link_width_divisor",
        );
        // chip grid too small for the crossbars
        invalid(HierTopology::mesh(2, 2, 2, 2, 17, 1, 1), "num_crossbars");
        invalid(HierTopology::for_crossbars(0, 2, 2, 1, 1), "num_crossbars");
        // weighted diameter past the u32 distance table
        invalid(
            HierTopology::mesh(1000, 1000, 2, 2, 16, u32::MAX, 2),
            "link_latency",
        );
    }

    #[test]
    fn single_chip_delegates_to_flat_topologies() {
        let flat_mesh = Mesh2D::grid(4, 4, 16);
        let hm = HierTopology::mesh(1, 1, 4, 4, 16, 3, 2).unwrap();
        let flat_torus = Torus::grid(4, 4, 16);
        let ht = HierTopology::torus(1, 1, 4, 4, 16, 3, 2).unwrap();
        for r in 0..16 {
            assert_eq!(hm.neighbors(r), flat_mesh.neighbors(r), "mesh nbrs {r}");
            assert_eq!(ht.neighbors(r), flat_torus.neighbors(r), "torus nbrs {r}");
            for dst in 0..16 {
                assert_eq!(hm.route_next(r, dst), flat_mesh.route_next(r, dst));
                assert_eq!(ht.route_next(r, dst), flat_torus.route_next(r, dst));
                assert_eq!(hm.hops(r, dst), flat_mesh.hops(r, dst));
                assert_eq!(ht.hops(r, dst), flat_torus.hops(r, dst));
                for vc in 1..=4usize {
                    assert_eq!(hm.hop_vc(r, dst, vc), flat_mesh.hop_vc(r, dst, vc));
                    assert_eq!(ht.hop_vc(r, dst, vc), flat_torus.hop_vc(r, dst, vc));
                }
            }
        }
        // multicast trees delegate too
        let dests = vec![3usize, 12, 7, 7];
        assert_eq!(
            hm.multicast_route(0, &dests, 2),
            flat_mesh.multicast_route(0, &dests, 2)
        );
        assert_eq!(
            ht.multicast_route(0, &dests, 4),
            flat_torus.multicast_route(0, &dests, 4)
        );
        // and the 1-chip weighted LUT is the flat BFS LUT
        let flat_lut = DistanceLut::new(&flat_torus);
        let hier_lut = ht.distance_lut();
        for a in 0..16u32 {
            for b in 0..16u32 {
                assert_eq!(hier_lut.hops(a, b), flat_lut.hops(a, b));
            }
        }
    }

    #[test]
    fn multi_chip_routes_are_consistent_and_acyclic() {
        for topo in [
            HierTopology::mesh(2, 2, 4, 4, 64, 4, 2).unwrap(),
            HierTopology::mesh(3, 1, 2, 3, 18, 2, 1).unwrap(),
            HierTopology::torus(2, 2, 4, 4, 64, 4, 2).unwrap(),
            HierTopology::torus(1, 2, 3, 3, 18, 2, 1).unwrap(),
        ] {
            check_routes(&topo).unwrap_or_else(|e| panic!("{}: {e}", topo.name()));
            // wrap-free XY: acyclic at every vc_count, including 1
            for vc in 1..=4usize {
                check_vc_channel_dependencies(&topo, vc)
                    .unwrap_or_else(|e| panic!("{} vc={vc}: {e}", topo.name()));
            }
            // RouteLut construction double-checks neighbor uniqueness
            let _ = RouteLut::new(&topo);
        }
    }

    #[test]
    fn multi_chip_geometry_and_closed_forms() {
        let t = HierTopology::mesh(2, 2, 4, 4, 64, 4, 2).unwrap();
        assert_eq!(t.num_routers(), 64);
        assert_eq!(t.num_crossbars(), 64);
        assert_eq!(t.num_chips(), 4);
        assert_eq!(t.routers_per_chip(), 16);
        assert_eq!(t.chip_of_router(17), 1);
        assert_eq!(t.chip_of_crossbar(48), 3);
        assert_eq!(t.seam_cost(), 8);
        assert!(t.name().starts_with("hier 2x2 chips of mesh"));
        // router 0 is chip 0 (0,0); router 16+3 = chip 1 local (3,0) is
        // global (7,0): 7 x-hops, one of them the seam
        assert_eq!(t.hops(0, 19), 7);
        assert_eq!(t.distance_lut().hops(0, 19), 6 + 8);
        // same chip: plain Manhattan, no seam pricing
        assert_eq!(t.distance_lut().hops(0, 5), t.hops(0, 5));
        // routes walk exactly hops() steps
        let mut cur = 0usize;
        let mut steps = 0;
        while cur != 19 {
            cur = t.route_next(cur, 19);
            steps += 1;
        }
        assert_eq!(steps, 7);
    }

    #[test]
    fn weighted_lut_is_symmetric_and_dominates_hops() {
        let t = HierTopology::torus(2, 2, 3, 3, 36, 3, 2).unwrap();
        let lut = t.distance_lut();
        for a in 0..36u32 {
            assert_eq!(lut.hops(a, a), 0);
            for b in 0..36u32 {
                assert_eq!(lut.hops(a, b), lut.hops(b, a), "{a}<->{b}");
                assert!(lut.hops(a, b) >= t.hops(a as usize, b as usize), "{a}->{b}");
            }
        }
    }

    #[test]
    fn multi_chip_torus_never_routes_over_wrap_links() {
        // nesting invariant corollary: every routed hop moves to a
        // globally adjacent coordinate (wrap links jump further)
        let t = HierTopology::torus(2, 1, 4, 4, 32, 2, 1).unwrap();
        for src in 0..32usize {
            for dst in 0..32usize {
                let mut cur = src;
                while cur != dst {
                    let next = t.route_next(cur, dst);
                    let (x0, y0) = t.global_coords(cur);
                    let (x1, y1) = t.global_coords(next);
                    assert_eq!(
                        x0.abs_diff(x1) + y0.abs_diff(y1),
                        1,
                        "non-adjacent hop {cur}->{next} on {src}->{dst}"
                    );
                    cur = next;
                }
            }
        }
    }
}
