//! Interconnect topologies.
//!
//! A [`Topology`] describes the router graph, where each crossbar attaches,
//! and the deterministic route between any two routers. Implementations:
//!
//! | Model | Hardware family | Routing |
//! |---|---|---|
//! | [`Mesh2D`] | TrueNorth, HiCANN | XY dimension-order |
//! | [`NocTree`] | CxQuad | up-down (to lowest common ancestor) |
//! | [`Torus`] | research meshes with wraparound | shortest-direction dimension-order |
//! | [`Star`] | small shared-bus chips | via the hub |
//! | [`PointToPoint`] | idealized upper bound | direct |
//! | [`HierTopology`] | multi-chip fabrics (SpiNeMap-style scale-out) | intra-chip delegation / global XY across chips |

mod hier;
mod mesh;
mod star;
mod tree;

pub use hier::HierTopology;
pub use mesh::{Mesh2D, Torus};
pub use star::{PointToPoint, Star};
pub use tree::NocTree;

/// A router graph with deterministic routing and crossbar endpoints.
///
/// Router ids are `0..num_routers()`. Every crossbar `0..num_crossbars()`
/// attaches to exactly one router ([`Topology::endpoint`]); several
/// crossbars may share a router only in degenerate single-router cases.
pub trait Topology: Send + Sync {
    /// Number of routers in the graph.
    fn num_routers(&self) -> usize;

    /// Number of crossbars served.
    fn num_crossbars(&self) -> usize;

    /// Router to which crossbar `k` attaches.
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_crossbars()`.
    fn endpoint(&self, k: u32) -> usize;

    /// Direct neighbors of router `r` (egress ports, in fixed order).
    fn neighbors(&self, r: usize) -> &[usize];

    /// Next router on the deterministic route from `r` toward `dst`
    /// (a router id). Returns `r` itself when `r == dst`.
    fn route_next(&self, r: usize, dst: usize) -> usize;

    /// Virtual channel the hop leaving `r` toward (router) `dst` occupies
    /// when the interconnect runs `vc_count` VCs per ingress port, in
    /// `0..vc_count`.
    ///
    /// Must be a pure function of `(r, dst)` (packets carry no VC state;
    /// multicast branches split by `(egress port, VC)`), and must keep the
    /// `(link, VC)` channel-dependency graph acyclic — see
    /// [`crate::router`] for the argument. The default spreads
    /// destinations across VCs to cut head-of-line blocking, which is
    /// safe for every topology whose link-dependency graph is already
    /// acyclic (mesh, tree, star, point-to-point); topologies with cyclic
    /// link graphs ([`Torus`]) must override with a dateline scheme.
    fn hop_vc(&self, r: usize, dst: usize, vc_count: usize) -> usize {
        let _ = r;
        if vc_count <= 1 {
            0
        } else {
            dst % vc_count
        }
    }

    /// Deterministic Steiner-style multicast tree from router `src` to
    /// `dest_routers`, returned as one hop path per destination (in input
    /// order): `paths[i]` lists the `(next_router, vc)` hops from `src`
    /// to `dest_routers[i]`. A destination equal to `src` yields an empty
    /// path; duplicate destinations yield identical paths.
    ///
    /// The *tree* is the union of the returned paths: the simulators
    /// replicate a multicast packet only where two destinations' paths
    /// take different `(egress port, vc)` hops out of a router, so shared
    /// path prefixes ride a single packet. Implementations must uphold
    /// two invariants:
    ///
    /// * **Determinism** — a pure function of
    ///   `(src, dest_routers, vc_count)`; both NoC engines build their
    ///   routing tables from the same call, which is what keeps them
    ///   byte-identical under tree routing.
    /// * **VC-deadlock-freedom** — the `(link, vc)` channel-dependency
    ///   graph induced by all tree paths (consecutive hops of every
    ///   per-destination path) must stay acyclic for every `vc_count` the
    ///   topology supports, exactly as
    ///   [`check_vc_channel_dependencies`] demands of the unicast routes;
    ///   [`check_vc_tree_dependencies`] verifies the union of both edge
    ///   sets.
    ///
    /// The default implementation routes each destination independently
    /// along the deterministic unicast route with the unicast
    /// [`Topology::hop_vc`] labels — bit-identical to the non-tree
    /// engines' branch-splitting, so a topology without an override
    /// behaves the same whether trees are enabled or not, and a
    /// single-destination call always degenerates to the unicast route.
    /// [`Mesh2D`] and [`Torus`] override with dimension-ordered
    /// approximations that merge shared prefix hops before branching.
    fn multicast_route(
        &self,
        src: usize,
        dest_routers: &[usize],
        vc_count: usize,
    ) -> Vec<Vec<(usize, usize)>> {
        dest_routers
            .iter()
            .map(|&d| {
                let mut path = Vec::new();
                let mut cur = src;
                while cur != d {
                    let next = self.route_next(cur, d);
                    assert_ne!(next, cur, "route stalled at router {cur} toward {d}");
                    let vc = if vc_count <= 1 {
                        0
                    } else {
                        self.hop_vc(cur, d, vc_count)
                    };
                    path.push((next, vc));
                    cur = next;
                    assert!(
                        path.len() <= self.num_routers(),
                        "route from {src} to {d} exceeds router count"
                    );
                }
                path
            })
            .collect()
    }

    /// Hop count of the deterministic route between two routers.
    ///
    /// Default implementation walks [`Topology::route_next`]; override for
    /// analytic forms.
    fn hops(&self, from: usize, to: usize) -> u32 {
        let mut cur = from;
        let mut n = 0;
        while cur != to {
            let next = self.route_next(cur, to);
            assert_ne!(next, cur, "route stalled at router {cur} toward {to}");
            cur = next;
            n += 1;
            assert!(
                (n as usize) <= self.num_routers(),
                "route from {from} to {to} exceeds router count"
            );
        }
        n
    }

    /// A short human-readable name ("mesh 4x4", "tree arity 4", ...).
    fn name(&self) -> String;
}

/// Flattened routing tables precomputed from a [`Topology`].
///
/// The event-driven simulator resolves `route_next` on every candidate
/// scan; for table-free topologies (the tree walks ancestor chains per
/// call) that dominates the sweep. A `RouteLut` memoizes, for every
/// `(router, destination router)` pair, the next-hop router and the egress
/// port index in [`Topology::neighbors`] order, so lookups become two
/// array reads. Construction is `O(num_routers²)` — negligible next to a
/// simulation, and reusable across runs on the same topology.
#[derive(Debug, Clone)]
pub struct RouteLut {
    nr: usize,
    /// `next[r * nr + dst]` — next-hop router from `r` toward `dst`.
    next: Vec<u32>,
    /// `port[r * nr + dst]` — index of the next hop in `neighbors(r)`;
    /// [`RouteLut::NO_PORT`] when `r == dst` (no egress needed).
    port: Vec<u32>,
}

impl RouteLut {
    /// Sentinel port for `r == dst` entries.
    pub const NO_PORT: u32 = u32::MAX;

    /// Precomputes the routing tables of `topo`.
    ///
    /// # Panics
    ///
    /// Panics if `topo` routes through a non-neighbor (i.e. it would fail
    /// [`check_routes`]) or lists the same neighbor twice — with parallel
    /// links "the port toward a next hop" is ambiguous, and the simulators
    /// rely on it being unique.
    pub fn new(topo: &dyn Topology) -> Self {
        let nr = topo.num_routers();
        let mut next = vec![0u32; nr * nr];
        let mut port = vec![Self::NO_PORT; nr * nr];
        for r in 0..nr {
            let neighbors = topo.neighbors(r);
            for (i, &n) in neighbors.iter().enumerate() {
                assert!(
                    !neighbors[..i].contains(&n),
                    "router {r} lists neighbor {n} twice; parallel links are unsupported"
                );
            }
            for dst in 0..nr {
                let hop = topo.route_next(r, dst);
                next[r * nr + dst] = hop as u32;
                if r != dst {
                    let p = neighbors
                        .iter()
                        .position(|&n| n == hop)
                        .unwrap_or_else(|| panic!("route {r}->{dst} jumps to non-neighbor {hop}"));
                    port[r * nr + dst] = p as u32;
                }
            }
        }
        Self { nr, next, port }
    }

    /// Next-hop router from `r` toward `dst` (`r` itself when `r == dst`).
    #[inline]
    pub fn next_router(&self, r: usize, dst: usize) -> usize {
        self.next[r * self.nr + dst] as usize
    }

    /// Egress port index (into `neighbors(r)`) toward `dst`, or
    /// [`RouteLut::NO_PORT`] when `r == dst`.
    #[inline]
    pub fn egress_port(&self, r: usize, dst: usize) -> u32 {
        self.port[r * self.nr + dst]
    }
}

/// Precomputed all-pairs hop distances over a [`Topology`]'s router graph.
///
/// The placement stage of the mapping pipeline prices every candidate
/// cluster→crossbar permutation by hop-weighted packet counts; walking
/// [`Topology::route_next`] per query (or even calling the virtual
/// [`Topology::hops`]) inside those inner loops would dominate the
/// optimizer. A `DistanceLut` runs one BFS per router over the neighbor
/// graph (`O(R · (R + links))`, built **once** per topology and shared
/// across sweep points) and additionally flattens the crossbar-level
/// `endpoint(k1) → endpoint(k2)` distances into a row-major matrix for
/// the evaluators' hot loops.
///
/// For every topology shipped here the deterministic route is a shortest
/// path (XY/dimension-order on mesh and torus, LCA on the tree, via-hub
/// on the star, direct on point-to-point), so the BFS distances equal the
/// walked route lengths — asserted against [`Topology::hops`] for all
/// topologies and against the closed forms for [`Mesh2D`]/[`Torus`] in
/// the tests below. Distances over the undirected link graph are
/// symmetric by construction.
#[derive(Debug, Clone)]
pub struct DistanceLut {
    nr: usize,
    nc: usize,
    /// `router_hops[a * nr + b]` — BFS hop count between routers.
    router_hops: Vec<u32>,
    /// `crossbar_hops[k1 * nc + k2]` — hops between crossbar endpoints.
    crossbar_hops: Vec<u32>,
}

impl DistanceLut {
    /// Runs a BFS from every router and flattens the crossbar-level view.
    ///
    /// # Panics
    ///
    /// Panics if some router pair is unreachable over the neighbor links
    /// (every shipped topology is connected; a disconnected custom one
    /// cannot route anyway).
    pub fn new(topo: &dyn Topology) -> Self {
        let nr = topo.num_routers();
        let nc = topo.num_crossbars();
        let mut router_hops = vec![u32::MAX; nr * nr];
        let mut queue = std::collections::VecDeque::with_capacity(nr);
        for src in 0..nr {
            let row = &mut router_hops[src * nr..(src + 1) * nr];
            row[src] = 0;
            queue.clear();
            queue.push_back(src);
            while let Some(r) = queue.pop_front() {
                let d = row[r];
                for &next in topo.neighbors(r) {
                    if row[next] == u32::MAX {
                        row[next] = d + 1;
                        queue.push_back(next);
                    }
                }
            }
            assert!(
                row.iter().all(|&d| d != u32::MAX),
                "router {src} cannot reach the whole graph; topology is disconnected"
            );
        }
        let endpoints: Vec<usize> = (0..nc as u32).map(|k| topo.endpoint(k)).collect();
        let mut crossbar_hops = vec![0u32; nc * nc];
        for (k1, &e1) in endpoints.iter().enumerate() {
            for (k2, &e2) in endpoints.iter().enumerate() {
                crossbar_hops[k1 * nc + k2] = router_hops[e1 * nr + e2];
            }
        }
        Self {
            nr,
            nc,
            router_hops,
            crossbar_hops,
        }
    }

    /// Number of routers covered.
    pub fn num_routers(&self) -> usize {
        self.nr
    }

    /// Number of crossbars covered.
    pub fn num_crossbars(&self) -> usize {
        self.nc
    }

    /// Hop count between two routers.
    #[inline]
    pub fn router_hops(&self, a: usize, b: usize) -> u32 {
        self.router_hops[a * self.nr + b]
    }

    /// Hop count between the routers crossbars `k1` and `k2` attach to
    /// (zero when they share a router, in particular when `k1 == k2`).
    #[inline]
    pub fn hops(&self, k1: u32, k2: u32) -> u32 {
        self.crossbar_hops[k1 as usize * self.nc + k2 as usize]
    }

    /// The crossbar-level distance matrix, row-major
    /// (`matrix[k1 * num_crossbars + k2]`) — the flat view the batched
    /// evaluators index directly.
    #[inline]
    pub fn crossbar_matrix(&self) -> &[u32] {
        &self.crossbar_hops
    }

    /// The crossbar-level view of this table under a cluster → physical
    /// crossbar permutation: `permuted.hops(k1, k2)` prices the distance
    /// between the *physical* slots `perm[k1]` and `perm[k2]`, so an
    /// evaluator holding logical cluster ids scores exactly what the
    /// placed mapping will pay. The joint co-optimization loop
    /// (`core::coopt`) feeds this to the hop-weighted PSO objective after
    /// each placement refresh. The router-level distances are the
    /// topology's and are copied unchanged — only the crossbar view is
    /// re-indexed.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_crossbars()`.
    pub fn permuted(&self, perm: &[u32]) -> DistanceLut {
        let nc = self.nc;
        assert_eq!(perm.len(), nc, "permutation must cover every crossbar");
        let mut seen = vec![false; nc];
        for &p in perm {
            assert!(
                (p as usize) < nc && !seen[p as usize],
                "perm is not a permutation of 0..{nc}"
            );
            seen[p as usize] = true;
        }
        let mut crossbar_hops = vec![0u32; nc * nc];
        for k1 in 0..nc {
            let p1 = perm[k1] as usize;
            for k2 in 0..nc {
                crossbar_hops[k1 * nc + k2] = self.crossbar_hops[p1 * nc + perm[k2] as usize];
            }
        }
        DistanceLut {
            nr: self.nr,
            nc,
            router_hops: self.router_hops.clone(),
            crossbar_hops,
        }
    }
}

/// Exhaustively checks that deterministic routes between all router pairs
/// terminate and only use neighbor links. Intended for tests and as a
/// self-check after constructing custom topologies.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_routes(topo: &dyn Topology) -> Result<(), String> {
    let n = topo.num_routers();
    for from in 0..n {
        for to in 0..n {
            let mut cur = from;
            let mut steps = 0;
            while cur != to {
                let next = topo.route_next(cur, to);
                if next == cur {
                    return Err(format!("route {from}->{to} stalled at {cur}"));
                }
                if !topo.neighbors(cur).contains(&next) {
                    return Err(format!(
                        "route {from}->{to} jumps {cur}->{next}, not a link"
                    ));
                }
                cur = next;
                steps += 1;
                if steps > n {
                    return Err(format!("route {from}->{to} does not terminate"));
                }
            }
        }
    }
    Ok(())
}

/// Builds the `(directed link, VC)` channel-dependency graph induced by
/// the deterministic routes and [`Topology::hop_vc`] at `vc_count`
/// virtual channels, and checks it for cycles.
///
/// A node is a channel `(from, to, vc)`; an edge `a → b` exists when some
/// route holds `a` and next requests `b` (consecutive hops of a walked
/// route). An acyclic graph is the classic sufficient condition for
/// deadlock-free wormhole/VCT routing (Dally–Seitz); the torus dateline
/// assignment exists exactly to make this check pass — see
/// [`crate::router`]. Intended for tests and as a self-check for custom
/// topologies.
///
/// # Errors
///
/// Returns a description naming one channel on a dependency cycle.
pub fn check_vc_channel_dependencies(topo: &dyn Topology, vc_count: usize) -> Result<(), String> {
    let mut deps = ChannelDeps::default();
    deps.add_unicast_routes(topo, vc_count);
    deps.check(vc_count)
}

/// Like [`check_vc_channel_dependencies`], but the dependency graph is
/// seeded with the unicast route edges **plus** every consecutive-hop
/// edge of the multicast tree paths for the given `(source router,
/// destination routers)` groups — the channels a tree-routed packet
/// actually holds while requesting the next one. Passing proves the PR-5
/// deadlock-freedom invariant survives [`Topology::multicast_route`]:
/// tree-routed and unicast traffic can share the fabric without closing a
/// channel-dependency cycle.
///
/// # Errors
///
/// Returns a description naming one channel on a dependency cycle.
pub fn check_vc_tree_dependencies(
    topo: &dyn Topology,
    vc_count: usize,
    groups: &[(usize, Vec<usize>)],
) -> Result<(), String> {
    let mut deps = ChannelDeps::default();
    deps.add_unicast_routes(topo, vc_count);
    for (src, dests) in groups {
        for path in topo.multicast_route(*src, dests, vc_count) {
            let mut cur = *src;
            let mut prev: Option<usize> = None;
            for (next, vc) in path {
                assert!(vc < vc_count, "tree vc out of range at {cur}->{next}");
                assert!(
                    topo.neighbors(cur).contains(&next),
                    "tree hop {cur}->{next} is not a link"
                );
                let id = deps.channel(cur, next, vc);
                if let Some(p) = prev {
                    deps.edges.insert((p, id));
                }
                prev = Some(id);
                cur = next;
            }
        }
    }
    deps.check(vc_count)
}

/// Shared accumulator for the channel-dependency checks: interned
/// `(from, to, vc)` channel nodes plus hold-then-request edges, checked
/// for cycles with Kahn's algorithm.
#[derive(Default)]
struct ChannelDeps {
    ids: std::collections::HashMap<(usize, usize, usize), usize>,
    channels: Vec<(usize, usize, usize)>,
    edges: std::collections::HashSet<(usize, usize)>,
}

impl ChannelDeps {
    fn channel(&mut self, from: usize, to: usize, vc: usize) -> usize {
        let key = (from, to, vc);
        *self.ids.entry(key).or_insert_with(|| {
            self.channels.push(key);
            self.channels.len() - 1
        })
    }

    fn add_unicast_routes(&mut self, topo: &dyn Topology, vc_count: usize) {
        let nr = topo.num_routers();
        for src in 0..nr {
            for dst in 0..nr {
                let mut cur = src;
                let mut prev: Option<usize> = None;
                while cur != dst {
                    let next = topo.route_next(cur, dst);
                    let vc = topo.hop_vc(cur, dst, vc_count);
                    assert!(vc < vc_count, "hop_vc out of range at {cur}->{dst}");
                    let id = self.channel(cur, next, vc);
                    if let Some(p) = prev {
                        self.edges.insert((p, id));
                    }
                    prev = Some(id);
                    cur = next;
                }
            }
        }
    }

    /// Kahn's algorithm: a cycle leaves nodes with nonzero indegree.
    fn check(&self, vc_count: usize) -> Result<(), String> {
        let n = self.channels.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for &(a, b) in &self.edges {
            adj[a].push(b);
            indeg[b] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(a) = queue.pop() {
            seen += 1;
            for &b in &adj[a] {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    queue.push(b);
                }
            }
        }
        if seen == n {
            Ok(())
        } else {
            let (f, t, v) = self.channels[indeg.iter().position(|&d| d > 0).expect("cycle node")];
            Err(format!(
                "channel-dependency cycle through link {f}->{t} on vc {v} (vc_count {vc_count})"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_topologies_have_consistent_routes() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh2D::for_crossbars(7)),
            Box::new(Mesh2D::for_crossbars(16)),
            Box::new(Torus::for_crossbars(9)),
            Box::new(NocTree::new(4, 4)),
            Box::new(NocTree::new(13, 2)),
            Box::new(Star::new(6)),
            Box::new(PointToPoint::new(5)),
        ];
        for t in &topos {
            check_routes(t.as_ref()).unwrap_or_else(|e| panic!("{}: {e}", t.name()));
        }
    }

    #[test]
    fn endpoints_are_valid_routers() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh2D::for_crossbars(5)),
            Box::new(NocTree::new(9, 3)),
            Box::new(Star::new(4)),
            Box::new(Torus::for_crossbars(6)),
            Box::new(PointToPoint::new(3)),
        ];
        for t in &topos {
            for k in 0..t.num_crossbars() as u32 {
                assert!(t.endpoint(k) < t.num_routers(), "{}", t.name());
            }
        }
    }

    #[test]
    fn route_lut_matches_dynamic_routing() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh2D::for_crossbars(7)),
            Box::new(Torus::for_crossbars(9)),
            Box::new(NocTree::new(13, 2)),
            Box::new(Star::new(6)),
            Box::new(PointToPoint::new(5)),
        ];
        for t in &topos {
            let lut = RouteLut::new(t.as_ref());
            for r in 0..t.num_routers() {
                for dst in 0..t.num_routers() {
                    assert_eq!(
                        lut.next_router(r, dst),
                        t.route_next(r, dst),
                        "{}: next {r}->{dst}",
                        t.name()
                    );
                    if r == dst {
                        assert_eq!(lut.egress_port(r, dst), RouteLut::NO_PORT, "{}", t.name());
                    } else {
                        let p = lut.egress_port(r, dst) as usize;
                        assert_eq!(
                            t.neighbors(r)[p],
                            t.route_next(r, dst),
                            "{}: port {r}->{dst}",
                            t.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distance_lut_matches_walked_routes_everywhere() {
        // the deterministic route of every shipped topology is a shortest
        // path, so the BFS distances must equal the route-walked hop
        // counts for all router pairs and all crossbar pairs
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh2D::for_crossbars(7)),
            Box::new(Mesh2D::for_crossbars(16)),
            Box::new(Torus::for_crossbars(9)),
            Box::new(Torus::for_crossbars(12)),
            Box::new(NocTree::new(4, 4)),
            Box::new(NocTree::new(13, 2)),
            Box::new(Star::new(6)),
            Box::new(PointToPoint::new(5)),
        ];
        for t in &topos {
            let lut = DistanceLut::new(t.as_ref());
            assert_eq!(lut.num_routers(), t.num_routers(), "{}", t.name());
            assert_eq!(lut.num_crossbars(), t.num_crossbars(), "{}", t.name());
            for a in 0..t.num_routers() {
                for b in 0..t.num_routers() {
                    assert_eq!(
                        lut.router_hops(a, b),
                        t.hops(a, b),
                        "{}: routers {a}->{b}",
                        t.name()
                    );
                    assert_eq!(
                        lut.router_hops(a, b),
                        lut.router_hops(b, a),
                        "{}: BFS distances must be symmetric",
                        t.name()
                    );
                }
            }
            for k1 in 0..t.num_crossbars() as u32 {
                for k2 in 0..t.num_crossbars() as u32 {
                    assert_eq!(
                        lut.hops(k1, k2),
                        t.hops(t.endpoint(k1), t.endpoint(k2)),
                        "{}: crossbars {k1}->{k2}",
                        t.name()
                    );
                    assert_eq!(
                        lut.crossbar_matrix()[k1 as usize * t.num_crossbars() + k2 as usize],
                        lut.hops(k1, k2),
                        "{}",
                        t.name()
                    );
                }
            }
        }
    }

    #[test]
    fn distance_lut_matches_mesh_and_torus_closed_forms() {
        // mesh: Manhattan distance |dx| + |dy|
        let m = Mesh2D::grid(5, 4, 20);
        let lut = DistanceLut::new(&m);
        for a in 0..20usize {
            for b in 0..20usize {
                let (xa, ya) = (a % 5, a / 5);
                let (xb, yb) = (b % 5, b / 5);
                assert_eq!(
                    lut.router_hops(a, b),
                    (xa.abs_diff(xb) + ya.abs_diff(yb)) as u32,
                    "mesh {a}->{b}"
                );
            }
        }
        // torus: per-dimension ring distance min(|d|, len - |d|)
        let t = Torus::for_crossbars(16); // 4x4
        let lut = DistanceLut::new(&t);
        let ring = |a: usize, b: usize, len: usize| a.abs_diff(b).min(len - a.abs_diff(b));
        for a in 0..16usize {
            for b in 0..16usize {
                let (xa, ya) = (a % 4, a / 4);
                let (xb, yb) = (b % 4, b / 4);
                assert_eq!(
                    lut.router_hops(a, b),
                    (ring(xa, xb, 4) + ring(ya, yb, 4)) as u32,
                    "torus {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn hop_vc_stays_in_range_everywhere() {
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh2D::for_crossbars(9)),
            Box::new(Torus::for_crossbars(16)),
            Box::new(Torus::grid(5, 1, 5)),
            Box::new(NocTree::new(8, 2)),
            Box::new(Star::new(6)),
            Box::new(PointToPoint::new(4)),
        ];
        for t in &topos {
            for vc_count in 1..=4usize {
                for r in 0..t.num_routers() {
                    for dst in 0..t.num_routers() {
                        let vc = t.hop_vc(r, dst, vc_count);
                        assert!(vc < vc_count, "{}: vc {vc} at {r}->{dst}", t.name());
                        if vc_count == 1 {
                            assert_eq!(vc, 0, "{}", t.name());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn single_channel_torus_dependencies_are_cyclic() {
        // the PR-4 deadlock, stated structurally: with one channel per
        // link, shortest-direction dimension-order routing on a torus
        // with rings of length >= 4 closes a channel-dependency cycle —
        // the hazard virtual channels exist to break
        let t = Torus::for_crossbars(16); // 4x4
        assert!(check_vc_channel_dependencies(&t, 1).is_err());
        let ring = Torus::grid(4, 1, 4);
        assert!(check_vc_channel_dependencies(&ring, 1).is_err());
    }

    #[test]
    fn dateline_assignment_makes_torus_dependencies_acyclic() {
        for vc_count in 2..=4usize {
            for t in [
                Torus::for_crossbars(16), // 4x4
                Torus::for_crossbars(20), // 5x4
                Torus::grid(4, 1, 4),     // minimal ring
                Torus::grid(6, 1, 6),
                Torus::for_crossbars(9), // 3x3
            ] {
                check_vc_channel_dependencies(&t, vc_count)
                    .unwrap_or_else(|e| panic!("{} at {vc_count} VCs: {e}", t.name()));
            }
        }
    }

    #[test]
    fn acyclic_link_graphs_stay_acyclic_under_vc_spreading() {
        // the default hop_vc spreads destinations across VCs; on
        // topologies whose link-dependency graph is already acyclic that
        // must not create a cycle (projection argument in crate::router)
        let topos: Vec<Box<dyn Topology>> = vec![
            Box::new(Mesh2D::for_crossbars(16)),
            Box::new(Mesh2D::grid(5, 2, 10)),
            Box::new(NocTree::new(8, 2)),
            Box::new(Star::new(6)),
            Box::new(PointToPoint::new(4)),
        ];
        for t in &topos {
            for vc_count in 1..=4usize {
                check_vc_channel_dependencies(t.as_ref(), vc_count)
                    .unwrap_or_else(|e| panic!("{} at {vc_count} VCs: {e}", t.name()));
            }
        }
    }

    #[test]
    fn torus_wrap_links_ride_the_lower_vc_half() {
        // walk every route: wraparound hops must use the lower half of
        // the VCs, and the VC phase may only step lower -> upper within a
        // dimension (the dateline is crossed at most once)
        let t = Torus::for_crossbars(16); // 4x4
        let vc_count = 4usize;
        let half = vc_count / 2;
        let wrapping = |from: usize, to: usize| {
            let (fx, fy) = (from % 4, from / 4);
            let (tx, ty) = (to % 4, to / 4);
            fx.abs_diff(tx) > 1 || fy.abs_diff(ty) > 1
        };
        for src in 0..16usize {
            for dst in 0..16usize {
                let mut cur = src;
                let mut upper_seen_x = false;
                while cur != dst {
                    let next = t.route_next(cur, dst);
                    let vc = t.hop_vc(cur, dst, vc_count);
                    if wrapping(cur, next) {
                        assert!(vc < half, "wrap hop {cur}->{next} on upper vc {vc}");
                    }
                    let same_row = cur / 4 == next / 4;
                    if same_row {
                        // x-dimension hops: once upper, never lower again
                        if vc >= half {
                            upper_seen_x = true;
                        } else {
                            assert!(!upper_seen_x, "{src}->{dst}: vc fell back to lower half");
                        }
                    }
                    cur = next;
                }
            }
        }
    }

    #[test]
    fn hops_are_symmetric_for_symmetric_topologies() {
        // mesh XY routing: |dx|+|dy| both ways
        let m = Mesh2D::for_crossbars(16);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(m.hops(a, b), m.hops(b, a));
            }
        }
    }
}
