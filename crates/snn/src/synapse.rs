//! Synapses: weighted, delayed connections between neurons.

use serde::{Deserialize, Serialize};

/// Maximum axonal delay in timesteps supported by the simulator's ring
/// buffer. CARLsim supports delays of 1..=20 ms; we match that bound.
pub const MAX_DELAY: u16 = 20;

/// A single synapse: a weighted, delayed connection `pre → post`.
///
/// Weights are dimensionless input currents delivered to the postsynaptic
/// model (negative = inhibitory). Delays are in whole timesteps, at least 1
/// (a spike emitted at step `t` arrives at `t + delay`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Synapse {
    /// Global index of the presynaptic neuron.
    pub pre: u32,
    /// Global index of the postsynaptic neuron.
    pub post: u32,
    /// Synaptic efficacy (current injected per presynaptic spike).
    pub weight: f32,
    /// Axonal delay in timesteps (≥ 1).
    pub delay: u16,
    /// Whether this synapse is subject to STDP.
    pub plastic: bool,
}

impl Synapse {
    /// Creates a static (non-plastic) synapse.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is 0 or exceeds [`MAX_DELAY`].
    pub fn new(pre: u32, post: u32, weight: f32, delay: u16) -> Self {
        assert!(
            (1..=MAX_DELAY).contains(&delay),
            "delay {delay} outside 1..={MAX_DELAY}"
        );
        Self {
            pre,
            post,
            weight,
            delay,
            plastic: false,
        }
    }

    /// Marks the synapse as plastic (STDP-managed). Builder-style.
    pub fn plastic(mut self) -> Self {
        self.plastic = true;
        self
    }

    /// Whether the synapse is excitatory (positive weight).
    pub fn is_excitatory(&self) -> bool {
        self.weight > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sets_fields() {
        let s = Synapse::new(3, 7, 1.5, 2);
        assert_eq!((s.pre, s.post, s.delay), (3, 7, 2));
        assert!(s.is_excitatory());
        assert!(!s.plastic);
    }

    #[test]
    fn plastic_builder_flags() {
        let s = Synapse::new(0, 1, 0.5, 1).plastic();
        assert!(s.plastic);
    }

    #[test]
    fn inhibitory_weight_detected() {
        let s = Synapse::new(0, 1, -2.0, 1);
        assert!(!s.is_excitatory());
    }

    #[test]
    #[should_panic(expected = "delay")]
    fn zero_delay_rejected() {
        let _ = Synapse::new(0, 1, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "delay")]
    fn oversized_delay_rejected() {
        let _ = Synapse::new(0, 1, 1.0, MAX_DELAY + 1);
    }
}
