//! # neuromap-snn — spiking neural network simulation substrate
//!
//! A CARLsim-class, clock-driven spiking neural network (SNN) simulator.
//! This crate is the *application-level* substrate of the neuromap
//! reproduction of Das et al., *"Mapping of Local and Global Synapses on
//! Spiking Neuromorphic Hardware"* (DATE 2018): it produces the trained
//! SNN together with the spike times of every neuron, which downstream
//! crates turn into a *spike graph* and partition onto hardware.
//!
//! ## What is provided
//!
//! * **Neuron models** — [`neuron::Izhikevich`] (the model CARLsim is built
//!   around, with the classic RS/FS/CH/IB/LTS parameterizations),
//!   [`neuron::Lif`], and [`neuron::AdaptiveLif`] (Diehl & Cook-style
//!   adaptive threshold used by the digit-recognition workload).
//! * **Network construction** — [`network::NetworkBuilder`] with neuron
//!   groups and reusable connection patterns (full, one-to-one, fixed
//!   probability, 2-D neighborhood kernels, explicit lists).
//! * **Spike sources** — [`generator::Generator`]: Poisson, per-neuron rate
//!   arrays, periodic, and explicit spike trains.
//! * **Simulation** — [`simulator::Simulator`], a fixed-timestep engine with
//!   axonal delays and full spike recording.
//! * **Plasticity** — [`stdp::StdpConfig`], pair-based trace STDP with weight
//!   clamping and divisive normalization (unsupervised learning).
//! * **Coding** — [`coding`]: rate coding and temporal (latency) coding,
//!   the two schemes distinguished in the paper's Table I.
//! * **Spike analysis** — [`spikes::SpikeTrain`] with inter-spike-interval
//!   (ISI) utilities that the paper's metrics are defined on.
//!
//! ## Quickstart
//!
//! ```
//! use neuromap_snn::network::{ConnectPattern, NetworkBuilder, WeightInit};
//! use neuromap_snn::neuron::NeuronKind;
//! use neuromap_snn::generator::Generator;
//! use neuromap_snn::simulator::Simulator;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), neuromap_snn::SnnError> {
//! let mut b = NetworkBuilder::new();
//! let input = b.add_input_group("in", 10, Generator::poisson(40.0))?;
//! let out = b.add_group("out", 5, NeuronKind::izhikevich_rs())?;
//! b.connect(input, out, ConnectPattern::Full, WeightInit::Constant(6.0), 1)?;
//! let net = b.build()?;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut sim = Simulator::new(net);
//! let record = sim.run(500, &mut rng)?; // 500 ms
//! assert_eq!(record.num_neurons(), 15);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coding;
mod error;
pub mod generator;
pub mod network;
pub mod neuron;
pub mod raster;
pub mod simulator;
pub mod spikes;
pub mod stdp;
pub mod synapse;

pub use error::SnnError;
pub use network::{GroupId, Network, NetworkBuilder};
pub use simulator::{SimConfig, Simulator, SpikeRecord};
pub use spikes::SpikeTrain;
