//! Spike coding schemes: rate coding and temporal (latency) coding.
//!
//! The paper's Table I distinguishes *rate-coded* applications (hello world,
//! image smoothing, digit recognition) from *temporally coded* ones
//! (heartbeat estimation). Rate coding carries information in spike counts,
//! so it is robust to interconnect jitter; temporal coding carries it in
//! precise spike timing, which is exactly what ISI distortion on a congested
//! NoC corrupts (Section V-B). This module provides encoders from analog
//! values to spike parameters, and decoders back.

use crate::spikes::SpikeTrain;

/// Maps normalized intensities `[0, 1]` to Poisson firing rates in
/// `[0, max_rate_hz]` — the standard rate encoding for images.
///
/// Values outside `[0, 1]` are clamped.
///
/// ```
/// use neuromap_snn::coding::rate_encode;
/// let rates = rate_encode(&[0.0, 0.5, 1.0, 2.0], 100.0);
/// assert_eq!(rates, vec![0.0, 50.0, 100.0, 100.0]);
/// ```
pub fn rate_encode(intensities: &[f64], max_rate_hz: f64) -> Vec<f64> {
    intensities
        .iter()
        .map(|&v| v.clamp(0.0, 1.0) * max_rate_hz)
        .collect()
}

/// Estimates the normalized intensity a spike train encodes under rate
/// coding: `rate / max_rate`, clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `duration_ms` is zero or `max_rate_hz` is not positive.
pub fn rate_decode(train: &SpikeTrain, duration_ms: u32, max_rate_hz: f64) -> f64 {
    assert!(max_rate_hz > 0.0, "max rate must be positive");
    (train.rate_hz(duration_ms) / max_rate_hz).clamp(0.0, 1.0)
}

/// Latency (time-to-first-spike) encoding: larger values spike earlier.
///
/// Value `v ∈ [0, 1]` maps to a single spike at
/// `t = round((1 − v) · (window − 1))`; `v` outside `[0, 1]` is clamped.
/// `window` is the encoding horizon in timesteps.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn latency_encode(value: f64, window: u32) -> SpikeTrain {
    assert!(window > 0, "window must be positive");
    let v = value.clamp(0.0, 1.0);
    let t = ((1.0 - v) * (window - 1) as f64).round() as u32;
    SpikeTrain::from_times(vec![t])
}

/// Decodes a latency-encoded value from the first spike in `train`.
///
/// Returns `None` for silent trains. The inverse of [`latency_encode`].
pub fn latency_decode(train: &SpikeTrain, window: u32) -> Option<f64> {
    assert!(window > 0, "window must be positive");
    let t = train.first()?;
    if window == 1 {
        return Some(1.0);
    }
    Some((1.0 - t as f64 / (window - 1) as f64).clamp(0.0, 1.0))
}

/// Inter-spike-interval encoding: a value `v ∈ [0, 1]` becomes a regular
/// train whose ISI interpolates between `max_isi` (v = 0) and `min_isi`
/// (v = 1). Used by the temporally coded heartbeat workload, where the
/// quantity of interest (RR interval) *is* an ISI.
///
/// # Panics
///
/// Panics if `min_isi` is zero or `min_isi > max_isi`.
pub fn isi_encode(value: f64, min_isi: u32, max_isi: u32, duration: u32) -> SpikeTrain {
    assert!(min_isi > 0, "minimum ISI must be positive");
    assert!(min_isi <= max_isi, "min_isi must not exceed max_isi");
    let v = value.clamp(0.0, 1.0);
    let isi = (max_isi as f64 - v * (max_isi - min_isi) as f64).round() as u32;
    let mut t = 0;
    let mut train = SpikeTrain::new();
    while t < duration {
        train.push(t);
        t += isi.max(1);
    }
    train
}

/// Decodes the value carried by a (noisy) ISI-encoded train via its mean ISI.
///
/// Returns `None` for trains with fewer than two spikes.
pub fn isi_decode(train: &SpikeTrain, min_isi: u32, max_isi: u32) -> Option<f64> {
    assert!(min_isi > 0 && min_isi <= max_isi);
    let mean = train.mean_isi()?;
    if max_isi == min_isi {
        return Some(1.0);
    }
    Some(((max_isi as f64 - mean) / (max_isi - min_isi) as f64).clamp(0.0, 1.0))
}

/// Level-crossing (delta) encoder — the spike generator sketched in the
/// paper's Fig. 3 for the heartbeat application: an analog signal emits an
/// *up* spike whenever it rises by `delta` above the tracked level and a
/// *down* spike when it falls by `delta` below.
///
/// Returns `(up_train, down_train)` over the sample index domain.
///
/// # Panics
///
/// Panics if `delta` is not positive.
///
/// ```
/// use neuromap_snn::coding::level_crossing_encode;
/// let ramp: Vec<f64> = (0..10).map(|i| i as f64).collect();
/// let (up, down) = level_crossing_encode(&ramp, 2.0);
/// assert_eq!(up.len(), 4);       // crossings at 2,4,6,8
/// assert!(down.is_empty());
/// ```
pub fn level_crossing_encode(signal: &[f64], delta: f64) -> (SpikeTrain, SpikeTrain) {
    assert!(delta > 0.0, "delta must be positive");
    let mut up = SpikeTrain::new();
    let mut down = SpikeTrain::new();
    let Some(&first) = signal.first() else {
        return (up, down);
    };
    let mut upper = first + delta;
    let mut lower = first - delta;
    for (i, &v) in signal.iter().enumerate().skip(1) {
        // a large swing may cross several levels within one sample; emit one
        // spike per sample (trains are per-timestep binary) but re-center the
        // band at the current value so tracking resumes correctly
        if v >= upper {
            up.push(i as u32);
            upper = v + delta;
            lower = v - delta;
        } else if v <= lower {
            down.push(i as u32);
            upper = v + delta;
            lower = v - delta;
        }
    }
    (up, down)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_roundtrip_statistics() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        let rates = rate_encode(&[0.3], 200.0);
        let train = crate::generator::poisson_train(rates[0], 5000, 1.0, &mut rng);
        let decoded = rate_decode(&train, 5000, 200.0);
        assert!((decoded - 0.3).abs() < 0.08, "decoded {decoded}");
    }

    #[test]
    fn latency_roundtrip_exact() {
        for &v in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let t = latency_encode(v, 101);
            let d = latency_decode(&t, 101).unwrap();
            assert!((d - v).abs() < 0.011, "v={v} decoded {d}");
        }
    }

    #[test]
    fn latency_orders_by_value() {
        let hi = latency_encode(0.9, 100).first().unwrap();
        let lo = latency_encode(0.1, 100).first().unwrap();
        assert!(hi < lo, "larger value spikes earlier");
    }

    #[test]
    fn latency_decode_silent_is_none() {
        assert_eq!(latency_decode(&SpikeTrain::new(), 100), None);
    }

    #[test]
    fn isi_roundtrip() {
        for &v in &[0.0, 0.5, 1.0] {
            let t = isi_encode(v, 5, 50, 1000);
            let d = isi_decode(&t, 5, 50).unwrap();
            assert!((d - v).abs() < 0.05, "v={v} decoded {d}");
        }
    }

    #[test]
    fn isi_distortion_shifts_decoded_value() {
        // jittering a temporal code corrupts the decoded value — the effect
        // the paper measures on the heartbeat workload
        let clean = isi_encode(0.5, 5, 50, 400);
        let jittered: SpikeTrain = clean
            .iter()
            .enumerate()
            .map(|(k, &t)| if k % 2 == 1 { t + 8 } else { t })
            .collect();
        let d_clean = isi_decode(&clean, 5, 50).unwrap();
        let d_jit = isi_decode(&jittered, 5, 50).unwrap();
        // mean ISI over the full train barely moves, but per-interval values do;
        // use max distortion to detect it
        assert!(crate::spikes::isi_distortion(&clean, &jittered) >= 8);
        assert!((d_clean - 0.5).abs() < 0.05);
        let _ = d_jit;
    }

    #[test]
    fn level_crossing_detects_both_directions() {
        let tri: Vec<f64> = (0..10)
            .map(|i| if i < 5 { i as f64 } else { (10 - i) as f64 })
            .collect();
        let (up, down) = level_crossing_encode(&tri, 1.5);
        assert!(!up.is_empty());
        assert!(!down.is_empty());
    }

    #[test]
    fn level_crossing_flat_signal_is_silent() {
        let flat = vec![3.0; 100];
        let (up, down) = level_crossing_encode(&flat, 0.5);
        assert!(up.is_empty() && down.is_empty());
    }

    #[test]
    fn level_crossing_empty_signal() {
        let (up, down) = level_crossing_encode(&[], 1.0);
        assert!(up.is_empty() && down.is_empty());
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn level_crossing_rejects_bad_delta() {
        let _ = level_crossing_encode(&[1.0], 0.0);
    }
}
