//! Network construction: neuron groups and connection patterns.
//!
//! A [`NetworkBuilder`] assembles *groups* (populations sharing a neuron
//! model or a spike generator) and *projections* between them, then
//! [`NetworkBuilder::build`]s an immutable [`Network`] with flat, globally
//! indexed neuron and synapse arrays — the representation the simulator and
//! the downstream spike-graph extraction consume.

use crate::error::SnnError;
use crate::generator::Generator;
use crate::neuron::NeuronKind;
use crate::synapse::{Synapse, MAX_DELAY};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Opaque handle to a group created by a [`NetworkBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GroupId(pub(crate) usize);

impl GroupId {
    /// Index of the group in creation order.
    pub fn index(self) -> usize {
        self.0
    }
}

/// How the neurons of a group behave.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroupKind {
    /// Integrating neurons with the given dynamics.
    Model(NeuronKind),
    /// Spike source (input) neurons driven by a generator.
    Input(Generator),
}

/// A named population of neurons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// Unique name.
    pub name: String,
    /// Global index of the first neuron of this group.
    pub first: u32,
    /// Number of neurons.
    pub size: u32,
    /// Behaviour of the group's neurons.
    pub kind: GroupKind,
}

impl Group {
    /// Global neuron-id range of this group.
    pub fn range(&self) -> std::ops::Range<u32> {
        self.first..self.first + self.size
    }

    /// Whether this group is a spike source.
    pub fn is_input(&self) -> bool {
        matches!(self.kind, GroupKind::Input(_))
    }
}

/// Deterministic connection patterns between two groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ConnectPattern {
    /// Every pre-neuron connects to every post-neuron
    /// (self-connections are skipped for recurrent projections).
    Full,
    /// Neuron `i` connects to neuron `i`; requires equal group sizes.
    OneToOne,
    /// Every pre-post pair connects independently with probability `p`.
    Random {
        /// Connection probability in `[0, 1]`.
        p: f64,
    },
    /// 2-D neighborhood (convolution-style) kernel: both groups are
    /// interpreted as `width × height` grids and each post-neuron receives
    /// from the `(2r+1)²` pre-neurons centered at its own coordinate
    /// (truncated at the borders). Requires `pre.size == post.size ==
    /// width * height`.
    Neighborhood2D {
        /// Grid width.
        width: u32,
        /// Grid height.
        height: u32,
        /// Kernel radius (r = 1 gives a 3×3 kernel).
        radius: u32,
    },
    /// Explicit `(pre_offset, post_offset)` pairs, offsets local to the
    /// respective groups.
    Pairs {
        /// Local index pairs to connect.
        pairs: Vec<(u32, u32)>,
    },
    /// All-to-all *except* the diagonal, then each connection kept with
    /// probability `p` — the classic recurrent-reservoir wiring of a liquid
    /// state machine.
    RecurrentRandom {
        /// Connection probability in `[0, 1]`.
        p: f64,
    },
}

/// How initial weights of a projection are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WeightInit {
    /// All synapses share one weight.
    Constant(f32),
    /// Weights drawn uniformly from `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f32,
        /// Upper bound (exclusive).
        hi: f32,
    },
}

impl WeightInit {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        match *self {
            WeightInit::Constant(w) => w,
            WeightInit::Uniform { lo, hi } => {
                if lo >= hi {
                    lo
                } else {
                    rng.gen_range(lo..hi)
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Projection {
    pre: GroupId,
    post: GroupId,
    pattern: ConnectPattern,
    weights: WeightInit,
    delay: u16,
    plastic: bool,
}

/// Incremental builder for a [`Network`].
///
/// ```
/// use neuromap_snn::network::{ConnectPattern, NetworkBuilder, WeightInit};
/// use neuromap_snn::neuron::NeuronKind;
/// use neuromap_snn::generator::Generator;
///
/// # fn main() -> Result<(), neuromap_snn::SnnError> {
/// let mut b = NetworkBuilder::new();
/// let inp = b.add_input_group("in", 4, Generator::poisson(20.0))?;
/// let exc = b.add_group("exc", 8, NeuronKind::izhikevich_rs())?;
/// b.connect(inp, exc, ConnectPattern::Full, WeightInit::Constant(5.0), 1)?;
/// let net = b.build()?;
/// assert_eq!(net.num_neurons(), 12);
/// assert_eq!(net.synapses().len(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    groups: Vec<Group>,
    projections: Vec<Projection>,
    next_id: u32,
    seed: u64,
}

impl NetworkBuilder {
    /// Creates an empty builder (connectivity seed 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the RNG seed used when materializing random patterns and
    /// weights at [`NetworkBuilder::build`] time.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Adds a group of integrating neurons.
    ///
    /// # Errors
    ///
    /// [`SnnError::EmptyGroup`] for `size == 0`;
    /// [`SnnError::DuplicateGroup`] if the name is taken.
    pub fn add_group(
        &mut self,
        name: &str,
        size: u32,
        kind: NeuronKind,
    ) -> Result<GroupId, SnnError> {
        self.add(name, size, GroupKind::Model(kind))
    }

    /// Adds an input (spike-source) group.
    ///
    /// # Errors
    ///
    /// As [`NetworkBuilder::add_group`], plus
    /// [`SnnError::GeneratorSizeMismatch`] when the generator prescribes a
    /// different neuron count.
    pub fn add_input_group(
        &mut self,
        name: &str,
        size: u32,
        generator: Generator,
    ) -> Result<GroupId, SnnError> {
        if let Some(n) = generator.prescribed_size() {
            if n != size as usize {
                return Err(SnnError::GeneratorSizeMismatch {
                    expected: size as usize,
                    got: n,
                });
            }
        }
        self.add(name, size, GroupKind::Input(generator))
    }

    fn add(&mut self, name: &str, size: u32, kind: GroupKind) -> Result<GroupId, SnnError> {
        if size == 0 {
            return Err(SnnError::EmptyGroup(name.to_owned()));
        }
        if self.groups.iter().any(|g| g.name == name) {
            return Err(SnnError::DuplicateGroup(name.to_owned()));
        }
        let id = GroupId(self.groups.len());
        self.groups.push(Group {
            name: name.to_owned(),
            first: self.next_id,
            size,
            kind,
        });
        self.next_id += size;
        Ok(id)
    }

    /// Declares a projection between two groups.
    ///
    /// # Errors
    ///
    /// * [`SnnError::UnknownGroup`] for dangling ids.
    /// * [`SnnError::InputAsTarget`] when `post` is an input group.
    /// * [`SnnError::PatternMismatch`] for size-incompatible patterns.
    /// * [`SnnError::InvalidParameter`] for delays outside `1..=`
    ///   [`MAX_DELAY`] or probabilities outside `[0, 1]`.
    pub fn connect(
        &mut self,
        pre: GroupId,
        post: GroupId,
        pattern: ConnectPattern,
        weights: WeightInit,
        delay: u16,
    ) -> Result<&mut Self, SnnError> {
        self.connect_impl(pre, post, pattern, weights, delay, false)
    }

    /// Declares a *plastic* (STDP-managed) projection.
    ///
    /// # Errors
    ///
    /// Same as [`NetworkBuilder::connect`].
    pub fn connect_plastic(
        &mut self,
        pre: GroupId,
        post: GroupId,
        pattern: ConnectPattern,
        weights: WeightInit,
        delay: u16,
    ) -> Result<&mut Self, SnnError> {
        self.connect_impl(pre, post, pattern, weights, delay, true)
    }

    fn connect_impl(
        &mut self,
        pre: GroupId,
        post: GroupId,
        pattern: ConnectPattern,
        weights: WeightInit,
        delay: u16,
        plastic: bool,
    ) -> Result<&mut Self, SnnError> {
        let pre_g = self
            .groups
            .get(pre.0)
            .ok_or(SnnError::UnknownGroup(pre.0))?;
        let post_g = self
            .groups
            .get(post.0)
            .ok_or(SnnError::UnknownGroup(post.0))?;
        if post_g.is_input() {
            return Err(SnnError::InputAsTarget(post_g.name.clone()));
        }
        if !(1..=MAX_DELAY).contains(&delay) {
            return Err(SnnError::InvalidParameter {
                name: "delay",
                value: delay.to_string(),
            });
        }
        validate_pattern(&pattern, pre_g.size, post_g.size)?;
        self.projections.push(Projection {
            pre,
            post,
            pattern,
            weights,
            delay,
            plastic,
        });
        Ok(self)
    }

    /// Materializes the network: expands all patterns into a flat synapse
    /// list and freezes group metadata.
    ///
    /// # Errors
    ///
    /// Currently infallible after the per-call validation in
    /// [`NetworkBuilder::connect`]; returns `Result` for future-proofing
    /// (e.g. global resource limits).
    pub fn build(&self) -> Result<Network, SnnError> {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut synapses = Vec::new();
        for proj in &self.projections {
            let pre_g = &self.groups[proj.pre.0];
            let post_g = &self.groups[proj.post.0];
            expand_pattern(&proj.pattern, pre_g, post_g, |pre_local, post_local| {
                let mut s = Synapse::new(
                    pre_g.first + pre_local,
                    post_g.first + post_local,
                    proj.weights.sample(&mut rng),
                    proj.delay,
                );
                s.plastic = proj.plastic;
                synapses.push(s);
            });
        }
        Ok(Network {
            groups: self.groups.clone(),
            synapses,
            num_neurons: self.next_id,
        })
    }
}

fn validate_pattern(pattern: &ConnectPattern, pre: u32, post: u32) -> Result<(), SnnError> {
    match pattern {
        ConnectPattern::OneToOne if pre != post => Err(SnnError::PatternMismatch {
            pattern: "one-to-one".into(),
            pre: pre as usize,
            post: post as usize,
        }),
        ConnectPattern::Random { p } | ConnectPattern::RecurrentRandom { p }
            if !(0.0..=1.0).contains(p) =>
        {
            Err(SnnError::InvalidParameter {
                name: "p",
                value: p.to_string(),
            })
        }
        ConnectPattern::Neighborhood2D { width, height, .. }
            if (*width as u64) * (*height as u64) != pre as u64
                || (*width as u64) * (*height as u64) != post as u64 =>
        {
            Err(SnnError::PatternMismatch {
                pattern: format!("neighborhood {width}x{height}"),
                pre: pre as usize,
                post: post as usize,
            })
        }
        ConnectPattern::Pairs { pairs } if pairs.iter().any(|&(a, b)| a >= pre || b >= post) => {
            Err(SnnError::PatternMismatch {
                pattern: "pairs (index out of range)".into(),
                pre: pre as usize,
                post: post as usize,
            })
        }
        _ => Ok(()),
    }
}

fn expand_pattern<F: FnMut(u32, u32)>(
    pattern: &ConnectPattern,
    pre_g: &Group,
    post_g: &Group,
    mut emit: F,
) {
    use rand::SeedableRng;
    let recurrent_same = pre_g.first == post_g.first;
    match pattern {
        ConnectPattern::Full => {
            for i in 0..pre_g.size {
                for j in 0..post_g.size {
                    if recurrent_same && i == j {
                        continue;
                    }
                    emit(i, j);
                }
            }
        }
        ConnectPattern::OneToOne => {
            for i in 0..pre_g.size {
                emit(i, i);
            }
        }
        ConnectPattern::Random { p } => {
            // pattern-local deterministic stream so group order doesn't
            // perturb other projections
            let mut rng =
                rand::rngs::StdRng::seed_from_u64((pre_g.first as u64) << 32 | post_g.first as u64);
            for i in 0..pre_g.size {
                for j in 0..post_g.size {
                    if recurrent_same && i == j {
                        continue;
                    }
                    if rng.gen_bool(*p) {
                        emit(i, j);
                    }
                }
            }
        }
        ConnectPattern::RecurrentRandom { p } => {
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                0x5eed ^ ((pre_g.first as u64) << 32 | post_g.first as u64),
            );
            for i in 0..pre_g.size {
                for j in 0..post_g.size {
                    if i == j {
                        continue;
                    }
                    if rng.gen_bool(*p) {
                        emit(i, j);
                    }
                }
            }
        }
        ConnectPattern::Neighborhood2D {
            width,
            height,
            radius,
        } => {
            let (w, h, r) = (*width as i64, *height as i64, *radius as i64);
            for y in 0..h {
                for x in 0..w {
                    let post_local = (y * w + x) as u32;
                    for dy in -r..=r {
                        for dx in -r..=r {
                            let (sx, sy) = (x + dx, y + dy);
                            if (0..w).contains(&sx) && (0..h).contains(&sy) {
                                emit((sy * w + sx) as u32, post_local);
                            }
                        }
                    }
                }
            }
        }
        ConnectPattern::Pairs { pairs } => {
            for &(i, j) in pairs {
                emit(i, j);
            }
        }
    }
}

/// An immutable, fully expanded spiking neural network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    groups: Vec<Group>,
    synapses: Vec<Synapse>,
    num_neurons: u32,
}

impl Network {
    /// All groups in creation order.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// The flat synapse list.
    pub fn synapses(&self) -> &[Synapse] {
        &self.synapses
    }

    /// Mutable synapse access (used by plasticity rules).
    pub(crate) fn synapses_mut(&mut self) -> &mut [Synapse] {
        &mut self.synapses
    }

    /// Total neuron count across all groups.
    pub fn num_neurons(&self) -> u32 {
        self.num_neurons
    }

    /// Group containing global neuron `id`, if in range.
    pub fn group_of(&self, id: u32) -> Option<&Group> {
        self.groups.iter().find(|g| g.range().contains(&id))
    }

    /// Looks a group up by name.
    pub fn group_by_name(&self, name: &str) -> Option<(GroupId, &Group)> {
        self.groups
            .iter()
            .enumerate()
            .find(|(_, g)| g.name == name)
            .map(|(i, g)| (GroupId(i), g))
    }

    /// The group with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn group(&self, id: GroupId) -> &Group {
        &self.groups[id.0]
    }

    /// Whether global neuron `id` belongs to an input group.
    pub fn is_input_neuron(&self, id: u32) -> bool {
        self.group_of(id).is_some_and(Group::is_input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Generator;

    fn two_groups(pre: u32, post: u32) -> (NetworkBuilder, GroupId, GroupId) {
        let mut b = NetworkBuilder::new();
        let a = b
            .add_input_group("a", pre, Generator::poisson(10.0))
            .unwrap();
        let c = b.add_group("c", post, NeuronKind::izhikevich_rs()).unwrap();
        (b, a, c)
    }

    #[test]
    fn full_pattern_counts() {
        let (mut b, a, c) = two_groups(3, 4);
        b.connect(a, c, ConnectPattern::Full, WeightInit::Constant(1.0), 1)
            .unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.synapses().len(), 12);
    }

    #[test]
    fn recurrent_full_skips_diagonal() {
        let mut b = NetworkBuilder::new();
        let g = b.add_group("g", 5, NeuronKind::izhikevich_rs()).unwrap();
        b.connect(g, g, ConnectPattern::Full, WeightInit::Constant(1.0), 1)
            .unwrap();
        let net = b.build().unwrap();
        assert_eq!(net.synapses().len(), 20); // 5*5 - 5
        assert!(net.synapses().iter().all(|s| s.pre != s.post));
    }

    #[test]
    fn one_to_one_requires_equal_sizes() {
        let (mut b, a, c) = two_groups(3, 4);
        let err = b
            .connect(a, c, ConnectPattern::OneToOne, WeightInit::Constant(1.0), 1)
            .unwrap_err();
        assert!(matches!(err, SnnError::PatternMismatch { .. }));
    }

    #[test]
    fn one_to_one_wiring() {
        let (mut b, a, c) = two_groups(4, 4);
        b.connect(a, c, ConnectPattern::OneToOne, WeightInit::Constant(2.0), 1)
            .unwrap();
        let net = b.build().unwrap();
        for (k, s) in net.synapses().iter().enumerate() {
            assert_eq!(s.pre as usize, k);
            assert_eq!(s.post as usize, 4 + k);
        }
    }

    #[test]
    fn random_probability_bounds_enforced() {
        let (mut b, a, c) = two_groups(3, 3);
        let err = b
            .connect(
                a,
                c,
                ConnectPattern::Random { p: 1.5 },
                WeightInit::Constant(1.0),
                1,
            )
            .unwrap_err();
        assert!(matches!(err, SnnError::InvalidParameter { name: "p", .. }));
    }

    #[test]
    fn random_pattern_is_reproducible() {
        let make = || {
            let (mut b, a, c) = two_groups(20, 20);
            b.connect(
                a,
                c,
                ConnectPattern::Random { p: 0.3 },
                WeightInit::Constant(1.0),
                1,
            )
            .unwrap();
            b.build().unwrap().synapses().len()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn neighborhood_kernel_size() {
        // 4x4 grids, radius 1: interior post-neurons get 9 inputs,
        // corners 4, edges 6.
        let (mut b, a, c) = two_groups(16, 16);
        b.connect(
            a,
            c,
            ConnectPattern::Neighborhood2D {
                width: 4,
                height: 4,
                radius: 1,
            },
            WeightInit::Constant(1.0),
            1,
        )
        .unwrap();
        let net = b.build().unwrap();
        // total = sum over post of kernel coverage = 4*4corners? compute:
        // corners: 4 cells * 4 = 16; edges: 8 cells * 6 = 48; interior: 4 cells * 9 = 36
        assert_eq!(net.synapses().len(), 100);
    }

    #[test]
    fn neighborhood_requires_matching_geometry() {
        let (mut b, a, c) = two_groups(16, 15);
        let err = b
            .connect(
                a,
                c,
                ConnectPattern::Neighborhood2D {
                    width: 4,
                    height: 4,
                    radius: 1,
                },
                WeightInit::Constant(1.0),
                1,
            )
            .unwrap_err();
        assert!(matches!(err, SnnError::PatternMismatch { .. }));
    }

    #[test]
    fn pairs_validates_indices() {
        let (mut b, a, c) = two_groups(3, 3);
        let err = b
            .connect(
                a,
                c,
                ConnectPattern::Pairs {
                    pairs: vec![(0, 5)],
                },
                WeightInit::Constant(1.0),
                1,
            )
            .unwrap_err();
        assert!(matches!(err, SnnError::PatternMismatch { .. }));
    }

    #[test]
    fn input_groups_cannot_be_targets() {
        let mut b = NetworkBuilder::new();
        let a = b.add_input_group("a", 2, Generator::poisson(1.0)).unwrap();
        let c = b.add_group("c", 2, NeuronKind::izhikevich_rs()).unwrap();
        let err = b
            .connect(c, a, ConnectPattern::Full, WeightInit::Constant(1.0), 1)
            .unwrap_err();
        assert!(matches!(err, SnnError::InputAsTarget(_)));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetworkBuilder::new();
        b.add_group("x", 2, NeuronKind::izhikevich_rs()).unwrap();
        let err = b
            .add_group("x", 2, NeuronKind::izhikevich_rs())
            .unwrap_err();
        assert!(matches!(err, SnnError::DuplicateGroup(_)));
    }

    #[test]
    fn generator_size_must_match() {
        let mut b = NetworkBuilder::new();
        let err = b
            .add_input_group("a", 3, Generator::rates(vec![1.0, 2.0]))
            .unwrap_err();
        assert!(matches!(err, SnnError::GeneratorSizeMismatch { .. }));
    }

    #[test]
    fn group_lookup_by_id_and_name() {
        let (b, _, _) = two_groups(3, 4);
        let net = b.build().unwrap();
        assert_eq!(net.group_of(0).unwrap().name, "a");
        assert_eq!(net.group_of(3).unwrap().name, "c");
        assert_eq!(net.group_of(6).unwrap().name, "c");
        assert!(net.group_of(7).is_none());
        assert!(net.group_by_name("c").is_some());
        assert!(net.is_input_neuron(2));
        assert!(!net.is_input_neuron(4));
    }

    #[test]
    fn uniform_weights_in_range() {
        let (mut b, a, c) = two_groups(10, 10);
        b.connect(
            a,
            c,
            ConnectPattern::Full,
            WeightInit::Uniform { lo: 0.5, hi: 1.5 },
            1,
        )
        .unwrap();
        let net = b.build().unwrap();
        assert!(net
            .synapses()
            .iter()
            .all(|s| (0.5..1.5).contains(&s.weight)));
    }

    #[test]
    fn plastic_flag_propagates() {
        let (mut b, a, c) = two_groups(2, 2);
        b.connect_plastic(a, c, ConnectPattern::Full, WeightInit::Constant(1.0), 1)
            .unwrap();
        let net = b.build().unwrap();
        assert!(net.synapses().iter().all(|s| s.plastic));
    }

    #[test]
    fn recurrent_random_never_self_connects() {
        let mut b = NetworkBuilder::new();
        let g = b.add_group("res", 30, NeuronKind::lif_default()).unwrap();
        b.connect(
            g,
            g,
            ConnectPattern::RecurrentRandom { p: 0.5 },
            WeightInit::Constant(1.0),
            1,
        )
        .unwrap();
        let net = b.build().unwrap();
        assert!(!net.synapses().is_empty());
        assert!(net.synapses().iter().all(|s| s.pre != s.post));
    }
}
