//! Spike sources for input groups.
//!
//! Input groups do not integrate currents — their spike trains are produced
//! by a [`Generator`]: Poisson processes (the paper's synthetic workloads use
//! Poisson inputs at 10–100 Hz), per-neuron rate arrays (rate-coded images),
//! periodic trains, or explicit precomputed trains (temporal coding, e.g.
//! level-crossing-encoded ECG).

use crate::spikes::SpikeTrain;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A spike source for one input group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Generator {
    /// Homogeneous Poisson process, identical mean rate (Hz) for all neurons.
    Poisson {
        /// Mean firing rate in Hz.
        rate_hz: f64,
    },
    /// Inhomogeneous-per-neuron Poisson: one mean rate per neuron.
    RateArray {
        /// Mean firing rate in Hz for each neuron of the group.
        rates_hz: Vec<f64>,
    },
    /// Deterministic periodic spiking with per-group period and phase.
    Periodic {
        /// Period in timesteps between consecutive spikes.
        period: u32,
        /// Offset of the first spike in timesteps.
        phase: u32,
    },
    /// Explicit spike trains, one per neuron.
    Explicit {
        /// Precomputed spike trains (one per neuron of the group).
        trains: Vec<SpikeTrain>,
    },
}

impl Generator {
    /// Homogeneous Poisson source at `rate_hz`.
    pub fn poisson(rate_hz: f64) -> Self {
        Generator::Poisson { rate_hz }
    }

    /// Per-neuron Poisson source.
    pub fn rates(rates_hz: Vec<f64>) -> Self {
        Generator::RateArray { rates_hz }
    }

    /// Periodic source: a spike every `period` steps starting at `phase`.
    pub fn periodic(period: u32, phase: u32) -> Self {
        Generator::Periodic { period, phase }
    }

    /// Explicit trains, one per neuron.
    pub fn explicit(trains: Vec<SpikeTrain>) -> Self {
        Generator::Explicit { trains }
    }

    /// Number of neurons the generator prescribes, if it is size-bound
    /// (`RateArray` and `Explicit`); `None` for size-agnostic sources.
    pub fn prescribed_size(&self) -> Option<usize> {
        match self {
            Generator::RateArray { rates_hz } => Some(rates_hz.len()),
            Generator::Explicit { trains } => Some(trains.len()),
            _ => None,
        }
    }

    /// Decides whether neuron `idx` of the group spikes at step `t`.
    ///
    /// `dt_ms` is the timestep length in milliseconds; Poisson sources use it
    /// to convert rates into per-step Bernoulli probabilities (`p = r·dt`,
    /// the standard discrete-time approximation).
    pub fn fires<R: Rng + ?Sized>(&self, idx: usize, t: u32, dt_ms: f64, rng: &mut R) -> bool {
        match self {
            Generator::Poisson { rate_hz } => rng.gen_bool(prob(*rate_hz, dt_ms)),
            Generator::RateArray { rates_hz } => {
                let r = rates_hz.get(idx).copied().unwrap_or(0.0);
                r > 0.0 && rng.gen_bool(prob(r, dt_ms))
            }
            Generator::Periodic { period, phase } => {
                *period > 0 && t >= *phase && (t - phase).is_multiple_of(*period)
            }
            Generator::Explicit { trains } => trains
                .get(idx)
                .is_some_and(|tr| tr.times().binary_search(&t).is_ok()),
        }
    }
}

/// Per-step spike probability for a Poisson rate, clamped to [0, 1].
fn prob(rate_hz: f64, dt_ms: f64) -> f64 {
    (rate_hz * dt_ms / 1000.0).clamp(0.0, 1.0)
}

/// Samples a full Poisson spike train of `steps` timesteps at `rate_hz`.
///
/// Convenience for building explicit stimuli and tests.
///
/// ```
/// use neuromap_snn::generator::poisson_train;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let train = poisson_train(100.0, 1000, 1.0, &mut rng);
/// // ≈100 spikes over 1 s at 100 Hz
/// assert!((50..200).contains(&train.len()));
/// ```
pub fn poisson_train<R: Rng + ?Sized>(
    rate_hz: f64,
    steps: u32,
    dt_ms: f64,
    rng: &mut R,
) -> SpikeTrain {
    let p = prob(rate_hz, dt_ms);
    (0..steps).filter(|_| rng.gen_bool(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_rate_is_approximately_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = Generator::poisson(50.0);
        let n: usize = (0..10_000)
            .filter(|&t| g.fires(0, t, 1.0, &mut rng))
            .count();
        // 50 Hz over 10 s → expect ~500, allow generous tolerance
        assert!((350..650).contains(&n), "got {n} spikes");
    }

    #[test]
    fn rate_array_is_per_neuron() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Generator::rates(vec![0.0, 1000.0]);
        let silent: usize = (0..1000).filter(|&t| g.fires(0, t, 1.0, &mut rng)).count();
        let loud: usize = (0..1000).filter(|&t| g.fires(1, t, 1.0, &mut rng)).count();
        assert_eq!(silent, 0);
        assert_eq!(loud, 1000); // p clamps to 1.0
    }

    #[test]
    fn rate_array_out_of_range_neuron_is_silent() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Generator::rates(vec![100.0]);
        assert!(!g.fires(5, 0, 1.0, &mut rng));
    }

    #[test]
    fn periodic_fires_on_schedule() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = Generator::periodic(10, 3);
        let times: Vec<u32> = (0..40).filter(|&t| g.fires(0, t, 1.0, &mut rng)).collect();
        assert_eq!(times, vec![3, 13, 23, 33]);
    }

    #[test]
    fn periodic_zero_period_is_silent() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = Generator::periodic(0, 0);
        assert!((0..100).all(|t| !g.fires(0, t, 1.0, &mut rng)));
    }

    #[test]
    fn explicit_replays_exactly() {
        let mut rng = StdRng::seed_from_u64(0);
        let tr = SpikeTrain::from_times(vec![1, 4, 8]);
        let g = Generator::explicit(vec![tr.clone()]);
        let got: Vec<u32> = (0..10).filter(|&t| g.fires(0, t, 1.0, &mut rng)).collect();
        assert_eq!(got, vec![1, 4, 8]);
    }

    #[test]
    fn prescribed_sizes() {
        assert_eq!(Generator::poisson(10.0).prescribed_size(), None);
        assert_eq!(Generator::rates(vec![1.0; 4]).prescribed_size(), Some(4));
        assert_eq!(
            Generator::explicit(vec![SpikeTrain::new(); 3]).prescribed_size(),
            Some(3)
        );
    }

    #[test]
    fn poisson_train_deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            poisson_train(30.0, 500, 1.0, &mut a),
            poisson_train(30.0, 500, 1.0, &mut b)
        );
    }
}
