//! The fixed-timestep simulation engine.
//!
//! Clock-driven, 1 ms default resolution (CARLsim's native step). Each step:
//!
//! 1. deliver the synaptic currents scheduled for this step (axonal-delay
//!    ring buffer),
//! 2. sample input-group generators,
//! 3. integrate all model neurons,
//! 4. enqueue outgoing currents at `t + delay`, run STDP updates,
//! 5. record spikes.
//!
//! The output is a [`SpikeRecord`] — per-neuron spike trains — from which
//! `neuromap-core` builds the spike graph that the partitioner consumes.

use crate::error::SnnError;
use crate::network::{GroupKind, Network};
use crate::neuron::NeuronModel;
use crate::spikes::SpikeTrain;
use crate::stdp::{StdpConfig, StdpState};
use crate::synapse::MAX_DELAY;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Timestep in milliseconds.
    pub dt_ms: f64,
    /// Optional plasticity rule applied to synapses flagged `plastic`.
    pub stdp: Option<StdpConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            dt_ms: 1.0,
            stdp: None,
        }
    }
}

/// Recorded spikes of a full simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpikeRecord {
    trains: Vec<SpikeTrain>,
    steps: u32,
}

impl SpikeRecord {
    /// Creates an empty record for `n` neurons over `steps` timesteps.
    pub fn new(n: usize, steps: u32) -> Self {
        Self {
            trains: vec![SpikeTrain::new(); n],
            steps,
        }
    }

    /// Number of neurons covered by the record.
    pub fn num_neurons(&self) -> usize {
        self.trains.len()
    }

    /// Duration of the run in timesteps.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Spike train of neuron `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn train(&self, id: u32) -> &SpikeTrain {
        &self.trains[id as usize]
    }

    /// All trains, indexed by global neuron id.
    pub fn trains(&self) -> &[SpikeTrain] {
        &self.trains
    }

    /// Total spikes across all neurons.
    pub fn total_spikes(&self) -> u64 {
        self.trains.iter().map(|t| t.len() as u64).sum()
    }

    /// Mean population firing rate in Hz (1 ms timesteps assumed).
    pub fn mean_rate_hz(&self) -> f64 {
        if self.trains.is_empty() || self.steps == 0 {
            return 0.0;
        }
        self.total_spikes() as f64 * 1000.0 / (self.steps as f64 * self.trains.len() as f64)
    }

    /// Records a spike (used by the simulator and by test fixtures).
    pub fn record(&mut self, id: u32, t: u32) {
        self.trains[id as usize].push(t);
    }
}

/// Fixed-timestep SNN simulator.
///
/// Owns the [`Network`] for the duration of the run (weights may change
/// under STDP); [`Simulator::into_network`] releases it afterwards.
pub struct Simulator {
    net: Network,
    config: SimConfig,
    models: Vec<Option<Box<dyn NeuronModel + Send>>>,
    /// CSR over synapses, grouped by presynaptic neuron.
    out_offsets: Vec<u32>,
    out_synapses: Vec<u32>,
    /// CSR over *plastic* synapses, grouped by postsynaptic neuron.
    in_plastic_offsets: Vec<u32>,
    in_plastic: Vec<u32>,
    /// Ring buffer of scheduled currents: `ring[t mod (MAX_DELAY+1)][neuron]`.
    ring: Vec<Vec<f32>>,
    stdp: Option<StdpState>,
    time: u32,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("neurons", &self.net.num_neurons())
            .field("synapses", &self.net.synapses().len())
            .field("time", &self.time)
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Builds a simulator with the default configuration (1 ms, no STDP).
    pub fn new(net: Network) -> Self {
        Self::with_config(net, SimConfig::default())
    }

    /// Builds a simulator with an explicit [`SimConfig`].
    pub fn with_config(net: Network, config: SimConfig) -> Self {
        let n = net.num_neurons() as usize;
        let mut models: Vec<Option<Box<dyn NeuronModel + Send>>> = Vec::with_capacity(n);
        for g in net.groups() {
            match &g.kind {
                GroupKind::Model(kind) => {
                    for _ in 0..g.size {
                        models.push(Some(kind.build()));
                    }
                }
                GroupKind::Input(_) => {
                    for _ in 0..g.size {
                        models.push(None);
                    }
                }
            }
        }

        let (out_offsets, out_synapses) = csr_by(&net, |s| s.pre);
        let (in_plastic_offsets, in_plastic) = csr_plastic_by_post(&net);
        let ring = vec![vec![0.0; n]; MAX_DELAY as usize + 1];
        let stdp = config
            .stdp
            .map(|c| StdpState::new(c, n, config.dt_ms as f32));

        Self {
            net,
            config,
            models,
            out_offsets,
            out_synapses,
            in_plastic_offsets,
            in_plastic,
            ring,
            stdp,
            time: 0,
        }
    }

    /// Current simulation time in steps.
    pub fn time(&self) -> u32 {
        self.time
    }

    /// Read access to the (possibly plasticity-updated) network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Consumes the simulator, returning the network with trained weights.
    pub fn into_network(self) -> Network {
        self.net
    }

    /// Runs for `steps` timesteps, recording every spike.
    ///
    /// May be called repeatedly; time continues from the previous call.
    ///
    /// # Errors
    ///
    /// Reserved for future resource limits; currently always `Ok`.
    pub fn run<R: Rng + ?Sized>(
        &mut self,
        steps: u32,
        rng: &mut R,
    ) -> Result<SpikeRecord, SnnError> {
        let mut record = SpikeRecord::new(self.net.num_neurons() as usize, steps);
        let mut fired: Vec<u32> = Vec::new();
        for _ in 0..steps {
            self.step(rng, &mut fired);
            // `time` was already advanced by step(); the spike belongs to the
            // step that just executed.
            let t = self.time - 1;
            for &id in &fired {
                record.record(id, t);
            }
        }
        Ok(record)
    }

    /// Advances one timestep; `fired` is cleared and filled with the global
    /// ids of neurons that spiked.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, fired: &mut Vec<u32>) {
        fired.clear();
        let t = self.time;
        let slot = (t % (MAX_DELAY as u32 + 1)) as usize;
        let dt = self.config.dt_ms as f32;

        // 1. currents due now
        let currents = std::mem::take(&mut self.ring[slot]);

        // 2. + 3. sample inputs, integrate models
        for g in self.net.groups() {
            match &g.kind {
                GroupKind::Input(gen) => {
                    for (local, id) in g.range().enumerate() {
                        if gen.fires(local, t, self.config.dt_ms, rng) {
                            fired.push(id);
                        }
                    }
                }
                GroupKind::Model(_) => {
                    for id in g.range() {
                        let model = self.models[id as usize]
                            .as_mut()
                            .expect("model neuron has state");
                        if model.step(currents[id as usize], dt) {
                            fired.push(id);
                        }
                    }
                }
            }
        }

        // return the (cleared) buffer to the ring
        let mut cleared = currents;
        cleared.iter_mut().for_each(|c| *c = 0.0);
        self.ring[slot] = cleared;

        // 4. propagate spikes & plasticity
        if let Some(stdp) = &mut self.stdp {
            stdp.decay();
        }
        for &id in fired.iter() {
            // potentiation: post fired — strengthen its plastic in-edges.
            // (the trace state is read-only here while the network weights
            // mutate, hence the index-based split borrow)
            if let Some(stdp) = self.stdp.take() {
                let lo = self.in_plastic_offsets[id as usize] as usize;
                let hi = self.in_plastic_offsets[id as usize + 1] as usize;
                for k in lo..hi {
                    let si = self.in_plastic[k] as usize;
                    let pre = self.net.synapses()[si].pre as usize;
                    let dw = stdp.dw_on_post(pre);
                    let w = self.net.synapses()[si].weight + dw;
                    self.net.synapses_mut()[si].weight = stdp.clamp(w);
                }
                self.stdp = Some(stdp);
            }

            let lo = self.out_offsets[id as usize] as usize;
            let hi = self.out_offsets[id as usize + 1] as usize;
            for k in lo..hi {
                let si = self.out_synapses[k] as usize;
                let syn = self.net.synapses()[si];
                let due = ((t + syn.delay as u32) % (MAX_DELAY as u32 + 1)) as usize;
                self.ring[due][syn.post as usize] += syn.weight;
                // depression: pre fired — weaken according to post trace
                if syn.plastic {
                    if let Some(stdp) = &self.stdp {
                        let dw = stdp.dw_on_pre(syn.post as usize);
                        let w = syn.weight + dw;
                        self.net.synapses_mut()[si].weight = stdp.clamp(w);
                    }
                }
            }
            if let Some(stdp) = &mut self.stdp {
                stdp.on_spike(id as usize);
            }
        }

        // divisive normalization
        if let Some(stdp) = &self.stdp {
            if let Some(every) = stdp.config().normalize_every {
                if every > 0 && t % every == every - 1 {
                    self.normalize_inbound(stdp.config().normalize_target);
                }
            }
        }

        self.time = t + 1;
    }

    /// Rescales each postsynaptic neuron's inbound plastic weights to sum to
    /// `target` (divisive normalization).
    fn normalize_inbound(&mut self, target: f32) {
        let n = self.net.num_neurons() as usize;
        for post in 0..n {
            let lo = self.in_plastic_offsets[post] as usize;
            let hi = self.in_plastic_offsets[post + 1] as usize;
            if lo == hi {
                continue;
            }
            let sum: f32 = self.in_plastic[lo..hi]
                .iter()
                .map(|&si| self.net.synapses()[si as usize].weight)
                .sum();
            if sum > f32::EPSILON {
                let scale = target / sum;
                for &si in &self.in_plastic[lo..hi] {
                    self.net.synapses_mut()[si as usize].weight *= scale;
                }
            }
        }
    }
}

/// Builds a CSR index over synapses keyed by `key` (e.g. presynaptic id).
fn csr_by(net: &Network, key: impl Fn(&crate::synapse::Synapse) -> u32) -> (Vec<u32>, Vec<u32>) {
    let n = net.num_neurons() as usize;
    let mut counts = vec![0u32; n + 1];
    for s in net.synapses() {
        counts[key(s) as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut index = vec![0u32; net.synapses().len()];
    for (si, s) in net.synapses().iter().enumerate() {
        let k = key(s) as usize;
        index[cursor[k] as usize] = si as u32;
        cursor[k] += 1;
    }
    (offsets, index)
}

/// CSR over plastic synapses keyed by postsynaptic neuron.
fn csr_plastic_by_post(net: &Network) -> (Vec<u32>, Vec<u32>) {
    let n = net.num_neurons() as usize;
    let mut counts = vec![0u32; n + 1];
    for s in net.synapses() {
        if s.plastic {
            counts[s.post as usize + 1] += 1;
        }
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut index = vec![0u32; offsets[n] as usize];
    for (si, s) in net.synapses().iter().enumerate() {
        if s.plastic {
            let k = s.post as usize;
            index[cursor[k] as usize] = si as u32;
            cursor[k] += 1;
        }
    }
    (offsets, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Generator;
    use crate::network::{ConnectPattern, NetworkBuilder, WeightInit};
    use crate::neuron::NeuronKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple_net(weight: f32) -> Network {
        let mut b = NetworkBuilder::new();
        let inp = b
            .add_input_group("in", 5, Generator::poisson(100.0))
            .unwrap();
        let out = b.add_group("out", 3, NeuronKind::izhikevich_rs()).unwrap();
        b.connect(
            inp,
            out,
            ConnectPattern::Full,
            WeightInit::Constant(weight),
            1,
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn inputs_drive_outputs() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sim = Simulator::new(simple_net(8.0));
        let rec = sim.run(1000, &mut rng).unwrap();
        let input_spikes: u64 = (0..5).map(|i| rec.train(i).len() as u64).sum();
        let output_spikes: u64 = (5..8).map(|i| rec.train(i).len() as u64).sum();
        assert!(input_spikes > 300, "inputs at 100 Hz: {input_spikes}");
        assert!(output_spikes > 10, "outputs should fire: {output_spikes}");
    }

    #[test]
    fn zero_weight_silences_outputs() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sim = Simulator::new(simple_net(0.0));
        let rec = sim.run(1000, &mut rng).unwrap();
        let output_spikes: u64 = (5..8).map(|i| rec.train(i).len() as u64).sum();
        assert_eq!(output_spikes, 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut sim = Simulator::new(simple_net(6.0));
            sim.run(500, &mut rng).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn delay_shifts_arrival() {
        // one periodic input spike at t=0; delays 1 vs 5 shift the response
        let build = |delay: u16| {
            let mut b = NetworkBuilder::new();
            let inp = b
                .add_input_group("in", 1, Generator::periodic(1000, 0))
                .unwrap();
            let out = b.add_group("out", 1, NeuronKind::lif_default()).unwrap();
            b.connect(
                inp,
                out,
                ConnectPattern::Full,
                WeightInit::Constant(400.0),
                delay,
            )
            .unwrap();
            b.build().unwrap()
        };
        let first_spike = |delay: u16| {
            let mut rng = StdRng::seed_from_u64(0);
            let mut sim = Simulator::new(build(delay));
            let rec = sim.run(40, &mut rng).unwrap();
            rec.train(1).first()
        };
        let d1 = first_spike(1).expect("fires with delay 1");
        let d5 = first_spike(5).expect("fires with delay 5");
        assert_eq!(d5 - d1, 4, "extra delay shifts the response by 4 steps");
    }

    #[test]
    fn inhibition_suppresses() {
        let build = |inh_w: f32| {
            let mut b = NetworkBuilder::new();
            let exc = b
                .add_input_group("exc", 10, Generator::poisson(80.0))
                .unwrap();
            let inh = b
                .add_input_group("inh", 10, Generator::poisson(80.0))
                .unwrap();
            let out = b.add_group("out", 2, NeuronKind::izhikevich_rs()).unwrap();
            b.connect(exc, out, ConnectPattern::Full, WeightInit::Constant(4.0), 1)
                .unwrap();
            b.connect(
                inh,
                out,
                ConnectPattern::Full,
                WeightInit::Constant(inh_w),
                1,
            )
            .unwrap();
            b.build().unwrap()
        };
        let count = |inh_w: f32| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut sim = Simulator::new(build(inh_w));
            let rec = sim.run(1000, &mut rng).unwrap();
            (20..22).map(|i| rec.train(i).len()).sum::<usize>()
        };
        let without = count(0.0);
        let with = count(-4.0);
        assert!(
            with < without,
            "inhibition must reduce rate: {with} !< {without}"
        );
    }

    #[test]
    fn run_twice_continues_time() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim = Simulator::new(simple_net(5.0));
        sim.run(100, &mut rng).unwrap();
        assert_eq!(sim.time(), 100);
        sim.run(50, &mut rng).unwrap();
        assert_eq!(sim.time(), 150);
    }

    #[test]
    fn stdp_changes_plastic_weights() {
        let mut b = NetworkBuilder::new();
        let inp = b
            .add_input_group("in", 30, Generator::poisson(100.0))
            .unwrap();
        let out = b.add_group("out", 5, NeuronKind::izhikevich_rs()).unwrap();
        b.connect_plastic(inp, out, ConnectPattern::Full, WeightInit::Constant(2.0), 1)
            .unwrap();
        let net = b.build().unwrap();
        let before: Vec<f32> = net.synapses().iter().map(|s| s.weight).collect();

        let cfg = StdpConfig {
            a_plus: 0.1,
            a_minus: 0.12,
            w_min: 0.0,
            w_max: 5.0,
            ..StdpConfig::default()
        };
        let mut sim = Simulator::with_config(
            net,
            SimConfig {
                dt_ms: 1.0,
                stdp: Some(cfg),
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        sim.run(2000, &mut rng).unwrap();
        let after: Vec<f32> = sim.network().synapses().iter().map(|s| s.weight).collect();
        assert_ne!(before, after, "plastic weights must move under STDP");
        // bounds respected
        assert!(after.iter().all(|&w| (0.0..=5.0).contains(&w)));
    }

    #[test]
    fn static_weights_unchanged_under_stdp() {
        let net = simple_net(3.0);
        let before: Vec<f32> = net.synapses().iter().map(|s| s.weight).collect();
        let mut sim = Simulator::with_config(
            net,
            SimConfig {
                dt_ms: 1.0,
                stdp: Some(StdpConfig::default()),
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        sim.run(500, &mut rng).unwrap();
        let after: Vec<f32> = sim.network().synapses().iter().map(|s| s.weight).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn normalization_keeps_inbound_sum() {
        let mut b = NetworkBuilder::new();
        let inp = b
            .add_input_group("in", 10, Generator::poisson(100.0))
            .unwrap();
        let out = b.add_group("out", 2, NeuronKind::izhikevich_rs()).unwrap();
        b.connect_plastic(inp, out, ConnectPattern::Full, WeightInit::Constant(0.5), 1)
            .unwrap();
        let net = b.build().unwrap();
        let cfg = StdpConfig {
            normalize_every: Some(10),
            normalize_target: 5.0,
            ..StdpConfig::default()
        };
        let mut sim = Simulator::with_config(
            net,
            SimConfig {
                dt_ms: 1.0,
                stdp: Some(cfg),
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        sim.run(100, &mut rng).unwrap();
        // inbound plastic sum per output neuron ≈ 5.0 right after a
        // normalization step (t=99 triggers since 99 % 10 == 9)
        for post in 10..12u32 {
            let sum: f32 = sim
                .network()
                .synapses()
                .iter()
                .filter(|s| s.post == post)
                .map(|s| s.weight)
                .sum();
            assert!((sum - 5.0).abs() < 0.2, "inbound sum {sum} != 5.0");
        }
    }

    #[test]
    fn record_accounting() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sim = Simulator::new(simple_net(6.0));
        let rec = sim.run(200, &mut rng).unwrap();
        assert_eq!(rec.num_neurons(), 8);
        assert_eq!(rec.steps(), 200);
        let sum: u64 = rec.trains().iter().map(|t| t.len() as u64).sum();
        assert_eq!(sum, rec.total_spikes());
        assert!(rec.mean_rate_hz() > 0.0);
    }
}
