//! Spike trains and inter-spike-interval (ISI) analysis.
//!
//! The paper's hardware metrics (ISI distortion, spike disorder) are defined
//! over the spike trains emitted by individual neurons; this module provides
//! the common representation and the ISI arithmetic shared by the simulator,
//! the spike graph, and the NoC statistics.

use serde::{Deserialize, Serialize};

/// Spike times of a single neuron, in simulation timesteps (1 ms default).
///
/// Invariant: times are strictly increasing (a neuron spikes at most once per
/// timestep). Constructors enforce this; [`SpikeTrain::push`] panics on
/// violation in debug builds and silently drops duplicates in release builds.
///
/// ```
/// use neuromap_snn::spikes::SpikeTrain;
/// let t = SpikeTrain::from_times(vec![2, 5, 9]);
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.isis(), vec![3, 4]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeTrain {
    times: Vec<u32>,
}

impl SpikeTrain {
    /// Creates an empty spike train.
    pub fn new() -> Self {
        Self { times: Vec::new() }
    }

    /// Creates a spike train from a vector of spike times.
    ///
    /// The input is sorted and deduplicated so the strictly-increasing
    /// invariant always holds.
    pub fn from_times(mut times: Vec<u32>) -> Self {
        times.sort_unstable();
        times.dedup();
        Self { times }
    }

    /// Appends a spike at time `t`.
    ///
    /// Spikes arriving at or before the last recorded time are ignored,
    /// preserving the strictly-increasing invariant.
    pub fn push(&mut self, t: u32) {
        if let Some(&last) = self.times.last() {
            if t <= last {
                debug_assert!(t > last, "spike times must be strictly increasing");
                return;
            }
        }
        self.times.push(t);
    }

    /// Number of spikes in the train.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the train contains no spikes.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The spike times as a slice.
    pub fn times(&self) -> &[u32] {
        &self.times
    }

    /// Consumes the train, returning the raw time vector.
    pub fn into_times(self) -> Vec<u32> {
        self.times
    }

    /// Iterates over spike times.
    pub fn iter(&self) -> std::slice::Iter<'_, u32> {
        self.times.iter()
    }

    /// Inter-spike intervals: differences of consecutive spike times.
    ///
    /// Empty for trains with fewer than two spikes.
    pub fn isis(&self) -> Vec<u32> {
        self.times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Mean inter-spike interval, or `None` for fewer than two spikes.
    pub fn mean_isi(&self) -> Option<f64> {
        if self.times.len() < 2 {
            return None;
        }
        let span = (self.times[self.times.len() - 1] - self.times[0]) as f64;
        Some(span / (self.times.len() - 1) as f64)
    }

    /// Mean firing rate in Hz over a window of `duration_ms` milliseconds
    /// (assuming 1 ms timesteps).
    ///
    /// # Panics
    ///
    /// Panics if `duration_ms` is zero.
    pub fn rate_hz(&self, duration_ms: u32) -> f64 {
        assert!(duration_ms > 0, "duration must be positive");
        self.times.len() as f64 * 1000.0 / duration_ms as f64
    }

    /// Number of spikes in the half-open window `[start, end)`.
    pub fn count_in(&self, start: u32, end: u32) -> usize {
        let lo = self.times.partition_point(|&t| t < start);
        let hi = self.times.partition_point(|&t| t < end);
        hi - lo
    }

    /// First spike time, if any — the quantity used by latency (temporal)
    /// decoding.
    pub fn first(&self) -> Option<u32> {
        self.times.first().copied()
    }

    /// Last spike time, if any.
    pub fn last(&self) -> Option<u32> {
        self.times.last().copied()
    }
}

impl FromIterator<u32> for SpikeTrain {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Self::from_times(iter.into_iter().collect())
    }
}

impl Extend<u32> for SpikeTrain {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }
}

impl<'a> IntoIterator for &'a SpikeTrain {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;
    fn into_iter(self) -> Self::IntoIter {
        self.times.iter()
    }
}

/// Maximum absolute difference between the ISI sequences of two trains,
/// truncated to the shorter train.
///
/// This is the paper's *inter-spike-interval distortion* when applied to the
/// send-side and receive-side images of the same neuron's spike stream
/// (Section II, "Introduced metric"). Returns 0 when either train has fewer
/// than two spikes.
///
/// ```
/// use neuromap_snn::spikes::{isi_distortion, SpikeTrain};
/// let sent = SpikeTrain::from_times(vec![0, 10, 20]);
/// let recv = SpikeTrain::from_times(vec![3, 14, 23]); // ISIs 11, 9 vs 10, 10
/// assert_eq!(isi_distortion(&sent, &recv), 1);
/// ```
pub fn isi_distortion(sent: &SpikeTrain, received: &SpikeTrain) -> u32 {
    let a = sent.isis();
    let b = received.isis();
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| x.abs_diff(y))
        .max()
        .unwrap_or(0)
}

/// Mean absolute ISI difference between two trains (see [`isi_distortion`]
/// for the max-based variant). Returns 0.0 when either has fewer than two
/// spikes.
pub fn mean_isi_distortion(sent: &SpikeTrain, received: &SpikeTrain) -> f64 {
    let a = sent.isis();
    let b = received.isis();
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.0;
    }
    let sum: u64 = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| x.abs_diff(y) as u64)
        .sum();
    sum as f64 / n as f64
}

/// Counts pairs `(i, j)` that arrive in a different relative order than they
/// were sent, given per-event `(send_time, receive_time)` tuples.
///
/// This is the primitive behind the paper's *spike disorder count*: spikes
/// sent in one order but delivered in another carry corrupted information to
/// the postsynaptic neuron. The count is over adjacent events after sorting
/// by send time, i.e. the number of *inversions detectable by the receiver*
/// between consecutive sends.
pub fn disorder_count(events: &[(u64, u64)]) -> usize {
    let mut sorted: Vec<(u64, u64)> = events.to_vec();
    sorted.sort_by_key(|&(send, _)| send);
    sorted
        .windows(2)
        .filter(|w| {
            let (s0, r0) = w[0];
            let (s1, r1) = w[1];
            // strictly-later send delivered strictly earlier = inversion
            s0 < s1 && r0 > r1
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_times_sorts_and_dedups() {
        let t = SpikeTrain::from_times(vec![5, 1, 5, 3]);
        assert_eq!(t.times(), &[1, 3, 5]);
    }

    #[test]
    fn push_keeps_monotone_in_release() {
        let mut t = SpikeTrain::new();
        t.push(4);
        t.push(9);
        assert_eq!(t.times(), &[4, 9]);
    }

    #[test]
    fn isis_of_short_trains_are_empty() {
        assert!(SpikeTrain::new().isis().is_empty());
        assert!(SpikeTrain::from_times(vec![7]).isis().is_empty());
    }

    #[test]
    fn mean_isi_matches_span() {
        let t = SpikeTrain::from_times(vec![0, 10, 30]);
        assert_eq!(t.mean_isi(), Some(15.0));
        assert_eq!(SpikeTrain::from_times(vec![3]).mean_isi(), None);
    }

    #[test]
    fn rate_counts_spikes_per_second() {
        let t = SpikeTrain::from_times(vec![0, 100, 200, 300]);
        assert!((t.rate_hz(1000) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn count_in_window_is_half_open() {
        let t = SpikeTrain::from_times(vec![0, 5, 10, 15]);
        assert_eq!(t.count_in(5, 15), 2);
        assert_eq!(t.count_in(0, 1), 1);
        assert_eq!(t.count_in(16, 100), 0);
    }

    #[test]
    fn isi_distortion_zero_for_pure_shift() {
        let sent = SpikeTrain::from_times(vec![0, 10, 20, 30]);
        let recv = SpikeTrain::from_times(vec![7, 17, 27, 37]);
        assert_eq!(isi_distortion(&sent, &recv), 0);
    }

    #[test]
    fn isi_distortion_detects_congestion_delay() {
        let sent = SpikeTrain::from_times(vec![0, 10, 20]);
        // second spike delayed by 6 extra cycles: ISIs become 16, 4
        let recv = SpikeTrain::from_times(vec![2, 18, 22]);
        assert_eq!(isi_distortion(&sent, &recv), 6);
    }

    #[test]
    fn mean_isi_distortion_averages() {
        let sent = SpikeTrain::from_times(vec![0, 10, 20]);
        let recv = SpikeTrain::from_times(vec![0, 12, 20]); // ISIs 12, 8 vs 10, 10
        assert!((mean_isi_distortion(&sent, &recv) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disorder_counts_inversions() {
        // sent at 1,2,3; the spike sent at 2 arrives after the one sent at 3
        let events = vec![(1, 10), (2, 30), (3, 20)];
        assert_eq!(disorder_count(&events), 1);
        // fully ordered
        let events = vec![(1, 10), (2, 11), (3, 12)];
        assert_eq!(disorder_count(&events), 0);
    }

    #[test]
    fn disorder_ignores_simultaneous_sends() {
        let events = vec![(5, 30), (5, 20)];
        assert_eq!(disorder_count(&events), 0);
    }

    #[test]
    fn collect_from_iterator() {
        let t: SpikeTrain = [9u32, 1, 4].into_iter().collect();
        assert_eq!(t.times(), &[1, 4, 9]);
    }
}
