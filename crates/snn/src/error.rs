use std::error::Error;
use std::fmt;

/// Error type for SNN construction and simulation.
///
/// Returned by the fallible APIs of [`crate::network::NetworkBuilder`] and
/// [`crate::simulator::Simulator`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnnError {
    /// A group name was registered twice.
    DuplicateGroup(String),
    /// A referenced group id does not exist in the builder.
    UnknownGroup(usize),
    /// A group was created with zero neurons.
    EmptyGroup(String),
    /// A connection pattern does not fit the group geometry
    /// (for example a one-to-one pattern between unequally sized groups).
    PatternMismatch {
        /// Human-readable description of the pattern.
        pattern: String,
        /// Size of the presynaptic group.
        pre: usize,
        /// Size of the postsynaptic group.
        post: usize,
    },
    /// A numeric parameter is outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value, formatted.
        value: String,
    },
    /// An explicit spike source was given trains for the wrong neuron count.
    GeneratorSizeMismatch {
        /// Neurons in the group.
        expected: usize,
        /// Trains provided.
        got: usize,
    },
    /// A connection references an input group as postsynaptic target.
    InputAsTarget(String),
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnnError::DuplicateGroup(name) => write!(f, "duplicate group name `{name}`"),
            SnnError::UnknownGroup(id) => write!(f, "unknown group id {id}"),
            SnnError::EmptyGroup(name) => write!(f, "group `{name}` has zero neurons"),
            SnnError::PatternMismatch { pattern, pre, post } => write!(
                f,
                "pattern `{pattern}` incompatible with group sizes pre={pre}, post={post}"
            ),
            SnnError::InvalidParameter { name, value } => {
                write!(f, "invalid value `{value}` for parameter `{name}`")
            }
            SnnError::GeneratorSizeMismatch { expected, got } => write!(
                f,
                "explicit spike source provides {got} trains for a group of {expected} neurons"
            ),
            SnnError::InputAsTarget(name) => {
                write!(f, "input group `{name}` cannot be a postsynaptic target")
            }
        }
    }
}

impl Error for SnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = SnnError::DuplicateGroup("exc".into());
        let msg = e.to_string();
        assert!(msg.starts_with("duplicate"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnnError>();
    }

    #[test]
    fn pattern_mismatch_mentions_sizes() {
        let e = SnnError::PatternMismatch {
            pattern: "one-to-one".into(),
            pre: 3,
            post: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("pre=3"));
        assert!(msg.contains("post=5"));
    }
}
