//! The Izhikevich (2003) point-neuron model.

use super::NeuronModel;

/// Izhikevich neuron:
///
/// ```text
/// v' = 0.04 v² + 5 v + 140 − u + I
/// u' = a (b v − u)
/// if v ≥ 30 mV:  v ← c,  u ← u + d
/// ```
///
/// The model reproduces a wide catalog of cortical firing patterns with four
/// parameters and is the neuron CARLsim simulates natively, which is why the
/// rate-coded workloads of the paper use it.
///
/// Integration uses two half-steps of `dt/2` for `v` (the scheme CARLsim and
/// Izhikevich's reference implementation use for 1 ms timesteps) and a full
/// step for `u`.
///
/// ```
/// use neuromap_snn::neuron::{Izhikevich, NeuronModel};
/// let mut n = Izhikevich::regular_spiking();
/// let spikes: usize = (0..1000).filter(|_| n.step(10.0, 1.0)).count();
/// assert!(spikes > 5 && spikes < 200, "RS cell tonic-fires moderately: {spikes}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Izhikevich {
    a: f32,
    b: f32,
    c: f32,
    d: f32,
    v: f32,
    u: f32,
}

impl Izhikevich {
    /// Spike cutoff potential (mV).
    pub const V_PEAK: f32 = 30.0;

    /// Creates a model with explicit `(a, b, c, d)` parameters, starting at
    /// the canonical rest state `v = −65`, `u = b·v`.
    pub fn new(a: f32, b: f32, c: f32, d: f32) -> Self {
        let v = -65.0;
        Self {
            a,
            b,
            c,
            d,
            v,
            u: b * v,
        }
    }

    /// Regular-spiking (RS) excitatory cell.
    pub fn regular_spiking() -> Self {
        Self::new(0.02, 0.2, -65.0, 8.0)
    }

    /// Fast-spiking (FS) inhibitory cell.
    pub fn fast_spiking() -> Self {
        Self::new(0.1, 0.2, -65.0, 2.0)
    }

    /// Recovery variable `u` (for tests and introspection).
    pub fn recovery(&self) -> f32 {
        self.u
    }
}

impl NeuronModel for Izhikevich {
    fn step(&mut self, i_syn: f32, dt: f32) -> bool {
        // Two half-steps for v improve stability at dt = 1 ms.
        let half = 0.5 * dt;
        for _ in 0..2 {
            self.v += half * (0.04 * self.v * self.v + 5.0 * self.v + 140.0 - self.u + i_syn);
            if self.v >= Self::V_PEAK {
                break;
            }
        }
        self.u += dt * self.a * (self.b * self.v - self.u);
        if self.v >= Self::V_PEAK {
            self.v = self.c;
            self.u += self.d;
            true
        } else {
            false
        }
    }

    fn reset(&mut self) {
        self.v = -65.0;
        self.u = self.b * self.v;
    }

    fn potential(&self) -> f32 {
        self.v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_spikes(n: &mut Izhikevich, i: f32, steps: usize) -> usize {
        (0..steps).filter(|_| n.step(i, 1.0)).count()
    }

    #[test]
    fn rest_is_stable_without_input() {
        // the RS fixed point with u = b·v is v = −70 (0.04v² + 4.8v + 140 = 0)
        let mut n = Izhikevich::regular_spiking();
        for _ in 0..500 {
            assert!(!n.step(0.0, 1.0));
        }
        assert!((n.potential() + 70.0).abs() < 2.0, "v = {}", n.potential());
    }

    #[test]
    fn firing_rate_increases_with_current() {
        let mut lo = Izhikevich::regular_spiking();
        let mut hi = Izhikevich::regular_spiking();
        let r_lo = count_spikes(&mut lo, 6.0, 1000);
        let r_hi = count_spikes(&mut hi, 14.0, 1000);
        assert!(
            r_hi > r_lo,
            "f-I curve must be increasing: {r_lo} !< {r_hi}"
        );
    }

    #[test]
    fn fs_fires_faster_than_rs() {
        let mut rs = Izhikevich::regular_spiking();
        let mut fs = Izhikevich::fast_spiking();
        let n_rs = count_spikes(&mut rs, 10.0, 1000);
        let n_fs = count_spikes(&mut fs, 10.0, 1000);
        assert!(n_fs > n_rs, "FS ({n_fs}) should out-fire RS ({n_rs})");
    }

    #[test]
    fn spike_resets_to_c() {
        let mut n = Izhikevich::regular_spiking();
        let mut fired = false;
        for _ in 0..300 {
            if n.step(20.0, 1.0) {
                fired = true;
                assert!((n.potential() + 65.0).abs() < 1e-5);
                break;
            }
        }
        assert!(fired);
    }

    #[test]
    fn potential_never_exceeds_peak_after_step() {
        let mut n = Izhikevich::fast_spiking();
        for _ in 0..2000 {
            n.step(25.0, 1.0);
            assert!(n.potential() < Izhikevich::V_PEAK + 1.0);
        }
    }
}
