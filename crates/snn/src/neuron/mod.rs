//! Neuron dynamics models.
//!
//! Three models cover the workloads of the paper:
//!
//! * [`Izhikevich`] — the model CARLsim is built around; used by the
//!   feedforward and synthetic workloads.
//! * [`Lif`] — leaky integrate-and-fire, used for liquid-state-machine
//!   reservoirs (heartbeat estimation).
//! * [`AdaptiveLif`] — LIF with an adaptive threshold, the excitatory-neuron
//!   model of Diehl & Cook's unsupervised digit-recognition network.
//!
//! Models are usually selected through [`NeuronKind`], which is a plain-data
//! description suitable for network construction and serialization; the
//! simulator instantiates concrete state from it via [`NeuronKind::build`].

mod izhikevich;
mod lif;

pub use izhikevich::Izhikevich;
pub use lif::{AdaptiveLif, Lif};

use serde::{Deserialize, Serialize};

/// Common interface for point-neuron dynamics.
///
/// A model integrates its state by one timestep `dt` (milliseconds) under an
/// input current `i_syn` (model units) and reports whether it fired.
pub trait NeuronModel {
    /// Advances the state by `dt` ms under input current `i_syn`.
    /// Returns `true` if the neuron emitted a spike during this step.
    fn step(&mut self, i_syn: f32, dt: f32) -> bool;

    /// Resets dynamic state to the resting condition (keeps parameters).
    fn reset(&mut self);

    /// Current membrane potential in mV (model-specific scale).
    fn potential(&self) -> f32;
}

/// Plain-data description of a neuron model and its parameters.
///
/// ```
/// use neuromap_snn::neuron::{NeuronKind, NeuronModel};
/// let mut n = NeuronKind::izhikevich_rs().build();
/// let fired = n.step(10.0, 1.0);
/// assert!(!fired || n.potential() < 35.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum NeuronKind {
    /// Izhikevich model with parameters `(a, b, c, d)`.
    Izhikevich {
        /// Recovery time scale.
        a: f32,
        /// Recovery sensitivity.
        b: f32,
        /// Post-spike reset potential (mV).
        c: f32,
        /// Post-spike recovery increment.
        d: f32,
    },
    /// Leaky integrate-and-fire.
    Lif {
        /// Membrane time constant (ms).
        tau_m: f32,
        /// Resting potential (mV).
        v_rest: f32,
        /// Firing threshold (mV).
        v_th: f32,
        /// Post-spike reset potential (mV).
        v_reset: f32,
        /// Absolute refractory period (ms).
        refractory: f32,
    },
    /// LIF with adaptive threshold (Diehl & Cook excitatory neurons).
    AdaptiveLif {
        /// Membrane time constant (ms).
        tau_m: f32,
        /// Resting potential (mV).
        v_rest: f32,
        /// Base firing threshold (mV).
        v_th: f32,
        /// Post-spike reset potential (mV).
        v_reset: f32,
        /// Absolute refractory period (ms).
        refractory: f32,
        /// Threshold increment per output spike (mV).
        theta_plus: f32,
        /// Threshold decay time constant (ms).
        tau_theta: f32,
    },
}

impl NeuronKind {
    /// Izhikevich *regular spiking* (RS) — cortical excitatory default.
    pub fn izhikevich_rs() -> Self {
        NeuronKind::Izhikevich {
            a: 0.02,
            b: 0.2,
            c: -65.0,
            d: 8.0,
        }
    }

    /// Izhikevich *fast spiking* (FS) — cortical inhibitory default.
    pub fn izhikevich_fs() -> Self {
        NeuronKind::Izhikevich {
            a: 0.1,
            b: 0.2,
            c: -65.0,
            d: 2.0,
        }
    }

    /// Izhikevich *chattering* (CH).
    pub fn izhikevich_ch() -> Self {
        NeuronKind::Izhikevich {
            a: 0.02,
            b: 0.2,
            c: -50.0,
            d: 2.0,
        }
    }

    /// Izhikevich *intrinsically bursting* (IB).
    pub fn izhikevich_ib() -> Self {
        NeuronKind::Izhikevich {
            a: 0.02,
            b: 0.2,
            c: -55.0,
            d: 4.0,
        }
    }

    /// Izhikevich *low-threshold spiking* (LTS).
    pub fn izhikevich_lts() -> Self {
        NeuronKind::Izhikevich {
            a: 0.02,
            b: 0.25,
            c: -65.0,
            d: 2.0,
        }
    }

    /// A standard LIF parameterization (τm = 20 ms, threshold −52 mV).
    pub fn lif_default() -> Self {
        NeuronKind::Lif {
            tau_m: 20.0,
            v_rest: -65.0,
            v_th: -52.0,
            v_reset: -65.0,
            refractory: 2.0,
        }
    }

    /// Diehl & Cook-style adaptive-threshold excitatory neuron.
    pub fn adaptive_lif_default() -> Self {
        NeuronKind::AdaptiveLif {
            tau_m: 100.0,
            v_rest: -65.0,
            v_th: -52.0,
            v_reset: -65.0,
            refractory: 5.0,
            theta_plus: 0.05,
            tau_theta: 1e4,
        }
    }

    /// Instantiates runtime state for this parameterization.
    pub fn build(&self) -> Box<dyn NeuronModel + Send> {
        match *self {
            NeuronKind::Izhikevich { a, b, c, d } => Box::new(Izhikevich::new(a, b, c, d)),
            NeuronKind::Lif {
                tau_m,
                v_rest,
                v_th,
                v_reset,
                refractory,
            } => Box::new(Lif::new(tau_m, v_rest, v_th, v_reset, refractory)),
            NeuronKind::AdaptiveLif {
                tau_m,
                v_rest,
                v_th,
                v_reset,
                refractory,
                theta_plus,
                tau_theta,
            } => Box::new(AdaptiveLif::new(
                Lif::new(tau_m, v_rest, v_th, v_reset, refractory),
                theta_plus,
                tau_theta,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_distinct_models() {
        for kind in [
            NeuronKind::izhikevich_rs(),
            NeuronKind::izhikevich_fs(),
            NeuronKind::izhikevich_ch(),
            NeuronKind::izhikevich_ib(),
            NeuronKind::izhikevich_lts(),
            NeuronKind::lif_default(),
            NeuronKind::adaptive_lif_default(),
        ] {
            let mut m = kind.build();
            // all models rest below threshold and don't fire without input
            for _ in 0..50 {
                assert!(!m.step(0.0, 1.0), "{kind:?} fired with zero input");
            }
        }
    }

    #[test]
    fn strong_current_fires_everything() {
        for kind in [
            NeuronKind::izhikevich_rs(),
            NeuronKind::lif_default(),
            NeuronKind::adaptive_lif_default(),
        ] {
            let mut m = kind.build();
            let fired = (0..200).any(|_| m.step(30.0, 1.0));
            assert!(fired, "{kind:?} never fired under strong current");
        }
    }

    #[test]
    fn reset_restores_rest() {
        let mut m = NeuronKind::izhikevich_rs().build();
        for _ in 0..100 {
            m.step(20.0, 1.0);
        }
        m.reset();
        let v = m.potential();
        assert!((-70.0..=-60.0).contains(&v), "potential after reset: {v}");
    }
}
