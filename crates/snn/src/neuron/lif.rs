//! Leaky integrate-and-fire neurons, plain and with adaptive threshold.

use super::NeuronModel;

/// Leaky integrate-and-fire (LIF) neuron:
///
/// ```text
/// τm · dv/dt = −(v − v_rest) + I
/// if v ≥ v_th:  spike, v ← v_reset, refractory for `refractory` ms
/// ```
///
/// Used as the liquid neuron of the heartbeat-estimation LSM and the
/// inhibitory population of the digit-recognition network.
#[derive(Debug, Clone, PartialEq)]
pub struct Lif {
    tau_m: f32,
    v_rest: f32,
    v_th: f32,
    v_reset: f32,
    refractory: f32,
    v: f32,
    refr_left: f32,
}

impl Lif {
    /// Creates a LIF neuron at rest.
    ///
    /// # Panics
    ///
    /// Panics if `tau_m <= 0` or `v_th <= v_reset` (a neuron that could fire
    /// forever within one step).
    pub fn new(tau_m: f32, v_rest: f32, v_th: f32, v_reset: f32, refractory: f32) -> Self {
        assert!(tau_m > 0.0, "membrane time constant must be positive");
        assert!(v_th > v_reset, "threshold must exceed reset potential");
        Self {
            tau_m,
            v_rest,
            v_th,
            v_reset,
            refractory,
            v: v_rest,
            refr_left: 0.0,
        }
    }

    /// The (static) firing threshold in mV.
    pub fn threshold(&self) -> f32 {
        self.v_th
    }

    /// Whether the neuron is inside its refractory window.
    pub fn is_refractory(&self) -> bool {
        self.refr_left > 0.0
    }

    /// Steps the membrane given an *effective* threshold (used by
    /// [`AdaptiveLif`] to inject threshold adaptation).
    fn step_with_threshold(&mut self, i_syn: f32, dt: f32, v_th: f32) -> bool {
        if self.refr_left > 0.0 {
            self.refr_left -= dt;
            self.v = self.v_reset;
            return false;
        }
        self.v += dt / self.tau_m * (-(self.v - self.v_rest) + i_syn);
        if self.v >= v_th {
            self.v = self.v_reset;
            self.refr_left = self.refractory;
            true
        } else {
            false
        }
    }
}

impl NeuronModel for Lif {
    fn step(&mut self, i_syn: f32, dt: f32) -> bool {
        let th = self.v_th;
        self.step_with_threshold(i_syn, dt, th)
    }

    fn reset(&mut self) {
        self.v = self.v_rest;
        self.refr_left = 0.0;
    }

    fn potential(&self) -> f32 {
        self.v
    }
}

/// LIF neuron with an adaptive threshold `θ`:
///
/// ```text
/// effective threshold = v_th + θ
/// on spike:  θ ← θ + θ₊
/// always:    τθ · dθ/dt = −θ
/// ```
///
/// This is the homeostatic mechanism of Diehl & Cook's unsupervised
/// digit-recognition network: neurons that fire often raise their own
/// threshold, forcing selectivity across the population.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveLif {
    base: Lif,
    theta: f32,
    theta_plus: f32,
    tau_theta: f32,
}

impl AdaptiveLif {
    /// Wraps a [`Lif`] with threshold adaptation.
    ///
    /// # Panics
    ///
    /// Panics if `tau_theta <= 0`.
    pub fn new(base: Lif, theta_plus: f32, tau_theta: f32) -> Self {
        assert!(tau_theta > 0.0, "theta time constant must be positive");
        Self {
            base,
            theta: 0.0,
            theta_plus,
            tau_theta,
        }
    }

    /// Current adaptation offset θ in mV.
    pub fn theta(&self) -> f32 {
        self.theta
    }

    /// Current effective threshold in mV.
    pub fn effective_threshold(&self) -> f32 {
        self.base.threshold() + self.theta
    }
}

impl NeuronModel for AdaptiveLif {
    fn step(&mut self, i_syn: f32, dt: f32) -> bool {
        self.theta -= dt / self.tau_theta * self.theta;
        let th = self.base.threshold() + self.theta;
        let fired = self.base.step_with_threshold(i_syn, dt, th);
        if fired {
            self.theta += self.theta_plus;
        }
        fired
    }

    fn reset(&mut self) {
        self.base.reset();
        self.theta = 0.0;
    }

    fn potential(&self) -> f32 {
        self.base.potential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_lif() -> Lif {
        Lif::new(20.0, -65.0, -52.0, -65.0, 2.0)
    }

    #[test]
    fn integrates_toward_drive() {
        let mut n = default_lif();
        n.step(5.0, 1.0);
        assert!(n.potential() > -65.0);
    }

    #[test]
    fn subthreshold_drive_never_fires() {
        let mut n = default_lif();
        // steady state v = v_rest + I = -65 + 12 = -53 < -52
        for _ in 0..5000 {
            assert!(!n.step(12.0, 1.0));
        }
    }

    #[test]
    fn suprathreshold_drive_fires_and_resets() {
        let mut n = default_lif();
        let mut fired = false;
        for _ in 0..200 {
            if n.step(20.0, 1.0) {
                fired = true;
                assert_eq!(n.potential(), -65.0);
                assert!(n.is_refractory());
                break;
            }
        }
        assert!(fired);
    }

    #[test]
    fn refractory_blocks_firing() {
        let mut n = Lif::new(5.0, -65.0, -60.0, -65.0, 10.0);
        // drive hard until first spike
        while !n.step(100.0, 1.0) {}
        // within the 10 ms refractory window no spike may occur
        for _ in 0..9 {
            assert!(!n.step(100.0, 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "threshold must exceed reset")]
    fn invalid_threshold_panics() {
        let _ = Lif::new(20.0, -65.0, -70.0, -65.0, 2.0);
    }

    #[test]
    fn adaptive_threshold_rises_with_activity() {
        let mut n = AdaptiveLif::new(default_lif(), 1.0, 1e4);
        let mut spikes = 0;
        for _ in 0..500 {
            if n.step(40.0, 1.0) {
                spikes += 1;
            }
        }
        assert!(spikes > 0);
        assert!(n.theta() > 0.0);
        assert!(n.effective_threshold() > -52.0);
    }

    #[test]
    fn adaptation_slows_firing() {
        let mut plain = default_lif();
        let mut adaptive = AdaptiveLif::new(default_lif(), 2.0, 1e5);
        let fires = |m: &mut dyn NeuronModel| (0..2000).filter(|_| m.step(40.0, 1.0)).count();
        let n_plain = fires(&mut plain);
        let n_adapt = fires(&mut adaptive);
        assert!(
            n_adapt < n_plain,
            "adaptation should reduce rate: {n_adapt} !< {n_plain}"
        );
    }

    #[test]
    fn theta_decays_back() {
        let mut n = AdaptiveLif::new(default_lif(), 5.0, 50.0);
        while !n.step(60.0, 1.0) {}
        let peak = n.theta();
        for _ in 0..500 {
            n.step(0.0, 1.0);
        }
        assert!(n.theta() < peak * 0.01);
    }
}
