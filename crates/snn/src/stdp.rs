//! Spike-timing-dependent plasticity (pair-based, trace implementation).
//!
//! The digit-recognition workload (Diehl & Cook 2015) trains its input →
//! excitatory projection with unsupervised STDP. We implement the standard
//! pair rule with exponential traces:
//!
//! ```text
//! on pre spike  at synapse (i → j):  w ← w − A₋ · x_post(j)   (depression)
//! on post spike at synapse (i → j):  w ← w + A₊ · x_pre(i)    (potentiation)
//! traces:  x ← x·exp(−dt/τ),  incremented to +1 on the owner's spike
//! ```
//!
//! Weights are clamped to `[w_min, w_max]`, and an optional divisive
//! normalization keeps each postsynaptic neuron's total inbound plastic
//! weight constant — the competition mechanism Diehl & Cook rely on.

use serde::{Deserialize, Serialize};

/// Parameters of the pair-based STDP rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StdpConfig {
    /// Potentiation amplitude A₊.
    pub a_plus: f32,
    /// Depression amplitude A₋.
    pub a_minus: f32,
    /// Presynaptic trace time constant (ms).
    pub tau_plus: f32,
    /// Postsynaptic trace time constant (ms).
    pub tau_minus: f32,
    /// Lower weight bound.
    pub w_min: f32,
    /// Upper weight bound.
    pub w_max: f32,
    /// If set, after every `normalize_every` steps each postsynaptic
    /// neuron's inbound plastic weights are rescaled to sum to
    /// `normalize_target`.
    pub normalize_every: Option<u32>,
    /// Target inbound weight sum for divisive normalization.
    pub normalize_target: f32,
}

impl Default for StdpConfig {
    fn default() -> Self {
        Self {
            a_plus: 0.01,
            a_minus: 0.012,
            tau_plus: 20.0,
            tau_minus: 20.0,
            w_min: 0.0,
            w_max: 1.0,
            normalize_every: None,
            normalize_target: 78.0,
        }
    }
}

impl StdpConfig {
    /// Diehl & Cook-flavoured parameterization with divisive normalization.
    pub fn diehl_cook() -> Self {
        Self {
            a_plus: 0.01,
            a_minus: 0.012,
            tau_plus: 20.0,
            tau_minus: 20.0,
            w_min: 0.0,
            w_max: 1.0,
            normalize_every: Some(100),
            normalize_target: 78.0,
        }
    }
}

/// Runtime trace state for STDP (one pre/post trace per neuron).
#[derive(Debug, Clone)]
pub struct StdpState {
    config: StdpConfig,
    x_pre: Vec<f32>,
    x_post: Vec<f32>,
    decay_pre: f32,
    decay_post: f32,
}

impl StdpState {
    /// Creates trace state for `num_neurons` neurons stepped at `dt_ms`.
    pub fn new(config: StdpConfig, num_neurons: usize, dt_ms: f32) -> Self {
        Self {
            config,
            x_pre: vec![0.0; num_neurons],
            x_post: vec![0.0; num_neurons],
            decay_pre: (-dt_ms / config.tau_plus).exp(),
            decay_post: (-dt_ms / config.tau_minus).exp(),
        }
    }

    /// The rule's parameters.
    pub fn config(&self) -> &StdpConfig {
        &self.config
    }

    /// Decays all traces by one timestep.
    pub fn decay(&mut self) {
        for x in &mut self.x_pre {
            *x *= self.decay_pre;
        }
        for x in &mut self.x_post {
            *x *= self.decay_post;
        }
    }

    /// Registers that neuron `id` spiked (bumps both of its traces).
    pub fn on_spike(&mut self, id: usize) {
        self.x_pre[id] = 1.0;
        self.x_post[id] = 1.0;
    }

    /// Weight change when the *presynaptic* side of `(pre → post)` fires.
    pub fn dw_on_pre(&self, post: usize) -> f32 {
        -self.config.a_minus * self.x_post[post]
    }

    /// Weight change when the *postsynaptic* side of `(pre → post)` fires.
    pub fn dw_on_post(&self, pre: usize) -> f32 {
        self.config.a_plus * self.x_pre[pre]
    }

    /// Clamps a weight to the configured bounds.
    pub fn clamp(&self, w: f32) -> f32 {
        w.clamp(self.config.w_min, self.config.w_max)
    }

    /// Presynaptic trace of neuron `id` (introspection/tests).
    pub fn pre_trace(&self, id: usize) -> f32 {
        self.x_pre[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_decay_exponentially() {
        let mut s = StdpState::new(StdpConfig::default(), 2, 1.0);
        s.on_spike(0);
        let x0 = s.pre_trace(0);
        s.decay();
        let x1 = s.pre_trace(0);
        assert!(x1 < x0);
        let expected = (-1.0f32 / 20.0).exp();
        assert!((x1 - expected).abs() < 1e-6);
    }

    #[test]
    fn pre_after_post_depresses() {
        let mut s = StdpState::new(StdpConfig::default(), 2, 1.0);
        s.on_spike(1); // post fires first
        s.decay();
        let dw = s.dw_on_pre(1); // then pre fires
        assert!(dw < 0.0);
    }

    #[test]
    fn post_after_pre_potentiates() {
        let mut s = StdpState::new(StdpConfig::default(), 2, 1.0);
        s.on_spike(0); // pre fires first
        s.decay();
        let dw = s.dw_on_post(0); // then post fires
        assert!(dw > 0.0);
    }

    #[test]
    fn causality_window_fades() {
        let mut s = StdpState::new(StdpConfig::default(), 2, 1.0);
        s.on_spike(0);
        s.decay();
        let dw_close = s.dw_on_post(0);
        for _ in 0..100 {
            s.decay();
        }
        let dw_far = s.dw_on_post(0);
        assert!(dw_far < dw_close * 0.1);
    }

    #[test]
    fn clamp_respects_bounds() {
        let s = StdpState::new(StdpConfig::default(), 1, 1.0);
        assert_eq!(s.clamp(2.0), 1.0);
        assert_eq!(s.clamp(-0.5), 0.0);
        assert_eq!(s.clamp(0.25), 0.25);
    }
}
