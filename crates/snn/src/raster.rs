//! Text rendering of spike activity — quick-look diagnostics for examples,
//! logs, and debugging sessions (the kind of raster plot CARLsim's
//! OAT/MATLAB tooling produces, reduced to a terminal).

use crate::simulator::SpikeRecord;

/// Renders a spike raster as text: one row per neuron in `ids`, one column
/// per time bin of `bin_ms` steps; `#` marks bins with ≥1 spike, `·` marks
/// silent bins.
///
/// # Panics
///
/// Panics if `bin_ms` is zero or an id is out of range.
pub fn raster(record: &SpikeRecord, ids: &[u32], bin_ms: u32) -> String {
    assert!(bin_ms > 0, "bin width must be positive");
    let bins = record.steps().div_ceil(bin_ms).max(1);
    let mut out = String::new();
    for &id in ids {
        let train = record.train(id);
        let mut row = String::with_capacity(bins as usize + 12);
        row.push_str(&format!("{id:>6} "));
        for b in 0..bins {
            let lo = b * bin_ms;
            let hi = (lo + bin_ms).min(record.steps());
            row.push(if train.count_in(lo, hi) > 0 {
                '#'
            } else {
                '·'
            });
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Population firing rate over time: spikes per neuron per second in each
/// `bin_ms`-wide bin over the id range.
///
/// # Panics
///
/// Panics if `bin_ms` is zero, the range is empty, or out of bounds.
pub fn population_rate(record: &SpikeRecord, ids: std::ops::Range<u32>, bin_ms: u32) -> Vec<f64> {
    assert!(bin_ms > 0, "bin width must be positive");
    assert!(!ids.is_empty(), "id range must be non-empty");
    let n = ids.len() as f64;
    let bins = record.steps().div_ceil(bin_ms).max(1);
    (0..bins)
        .map(|b| {
            let lo = b * bin_ms;
            let hi = (lo + bin_ms).min(record.steps());
            let spikes: usize = ids.clone().map(|i| record.train(i).count_in(lo, hi)).sum();
            spikes as f64 * 1000.0 / (n * (hi - lo).max(1) as f64)
        })
        .collect()
}

/// Renders a rate curve as a one-line sparkline (8 levels).
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return LEVELS[0].to_string().repeat(values.len());
    }
    values
        .iter()
        .map(|&v| {
            let idx = ((v / max) * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> SpikeRecord {
        let mut r = SpikeRecord::new(3, 30);
        for t in [0u32, 5, 12] {
            r.record(0, t);
        }
        r.record(2, 25);
        r
    }

    #[test]
    fn raster_marks_active_bins() {
        let r = record();
        let text = raster(&r, &[0, 1, 2], 10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].ends_with("##·"), "{}", lines[0]);
        assert!(lines[1].ends_with("···"), "{}", lines[1]);
        assert!(lines[2].ends_with("··#"), "{}", lines[2]);
    }

    #[test]
    fn population_rate_counts_spikes() {
        let r = record();
        let rates = population_rate(&r, 0..3, 10);
        assert_eq!(rates.len(), 3);
        // bin 0: 2 spikes over 3 neurons over 10 ms → 66.7 Hz
        assert!((rates[0] - 2.0 * 1000.0 / 30.0).abs() < 1e-9);
        // bin 2: 1 spike
        assert!((rates[2] - 1000.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn sparkline_spans_levels() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_of_silence_is_flat() {
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
    }

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_rejected() {
        let r = record();
        let _ = raster(&r, &[0], 0);
    }
}
