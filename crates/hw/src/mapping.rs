//! Neuron → crossbar assignments and the paper's validity constraints.
//!
//! A [`Mapping`] is the *output* of the partitioning problem of Section III:
//! for every neuron, the crossbar hosting it. Synapses whose endpoints share
//! a crossbar are **local** (implemented as crosspoints); all others are
//! **global** (time-multiplexed over the interconnect). The two constraints
//! of Eq. 4–5 — every neuron on exactly one crossbar, and no crossbar over
//! capacity — are enforced by [`Mapping::from_assignment`] (structurally)
//! and [`Mapping::validate`] (against a concrete [`Architecture`]).

use crate::arch::Architecture;
use crate::error::HwError;
use serde::{Deserialize, Serialize};

/// A list of `(pre, post)` synapse endpoint pairs.
pub type SynapsePairs = Vec<(u32, u32)>;

/// An assignment of every neuron to one crossbar.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    crossbar_of: Vec<u32>,
    num_crossbars: usize,
}

impl Mapping {
    /// Builds a mapping from `crossbar_of[neuron] = crossbar` with
    /// `num_crossbars` crossbars available.
    ///
    /// # Errors
    ///
    /// [`HwError::CrossbarOutOfRange`] if any entry is `>= num_crossbars`.
    pub fn from_assignment(crossbar_of: Vec<u32>, num_crossbars: usize) -> Result<Self, HwError> {
        if let Some(&bad) = crossbar_of.iter().find(|&&c| c as usize >= num_crossbars) {
            return Err(HwError::CrossbarOutOfRange {
                crossbar: bad,
                available: num_crossbars,
            });
        }
        Ok(Self {
            crossbar_of,
            num_crossbars,
        })
    }

    /// Number of neurons covered.
    pub fn num_neurons(&self) -> usize {
        self.crossbar_of.len()
    }

    /// Number of crossbars the assignment targets.
    pub fn num_crossbars(&self) -> usize {
        self.num_crossbars
    }

    /// Crossbar hosting neuron `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn crossbar_of(&self, id: u32) -> u32 {
        self.crossbar_of[id as usize]
    }

    /// The raw assignment slice.
    pub fn assignment(&self) -> &[u32] {
        &self.crossbar_of
    }

    /// Whether the synapse `pre → post` is local (both endpoints on the
    /// same crossbar).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn is_local(&self, pre: u32, post: u32) -> bool {
        self.crossbar_of[pre as usize] == self.crossbar_of[post as usize]
    }

    /// Neurons hosted on crossbar `k`, in id order.
    pub fn neurons_on(&self, k: u32) -> Vec<u32> {
        self.crossbar_of
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == k)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Occupancy (neuron count) per crossbar.
    pub fn occupancy(&self) -> Vec<usize> {
        let mut occ = vec![0usize; self.num_crossbars];
        for &c in &self.crossbar_of {
            occ[c as usize] += 1;
        }
        occ
    }

    /// Validates the capacity constraint (Eq. 5) against an architecture.
    ///
    /// # Errors
    ///
    /// * [`HwError::CrossbarOutOfRange`] if the mapping targets more
    ///   crossbars than the architecture has.
    /// * [`HwError::CapacityExceeded`] naming the first crossbar over
    ///   capacity.
    pub fn validate(&self, arch: &Architecture) -> Result<(), HwError> {
        if self.num_crossbars > arch.num_crossbars() {
            return Err(HwError::CrossbarOutOfRange {
                crossbar: self.num_crossbars as u32 - 1,
                available: arch.num_crossbars(),
            });
        }
        let cap = arch.neurons_per_crossbar() as usize;
        for (k, &n) in self.occupancy().iter().enumerate() {
            if n > cap {
                return Err(HwError::CapacityExceeded {
                    crossbar: k as u32,
                    assigned: n,
                    capacity: cap,
                });
            }
        }
        Ok(())
    }

    /// Splits a synapse list into `(local, global)` according to this
    /// mapping — the paper's partition of S into local and global synapses.
    pub fn classify_synapses<'a>(
        &self,
        synapses: impl IntoIterator<Item = &'a (u32, u32)>,
    ) -> (SynapsePairs, SynapsePairs) {
        let mut local = Vec::new();
        let mut global = Vec::new();
        for &(pre, post) in synapses {
            if self.is_local(pre, post) {
                local.push((pre, post));
            } else {
                global.push((pre, post));
            }
        }
        (local, global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::InterconnectKind;

    #[test]
    fn out_of_range_assignment_rejected() {
        let err = Mapping::from_assignment(vec![0, 1, 4], 4).unwrap_err();
        assert!(matches!(
            err,
            HwError::CrossbarOutOfRange { crossbar: 4, .. }
        ));
    }

    #[test]
    fn locality() {
        let m = Mapping::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        assert!(m.is_local(0, 1));
        assert!(!m.is_local(1, 2));
        assert_eq!(m.neurons_on(1), vec![2, 3]);
        assert_eq!(m.occupancy(), vec![2, 2]);
    }

    #[test]
    fn capacity_validation() {
        let arch = Architecture::custom(2, 2, InterconnectKind::Mesh).unwrap();
        let ok = Mapping::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        assert!(ok.validate(&arch).is_ok());
        let over = Mapping::from_assignment(vec![0, 0, 0, 1], 2).unwrap();
        let err = over.validate(&arch).unwrap_err();
        assert!(matches!(
            err,
            HwError::CapacityExceeded {
                crossbar: 0,
                assigned: 3,
                capacity: 2
            }
        ));
    }

    #[test]
    fn mapping_with_more_crossbars_than_arch_rejected() {
        let arch = Architecture::custom(2, 8, InterconnectKind::Mesh).unwrap();
        let m = Mapping::from_assignment(vec![0, 1, 2], 3).unwrap();
        assert!(m.validate(&arch).is_err());
    }

    #[test]
    fn classify_splits_synapses() {
        let m = Mapping::from_assignment(vec![0, 0, 1], 2).unwrap();
        let syn = vec![(0u32, 1u32), (0, 2), (1, 2)];
        let (local, global) = m.classify_synapses(&syn);
        assert_eq!(local, vec![(0, 1)]);
        assert_eq!(global, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn every_neuron_has_exactly_one_crossbar_by_construction() {
        // Eq. 4 is structural: the Vec representation makes multiple
        // assignment impossible and from_assignment covers the range check.
        let m = Mapping::from_assignment(vec![1, 0, 1], 2).unwrap();
        assert_eq!(m.num_neurons(), 3);
        let total: usize = m.occupancy().iter().sum();
        assert_eq!(total, 3);
    }
}
