//! Neuron → crossbar assignments, cluster placement, and the paper's
//! validity constraints.
//!
//! A [`Mapping`] is the *output* of the partitioning problem of Section III:
//! for every neuron, the crossbar hosting it. Synapses whose endpoints share
//! a crossbar are **local** (implemented as crosspoints); all others are
//! **global** (time-multiplexed over the interconnect). The two constraints
//! of Eq. 4–5 — every neuron on exactly one crossbar, and no crossbar over
//! capacity — are enforced by [`Mapping::from_assignment`] (structurally)
//! and [`Mapping::validate`] (against a concrete [`Architecture`]).
//!
//! A [`Placement`] is the output of the *second* mapping stage
//! (SpiNeMap-style, Balaji et al.): the partitioner's clusters are logical
//! until a placement decides which **physical** crossbar — and therefore
//! which interconnect router — hosts each one. [`Mapping::place`] composes
//! the two; the identity placement leaves a mapping untouched, so the
//! staged pipeline degrades exactly to the paper's single-stage flow.

use crate::arch::Architecture;
use crate::error::HwError;
use serde::{Deserialize, Serialize};

/// A list of `(pre, post)` synapse endpoint pairs.
pub type SynapsePairs = Vec<(u32, u32)>;

/// An assignment of every neuron to one crossbar.
///
/// Alongside the per-neuron assignment vector, construction builds a
/// CSR-style crossbar → neurons index once (`O(n + c)`), so
/// [`Mapping::neurons_on`] is a slice borrow instead of the O(n) scan +
/// allocation it used to be — the placement stage queries crossbar
/// occupancy for every cluster and hits that path hard.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    crossbar_of: Vec<u32>,
    num_crossbars: usize,
    /// CSR offsets: crossbar `k` hosts
    /// `by_crossbar[csr_offsets[k] .. csr_offsets[k + 1]]`.
    csr_offsets: Vec<u32>,
    /// Neuron ids grouped by crossbar, ascending within each crossbar.
    by_crossbar: Vec<u32>,
}

// The CSR index is derived state: serialization keeps the original
// two-field shape (pre-placement JSON stays loadable, reports don't
// double in size), and deserialization routes through
// `Mapping::from_assignment` so the index can never disagree with the
// assignment — crafted redundant bytes have nothing to corrupt.
impl Serialize for Mapping {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("crossbar_of".to_owned(), self.crossbar_of.to_value()),
            ("num_crossbars".to_owned(), self.num_crossbars.to_value()),
        ])
    }
}

impl Deserialize for Mapping {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::DeError::new(format!("missing field `{name}`")))
        };
        let crossbar_of = Vec::<u32>::from_value(field("crossbar_of")?)?;
        let num_crossbars = usize::from_value(field("num_crossbars")?)?;
        Mapping::from_assignment(crossbar_of, num_crossbars)
            .map_err(|e| serde::DeError::new(e.to_string()))
    }
}

impl Mapping {
    /// Builds a mapping from `crossbar_of[neuron] = crossbar` with
    /// `num_crossbars` crossbars available.
    ///
    /// # Errors
    ///
    /// [`HwError::CrossbarOutOfRange`] if any entry is `>= num_crossbars`.
    pub fn from_assignment(crossbar_of: Vec<u32>, num_crossbars: usize) -> Result<Self, HwError> {
        if let Some(&bad) = crossbar_of.iter().find(|&&c| c as usize >= num_crossbars) {
            return Err(HwError::CrossbarOutOfRange {
                crossbar: bad,
                available: num_crossbars,
            });
        }
        // counting sort into the CSR index: one pass for occupancy, one
        // pass (in ascending neuron order) to scatter ids
        let mut csr_offsets = vec![0u32; num_crossbars + 1];
        for &c in &crossbar_of {
            csr_offsets[c as usize + 1] += 1;
        }
        for k in 0..num_crossbars {
            csr_offsets[k + 1] += csr_offsets[k];
        }
        let mut cursor = csr_offsets[..num_crossbars].to_vec();
        let mut by_crossbar = vec![0u32; crossbar_of.len()];
        for (i, &c) in crossbar_of.iter().enumerate() {
            by_crossbar[cursor[c as usize] as usize] = i as u32;
            cursor[c as usize] += 1;
        }
        Ok(Self {
            crossbar_of,
            num_crossbars,
            csr_offsets,
            by_crossbar,
        })
    }

    /// Number of neurons covered.
    pub fn num_neurons(&self) -> usize {
        self.crossbar_of.len()
    }

    /// Number of crossbars the assignment targets.
    pub fn num_crossbars(&self) -> usize {
        self.num_crossbars
    }

    /// Crossbar hosting neuron `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn crossbar_of(&self, id: u32) -> u32 {
        self.crossbar_of[id as usize]
    }

    /// The raw assignment slice.
    pub fn assignment(&self) -> &[u32] {
        &self.crossbar_of
    }

    /// Whether the synapse `pre → post` is local (both endpoints on the
    /// same crossbar).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn is_local(&self, pre: u32, post: u32) -> bool {
        self.crossbar_of[pre as usize] == self.crossbar_of[post as usize]
    }

    /// Neurons hosted on crossbar `k`, in id order — a borrow from the
    /// CSR index built at construction, O(1) per call.
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_crossbars`.
    pub fn neurons_on(&self, k: u32) -> &[u32] {
        let lo = self.csr_offsets[k as usize] as usize;
        let hi = self.csr_offsets[k as usize + 1] as usize;
        &self.by_crossbar[lo..hi]
    }

    /// Occupancy (neuron count) per crossbar — read off the CSR offsets.
    pub fn occupancy(&self) -> Vec<usize> {
        self.csr_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }

    /// Validates the capacity constraint (Eq. 5) against an architecture.
    ///
    /// # Errors
    ///
    /// * [`HwError::CrossbarOutOfRange`] if the mapping targets more
    ///   crossbars than the architecture has.
    /// * [`HwError::CapacityExceeded`] naming the first crossbar over
    ///   capacity.
    pub fn validate(&self, arch: &Architecture) -> Result<(), HwError> {
        if self.num_crossbars > arch.num_crossbars() {
            return Err(HwError::CrossbarOutOfRange {
                crossbar: self.num_crossbars as u32 - 1,
                available: arch.num_crossbars(),
            });
        }
        let cap = arch.neurons_per_crossbar() as usize;
        for (k, &n) in self.occupancy().iter().enumerate() {
            if n > cap {
                return Err(HwError::CapacityExceeded {
                    crossbar: k as u32,
                    assigned: n,
                    capacity: cap,
                });
            }
        }
        Ok(())
    }

    /// Composes a [`Placement`] into this mapping: every neuron of logical
    /// cluster `k` lands on physical crossbar `placement.physical_of(k)`.
    /// The identity placement returns a mapping equal to `self`.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidParameter`] if the placement covers a different
    /// crossbar count than this mapping targets.
    pub fn place(&self, placement: &Placement) -> Result<Mapping, HwError> {
        if placement.num_crossbars() != self.num_crossbars {
            return Err(HwError::InvalidParameter {
                name: "placement",
                value: format!(
                    "{} crossbars, mapping targets {}",
                    placement.num_crossbars(),
                    self.num_crossbars
                ),
            });
        }
        let placed: Vec<u32> = self
            .crossbar_of
            .iter()
            .map(|&k| placement.physical_of(k))
            .collect();
        Mapping::from_assignment(placed, self.num_crossbars)
    }

    /// Splits a synapse list into `(local, global)` according to this
    /// mapping — the paper's partition of S into local and global synapses.
    pub fn classify_synapses<'a>(
        &self,
        synapses: impl IntoIterator<Item = &'a (u32, u32)>,
    ) -> (SynapsePairs, SynapsePairs) {
        let mut local = Vec::new();
        let mut global = Vec::new();
        for &(pre, post) in synapses {
            if self.is_local(pre, post) {
                local.push((pre, post));
            } else {
                global.push((pre, post));
            }
        }
        (local, global)
    }
}

/// A cluster → physical-crossbar permutation: the placement stage's
/// output.
///
/// The partitioner decides *which neurons share a crossbar* (minimizing
/// cut traffic); the placement decides *where on the chip* each of those
/// clusters sits — and therefore how many router hops every global packet
/// travels. Physical crossbar `physical_of[k]` hosts logical cluster `k`;
/// the vector is validated to be a permutation so every cluster gets
/// exactly one physical crossbar and capacities are preserved (all
/// crossbars of an [`Architecture`] are homogeneous).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Placement {
    physical_of: Vec<u32>,
}

impl Serialize for Placement {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "physical_of".to_owned(),
            self.physical_of.to_value(),
        )])
    }
}

// Deserialization routes through `Placement::new` so a non-permutation
// can never enter through serialized data.
impl Deserialize for Placement {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let field = v
            .get("physical_of")
            .ok_or_else(|| serde::DeError::new("missing field `physical_of`"))?;
        Placement::new(Vec::<u32>::from_value(field)?)
            .map_err(|e| serde::DeError::new(e.to_string()))
    }
}

impl Placement {
    /// The identity placement over `num_crossbars` crossbars: cluster `k`
    /// on physical crossbar `k` — the implicit wiring of the single-stage
    /// pipeline.
    pub fn identity(num_crossbars: usize) -> Self {
        Self {
            physical_of: (0..num_crossbars as u32).collect(),
        }
    }

    /// Builds a placement from `physical_of[cluster] = physical crossbar`.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidParameter`] if `physical_of` is not a permutation
    /// of `0..len` (out-of-range or duplicate entries).
    pub fn new(physical_of: Vec<u32>) -> Result<Self, HwError> {
        let c = physical_of.len();
        let mut seen = vec![false; c];
        for &p in &physical_of {
            if (p as usize) >= c || seen[p as usize] {
                return Err(HwError::InvalidParameter {
                    name: "physical_of",
                    value: format!("entry {p} breaks the permutation over 0..{c}"),
                });
            }
            seen[p as usize] = true;
        }
        Ok(Self { physical_of })
    }

    /// Number of crossbars (clusters) covered.
    pub fn num_crossbars(&self) -> usize {
        self.physical_of.len()
    }

    /// Physical crossbar hosting logical cluster `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    #[inline]
    pub fn physical_of(&self, k: u32) -> u32 {
        self.physical_of[k as usize]
    }

    /// The raw permutation slice (`physical_of[cluster]`).
    pub fn as_slice(&self) -> &[u32] {
        &self.physical_of
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.physical_of
            .iter()
            .enumerate()
            .all(|(k, &p)| p as usize == k)
    }

    /// The inverse permutation (`cluster_of[physical crossbar]`).
    pub fn inverse(&self) -> Placement {
        let mut inv = vec![0u32; self.physical_of.len()];
        for (k, &p) in self.physical_of.iter().enumerate() {
            inv[p as usize] = k as u32;
        }
        Placement { physical_of: inv }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::InterconnectKind;

    #[test]
    fn out_of_range_assignment_rejected() {
        let err = Mapping::from_assignment(vec![0, 1, 4], 4).unwrap_err();
        assert!(matches!(
            err,
            HwError::CrossbarOutOfRange { crossbar: 4, .. }
        ));
    }

    #[test]
    fn locality() {
        let m = Mapping::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        assert!(m.is_local(0, 1));
        assert!(!m.is_local(1, 2));
        assert_eq!(m.neurons_on(1), vec![2, 3]);
        assert_eq!(m.occupancy(), vec![2, 2]);
    }

    #[test]
    fn capacity_validation() {
        let arch = Architecture::custom(2, 2, InterconnectKind::Mesh).unwrap();
        let ok = Mapping::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        assert!(ok.validate(&arch).is_ok());
        let over = Mapping::from_assignment(vec![0, 0, 0, 1], 2).unwrap();
        let err = over.validate(&arch).unwrap_err();
        assert!(matches!(
            err,
            HwError::CapacityExceeded {
                crossbar: 0,
                assigned: 3,
                capacity: 2
            }
        ));
    }

    #[test]
    fn mapping_with_more_crossbars_than_arch_rejected() {
        let arch = Architecture::custom(2, 8, InterconnectKind::Mesh).unwrap();
        let m = Mapping::from_assignment(vec![0, 1, 2], 3).unwrap();
        assert!(m.validate(&arch).is_err());
    }

    #[test]
    fn classify_splits_synapses() {
        let m = Mapping::from_assignment(vec![0, 0, 1], 2).unwrap();
        let syn = vec![(0u32, 1u32), (0, 2), (1, 2)];
        let (local, global) = m.classify_synapses(&syn);
        assert_eq!(local, vec![(0, 1)]);
        assert_eq!(global, vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn csr_index_covers_every_crossbar_in_id_order() {
        let m = Mapping::from_assignment(vec![2, 0, 2, 1, 0, 2], 4).unwrap();
        assert_eq!(m.neurons_on(0), &[1, 4]);
        assert_eq!(m.neurons_on(1), &[3]);
        assert_eq!(m.neurons_on(2), &[0, 2, 5]);
        assert_eq!(m.neurons_on(3), &[] as &[u32]);
        assert_eq!(m.occupancy(), vec![2, 1, 3, 0]);
    }

    #[test]
    fn placement_validates_permutations() {
        assert!(Placement::new(vec![2, 0, 1]).is_ok());
        assert!(Placement::new(vec![0, 0, 1]).is_err()); // duplicate
        assert!(Placement::new(vec![0, 3, 1]).is_err()); // out of range
        let id = Placement::identity(4);
        assert!(id.is_identity());
        assert!(!Placement::new(vec![1, 0]).unwrap().is_identity());
    }

    #[test]
    fn placement_inverse_roundtrips() {
        let p = Placement::new(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for k in 0..4u32 {
            assert_eq!(inv.physical_of(p.physical_of(k)), k);
        }
    }

    #[test]
    fn identity_placement_leaves_mapping_unchanged() {
        let m = Mapping::from_assignment(vec![0, 1, 2, 1], 3).unwrap();
        let placed = m.place(&Placement::identity(3)).unwrap();
        assert_eq!(placed, m);
    }

    #[test]
    fn placement_permutes_clusters_and_preserves_occupancy() {
        let m = Mapping::from_assignment(vec![0, 0, 1, 2], 3).unwrap();
        let p = Placement::new(vec![2, 0, 1]).unwrap();
        let placed = m.place(&p).unwrap();
        assert_eq!(placed.assignment(), &[2, 2, 0, 1]);
        // occupancy is the permuted original
        let occ = m.occupancy();
        let pocc = placed.occupancy();
        for k in 0..3u32 {
            assert_eq!(pocc[p.physical_of(k) as usize], occ[k as usize]);
        }
        // crossbar-count mismatch rejected
        assert!(m.place(&Placement::identity(4)).is_err());
    }

    #[test]
    fn serde_keeps_the_two_field_shape_and_rebuilds_the_index() {
        let m = Mapping::from_assignment(vec![2, 0, 2, 1], 3).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        // the derived CSR index never reaches the wire
        assert!(!json.contains("csr_offsets"), "{json}");
        assert!(!json.contains("by_crossbar"), "{json}");
        let back: Mapping = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.neurons_on(2), &[0, 2]);
        // pre-placement JSON (the original two-field shape) stays loadable
        let old: Mapping =
            serde_json::from_str(r#"{"crossbar_of":[1,0,1],"num_crossbars":2}"#).unwrap();
        assert_eq!(old.neurons_on(1), &[0, 2]);
        // out-of-range assignments are rejected at the boundary
        assert!(
            serde_json::from_str::<Mapping>(r#"{"crossbar_of":[5],"num_crossbars":2}"#).is_err()
        );
    }

    #[test]
    fn placement_serde_revalidates_the_permutation() {
        let p = Placement::new(vec![2, 0, 1]).unwrap();
        let json = serde_json::to_string(&p).unwrap();
        let back: Placement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        // a duplicate entry cannot enter through serialized data
        assert!(serde_json::from_str::<Placement>(r#"{"physical_of":[0,0,1]}"#).is_err());
    }

    #[test]
    fn every_neuron_has_exactly_one_crossbar_by_construction() {
        // Eq. 4 is structural: the Vec representation makes multiple
        // assignment impossible and from_assignment covers the range check.
        let m = Mapping::from_assignment(vec![1, 0, 1], 2).unwrap();
        assert_eq!(m.num_neurons(), 3);
        let total: usize = m.occupancy().iter().sum();
        assert_eq!(total, 3);
    }
}
