//! Event-level energy model, loadable from JSON.
//!
//! Noxim reads its power numbers from an external YAML file so users can
//! re-target the simulator to their silicon; we reproduce the feature with
//! JSON via serde. All values are **picojoules per event**. The defaults are
//! anchored to published neuromorphic figures: TrueNorth reports ≈26 pJ per
//! (routed) synaptic event end to end, and analog crossbar events are one to
//! two orders of magnitude cheaper than packets traversing a NoC — the
//! local ≪ global asymmetry the paper's optimization exploits.

use crate::error::HwError;
use serde::{Deserialize, Serialize};

/// Energy per hardware event, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct EnergyModel {
    /// One synaptic event inside a crossbar (memristor read + integration).
    pub local_synapse_pj: f64,
    /// One packet traversing one router (arbitration + switch).
    pub router_hop_pj: f64,
    /// One flit traversing one inter-router link.
    pub link_flit_pj: f64,
    /// One buffer write+read cycle for a queued flit.
    pub buffer_flit_pj: f64,
    /// AER encoding of one spike at the source crossbar boundary.
    pub encode_pj: f64,
    /// AER decoding of one spike at the destination crossbar boundary.
    pub decode_pj: f64,
    /// Crossbar dimension at which `local_synapse_pj` was characterized.
    /// Event energy scales linearly with the array dimension (wordline and
    /// bitline capacitance grow with the number of columns/rows), so a
    /// 256-wide crossbar costs `256 / reference_dim × local_synapse_pj`
    /// per event. This is what makes "few large crossbars" lose to an
    /// intermediate size in the paper's Fig. 6.
    #[serde(default = "default_reference_dim")]
    pub reference_dim: f64,
}

fn default_reference_dim() -> f64 {
    128.0
}

impl Default for EnergyModel {
    /// CxQuad-class defaults (in-house-chip-magnitude numbers).
    fn default() -> Self {
        Self {
            local_synapse_pj: 2.2,
            router_hop_pj: 11.3,
            link_flit_pj: 3.7,
            buffer_flit_pj: 1.9,
            encode_pj: 4.2,
            decode_pj: 4.2,
            reference_dim: 128.0,
        }
    }
}

impl EnergyModel {
    /// Parses an energy model from a JSON string.
    ///
    /// # Errors
    ///
    /// [`HwError::Config`] when the JSON is malformed, has unknown fields,
    /// or contains negative energies.
    ///
    /// ```
    /// use neuromap_hw::energy::EnergyModel;
    /// # fn main() -> Result<(), neuromap_hw::HwError> {
    /// let m = EnergyModel::from_json(r#"{
    ///     "local_synapse_pj": 1.0, "router_hop_pj": 10.0,
    ///     "link_flit_pj": 3.0, "buffer_flit_pj": 1.0,
    ///     "encode_pj": 4.0, "decode_pj": 4.0
    /// }"#)?;
    /// assert_eq!(m.local_synapse_pj, 1.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_json(json: &str) -> Result<Self, HwError> {
        let model: EnergyModel =
            serde_json::from_str(json).map_err(|e| HwError::Config(e.to_string()))?;
        model.validate()?;
        Ok(model)
    }

    /// Serializes the model to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("energy model serializes")
    }

    /// Checks all energies are non-negative.
    ///
    /// # Errors
    ///
    /// [`HwError::Config`] naming the negative field.
    pub fn validate(&self) -> Result<(), HwError> {
        let fields = [
            ("local_synapse_pj", self.local_synapse_pj),
            ("router_hop_pj", self.router_hop_pj),
            ("link_flit_pj", self.link_flit_pj),
            ("buffer_flit_pj", self.buffer_flit_pj),
            ("encode_pj", self.encode_pj),
            ("decode_pj", self.decode_pj),
            ("reference_dim", self.reference_dim),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v < 0.0 {
                return Err(HwError::Config(format!("{name} must be ≥ 0, got {v}")));
            }
        }
        Ok(())
    }

    /// Energy for a unicast packet of `flits` flits travelling `hops` hops,
    /// spending `queued_cycles` total flit-cycles in buffers, including AER
    /// encode/decode at the endpoints.
    pub fn packet_pj(&self, hops: u32, flits: u32, queued_flit_cycles: u64) -> f64 {
        self.encode_pj
            + self.decode_pj
            + hops as f64 * self.router_hop_pj
            + hops as f64 * flits as f64 * self.link_flit_pj
            + queued_flit_cycles as f64 * self.buffer_flit_pj
    }

    /// Energy for `events` local synaptic events inside crossbars.
    pub fn local_pj(&self, events: u64) -> f64 {
        events as f64 * self.local_synapse_pj
    }

    /// Per-event local energy for a crossbar of the given dimension
    /// (linear wordline/bitline capacitance scaling; see
    /// [`EnergyModel::reference_dim`]).
    pub fn local_event_pj(&self, crossbar_dim: u32) -> f64 {
        let ref_dim = if self.reference_dim > 0.0 {
            self.reference_dim
        } else {
            128.0
        };
        self.local_synapse_pj * crossbar_dim as f64 / ref_dim
    }

    /// Energy for `events` local events on crossbars of dimension
    /// `crossbar_dim`.
    pub fn local_pj_scaled(&self, events: u64, crossbar_dim: u32) -> f64 {
        events as f64 * self.local_event_pj(crossbar_dim)
    }
}

/// Converts picojoules to microjoules (the unit of the paper's Fig. 6).
pub fn pj_to_uj(pj: f64) -> f64 {
    pj * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_orders_of_magnitude() {
        let m = EnergyModel::default();
        // crossing the NoC (≥1 hop) must cost much more than a local event
        let global = m.packet_pj(1, 1, 0);
        assert!(
            global > 5.0 * m.local_synapse_pj,
            "global {global} vs local {}",
            m.local_synapse_pj
        );
    }

    #[test]
    fn json_roundtrip() {
        let m = EnergyModel::default();
        let j = m.to_json();
        let back = EnergyModel::from_json(&j).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn unknown_fields_rejected() {
        let err = EnergyModel::from_json(r#"{"bogus": 1.0}"#).unwrap_err();
        assert!(matches!(err, HwError::Config(_)));
    }

    #[test]
    fn negative_energy_rejected() {
        let m = EnergyModel {
            router_hop_pj: -1.0,
            ..EnergyModel::default()
        };
        assert!(m.validate().is_err());
        let json = serde_json::to_string(&m).unwrap();
        assert!(EnergyModel::from_json(&json).is_err());
    }

    #[test]
    fn packet_energy_scales_with_hops_and_flits() {
        let m = EnergyModel::default();
        let one = m.packet_pj(1, 1, 0);
        let far = m.packet_pj(4, 1, 0);
        let fat = m.packet_pj(1, 4, 0);
        assert!(far > one);
        assert!(fat > one);
    }

    #[test]
    fn buffering_adds_energy() {
        let m = EnergyModel::default();
        assert!(m.packet_pj(2, 1, 10) > m.packet_pj(2, 1, 0));
    }

    #[test]
    fn local_energy_linear_in_events() {
        let m = EnergyModel::default();
        assert_eq!(m.local_pj(1000), 1000.0 * m.local_synapse_pj);
    }

    #[test]
    fn pj_to_uj_scale() {
        assert_eq!(pj_to_uj(2_000_000.0), 2.0);
    }
}
