//! Whole-chip architecture descriptions.
//!
//! An [`Architecture`] is what the designer supplies to the mapping flow
//! (paper, Section III: "the specification C is usually provided by a
//! designer"): how many crossbars, how many neurons each can hold, how the
//! crossbars are interconnected, and what the events cost. Section V-C of
//! the paper *explores* this space (few large crossbars vs. many small
//! ones); [`Architecture::with_crossbar_size`] supports exactly that sweep.

use crate::crossbar::CrossbarSpec;
use crate::energy::EnergyModel;
use crate::error::HwError;
use serde::{Deserialize, Serialize};

/// The interconnect joining the crossbars.
///
/// The paper's Section II: "commonly used ones are NoC-tree (CxQuad) and
/// NoC-mesh (TrueNorth, HiCANN)". The concrete routing/queueing behaviour
/// lives in `neuromap-noc`; this descriptor selects which model is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InterconnectKind {
    /// 2-D mesh with XY dimension-order routing (TrueNorth/HiCANN class).
    /// Crossbars are placed row-major on a near-square grid.
    Mesh,
    /// Balanced tree with the given arity; crossbars are the leaves
    /// (CxQuad class).
    Tree {
        /// Children per switch node (≥ 2).
        arity: u32,
    },
    /// 2-D torus (mesh with wrap-around links).
    Torus,
    /// All crossbars share one central switch (single-hop star).
    Star,
    /// Multi-chip hierarchy (SpiNeMap-class scale-out): crossbars are
    /// spread chip-major over a `chip_cols × chip_rows` grid of chips,
    /// each chip internally a near-square 2-D mesh, with chips joined by
    /// slower, narrower boundary links. Built as
    /// `neuromap_noc::topology::HierTopology` by the mapping pipeline.
    Hier {
        /// Chip-grid columns (≥ 1).
        chip_cols: u32,
        /// Chip-grid rows (≥ 1).
        chip_rows: u32,
        /// Cycles per chip-boundary link hop (≥ 1).
        link_latency: u32,
        /// On-chip over boundary link-width ratio (≥ 1) — multiplies the
        /// serialization cost of every boundary hop.
        link_width: u32,
    },
}

impl InterconnectKind {
    /// A NoC-tree of arity 4, CxQuad's interconnect.
    pub fn cxquad_tree() -> Self {
        InterconnectKind::Tree { arity: 4 }
    }
}

/// Domain checks for [`InterconnectKind::Hier`], mirroring the
/// construction-time validation of `neuromap_noc::topology::HierTopology`
/// (same derived near-square per-chip mesh, same weighted-diameter bound)
/// so the pipeline's topology builder is infallible for a validated
/// [`Architecture`].
fn validate_hier(
    num_crossbars: usize,
    chip_cols: u32,
    chip_rows: u32,
    link_latency: u32,
    link_width: u32,
) -> Result<(), HwError> {
    if chip_cols == 0 || chip_rows == 0 {
        return Err(HwError::InvalidParameter {
            name: "chip_grid",
            value: format!("{chip_cols}x{chip_rows}"),
        });
    }
    if link_latency == 0 {
        return Err(HwError::InvalidParameter {
            name: "link_latency",
            value: "0".into(),
        });
    }
    if link_width == 0 {
        return Err(HwError::InvalidParameter {
            name: "link_width",
            value: "0".into(),
        });
    }
    // the same per-chip mesh shape `HierTopology::for_crossbars` derives
    let chips = chip_cols as u128 * chip_rows as u128;
    let per_chip = (num_crossbars as u128).div_ceil(chips).max(1);
    let intra_cols = (per_chip as f64).sqrt().ceil() as u128;
    let intra_rows = per_chip.div_ceil(intra_cols);
    if chips * intra_cols * intra_rows > usize::MAX as u128 {
        return Err(HwError::InvalidParameter {
            name: "chip_grid",
            value: format!("{chip_cols}x{chip_rows} chips of {intra_cols}x{intra_rows}"),
        });
    }
    // weighted diameter must fit the u32 distance table (hop-latency
    // overflow on deep hierarchies)
    let seam = u128::from(link_latency) * u128::from(link_width);
    let seams = chip_cols as u128 - 1 + chip_rows as u128 - 1;
    let intra_span = (intra_cols - 1) * chip_cols as u128 + (intra_rows - 1) * chip_rows as u128;
    if intra_span + seams * seam > u128::from(u32::MAX) {
        return Err(HwError::InvalidParameter {
            name: "link_latency",
            value: format!(
                "weighted diameter {} overflows u32",
                intra_span + seams * seam
            ),
        });
    }
    Ok(())
}

/// A complete neuromorphic chip description.
///
/// ```
/// use neuromap_hw::arch::{Architecture, InterconnectKind};
///
/// # fn main() -> Result<(), neuromap_hw::HwError> {
/// // 16 crossbars of 90 neurons on a mesh — one point of the paper's
/// // Fig. 6 architecture sweep
/// let arch = Architecture::custom(16, 90, InterconnectKind::Mesh)?;
/// assert_eq!(arch.total_neuron_capacity(), 1440);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    num_crossbars: usize,
    crossbar: CrossbarSpec,
    interconnect: InterconnectKind,
    energy: EnergyModel,
}

impl Architecture {
    /// The CxQuad reference chip: 4 crossbars × 128 neurons (16 K local
    /// synapses each), NoC-tree interconnect.
    pub fn cxquad() -> Self {
        Self {
            num_crossbars: 4,
            crossbar: CrossbarSpec::default(),
            interconnect: InterconnectKind::cxquad_tree(),
            energy: EnergyModel::default(),
        }
    }

    /// A TrueNorth-class chip slice: `n` crossbars of 256 neurons on a mesh.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidParameter`] if `n` is zero.
    pub fn truenorth_like(n: usize) -> Result<Self, HwError> {
        if n == 0 {
            return Err(HwError::InvalidParameter {
                name: "n",
                value: "0".into(),
            });
        }
        Ok(Self {
            num_crossbars: n,
            crossbar: CrossbarSpec::square(256).expect("256 > 0"),
            interconnect: InterconnectKind::Mesh,
            energy: EnergyModel::default(),
        })
    }

    /// A fully custom architecture.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidParameter`] if `num_crossbars` or
    /// `neurons_per_crossbar` is zero, a tree arity is < 2, or a
    /// hierarchical interconnect has a degenerate chip grid /
    /// zero-latency / zero-width boundary link or a weighted diameter
    /// overflowing the `u32` distance table.
    pub fn custom(
        num_crossbars: usize,
        neurons_per_crossbar: u32,
        interconnect: InterconnectKind,
    ) -> Result<Self, HwError> {
        if num_crossbars == 0 {
            return Err(HwError::InvalidParameter {
                name: "num_crossbars",
                value: "0".into(),
            });
        }
        if let InterconnectKind::Tree { arity } = interconnect {
            if arity < 2 {
                return Err(HwError::InvalidParameter {
                    name: "arity",
                    value: arity.to_string(),
                });
            }
        }
        if let InterconnectKind::Hier {
            chip_cols,
            chip_rows,
            link_latency,
            link_width,
        } = interconnect
        {
            validate_hier(
                num_crossbars,
                chip_cols,
                chip_rows,
                link_latency,
                link_width,
            )?;
        }
        Ok(Self {
            num_crossbars,
            crossbar: CrossbarSpec::square(neurons_per_crossbar)?,
            interconnect,
            energy: EnergyModel::default(),
        })
    }

    /// Derives an architecture with the same interconnect/energy but a
    /// different crossbar size, sized to hold at least `total_neurons` —
    /// the Fig. 6 sweep ("given an application, fewer large crossbars or
    /// many small ones?").
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidParameter`] if either argument is zero.
    pub fn with_crossbar_size(
        &self,
        neurons_per_crossbar: u32,
        total_neurons: u32,
    ) -> Result<Self, HwError> {
        if neurons_per_crossbar == 0 || total_neurons == 0 {
            return Err(HwError::InvalidParameter {
                name: "neurons_per_crossbar/total_neurons",
                value: format!("{neurons_per_crossbar}/{total_neurons}"),
            });
        }
        let count = total_neurons.div_ceil(neurons_per_crossbar).max(1) as usize;
        Ok(Self {
            num_crossbars: count,
            crossbar: CrossbarSpec::square(neurons_per_crossbar)?,
            interconnect: self.interconnect,
            energy: self.energy,
        })
    }

    /// Replaces the energy model (builder style).
    pub fn with_energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Replaces the interconnect (builder style). Unlike
    /// [`Architecture::custom`] this performs no domain validation —
    /// prefer `custom` for [`InterconnectKind::Hier`] descriptors so the
    /// boundary-link parameters are checked up front.
    pub fn with_interconnect(mut self, interconnect: InterconnectKind) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Number of crossbars.
    pub fn num_crossbars(&self) -> usize {
        self.num_crossbars
    }

    /// Geometry of each crossbar (homogeneous chips).
    pub fn crossbar(&self) -> CrossbarSpec {
        self.crossbar
    }

    /// Neurons each crossbar can hold (the paper's `Nc`).
    pub fn neurons_per_crossbar(&self) -> u32 {
        self.crossbar.neuron_capacity()
    }

    /// Total neuron capacity of the chip.
    pub fn total_neuron_capacity(&self) -> u64 {
        self.num_crossbars as u64 * self.neurons_per_crossbar() as u64
    }

    /// The interconnect descriptor.
    pub fn interconnect(&self) -> InterconnectKind {
        self.interconnect
    }

    /// The energy model.
    pub fn energy(&self) -> &EnergyModel {
        &self.energy
    }

    /// Whether an SNN of `n` neurons can fit on this chip at all.
    pub fn fits(&self, n: u64) -> bool {
        n <= self.total_neuron_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cxquad_matches_paper() {
        let a = Architecture::cxquad();
        assert_eq!(a.num_crossbars(), 4);
        assert_eq!(a.neurons_per_crossbar(), 128);
        assert_eq!(a.crossbar().max_synapses(), 16_384);
        assert_eq!(a.interconnect(), InterconnectKind::Tree { arity: 4 });
        assert_eq!(a.total_neuron_capacity(), 512);
    }

    #[test]
    fn truenorth_like_is_mesh() {
        let a = Architecture::truenorth_like(16).unwrap();
        assert_eq!(a.interconnect(), InterconnectKind::Mesh);
        assert_eq!(a.total_neuron_capacity(), 4096);
    }

    #[test]
    fn custom_validation() {
        assert!(Architecture::custom(0, 10, InterconnectKind::Mesh).is_err());
        assert!(Architecture::custom(4, 0, InterconnectKind::Mesh).is_err());
        assert!(Architecture::custom(4, 10, InterconnectKind::Tree { arity: 1 }).is_err());
    }

    #[test]
    fn hier_validation_mirrors_topology_construction() {
        let hier = |chip_cols, chip_rows, link_latency, link_width| {
            Architecture::custom(
                1024,
                64,
                InterconnectKind::Hier {
                    chip_cols,
                    chip_rows,
                    link_latency,
                    link_width,
                },
            )
        };
        let blamed = |r: Result<Architecture, HwError>, field: &str| match r {
            Err(HwError::InvalidParameter { name, .. }) => {
                assert_eq!(name, field, "wrong field blamed")
            }
            other => panic!("expected InvalidParameter for {field}, got {other:?}"),
        };
        assert!(hier(2, 2, 4, 2).is_ok());
        blamed(hier(0, 2, 4, 2), "chip_grid");
        blamed(hier(2, 0, 4, 2), "chip_grid");
        blamed(hier(2, 2, 0, 2), "link_latency");
        blamed(hier(2, 2, 4, 0), "link_width");
        // deep hierarchy whose weighted diameter cannot fit u32
        blamed(hier(1000, 1000, u32::MAX, 2), "link_latency");
    }

    #[test]
    fn crossbar_size_sweep_preserves_capacity() {
        let base = Architecture::cxquad();
        for npc in [90u32, 180, 360, 720, 1440] {
            let a = base.with_crossbar_size(npc, 1440).unwrap();
            assert!(a.total_neuron_capacity() >= 1440, "npc={npc}");
            assert_eq!(a.neurons_per_crossbar(), npc);
            assert_eq!(a.interconnect(), base.interconnect());
        }
    }

    #[test]
    fn sweep_crossbar_count_shrinks_as_size_grows() {
        let base = Architecture::cxquad();
        let small = base.with_crossbar_size(90, 1440).unwrap();
        let large = base.with_crossbar_size(1440, 1440).unwrap();
        assert_eq!(small.num_crossbars(), 16);
        assert_eq!(large.num_crossbars(), 1);
    }

    #[test]
    fn fits_checks_capacity() {
        let a = Architecture::cxquad();
        assert!(a.fits(512));
        assert!(!a.fits(513));
    }

    #[test]
    fn serde_roundtrip() {
        let a = Architecture::cxquad();
        let j = serde_json::to_string(&a).unwrap();
        let b: Architecture = serde_json::from_str(&j).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn serde_roundtrip_hier() {
        let a = Architecture::custom(
            1024,
            64,
            InterconnectKind::Hier {
                chip_cols: 2,
                chip_rows: 2,
                link_latency: 4,
                link_width: 2,
            },
        )
        .unwrap();
        let j = serde_json::to_string(&a).unwrap();
        let b: Architecture = serde_json::from_str(&j).unwrap();
        assert_eq!(a, b);
    }
}
