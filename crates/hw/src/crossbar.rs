//! Crossbar geometry and capacity rules.
//!
//! A crossbar is a 3-D arrangement of nanowires: presynaptic neurons drive
//! the bottom wires, postsynaptic neurons read the top wires, and every
//! crosspoint is a two-terminal memristor storing one synaptic weight
//! (paper, Section II). A `W_in × W_out` crossbar therefore implements up to
//! `W_in · W_out` *local* synapses with point-to-point wiring, at very low
//! energy per event.

use crate::error::HwError;
use serde::{Deserialize, Serialize};

/// Geometry of one crossbar.
///
/// CxQuad's crossbars are 128 × 128 (16 K local synapses); use
/// [`CrossbarSpec::square`] for such symmetric designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CrossbarSpec {
    /// Number of presynaptic (input) wordlines.
    pub inputs: u32,
    /// Number of postsynaptic (output) bitlines.
    pub outputs: u32,
}

impl CrossbarSpec {
    /// A square `n × n` crossbar.
    ///
    /// # Errors
    ///
    /// [`HwError::InvalidParameter`] if `n` is zero.
    pub fn square(n: u32) -> Result<Self, HwError> {
        if n == 0 {
            return Err(HwError::InvalidParameter {
                name: "n",
                value: "0".into(),
            });
        }
        Ok(Self {
            inputs: n,
            outputs: n,
        })
    }

    /// Maximum number of local synapses (crosspoints).
    pub fn max_synapses(&self) -> u64 {
        self.inputs as u64 * self.outputs as u64
    }

    /// Maximum number of neurons hostable on this crossbar.
    ///
    /// Following the paper's formulation (one x-variable per neuron per
    /// crossbar, Eq. 5 bound `Nc`), a neuron mapped to a crossbar occupies
    /// one input *and* one output line — it must be able to both receive
    /// local input and project locally — so the capacity is
    /// `min(inputs, outputs)`.
    pub fn neuron_capacity(&self) -> u32 {
        self.inputs.min(self.outputs)
    }
}

impl Default for CrossbarSpec {
    /// The CxQuad crossbar: 128 × 128.
    fn default() -> Self {
        Self {
            inputs: 128,
            outputs: 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_constructor() {
        let c = CrossbarSpec::square(256).unwrap();
        assert_eq!(c.max_synapses(), 65_536);
        assert_eq!(c.neuron_capacity(), 256);
    }

    #[test]
    fn zero_size_rejected() {
        assert!(CrossbarSpec::square(0).is_err());
    }

    #[test]
    fn default_is_cxquad_crossbar() {
        let c = CrossbarSpec::default();
        assert_eq!((c.inputs, c.outputs), (128, 128));
        assert_eq!(c.max_synapses(), 16_384);
    }

    #[test]
    fn asymmetric_capacity_is_min() {
        let c = CrossbarSpec {
            inputs: 64,
            outputs: 256,
        };
        assert_eq!(c.neuron_capacity(), 64);
    }
}
