//! # neuromap-hw — neuromorphic hardware model
//!
//! Models the class of hardware targeted by Das et al. (DATE 2018): multiple
//! fixed-size memristive **crossbars** of fully connected neurons joined by a
//! **time-multiplexed interconnect** (Figure 1 of the paper). Provides:
//!
//! * [`crossbar::CrossbarSpec`] — crossbar geometry and capacity rules;
//! * [`arch::Architecture`] — a full chip description (crossbar count/size +
//!   interconnect kind + energy model), with presets [`arch::Architecture::cxquad`]
//!   (4 crossbars × 128 neurons, NoC-tree) and
//!   [`arch::Architecture::truenorth_like`] (mesh);
//! * [`energy::EnergyModel`] — pJ-level event energies, loadable from JSON
//!   (the counterpart of Noxim's external YAML power file);
//! * [`aer::AerEvent`] — Address-Event-Representation encoding of spikes;
//! * [`mapping::Mapping`] — a neuron → crossbar assignment with the paper's
//!   validity constraints (Eq. 4–5) and local/global synapse classification.
//!
//! ```
//! use neuromap_hw::arch::Architecture;
//! use neuromap_hw::mapping::Mapping;
//!
//! let arch = Architecture::cxquad();
//! assert_eq!(arch.num_crossbars(), 4);
//! // map 6 neurons round-robin over the 4 crossbars
//! let m = Mapping::from_assignment(vec![0, 1, 2, 3, 0, 1], 4).unwrap();
//! assert!(m.validate(&arch).is_ok());
//! assert!(m.is_local(0, 4));  // both on crossbar 0
//! assert!(!m.is_local(0, 1)); // crossbars 0 and 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aer;
pub mod arch;
pub mod crossbar;
pub mod energy;
mod error;
pub mod mapping;

pub use arch::Architecture;
pub use energy::EnergyModel;
pub use error::HwError;
pub use mapping::Mapping;
