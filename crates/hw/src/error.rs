use std::error::Error;
use std::fmt;

/// Error type for hardware-model construction and mapping validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HwError {
    /// A mapping assigns more neurons to a crossbar than it can hold
    /// (violates Eq. 5 of the paper).
    CapacityExceeded {
        /// Crossbar index.
        crossbar: u32,
        /// Neurons assigned to it.
        assigned: usize,
        /// Its capacity.
        capacity: usize,
    },
    /// A mapping references a crossbar outside the architecture.
    CrossbarOutOfRange {
        /// Offending crossbar id.
        crossbar: u32,
        /// Number of crossbars available.
        available: usize,
    },
    /// A numeric parameter is outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value, formatted.
        value: String,
    },
    /// An energy/config file failed to parse.
    Config(String),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::CapacityExceeded {
                crossbar,
                assigned,
                capacity,
            } => write!(
                f,
                "crossbar {crossbar} holds {assigned} neurons, capacity is {capacity}"
            ),
            HwError::CrossbarOutOfRange {
                crossbar,
                available,
            } => write!(
                f,
                "crossbar {crossbar} referenced, architecture has {available}"
            ),
            HwError::InvalidParameter { name, value } => {
                write!(f, "invalid value `{value}` for parameter `{name}`")
            }
            HwError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = HwError::CapacityExceeded {
            crossbar: 2,
            assigned: 300,
            capacity: 128,
        };
        let m = e.to_string();
        assert!(m.contains("300") && m.contains("128"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<HwError>();
    }
}
