//! Address-Event Representation (AER).
//!
//! AER is the spike-communication protocol of the paper's global synapse
//! interconnect (Section II, Figure 2): each spike is transmitted as the
//! *address* of its source neuron plus its *time* of firing, so a shared
//! time-multiplexed channel can carry the traffic of many point-to-point
//! global synapses.

use serde::{Deserialize, Serialize};

/// One address-event: "neuron `source` spiked at time `timestamp`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AerEvent {
    /// Firing time in timesteps — ordered first so the derived ordering is
    /// chronological.
    pub timestamp: u32,
    /// Global id of the spiking neuron.
    pub source: u32,
}

impl AerEvent {
    /// Creates an event.
    pub fn new(source: u32, timestamp: u32) -> Self {
        Self { timestamp, source }
    }

    /// Packs the event into a 64-bit word: timestamp in the high 32 bits
    /// (so packed words sort chronologically), source in the low 32.
    pub fn pack(&self) -> u64 {
        (self.timestamp as u64) << 32 | self.source as u64
    }

    /// Unpacks a word produced by [`AerEvent::pack`].
    pub fn unpack(word: u64) -> Self {
        Self {
            timestamp: (word >> 32) as u32,
            source: word as u32,
        }
    }
}

/// Number of bits needed to address `n` distinct values (minimum 1).
pub fn address_bits(n: u32) -> u32 {
    if n <= 1 {
        1
    } else {
        32 - (n - 1).leading_zeros()
    }
}

/// Payload size in bits of one AER event for a network of `num_neurons`
/// neurons with `timestamp_bits` of timing resolution.
pub fn event_bits(num_neurons: u32, timestamp_bits: u32) -> u32 {
    address_bits(num_neurons) + timestamp_bits
}

/// Number of flits needed to carry `payload_bits` over `flit_bits`-wide
/// links (at least 1).
///
/// # Panics
///
/// Panics if `flit_bits` is zero.
pub fn flits_for(payload_bits: u32, flit_bits: u32) -> u32 {
    assert!(flit_bits > 0, "flit width must be positive");
    payload_bits.div_ceil(flit_bits).max(1)
}

/// Encodes the spikes of many neurons into one chronologically ordered AER
/// stream — what the crossbar-boundary encoder of Figure 2 does.
///
/// `trains[i]` holds the spike times of neuron `ids[i]`.
///
/// # Panics
///
/// Panics if `ids` and `trains` have different lengths.
pub fn encode_stream(ids: &[u32], trains: &[&[u32]]) -> Vec<AerEvent> {
    assert_eq!(ids.len(), trains.len(), "one train per neuron id");
    let mut events: Vec<AerEvent> = ids
        .iter()
        .zip(trains.iter())
        .flat_map(|(&id, times)| times.iter().map(move |&t| AerEvent::new(id, t)))
        .collect();
    events.sort_unstable();
    events
}

/// Splits an AER stream back into per-neuron spike-time lists (the decoder
/// side of Figure 2). Returns `(id, times)` pairs ordered by id.
pub fn decode_stream(events: &[AerEvent]) -> Vec<(u32, Vec<u32>)> {
    let mut by_source: std::collections::BTreeMap<u32, Vec<u32>> =
        std::collections::BTreeMap::new();
    for e in events {
        by_source.entry(e.source).or_default().push(e.timestamp);
    }
    by_source
        .into_iter()
        .map(|(id, mut ts)| {
            ts.sort_unstable();
            (id, ts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let e = AerEvent::new(123_456, 789);
        assert_eq!(AerEvent::unpack(e.pack()), e);
    }

    #[test]
    fn packed_words_sort_chronologically() {
        let early = AerEvent::new(999, 5).pack();
        let late = AerEvent::new(0, 6).pack();
        assert!(early < late);
    }

    #[test]
    fn address_bit_widths() {
        assert_eq!(address_bits(0), 1);
        assert_eq!(address_bits(1), 1);
        assert_eq!(address_bits(2), 1);
        assert_eq!(address_bits(3), 2);
        assert_eq!(address_bits(256), 8);
        assert_eq!(address_bits(257), 9);
        assert_eq!(address_bits(1024), 10);
    }

    #[test]
    fn event_and_flit_sizing() {
        // 1024 neurons, 16-bit timestamps, 32-bit flits → 26 bits → 1 flit
        assert_eq!(event_bits(1024, 16), 26);
        assert_eq!(flits_for(26, 32), 1);
        assert_eq!(flits_for(33, 32), 2);
        assert_eq!(flits_for(0, 32), 1);
    }

    #[test]
    fn paper_figure2_example() {
        // four neurons spiking at times 3, 0, 1, 2 — the encoder emits them
        // in time order, each tagged with its source
        let ids = [0, 1, 2, 3];
        let t0: &[u32] = &[3];
        let t1: &[u32] = &[0];
        let t2: &[u32] = &[1];
        let t3: &[u32] = &[2];
        let stream = encode_stream(&ids, &[t0, t1, t2, t3]);
        let order: Vec<u32> = stream.iter().map(|e| e.source).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ids = [10, 20];
        let a: &[u32] = &[1, 5, 9];
        let b: &[u32] = &[2, 5];
        let stream = encode_stream(&ids, &[a, b]);
        let decoded = decode_stream(&stream);
        assert_eq!(decoded, vec![(10, vec![1, 5, 9]), (20, vec![2, 5])]);
    }

    #[test]
    fn decode_empty_stream() {
        assert!(decode_stream(&[]).is_empty());
    }
}
