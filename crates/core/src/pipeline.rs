//! The end-to-end mapping flow as an explicit **staged pipeline**:
//!
//! ```text
//! application → SNN simulation → spike graph
//!   → [partition]  neurons → logical clusters     (Partitioner, Eq. 4–8)
//!   → [place]      clusters → physical crossbars  (core::place, hop-aware)
//!   → [packetize]  cut synapses → injection flows (TrafficMode)
//!   → [simulate]   flows → NoC statistics         (event engine / oracle)
//!   → [report]     every metric the paper's evaluation uses
//! ```
//!
//! The paper's Figure-4 framework stops after partitioning: cluster `k`
//! is implicitly wired to router `k`, so every cut packet is priced the
//! same regardless of how far it travels. [`MappingPipeline`] makes each
//! stage explicit and threads **hop awareness** through all of them — the
//! topology's [`DistanceLut`] is built once, shared by the
//! [`crate::partition::FitnessKind::CutHops`] objective, the placement
//! optimizer, and the hop metrics in the [`Report`]
//! (`avg_hops`, `hop_weighted_packets`). With the default
//! [`PlacementStrategy::Identity`] the staged flow reproduces the
//! original single-stage pipeline **bit-identically** (property-tested in
//! `tests/placement_properties.rs`); [`PlacementStrategy::HopOptimized`]
//! inserts the SpiNeMap-style placement stage that moves chatty clusters
//! onto adjacent routers.
//!
//! [`run_pipeline`] remains the one-call convenience wrapper: it builds a
//! [`MappingPipeline`] for the config and runs every stage. Sweeps that
//! evaluate many points on the *same* architecture
//! ([`crate::noc_sweep`], [`crate::explore`]) hold one pipeline and reuse
//! its topology and distance table across points instead of rebuilding
//! them per call.

use crate::error::CoreError;
use crate::graph::SpikeGraph;
use crate::multilevel::{self, MultilevelConfig};
use crate::partition::{PartitionProblem, Partitioner};
use crate::place::{
    optimize_placement, optimize_placement_trees, MulticastTraffic, PlaceConfig, TrafficMatrix,
};
use neuromap_hw::arch::{Architecture, InterconnectKind};
use neuromap_hw::mapping::{Mapping, Placement};
use neuromap_noc::config::NocConfig;
use neuromap_noc::sim::{oracle::CycleSim, EngineKind, NocSim};
use neuromap_noc::stats::{Delivery, NocStats};
use neuromap_noc::topology::{DistanceLut, HierTopology, Mesh2D, NocTree, Star, Topology, Torus};
use neuromap_noc::trace::TraceBuf;
use neuromap_noc::traffic::SpikeFlow;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How global synaptic events become interconnect packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TrafficMode {
    /// One packet per spike **per cut synapse** — the time-multiplexing
    /// model of the paper's Eq. 7 ("spikes(k1,k2) = Σ T_{i,j}"): every
    /// global synapse is an independently multiplexed connection. This is
    /// the accounting under which the paper's Fig. 5 energies and the PSO
    /// objective agree.
    #[default]
    PerSynapse,
    /// One AER packet per spike per *distinct* destination crossbar (the
    /// destination crossbar fans the address out to its local synapses) —
    /// the hardware-AER extension; combine with [`NocConfig::multicast`]
    /// for single-packet multicast delivery.
    PerCrossbar,
}

/// How the place stage maps logical clusters onto physical crossbars.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PlacementStrategy {
    /// Cluster `k` on physical crossbar `k` — the implicit wiring of the
    /// paper's single-stage flow. Reports are bit-identical to the
    /// pre-placement pipeline.
    #[default]
    Identity,
    /// Optimize the cluster permutation for hop-weighted packets with
    /// [`crate::place::optimize_placement`] before packetizing.
    HopOptimized(PlaceConfig),
}

/// How the partition stage solves the clustering problem.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PartitionStrategy {
    /// Run the [`Partitioner`] handed to [`MappingPipeline::partition`]
    /// directly on the full problem — the paper's single-level flow.
    #[default]
    Direct,
    /// Solve through the multilevel V-cycle
    /// ([`crate::multilevel::vcycle`]): coarsen, swarm-optimize only the
    /// coarsest level, project + refine back up. The partitioner argument
    /// is ignored (the V-cycle embeds its own PSO); reports label the
    /// stage `"multilevel"`.
    Multilevel(MultilevelConfig),
}

/// Pipeline parameters: the target chip and the interconnect configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target architecture (crossbars + interconnect + energy model).
    pub arch: Architecture,
    /// Interconnect simulation parameters.
    pub noc: NocConfig,
    /// Packetization model for global synaptic events.
    pub traffic: TrafficMode,
    /// Which interconnect engine simulates the traffic. The engines are
    /// output-identical (differentially verified); the cycle-driven
    /// oracle exists for cross-checks and debugging.
    pub engine: EngineKind,
    /// How the place stage assigns clusters to physical crossbars.
    pub placement: PlacementStrategy,
    /// How the partition stage solves the clustering problem.
    pub partition: PartitionStrategy,
}

impl PipelineConfig {
    /// CxQuad with default NoC parameters.
    pub fn cxquad() -> Self {
        Self::for_arch(Architecture::cxquad())
    }

    /// A custom architecture with default NoC parameters.
    pub fn for_arch(arch: Architecture) -> Self {
        Self {
            arch,
            noc: NocConfig::default(),
            traffic: TrafficMode::default(),
            engine: EngineKind::default(),
            placement: PlacementStrategy::default(),
            partition: PartitionStrategy::default(),
        }
    }

    /// Selects the packetization model (builder style).
    pub fn with_traffic(mut self, traffic: TrafficMode) -> Self {
        self.traffic = traffic;
        self
    }

    /// Replaces the interconnect configuration (builder style) — the
    /// route `vc_count` / `buffer_depth` settings take from callers like
    /// `repro_placement` into the simulated fabric.
    pub fn with_noc(mut self, noc: NocConfig) -> Self {
        self.noc = noc;
        self
    }

    /// Selects the interconnect engine (builder style).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the placement strategy (builder style).
    pub fn with_placement(mut self, placement: PlacementStrategy) -> Self {
        self.placement = placement;
        self
    }

    /// Selects the partition strategy (builder style).
    pub fn with_partition(mut self, partition: PartitionStrategy) -> Self {
        self.partition = partition;
        self
    }
}

/// Everything the paper measures for one (application, partitioner,
/// architecture) combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Partitioner identifier.
    pub partitioner: String,
    /// Neurons in the graph.
    pub num_neurons: u32,
    /// Synapses in the graph.
    pub num_synapses: usize,
    /// Eq. 8: spikes crossing crossbar boundaries (per cut synapse).
    pub cut_spikes: u64,
    /// Synaptic events served inside crossbars (local synapses).
    pub local_events: u64,
    /// Crossbar-local energy in pJ (scaled by crossbar dimension).
    pub local_energy_pj: f64,
    /// Interconnect energy in pJ (from the NoC simulation).
    pub global_energy_pj: f64,
    /// Local + global energy in pJ.
    pub total_energy_pj: f64,
    /// Average interconnect hops per unicast packet (0 when nothing
    /// crosses the interconnect) — derived from the topology's
    /// [`DistanceLut`], independent of the engine.
    pub avg_hops: f64,
    /// Hop-weighted packet total: every packet priced by the hop distance
    /// between its source and destination crossbars — the placement
    /// stage's objective, measured on the flows actually injected.
    pub hop_weighted_packets: u64,
    /// Which placement stage produced the evaluated mapping
    /// (`"identity"` or `"hop-optimized"`).
    pub placement: String,
    /// Which swarm-evaluator kernel batch-scores candidate partitions at
    /// this crossbar count ([`crate::eval::SwarmKernel::name`]:
    /// `"byte-tile"`, `"word-tile"`, or `"scalar"`) — surfaces the
    /// scalar fallback past the batched envelopes, which used to be a
    /// silent perf cliff. Empty when deserialized from an older report.
    #[serde(default)]
    pub eval_kernel: String,
    /// Full interconnect statistics (latency, throughput, disorder, ISI).
    pub noc: NocStats,
    /// The neuron → (physical) crossbar mapping that produced these
    /// numbers, placement already composed in.
    pub mapping: Mapping,
}

/// Builds the concrete router graph for an architecture's interconnect
/// descriptor.
pub fn build_topology(arch: &Architecture) -> Box<dyn Topology> {
    let c = arch.num_crossbars();
    match arch.interconnect() {
        InterconnectKind::Mesh => Box::new(Mesh2D::for_crossbars(c)),
        InterconnectKind::Tree { arity } => Box::new(NocTree::new(c, arity)),
        InterconnectKind::Torus => Box::new(Torus::for_crossbars(c)),
        InterconnectKind::Star => Box::new(Star::new(c)),
        InterconnectKind::Hier { .. } => Box::new(build_hier(arch)),
        // `InterconnectKind` is non-exhaustive; route future variants to the
        // most common neuromorphic fabric
        _ => Box::new(Mesh2D::for_crossbars(c)),
    }
}

/// The concrete multi-chip fabric for a [`InterconnectKind::Hier`]
/// descriptor. [`Architecture::custom`] mirror-validates the descriptor,
/// so construction cannot fail for architectures built through it.
fn build_hier(arch: &Architecture) -> HierTopology {
    let InterconnectKind::Hier {
        chip_cols,
        chip_rows,
        link_latency,
        link_width,
    } = arch.interconnect()
    else {
        unreachable!("build_hier called on a non-Hier interconnect");
    };
    HierTopology::for_crossbars(
        arch.num_crossbars(),
        chip_cols as usize,
        chip_rows as usize,
        link_latency,
        link_width,
    )
    .expect("interconnect descriptor validated at Architecture construction")
}

/// Expands a partitioned spike graph into the interconnect's injection
/// schedule under the chosen [`TrafficMode`]:
///
/// * [`TrafficMode::PerSynapse`] — one unicast flow per spike per cut
///   synapse (paper Eq. 7);
/// * [`TrafficMode::PerCrossbar`] — one flow per spike carrying the
///   deduplicated destination-crossbar set (AER; multicast-capable).
pub fn build_flows(graph: &SpikeGraph, mapping: &Mapping, mode: TrafficMode) -> Vec<SpikeFlow> {
    let mut flows = Vec::new();
    for i in 0..graph.num_neurons() {
        if graph.count(i) == 0 {
            continue;
        }
        let home = mapping.crossbar_of(i);
        match mode {
            TrafficMode::PerSynapse => {
                let remote: Vec<u32> = graph
                    .targets(i)
                    .iter()
                    .map(|&j| mapping.crossbar_of(j))
                    .filter(|&c| c != home)
                    .collect();
                if remote.is_empty() {
                    continue;
                }
                for &t in graph.train(i).times() {
                    for &dst in &remote {
                        flows.push(SpikeFlow::unicast(i, home, dst, t));
                    }
                }
            }
            TrafficMode::PerCrossbar => {
                let mut dsts: Vec<u32> = graph
                    .targets(i)
                    .iter()
                    .map(|&j| mapping.crossbar_of(j))
                    .filter(|&c| c != home)
                    .collect();
                dsts.sort_unstable();
                dsts.dedup();
                if dsts.is_empty() {
                    continue;
                }
                for &t in graph.train(i).times() {
                    flows.push(SpikeFlow {
                        source_neuron: i,
                        src_crossbar: home,
                        dst_crossbars: dsts.clone(),
                        send_step: t,
                    });
                }
            }
        }
    }
    flows
}

/// Counts the synaptic events served *inside* crossbars under a mapping:
/// `Σ_{(i,j) ∈ S, cb(i) = cb(j)} |T_i|`.
pub fn local_events(graph: &SpikeGraph, mapping: &Mapping) -> u64 {
    let mut total = 0u64;
    for i in 0..graph.num_neurons() {
        let c = graph.count(i) as u64;
        if c == 0 {
            continue;
        }
        let home = mapping.crossbar_of(i);
        let local = graph
            .targets(i)
            .iter()
            .filter(|&&j| mapping.crossbar_of(j) == home)
            .count() as u64;
        total += c * local;
    }
    total
}

/// Link traversals of a multicast tree, given the per-destination paths
/// [`Topology::multicast_route`] returns: paths are grouped by their
/// first `(next hop, VC)` — each distinct group is one packet forward —
/// and the recursion descends into the groups' tails. Destinations that
/// share a path prefix pay each shared hop once, which is exactly the
/// forward count the NoC engines perform under tree routing (a head
/// splits per distinct route bit, never per destination).
pub(crate) fn tree_forwards(paths: &[Vec<(usize, usize)>]) -> u64 {
    // hop path tail, keyed by the (next hop, VC) the paths branch on
    type Tails = Vec<Vec<(usize, usize)>>;
    let mut groups: std::collections::BTreeMap<(usize, usize), Tails> =
        std::collections::BTreeMap::new();
    for p in paths {
        if let Some((&first, rest)) = p.split_first() {
            groups.entry(first).or_default().push(rest.to_vec());
        }
    }
    let mut total = 0u64;
    for tails in groups.values() {
        total += 1 + tree_forwards(tails);
    }
    total
}

/// The staged mapping pipeline: partition → place → packetize → simulate
/// → report, over a topology and hop-distance table built **once** and
/// shared by every stage (and, through [`MappingPipeline::with_noc`],
/// across sweep points).
///
/// Each stage is callable on its own — exploration code can re-partition
/// without re-simulating, re-place without re-partitioning, or evaluate a
/// pre-existing mapping — and [`MappingPipeline::run`] chains them all.
#[derive(Clone)]
pub struct MappingPipeline {
    config: PipelineConfig,
    topo: Arc<dyn Topology>,
    dist: Arc<DistanceLut>,
}

impl std::fmt::Debug for MappingPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappingPipeline")
            .field("topology", &self.topo.name())
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl MappingPipeline {
    /// Builds the pipeline for a configuration: derives the router graph
    /// from the architecture's interconnect descriptor and precomputes
    /// its [`DistanceLut`], both shared by every subsequent stage call.
    ///
    /// For [`InterconnectKind::Hier`] the table is the fabric's
    /// **weighted** one ([`HierTopology::distance_lut`]): chip-boundary
    /// hops are priced `link_latency × link_width` so `CutHops`
    /// partitioning, placement, and co-optimization all prefer keeping
    /// chatty clusters on one chip — no API change upstream.
    pub fn new(config: PipelineConfig) -> Self {
        let (topo, dist): (Arc<dyn Topology>, DistanceLut) = match config.arch.interconnect() {
            InterconnectKind::Hier { .. } => {
                let hier = build_hier(&config.arch);
                let dist = hier.distance_lut();
                (Arc::new(hier), dist)
            }
            _ => {
                let topo: Arc<dyn Topology> = Arc::from(build_topology(&config.arch));
                let dist = DistanceLut::new(topo.as_ref());
                (topo, dist)
            }
        };
        let dist = Arc::new(dist);
        Self { config, topo, dist }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The shared router graph.
    pub fn topology(&self) -> &dyn Topology {
        self.topo.as_ref()
    }

    /// A clone of the shared router-graph `Arc` — lets callers (and the
    /// sweep tests) verify that derived pipelines reuse the same
    /// topology instance rather than rebuilding it.
    pub fn shared_topology(&self) -> Arc<dyn Topology> {
        Arc::clone(&self.topo)
    }

    /// The shared all-pairs hop-distance table.
    pub fn distances(&self) -> &DistanceLut {
        &self.dist
    }

    /// A pipeline over the **same** topology and distance table with a
    /// different interconnect configuration — how `crate::noc_sweep`
    /// walks parameter grids without rebuilding the router graph per
    /// point (the `Arc`s are shared, not cloned).
    pub fn with_noc(&self, noc: NocConfig) -> Self {
        let mut next = self.clone();
        next.config.noc = noc;
        next
    }

    /// A pipeline over the same topology and distance table with a
    /// different placement strategy — comparing identity against
    /// hop-optimized placement shares every precomputed structure.
    pub fn with_placement(&self, placement: PlacementStrategy) -> Self {
        let mut next = self.clone();
        next.config.placement = placement;
        next
    }

    /// The partition problem for a graph on this architecture, with the
    /// hop table attached (so [`crate::partition::FitnessKind::CutHops`]
    /// partitioners work out of the box).
    ///
    /// # Errors
    ///
    /// [`CoreError::Infeasible`] when the chip cannot hold the graph.
    pub fn problem<'g>(&'g self, graph: &'g SpikeGraph) -> Result<PartitionProblem<'g>, CoreError> {
        PartitionProblem::new(
            graph,
            self.config.arch.num_crossbars(),
            self.config.arch.neurons_per_crossbar(),
        )?
        .with_hops(&self.dist)
    }

    /// **Stage 1 — partition**: neurons → logical clusters, per the
    /// configured [`PartitionStrategy`]. With
    /// [`PartitionStrategy::Multilevel`] the `partitioner` argument is
    /// ignored — the V-cycle embeds its own coarsest-level PSO.
    ///
    /// # Errors
    ///
    /// Propagates partitioner errors and infeasibility.
    pub fn partition(
        &self,
        graph: &SpikeGraph,
        partitioner: &dyn Partitioner,
    ) -> Result<Mapping, CoreError> {
        let problem = self.problem(graph)?;
        match &self.config.partition {
            PartitionStrategy::Direct => partitioner.partition(&problem),
            PartitionStrategy::Multilevel(cfg) => Ok(multilevel::vcycle(&problem, cfg)?.mapping),
        }
    }

    /// The label the report's `partitioner` field gets for a run with
    /// `partitioner`: the partitioner's own name under
    /// [`PartitionStrategy::Direct`], `"multilevel"` otherwise.
    fn partition_label(&self, partitioner: &dyn Partitioner) -> &'static str {
        match &self.config.partition {
            PartitionStrategy::Direct => partitioner.name(),
            PartitionStrategy::Multilevel(_) => "multilevel",
        }
    }

    /// **Stage 2 — place**: logical clusters → physical crossbars, per
    /// the configured [`PlacementStrategy`]. Returns the placed mapping,
    /// the permutation, and the placement id recorded in the report.
    /// Identity placement returns a mapping equal to the input.
    ///
    /// # Errors
    ///
    /// Propagates placement-optimizer configuration errors.
    pub fn place(
        &self,
        graph: &SpikeGraph,
        mapping: &Mapping,
    ) -> Result<(Mapping, Placement, String), CoreError> {
        match &self.config.placement {
            PlacementStrategy::Identity => Ok((
                mapping.clone(),
                Placement::identity(mapping.num_crossbars()),
                "identity".to_owned(),
            )),
            PlacementStrategy::HopOptimized(cfg) => {
                let traffic = TrafficMatrix::from_mapping(graph, mapping, self.config.traffic);
                // tree pricing only when the NoC actually routes trees
                // (and the accounting is per-crossbar, matching the
                // multicast groups); otherwise the pairwise path is
                // byte-identical to a config without the flag
                let trees = cfg.tree_aware
                    && self.config.noc.multicast
                    && self.config.noc.multicast_trees
                    && self.config.traffic == TrafficMode::PerCrossbar;
                let (outcome, label) = if trees {
                    let multicast = MulticastTraffic::from_mapping(graph, mapping);
                    let outcome = optimize_placement_trees(
                        &traffic,
                        &multicast,
                        &*self.topo,
                        self.config.noc.vc_count,
                        &self.dist,
                        cfg,
                    )?;
                    (outcome, "tree-optimized")
                } else {
                    (
                        optimize_placement(&traffic, &self.dist, cfg)?,
                        "hop-optimized",
                    )
                };
                let placed = mapping.place(&outcome.placement)?;
                Ok((placed, outcome.placement, label.to_owned()))
            }
        }
    }

    /// **Stage 3 — packetize**: cut synaptic events → injection flows
    /// under the configured [`TrafficMode`].
    pub fn packetize(&self, graph: &SpikeGraph, mapping: &Mapping) -> Vec<SpikeFlow> {
        build_flows(graph, mapping, self.config.traffic)
    }

    /// **Stage 4 — simulate**: flows → interconnect statistics plus the
    /// raw delivery log, on the configured engine over the shared
    /// topology.
    ///
    /// # Errors
    ///
    /// [`CoreError::Noc`] for interconnect failures.
    pub fn simulate(
        &self,
        flows: &[SpikeFlow],
        duration_steps: u32,
    ) -> Result<(NocStats, Vec<Delivery>), CoreError> {
        let (stats, deliveries, _) = self.simulate_traced(flows, duration_steps)?;
        Ok((stats, deliveries))
    }

    /// [`MappingPipeline::simulate`], additionally returning the
    /// structured event trace when [`NocConfig::trace`] is on in the
    /// pipeline's NoC configuration (`None` when tracing is off).
    ///
    /// [`NocConfig::trace`]: neuromap_noc::config::NocConfig::trace
    ///
    /// # Errors
    ///
    /// [`CoreError::Noc`] for interconnect failures.
    pub fn simulate_traced(
        &self,
        flows: &[SpikeFlow],
        duration_steps: u32,
    ) -> Result<(NocStats, Vec<Delivery>, Option<TraceBuf>), CoreError> {
        // per-synapse flows are single-destination by construction;
        // disable multicast handling so packet counts match Eq. 7 exactly
        let mut noc_cfg = self.config.noc;
        if self.config.traffic == TrafficMode::PerSynapse {
            noc_cfg.multicast = false;
        }
        let energy = *self.config.arch.energy();
        let (stats, deliveries, trace) = match self.config.engine {
            EngineKind::CycleOracle => {
                let mut sim = CycleSim::shared(Arc::clone(&self.topo), noc_cfg, energy);
                let (stats, deliveries) = sim.run_with_duration(flows, duration_steps)?;
                (stats, deliveries, sim.take_trace())
            }
            _ => {
                let mut sim = NocSim::shared(Arc::clone(&self.topo), noc_cfg, energy);
                let (stats, deliveries) = sim.run_with_duration(flows, duration_steps)?;
                (stats, deliveries, sim.take_trace())
            }
        };
        Ok((stats, deliveries, trace))
    }

    /// Hop metrics of a flow set: `(hop-weighted packets, unicast packet
    /// count)` — every `(source, destination)` pair priced by the shared
    /// distance table.
    ///
    /// When the pipeline's NoC configuration routes multicast packets
    /// along Steiner trees ([`NocConfig::multicast_trees`] with
    /// [`NocConfig::multicast`]), the weighted component counts actual
    /// link traversals of each flow's tree instead — shared prefix hops
    /// are paid once per branch, exactly the forwards the engines
    /// perform. The unicast count is unchanged (it is the packet count
    /// a clone-per-destination NoC would inject, the paper's yardstick).
    ///
    /// [`NocConfig::multicast_trees`]: neuromap_noc::config::NocConfig::multicast_trees
    /// [`NocConfig::multicast`]: neuromap_noc::config::NocConfig::multicast
    pub fn hop_metrics(&self, flows: &[SpikeFlow]) -> (u64, u64) {
        let trees = self.config.noc.multicast && self.config.noc.multicast_trees;
        let mut weighted = 0u64;
        let mut unicast = 0u64;
        for f in flows {
            unicast += f.dst_crossbars.len() as u64;
            if trees {
                let src_router = self.topo.endpoint(f.src_crossbar);
                let dest_routers: Vec<usize> = f
                    .dst_crossbars
                    .iter()
                    .map(|&d| self.topo.endpoint(d))
                    .collect();
                let paths =
                    self.topo
                        .multicast_route(src_router, &dest_routers, self.config.noc.vc_count);
                weighted += tree_forwards(&paths);
            } else {
                for &dst in &f.dst_crossbars {
                    weighted += u64::from(self.dist.hops(f.src_crossbar, dst));
                }
            }
        }
        (weighted, unicast)
    }

    /// **Joint partition ⇄ placement co-optimization**
    /// ([`crate::coopt::co_optimize`]) over this pipeline's shared
    /// topology, distance table, and traffic mode: the swarm runs on
    /// hop-priced fitness and the placement optimizer periodically
    /// re-prices the distances it searches under, with the staged
    /// partition-then-place result as the never-worse fallback.
    ///
    /// # Errors
    ///
    /// [`CoreError::Infeasible`] when the chip cannot hold the graph;
    /// propagates configuration and optimizer errors.
    pub fn co_optimize(
        &self,
        graph: &SpikeGraph,
        cfg: &crate::coopt::CooptConfig,
    ) -> Result<crate::coopt::CooptOutcome, CoreError> {
        let problem = self.problem(graph)?;
        crate::coopt::co_optimize(&problem, &self.dist, self.config.traffic, cfg)
    }

    /// All stages: partition, place, packetize, simulate, report.
    ///
    /// # Errors
    ///
    /// Propagates partitioner errors, infeasibility
    /// ([`CoreError::Infeasible`]) and interconnect errors
    /// ([`CoreError::Noc`]).
    pub fn run(
        &self,
        graph: &SpikeGraph,
        partitioner: &dyn Partitioner,
    ) -> Result<Report, CoreError> {
        let mapping = self.partition(graph, partitioner)?;
        let (placed, _, placement_id) = self.place(graph, &mapping)?;
        self.measure(
            graph,
            placed,
            self.partition_label(partitioner),
            &placement_id,
        )
        .map(|(report, _)| report)
    }

    /// **Stage 5 — report**: evaluates an existing mapping — the
    /// measurement half of the pipeline. The report's `placement` field
    /// records `"identity"`: the mapping is measured as given, wired
    /// cluster `k` → router `k`. For a mapping produced by an explicit
    /// [`MappingPipeline::place`] call, use [`MappingPipeline::evaluate_as`]
    /// with the id that call returned so the report attributes the
    /// numbers to the right stage.
    ///
    /// # Errors
    ///
    /// [`CoreError::Hw`] if the mapping is invalid for the architecture;
    /// [`CoreError::Noc`] for interconnect failures.
    pub fn evaluate(
        &self,
        graph: &SpikeGraph,
        mapping: Mapping,
        partitioner_name: &str,
    ) -> Result<Report, CoreError> {
        self.evaluate_as(graph, mapping, partitioner_name, "identity")
    }

    /// [`MappingPipeline::evaluate`] with an explicit placement id for
    /// the report (the label [`MappingPipeline::place`] returned).
    ///
    /// # Errors
    ///
    /// Same as [`MappingPipeline::evaluate`].
    pub fn evaluate_as(
        &self,
        graph: &SpikeGraph,
        mapping: Mapping,
        partitioner_name: &str,
        placement_id: &str,
    ) -> Result<Report, CoreError> {
        self.measure(graph, mapping, partitioner_name, placement_id)
            .map(|(report, _)| report)
    }

    /// [`MappingPipeline::evaluate`], additionally returning the raw
    /// delivery log (needed for end-to-end application-accuracy studies
    /// such as the paper's §V-B heartbeat analysis).
    ///
    /// # Errors
    ///
    /// Same as [`MappingPipeline::evaluate`].
    pub fn evaluate_detailed(
        &self,
        graph: &SpikeGraph,
        mapping: Mapping,
        partitioner_name: &str,
    ) -> Result<(Report, Vec<Delivery>), CoreError> {
        self.measure(graph, mapping, partitioner_name, "identity")
    }

    /// [`MappingPipeline::evaluate`], additionally returning the
    /// structured event trace of the simulation stage when
    /// [`NocConfig::trace`] is on in the pipeline's NoC configuration
    /// (`None` when tracing is off). The trace feeds the congestion
    /// spotter ([`neuromap_noc::trace::TraceBuf::spot_congestion`]) and
    /// the Perfetto exporter.
    ///
    /// [`NocConfig::trace`]: neuromap_noc::config::NocConfig::trace
    ///
    /// # Errors
    ///
    /// Same as [`MappingPipeline::evaluate`].
    pub fn evaluate_traced(
        &self,
        graph: &SpikeGraph,
        mapping: Mapping,
        partitioner_name: &str,
    ) -> Result<(Report, Option<TraceBuf>), CoreError> {
        self.measure_traced(graph, mapping, partitioner_name, "identity")
            .map(|(report, _, trace)| (report, trace))
    }

    /// Shared measurement path behind `run`/`evaluate*`.
    fn measure(
        &self,
        graph: &SpikeGraph,
        mapping: Mapping,
        partitioner_name: &str,
        placement_id: &str,
    ) -> Result<(Report, Vec<Delivery>), CoreError> {
        self.measure_traced(graph, mapping, partitioner_name, placement_id)
            .map(|(report, deliveries, _)| (report, deliveries))
    }

    /// Measurement path that also surfaces the optional event trace.
    fn measure_traced(
        &self,
        graph: &SpikeGraph,
        mapping: Mapping,
        partitioner_name: &str,
        placement_id: &str,
    ) -> Result<(Report, Vec<Delivery>, Option<TraceBuf>), CoreError> {
        mapping.validate(&self.config.arch)?;
        let problem = self.problem(graph)?;
        let cut_spikes = problem.cut_spikes(mapping.assignment());
        let local = local_events(graph, &mapping);

        let flows = self.packetize(graph, &mapping);
        let (hop_weighted_packets, unicast) = self.hop_metrics(&flows);
        let (noc_stats, deliveries, trace) =
            self.simulate_traced(&flows, graph.duration_steps())?;

        let dim = self.config.arch.neurons_per_crossbar();
        let local_energy_pj = self.config.arch.energy().local_pj_scaled(local, dim);
        let global_energy_pj = noc_stats.global_energy_pj;

        Ok((
            Report {
                partitioner: partitioner_name.to_owned(),
                num_neurons: graph.num_neurons(),
                num_synapses: graph.num_synapses(),
                cut_spikes,
                local_events: local,
                local_energy_pj,
                global_energy_pj,
                total_energy_pj: local_energy_pj + global_energy_pj,
                avg_hops: if unicast == 0 {
                    0.0
                } else {
                    hop_weighted_packets as f64 / unicast as f64
                },
                hop_weighted_packets,
                placement: placement_id.to_owned(),
                eval_kernel: crate::eval::SwarmKernel::for_crossbars(
                    self.config.arch.num_crossbars(),
                )
                .name()
                .to_owned(),
                noc: noc_stats,
                mapping,
            },
            deliveries,
            trace,
        ))
    }
}

/// Runs the full staged pipeline for one spike graph — the one-call
/// convenience wrapper over [`MappingPipeline::run`].
///
/// # Errors
///
/// Propagates partitioner errors, infeasibility
/// ([`CoreError::Infeasible`]) and interconnect errors
/// ([`CoreError::Noc`]).
pub fn run_pipeline(
    graph: &SpikeGraph,
    partitioner: &dyn Partitioner,
    config: &PipelineConfig,
) -> Result<Report, CoreError> {
    MappingPipeline::new(config.clone()).run(graph, partitioner)
}

/// Evaluates an existing mapping (the measurement half of the pipeline) —
/// used by the exploration sweeps to avoid re-partitioning. The
/// configured placement strategy is **not** applied: the mapping is
/// measured as given.
///
/// # Errors
///
/// [`CoreError::Hw`] if the mapping is invalid for the architecture;
/// [`CoreError::Noc`] for interconnect failures.
pub fn evaluate_mapping(
    graph: &SpikeGraph,
    mapping: Mapping,
    partitioner_name: &str,
    config: &PipelineConfig,
) -> Result<Report, CoreError> {
    MappingPipeline::new(config.clone()).evaluate(graph, mapping, partitioner_name)
}

/// [`evaluate_mapping`], additionally returning the raw interconnect
/// delivery log (needed for end-to-end application-accuracy studies such
/// as the paper's §V-B heartbeat analysis).
///
/// # Errors
///
/// Same as [`evaluate_mapping`].
pub fn evaluate_mapping_detailed(
    graph: &SpikeGraph,
    mapping: Mapping,
    partitioner_name: &str,
    config: &PipelineConfig,
) -> Result<(Report, Vec<Delivery>), CoreError> {
    MappingPipeline::new(config.clone()).evaluate_detailed(graph, mapping, partitioner_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{NeutramsPartitioner, PacmanPartitioner};
    use crate::pso::{PsoConfig, PsoPartitioner};
    use neuromap_snn::spikes::SpikeTrain;

    /// Two fully connected layers of 8, ids in order; spikes every 50 steps.
    fn layered_graph() -> SpikeGraph {
        let mut synapses = Vec::new();
        for a in 0..8u32 {
            for b in 8..16u32 {
                synapses.push((a, b));
            }
        }
        let trains: Vec<SpikeTrain> = (0..16)
            .map(|i| {
                if i < 8 {
                    SpikeTrain::from_times((0..10).map(|k| k * 50 + i).collect())
                } else {
                    SpikeTrain::from_times(vec![])
                }
            })
            .collect();
        SpikeGraph::from_trains(16, synapses, trains).unwrap()
    }

    fn small_arch() -> Architecture {
        Architecture::custom(4, 8, InterconnectKind::Mesh).unwrap()
    }

    #[test]
    fn pipeline_produces_consistent_report() {
        let g = layered_graph();
        let cfg = PipelineConfig::for_arch(small_arch());
        let r = run_pipeline(&g, &PacmanPartitioner::new(), &cfg).unwrap();
        assert_eq!(r.num_neurons, 16);
        assert_eq!(r.num_synapses, 64);
        // every synaptic event is either local or cut
        assert_eq!(r.local_events + r.cut_spikes, g.total_synaptic_events());
        assert!((r.total_energy_pj - r.local_energy_pj - r.global_energy_pj).abs() < 1e-9);
    }

    #[test]
    fn engine_choice_does_not_change_the_report() {
        // end-to-end differential check: the event-driven engine and the
        // cycle-driven oracle must agree on every metric in the report,
        // under both packetization models
        let g = layered_graph();
        for traffic in [TrafficMode::PerSynapse, TrafficMode::PerCrossbar] {
            let cfg = PipelineConfig::for_arch(small_arch()).with_traffic(traffic);
            let oracle_cfg = cfg.clone().with_engine(EngineKind::CycleOracle);
            let part = PacmanPartitioner::new();
            let r_event = run_pipeline(&g, &part, &cfg).unwrap();
            let r_oracle = run_pipeline(&g, &part, &oracle_cfg).unwrap();
            assert_eq!(r_event, r_oracle, "{traffic:?}");
            assert_eq!(
                r_event.noc.digest().unwrap(),
                r_oracle.noc.digest().unwrap(),
                "{traffic:?}"
            );
        }
    }

    #[test]
    fn pso_energy_not_worse_than_neutrams() {
        let g = layered_graph();
        let cfg = PipelineConfig::for_arch(small_arch());
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 30,
            iterations: 40,
            ..PsoConfig::default()
        });
        let r_pso = run_pipeline(&g, &pso, &cfg).unwrap();
        let r_rr = run_pipeline(&g, &NeutramsPartitioner::new(), &cfg).unwrap();
        assert!(
            r_pso.global_energy_pj <= r_rr.global_energy_pj,
            "pso {} !<= neutrams {}",
            r_pso.global_energy_pj,
            r_rr.global_energy_pj
        );
        assert!(r_pso.cut_spikes <= r_rr.cut_spikes);
    }

    #[test]
    fn flows_only_for_remote_targets() {
        let g = layered_graph();
        // all neurons on one crossbar → no flows
        let m = Mapping::from_assignment(vec![0; 16], 1).unwrap();
        assert!(build_flows(&g, &m, TrafficMode::PerCrossbar).is_empty());
        assert!(build_flows(&g, &m, TrafficMode::PerSynapse).is_empty());
        // split layers → every spiking neuron has one remote destination
        let assign: Vec<u32> = (0..16).map(|i| (i / 8) as u32).collect();
        let m = Mapping::from_assignment(assign, 2).unwrap();
        let flows = build_flows(&g, &m, TrafficMode::PerCrossbar);
        assert_eq!(flows.len(), 80); // 8 neurons × 10 spikes
        assert!(flows.iter().all(|f| f.dst_crossbars == vec![1]));
        // per-synapse: × 8 synapses per neuron
        let flows = build_flows(&g, &m, TrafficMode::PerSynapse);
        assert_eq!(flows.len(), 640);
    }

    #[test]
    fn local_events_complement_cut() {
        let g = layered_graph();
        let assign: Vec<u32> = (0..16).map(|i| (i % 4) as u32).collect();
        let m = Mapping::from_assignment(assign.clone(), 4).unwrap();
        let p = PartitionProblem::new(&g, 4, 8).unwrap();
        assert_eq!(
            local_events(&g, &m) + p.cut_spikes(&assign),
            g.total_synaptic_events()
        );
    }

    #[test]
    fn topology_builder_honors_interconnect() {
        for (kind, expect) in [
            (InterconnectKind::Mesh, "mesh"),
            (InterconnectKind::Tree { arity: 4 }, "tree"),
            (InterconnectKind::Torus, "torus"),
            (InterconnectKind::Star, "star"),
            (
                InterconnectKind::Hier {
                    chip_cols: 2,
                    chip_rows: 1,
                    link_latency: 4,
                    link_width: 2,
                },
                "hier",
            ),
        ] {
            let arch = Architecture::custom(4, 8, kind).unwrap();
            let topo = build_topology(&arch);
            assert!(
                topo.name().starts_with(expect),
                "{} for {kind:?}",
                topo.name()
            );
            assert_eq!(topo.num_crossbars(), 4);
        }
    }

    #[test]
    fn hier_pipeline_prices_chip_boundaries() {
        let g = layered_graph();
        let arch = Architecture::custom(
            8,
            8,
            InterconnectKind::Hier {
                chip_cols: 2,
                chip_rows: 1,
                link_latency: 4,
                link_width: 2,
            },
        )
        .unwrap();
        let pipeline = MappingPipeline::new(PipelineConfig::for_arch(arch));
        assert!(
            pipeline.topology().name().starts_with("hier 2x1"),
            "{}",
            pipeline.topology().name()
        );
        // chip-major layout: crossbars 0..4 on chip 0 (a 2x2 mesh),
        // 4..8 on chip 1; the distance table is the fabric's weighted one
        assert_eq!(pipeline.distances().hops(0, 3), 2); // on-chip diagonal
        assert_eq!(pipeline.distances().hops(0, 4), 2 - 1 + 4 * 2); // seam priced 4×2
        let assign: Vec<u32> = (0..16).map(|i| if i < 8 { 0 } else { 4 }).collect();
        let m = Mapping::from_assignment(assign, 8).unwrap();
        let r = pipeline.evaluate(&g, m, "manual").unwrap();
        assert_eq!(r.hop_weighted_packets, 9 * r.cut_spikes);
        assert!((r.avg_hops - 9.0).abs() < 1e-12);
        // the report names the swarm-eval kernel for this crossbar count
        assert_eq!(r.eval_kernel, "byte-tile");
    }

    #[test]
    fn staged_identity_run_equals_the_wrapper() {
        let g = layered_graph();
        let cfg = PipelineConfig::for_arch(small_arch());
        let pipeline = MappingPipeline::new(cfg.clone());
        let part = PacmanPartitioner::new();
        let staged = pipeline.run(&g, &part).unwrap();
        let wrapped = run_pipeline(&g, &part, &cfg).unwrap();
        assert_eq!(staged, wrapped);
        assert_eq!(staged.placement, "identity");
        // the stages compose to the same mapping the wrapper reports
        let mapping = pipeline.partition(&g, &part).unwrap();
        let (placed, placement, id) = pipeline.place(&g, &mapping).unwrap();
        assert!(placement.is_identity());
        assert_eq!(id, "identity");
        assert_eq!(placed, mapping);
        assert_eq!(&placed, &staged.mapping);
    }

    #[test]
    fn report_hop_metrics_follow_the_distance_table() {
        let g = layered_graph();
        let cfg = PipelineConfig::for_arch(small_arch());
        let pipeline = MappingPipeline::new(cfg);
        // split layers across opposite corners of the 2x2 mesh:
        // crossbars 0 and 3 are 2 hops apart
        let assign: Vec<u32> = (0..16).map(|i| if i < 8 { 0 } else { 3 }).collect();
        let m = Mapping::from_assignment(assign, 4).unwrap();
        let r = pipeline.evaluate(&g, m, "manual").unwrap();
        assert_eq!(pipeline.distances().hops(0, 3), 2);
        assert_eq!(r.hop_weighted_packets, 2 * r.cut_spikes);
        assert!((r.avg_hops - 2.0).abs() < 1e-12);
        // adjacent crossbars: every packet travels exactly 1 hop
        let assign: Vec<u32> = (0..16).map(|i| if i < 8 { 0 } else { 1 }).collect();
        let m = Mapping::from_assignment(assign, 4).unwrap();
        let r = pipeline.evaluate(&g, m, "manual").unwrap();
        assert_eq!(r.hop_weighted_packets, r.cut_spikes);
        assert!((r.avg_hops - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hop_optimized_placement_improves_a_scattered_mapping() {
        use crate::place::PlaceConfig;
        // chain traffic over a 3x3 mesh, clusters deliberately scattered:
        // cluster k talks to cluster k+1 but sits far from it
        let n = 18u32;
        let mut synapses = Vec::new();
        for i in 0..n {
            synapses.push((i, (i + 2) % n));
        }
        let trains: Vec<SpikeTrain> = (0..n)
            .map(|i| SpikeTrain::from_times((0..6).map(|k| k * 60 + (i % 7)).collect()))
            .collect();
        let g = SpikeGraph::from_trains(n, synapses, trains).unwrap();
        let arch = Architecture::custom(9, 2, InterconnectKind::Mesh).unwrap();
        let identity = MappingPipeline::new(PipelineConfig::for_arch(arch.clone()));
        let optimized = MappingPipeline::new(
            PipelineConfig::for_arch(arch)
                .with_placement(PlacementStrategy::HopOptimized(PlaceConfig::default())),
        );
        // a fixed scattered mapping, same for both pipelines
        let assign: Vec<u32> = (0..n).map(|i| i.wrapping_mul(4) % 9).collect();
        let m = Mapping::from_assignment(assign, 9).unwrap();
        let (id_m, _, id_label) = identity.place(&g, &m).unwrap();
        let (opt_m, opt_p, opt_id) = optimized.place(&g, &m).unwrap();
        assert_eq!(opt_id, "hop-optimized");
        assert_eq!(opt_m, m.place(&opt_p).unwrap());
        let r_id = identity.evaluate_as(&g, id_m, "manual", &id_label).unwrap();
        let r_opt = optimized.evaluate_as(&g, opt_m, "manual", &opt_id).unwrap();
        assert_eq!(r_id.placement, "identity");
        assert_eq!(r_opt.placement, "hop-optimized");
        // packet totals are placement-invariant; hop-weighted cost drops
        assert_eq!(r_id.cut_spikes, r_opt.cut_spikes);
        assert!(
            r_opt.hop_weighted_packets < r_id.hop_weighted_packets,
            "placement must reduce hop-weighted packets: {} !< {}",
            r_opt.hop_weighted_packets,
            r_id.hop_weighted_packets
        );
        assert!(r_opt.global_energy_pj < r_id.global_energy_pj);
    }

    #[test]
    fn shallow_torus_with_vcs_agrees_across_engines() {
        // a 16-crossbar torus at realistic FIFO depth 2 with 2 VCs: the
        // staged pipeline must produce byte-identical reports on both
        // engines (this is the configuration class the deep-FIFO
        // workaround used to paper over)
        let mut synapses = Vec::new();
        for a in 0..16u32 {
            synapses.push((a, (a + 5) % 16));
            synapses.push((a, (a + 11) % 16));
        }
        let trains: Vec<SpikeTrain> = (0..16)
            .map(|i| SpikeTrain::from_times((0..6).map(|k| k * 40 + (i % 3)).collect()))
            .collect();
        let g = SpikeGraph::from_trains(16, synapses, trains).unwrap();
        let arch = Architecture::custom(16, 1, InterconnectKind::Torus).unwrap();
        let noc = NocConfig {
            buffer_depth: 2,
            vc_count: 2,
            ..NocConfig::default()
        };
        let cfg = PipelineConfig::for_arch(arch)
            .with_traffic(TrafficMode::PerCrossbar)
            .with_noc(noc);
        let oracle_cfg = cfg.clone().with_engine(EngineKind::CycleOracle);
        let assign: Vec<u32> = (0..16).collect();
        let m = Mapping::from_assignment(assign, 16).unwrap();
        let r_ev = MappingPipeline::new(cfg)
            .evaluate(&g, m.clone(), "manual")
            .unwrap();
        let r_or = MappingPipeline::new(oracle_cfg)
            .evaluate(&g, m, "manual")
            .unwrap();
        assert_eq!(r_ev, r_or);
        assert_eq!(r_ev.noc.digest().unwrap(), r_or.noc.digest().unwrap());
        assert_eq!(r_ev.noc.per_vc.len(), 2);
        assert!(r_ev.noc.delivered > 0);
    }

    #[test]
    fn with_noc_shares_the_topology() {
        let g = layered_graph();
        let cfg = PipelineConfig::for_arch(small_arch());
        let pipeline = MappingPipeline::new(cfg.clone());
        let mut noc = cfg.noc;
        noc.buffer_depth = 7;
        let swept = pipeline.with_noc(noc);
        assert_eq!(swept.config().noc.buffer_depth, 7);
        // same underlying router graph (Arc identity, not a rebuild)
        assert!(std::ptr::eq(pipeline.topology(), swept.topology()));
        // and the swept pipeline still evaluates correctly
        let assign: Vec<u32> = (0..16).map(|i| (i / 8) as u32).collect();
        let m = Mapping::from_assignment(assign, 4).unwrap();
        let r = swept.evaluate(&g, m, "manual").unwrap();
        assert_eq!(r.noc.delivered, r.cut_spikes);
    }

    #[test]
    fn infeasible_arch_rejected() {
        let g = layered_graph();
        let arch = Architecture::custom(2, 4, InterconnectKind::Mesh).unwrap(); // 8 < 16
        let cfg = PipelineConfig::for_arch(arch);
        assert!(matches!(
            run_pipeline(&g, &PacmanPartitioner::new(), &cfg),
            Err(CoreError::Infeasible { .. })
        ));
    }
}
