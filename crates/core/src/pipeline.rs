//! The end-to-end systematic framework of the paper's Figure 4:
//!
//! ```text
//! application → SNN simulation → spike graph → partitioner → mapping
//!            → interconnect (Noxim++-class) simulation → report
//! ```
//!
//! [`run_pipeline`] drives a [`Partitioner`] over a [`SpikeGraph`] for a
//! given [`Architecture`], simulates the resulting global traffic on the
//! architecture's interconnect, and assembles the [`Report`] with every
//! metric the paper's evaluation uses.

use crate::error::CoreError;
use crate::graph::SpikeGraph;
use crate::partition::{PartitionProblem, Partitioner};
use neuromap_hw::arch::{Architecture, InterconnectKind};
use neuromap_hw::mapping::Mapping;
use neuromap_noc::config::NocConfig;
use neuromap_noc::sim::{oracle::CycleSim, EngineKind, NocSim};
use neuromap_noc::stats::NocStats;
use neuromap_noc::topology::{Mesh2D, NocTree, Star, Topology, Torus};
use neuromap_noc::traffic::SpikeFlow;
use serde::{Deserialize, Serialize};

/// How global synaptic events become interconnect packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TrafficMode {
    /// One packet per spike **per cut synapse** — the time-multiplexing
    /// model of the paper's Eq. 7 ("spikes(k1,k2) = Σ T_{i,j}"): every
    /// global synapse is an independently multiplexed connection. This is
    /// the accounting under which the paper's Fig. 5 energies and the PSO
    /// objective agree.
    #[default]
    PerSynapse,
    /// One AER packet per spike per *distinct* destination crossbar (the
    /// destination crossbar fans the address out to its local synapses) —
    /// the hardware-AER extension; combine with [`NocConfig::multicast`]
    /// for single-packet multicast delivery.
    PerCrossbar,
}

/// Pipeline parameters: the target chip and the interconnect configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target architecture (crossbars + interconnect + energy model).
    pub arch: Architecture,
    /// Interconnect simulation parameters.
    pub noc: NocConfig,
    /// Packetization model for global synaptic events.
    pub traffic: TrafficMode,
    /// Which interconnect engine simulates the traffic. The engines are
    /// output-identical (differentially verified); the cycle-driven
    /// oracle exists for cross-checks and debugging.
    pub engine: EngineKind,
}

impl PipelineConfig {
    /// CxQuad with default NoC parameters.
    pub fn cxquad() -> Self {
        Self::for_arch(Architecture::cxquad())
    }

    /// A custom architecture with default NoC parameters.
    pub fn for_arch(arch: Architecture) -> Self {
        Self {
            arch,
            noc: NocConfig::default(),
            traffic: TrafficMode::default(),
            engine: EngineKind::default(),
        }
    }

    /// Selects the packetization model (builder style).
    pub fn with_traffic(mut self, traffic: TrafficMode) -> Self {
        self.traffic = traffic;
        self
    }

    /// Selects the interconnect engine (builder style).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }
}

/// Everything the paper measures for one (application, partitioner,
/// architecture) combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Partitioner identifier.
    pub partitioner: String,
    /// Neurons in the graph.
    pub num_neurons: u32,
    /// Synapses in the graph.
    pub num_synapses: usize,
    /// Eq. 8: spikes crossing crossbar boundaries (per cut synapse).
    pub cut_spikes: u64,
    /// Synaptic events served inside crossbars (local synapses).
    pub local_events: u64,
    /// Crossbar-local energy in pJ (scaled by crossbar dimension).
    pub local_energy_pj: f64,
    /// Interconnect energy in pJ (from the NoC simulation).
    pub global_energy_pj: f64,
    /// Local + global energy in pJ.
    pub total_energy_pj: f64,
    /// Full interconnect statistics (latency, throughput, disorder, ISI).
    pub noc: NocStats,
    /// The neuron → crossbar mapping that produced these numbers.
    pub mapping: Mapping,
}

/// Builds the concrete router graph for an architecture's interconnect
/// descriptor.
pub fn build_topology(arch: &Architecture) -> Box<dyn Topology> {
    let c = arch.num_crossbars();
    match arch.interconnect() {
        InterconnectKind::Mesh => Box::new(Mesh2D::for_crossbars(c)),
        InterconnectKind::Tree { arity } => Box::new(NocTree::new(c, arity)),
        InterconnectKind::Torus => Box::new(Torus::for_crossbars(c)),
        InterconnectKind::Star => Box::new(Star::new(c)),
        // `InterconnectKind` is non-exhaustive; route future variants to the
        // most common neuromorphic fabric
        _ => Box::new(Mesh2D::for_crossbars(c)),
    }
}

/// Expands a partitioned spike graph into the interconnect's injection
/// schedule under the chosen [`TrafficMode`]:
///
/// * [`TrafficMode::PerSynapse`] — one unicast flow per spike per cut
///   synapse (paper Eq. 7);
/// * [`TrafficMode::PerCrossbar`] — one flow per spike carrying the
///   deduplicated destination-crossbar set (AER; multicast-capable).
pub fn build_flows(graph: &SpikeGraph, mapping: &Mapping, mode: TrafficMode) -> Vec<SpikeFlow> {
    let mut flows = Vec::new();
    for i in 0..graph.num_neurons() {
        if graph.count(i) == 0 {
            continue;
        }
        let home = mapping.crossbar_of(i);
        match mode {
            TrafficMode::PerSynapse => {
                let remote: Vec<u32> = graph
                    .targets(i)
                    .iter()
                    .map(|&j| mapping.crossbar_of(j))
                    .filter(|&c| c != home)
                    .collect();
                if remote.is_empty() {
                    continue;
                }
                for &t in graph.train(i).times() {
                    for &dst in &remote {
                        flows.push(SpikeFlow::unicast(i, home, dst, t));
                    }
                }
            }
            TrafficMode::PerCrossbar => {
                let mut dsts: Vec<u32> = graph
                    .targets(i)
                    .iter()
                    .map(|&j| mapping.crossbar_of(j))
                    .filter(|&c| c != home)
                    .collect();
                dsts.sort_unstable();
                dsts.dedup();
                if dsts.is_empty() {
                    continue;
                }
                for &t in graph.train(i).times() {
                    flows.push(SpikeFlow {
                        source_neuron: i,
                        src_crossbar: home,
                        dst_crossbars: dsts.clone(),
                        send_step: t,
                    });
                }
            }
        }
    }
    flows
}

/// Counts the synaptic events served *inside* crossbars under a mapping:
/// `Σ_{(i,j) ∈ S, cb(i) = cb(j)} |T_i|`.
pub fn local_events(graph: &SpikeGraph, mapping: &Mapping) -> u64 {
    let mut total = 0u64;
    for i in 0..graph.num_neurons() {
        let c = graph.count(i) as u64;
        if c == 0 {
            continue;
        }
        let home = mapping.crossbar_of(i);
        let local = graph
            .targets(i)
            .iter()
            .filter(|&&j| mapping.crossbar_of(j) == home)
            .count() as u64;
        total += c * local;
    }
    total
}

/// Runs partitioning + interconnect simulation for one spike graph.
///
/// # Errors
///
/// Propagates partitioner errors, infeasibility
/// ([`CoreError::Infeasible`]) and interconnect errors
/// ([`CoreError::Noc`]).
pub fn run_pipeline(
    graph: &SpikeGraph,
    partitioner: &dyn Partitioner,
    config: &PipelineConfig,
) -> Result<Report, CoreError> {
    let problem = PartitionProblem::new(
        graph,
        config.arch.num_crossbars(),
        config.arch.neurons_per_crossbar(),
    )?;
    let mapping = partitioner.partition(&problem)?;
    evaluate_mapping(graph, mapping, partitioner.name(), config)
}

/// Evaluates an existing mapping (the measurement half of the pipeline) —
/// used by the exploration sweeps to avoid re-partitioning.
///
/// # Errors
///
/// [`CoreError::Hw`] if the mapping is invalid for the architecture;
/// [`CoreError::Noc`] for interconnect failures.
pub fn evaluate_mapping(
    graph: &SpikeGraph,
    mapping: Mapping,
    partitioner_name: &str,
    config: &PipelineConfig,
) -> Result<Report, CoreError> {
    evaluate_mapping_detailed(graph, mapping, partitioner_name, config).map(|(r, _)| r)
}

/// [`evaluate_mapping`], additionally returning the raw interconnect
/// delivery log (needed for end-to-end application-accuracy studies such
/// as the paper's §V-B heartbeat analysis).
///
/// # Errors
///
/// Same as [`evaluate_mapping`].
pub fn evaluate_mapping_detailed(
    graph: &SpikeGraph,
    mapping: Mapping,
    partitioner_name: &str,
    config: &PipelineConfig,
) -> Result<(Report, Vec<neuromap_noc::stats::Delivery>), CoreError> {
    mapping.validate(&config.arch)?;
    let problem = PartitionProblem::new(
        graph,
        config.arch.num_crossbars(),
        config.arch.neurons_per_crossbar(),
    )?;
    let cut_spikes = problem.cut_spikes(mapping.assignment());
    let local = local_events(graph, &mapping);

    let flows = build_flows(graph, &mapping, config.traffic);
    let topo = build_topology(&config.arch);
    // per-synapse flows are single-destination by construction; disable
    // multicast handling so packet counts match Eq. 7 exactly
    let mut noc_cfg = config.noc;
    if config.traffic == TrafficMode::PerSynapse {
        noc_cfg.multicast = false;
    }
    let (noc_stats, deliveries) = match config.engine {
        EngineKind::CycleOracle => CycleSim::new(topo, noc_cfg, *config.arch.energy())
            .run_with_duration(&flows, graph.duration_steps())?,
        _ => NocSim::new(topo, noc_cfg, *config.arch.energy())
            .run_with_duration(&flows, graph.duration_steps())?,
    };

    let dim = config.arch.neurons_per_crossbar();
    let local_energy_pj = config.arch.energy().local_pj_scaled(local, dim);
    let global_energy_pj = noc_stats.global_energy_pj;

    Ok((
        Report {
            partitioner: partitioner_name.to_owned(),
            num_neurons: graph.num_neurons(),
            num_synapses: graph.num_synapses(),
            cut_spikes,
            local_events: local,
            local_energy_pj,
            global_energy_pj,
            total_energy_pj: local_energy_pj + global_energy_pj,
            noc: noc_stats,
            mapping,
        },
        deliveries,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{NeutramsPartitioner, PacmanPartitioner};
    use crate::pso::{PsoConfig, PsoPartitioner};
    use neuromap_snn::spikes::SpikeTrain;

    /// Two fully connected layers of 8, ids in order; spikes every 50 steps.
    fn layered_graph() -> SpikeGraph {
        let mut synapses = Vec::new();
        for a in 0..8u32 {
            for b in 8..16u32 {
                synapses.push((a, b));
            }
        }
        let trains: Vec<SpikeTrain> = (0..16)
            .map(|i| {
                if i < 8 {
                    SpikeTrain::from_times((0..10).map(|k| k * 50 + i).collect())
                } else {
                    SpikeTrain::from_times(vec![])
                }
            })
            .collect();
        SpikeGraph::from_trains(16, synapses, trains).unwrap()
    }

    fn small_arch() -> Architecture {
        Architecture::custom(4, 8, InterconnectKind::Mesh).unwrap()
    }

    #[test]
    fn pipeline_produces_consistent_report() {
        let g = layered_graph();
        let cfg = PipelineConfig::for_arch(small_arch());
        let r = run_pipeline(&g, &PacmanPartitioner::new(), &cfg).unwrap();
        assert_eq!(r.num_neurons, 16);
        assert_eq!(r.num_synapses, 64);
        // every synaptic event is either local or cut
        assert_eq!(r.local_events + r.cut_spikes, g.total_synaptic_events());
        assert!((r.total_energy_pj - r.local_energy_pj - r.global_energy_pj).abs() < 1e-9);
    }

    #[test]
    fn engine_choice_does_not_change_the_report() {
        // end-to-end differential check: the event-driven engine and the
        // cycle-driven oracle must agree on every metric in the report,
        // under both packetization models
        let g = layered_graph();
        for traffic in [TrafficMode::PerSynapse, TrafficMode::PerCrossbar] {
            let cfg = PipelineConfig::for_arch(small_arch()).with_traffic(traffic);
            let oracle_cfg = cfg.clone().with_engine(EngineKind::CycleOracle);
            let part = PacmanPartitioner::new();
            let r_event = run_pipeline(&g, &part, &cfg).unwrap();
            let r_oracle = run_pipeline(&g, &part, &oracle_cfg).unwrap();
            assert_eq!(r_event, r_oracle, "{traffic:?}");
            assert_eq!(r_event.noc.digest(), r_oracle.noc.digest(), "{traffic:?}");
        }
    }

    #[test]
    fn pso_energy_not_worse_than_neutrams() {
        let g = layered_graph();
        let cfg = PipelineConfig::for_arch(small_arch());
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 30,
            iterations: 40,
            ..PsoConfig::default()
        });
        let r_pso = run_pipeline(&g, &pso, &cfg).unwrap();
        let r_rr = run_pipeline(&g, &NeutramsPartitioner::new(), &cfg).unwrap();
        assert!(
            r_pso.global_energy_pj <= r_rr.global_energy_pj,
            "pso {} !<= neutrams {}",
            r_pso.global_energy_pj,
            r_rr.global_energy_pj
        );
        assert!(r_pso.cut_spikes <= r_rr.cut_spikes);
    }

    #[test]
    fn flows_only_for_remote_targets() {
        let g = layered_graph();
        // all neurons on one crossbar → no flows
        let m = Mapping::from_assignment(vec![0; 16], 1).unwrap();
        assert!(build_flows(&g, &m, TrafficMode::PerCrossbar).is_empty());
        assert!(build_flows(&g, &m, TrafficMode::PerSynapse).is_empty());
        // split layers → every spiking neuron has one remote destination
        let assign: Vec<u32> = (0..16).map(|i| (i / 8) as u32).collect();
        let m = Mapping::from_assignment(assign, 2).unwrap();
        let flows = build_flows(&g, &m, TrafficMode::PerCrossbar);
        assert_eq!(flows.len(), 80); // 8 neurons × 10 spikes
        assert!(flows.iter().all(|f| f.dst_crossbars == vec![1]));
        // per-synapse: × 8 synapses per neuron
        let flows = build_flows(&g, &m, TrafficMode::PerSynapse);
        assert_eq!(flows.len(), 640);
    }

    #[test]
    fn local_events_complement_cut() {
        let g = layered_graph();
        let assign: Vec<u32> = (0..16).map(|i| (i % 4) as u32).collect();
        let m = Mapping::from_assignment(assign.clone(), 4).unwrap();
        let p = PartitionProblem::new(&g, 4, 8).unwrap();
        assert_eq!(
            local_events(&g, &m) + p.cut_spikes(&assign),
            g.total_synaptic_events()
        );
    }

    #[test]
    fn topology_builder_honors_interconnect() {
        for (kind, expect) in [
            (InterconnectKind::Mesh, "mesh"),
            (InterconnectKind::Tree { arity: 4 }, "tree"),
            (InterconnectKind::Torus, "torus"),
            (InterconnectKind::Star, "star"),
        ] {
            let arch = Architecture::custom(4, 8, kind).unwrap();
            let topo = build_topology(&arch);
            assert!(
                topo.name().starts_with(expect),
                "{} for {kind:?}",
                topo.name()
            );
            assert_eq!(topo.num_crossbars(), 4);
        }
    }

    #[test]
    fn infeasible_arch_rejected() {
        let g = layered_graph();
        let arch = Architecture::custom(2, 4, InterconnectKind::Mesh).unwrap(); // 8 < 16
        let cfg = PipelineConfig::for_arch(arch);
        assert!(matches!(
            run_pipeline(&g, &PacmanPartitioner::new(), &cfg),
            Err(CoreError::Infeasible { .. })
        ));
    }
}
