//! Greedy single-neuron refinement of a partition.
//!
//! A best-improvement hill climber over the same objectives as the PSO:
//! each pass visits every neuron and applies the best capacity-feasible
//! migration that lowers the cost, until a pass makes no progress or the
//! pass budget is exhausted. Used as the PSO's optional *polish* stage —
//! it closes the gap between a small laptop swarm and the paper's
//! 1000-particle × 100-iteration cloud runs — and as a standalone local
//! optimizer.
//!
//! Candidate moves are priced by the shared incremental engine
//! ([`crate::eval::EvalEngine`]) in O(deg) each, for both the per-synapse
//! (Eq. 8) and the multicast-aware packet objective — no full Eq. 8
//! re-evaluation anywhere in the loop.

use crate::eval::EvalEngine;
use crate::partition::{FitnessKind, PartitionProblem};

/// Refines `assignment` in place; returns the final cost.
///
/// The assignment must be feasible on entry (capacity-respecting); it
/// stays feasible throughout.
///
/// # Panics
///
/// Panics if `assignment` has the wrong length or is infeasible.
pub fn refine(
    problem: &PartitionProblem<'_>,
    kind: FitnessKind,
    assignment: &mut [u32],
    max_passes: u32,
) -> u64 {
    assert!(
        problem.is_feasible(assignment),
        "refine requires a feasible starting assignment"
    );
    let engine = EvalEngine::new(*problem, kind);
    let mut state = engine.init(assignment);
    let n = assignment.len();
    let c = problem.num_crossbars();
    let cap = problem.capacity();
    let mut occ = vec![0u32; c];
    for &k in assignment.iter() {
        occ[k as usize] += 1;
    }

    for _ in 0..max_passes {
        let mut improved = false;
        for i in 0..n {
            let from = assignment[i];
            let mut best: Option<(u32, i64)> = None;
            for t in 0..c as u32 {
                if t == from || occ[t as usize] >= cap {
                    continue;
                }
                let d = engine.move_delta(&state, assignment, i, t);
                if d < 0 && best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((t, d));
                }
            }
            if let Some((t, d)) = best {
                occ[from as usize] -= 1;
                occ[t as usize] += 1;
                engine.apply_priced_move(&mut state, assignment, i, t, d);
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    debug_assert_eq!(state.cost(), problem.cost(kind, assignment));
    state.cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_graph(n: u32, edges: usize, seed: u64) -> SpikeGraph {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let synapses: Vec<(u32, u32)> = (0..edges)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(0..12)).collect();
        SpikeGraph::from_parts(n, synapses, counts).expect("valid graph")
    }

    #[test]
    fn refine_never_worsens() {
        for seed in 0..5 {
            let g = random_graph(24, 90, seed);
            let p = PartitionProblem::new(&g, 4, 8).unwrap();
            for kind in [FitnessKind::CutSpikes, FitnessKind::CutPackets] {
                let mut a: Vec<u32> = (0..24).map(|i| i % 4).collect();
                let before = p.cost(kind, &a);
                let after = refine(&p, kind, &mut a, 10);
                assert!(
                    after <= before,
                    "{kind:?} seed {seed}: {after} !<= {before}"
                );
                assert!(p.is_feasible(&a));
                assert_eq!(after, p.cost(kind, &a), "incremental cost drifted");
            }
        }
    }

    #[test]
    fn refine_finds_cluster_structure() {
        // two cliques split across crossbars round-robin: refinement should
        // untangle them completely
        let mut synapses = Vec::new();
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a != b {
                    synapses.push((a, b));
                    synapses.push((a + 6, b + 6));
                }
            }
        }
        let g = SpikeGraph::from_parts(12, synapses, vec![10; 12]).unwrap();
        // one slot of slack per crossbar lets single-neuron migrations
        // rotate the cliques apart (exact-fit instances have no feasible
        // single moves at all — a structural property of migration-only
        // local search)
        let p = PartitionProblem::new(&g, 2, 7).unwrap();
        let mut a: Vec<u32> = (0..12).map(|i| i % 2).collect();
        let cost = refine(&p, FitnessKind::CutSpikes, &mut a, 20);
        assert_eq!(cost, 0, "cliques fit entirely on their own crossbars");
    }

    #[test]
    fn packet_refinement_clusters_targets() {
        // one hub firing into 8 targets; packets minimized by pulling all
        // targets onto as few crossbars as possible
        let synapses: Vec<(u32, u32)> = (1..9).map(|j| (0, j)).collect();
        let g = SpikeGraph::from_parts(9, synapses, vec![100, 0, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        let p = PartitionProblem::new(&g, 3, 5).unwrap();
        // hub + 4 targets on crossbar 0 (full), 3 on crossbar 1, the last
        // alone on crossbar 2 — the lone straggler is a strictly improving
        // migration onto crossbar 1
        let mut a: Vec<u32> = vec![0, 0, 0, 0, 0, 1, 1, 1, 2];
        let before = p.cut_packets(&a);
        assert_eq!(before, 200);
        let cost = refine(&p, FitnessKind::CutPackets, &mut a, 20);
        // best reachable: 100 spikes × 1 remote crossbar
        assert_eq!(cost, 100);
    }

    #[test]
    fn self_loops_handled() {
        let g = SpikeGraph::from_parts(4, vec![(0, 0), (0, 1), (2, 3)], vec![5, 1, 3, 0]).unwrap();
        let p = PartitionProblem::new(&g, 2, 2).unwrap();
        for kind in [FitnessKind::CutSpikes, FitnessKind::CutPackets] {
            let mut a = vec![0, 1, 0, 1];
            let after = refine(&p, kind, &mut a, 10);
            assert_eq!(after, p.cost(kind, &a));
        }
    }

    #[test]
    fn duplicate_self_loops_tracked_exactly() {
        // regression: a neuron with TWO self-loop synapses — the packet
        // bookkeeping must move both when the neuron migrates
        let g =
            SpikeGraph::from_parts(2, vec![(0, 0), (0, 1), (1, 0), (0, 0)], vec![1, 1]).unwrap();
        let p = PartitionProblem::new(&g, 3, 2).unwrap();
        let mut a = vec![0, 1];
        let after = refine(&p, FitnessKind::CutPackets, &mut a, 4);
        assert_eq!(after, p.cut_packets(&a), "incremental cost must not drift");
        // optimum co-locates both neurons: zero packets
        assert_eq!(after, 0);
    }

    #[test]
    fn refine_handles_the_multi_word_envelope() {
        // 96 crossbars (2 mask words): the incremental packet tallies and
        // the greedy loop must agree with a scalar recompute throughout
        let g = random_graph(96, 300, 9);
        let p = PartitionProblem::new(&g, 96, 2).unwrap();
        for kind in [FitnessKind::CutSpikes, FitnessKind::CutPackets] {
            let mut a: Vec<u32> = (0..96).map(|i| i % 96).collect();
            let before = p.cost(kind, &a);
            let after = refine(&p, kind, &mut a, 6);
            assert!(after <= before, "{kind:?}");
            assert!(p.is_feasible(&a), "{kind:?}");
            assert_eq!(after, p.cost(kind, &a), "{kind:?} drifted");
        }
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn infeasible_start_rejected() {
        let g = random_graph(6, 10, 1);
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let mut a = vec![0, 0, 0, 0, 0, 0]; // over capacity
        let _ = refine(&p, FitnessKind::CutSpikes, &mut a, 1);
    }
}
