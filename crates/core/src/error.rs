use std::error::Error;
use std::fmt;

/// Error type for partitioning and pipeline execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The SNN does not fit: `neurons > num_crossbars × capacity`.
    Infeasible {
        /// Neurons to place.
        neurons: u32,
        /// Crossbars available.
        crossbars: usize,
        /// Capacity of each.
        capacity: u32,
    },
    /// A graph construction argument was inconsistent.
    InvalidGraph(String),
    /// A partitioner configuration parameter is out of domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value, formatted.
        value: String,
    },
    /// Error from the hardware model.
    Hw(neuromap_hw::HwError),
    /// Error from the interconnect simulator.
    Noc(neuromap_noc::NocError),
    /// Error from the SNN simulator.
    Snn(neuromap_snn::SnnError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Infeasible {
                neurons,
                crossbars,
                capacity,
            } => write!(
                f,
                "{neurons} neurons cannot fit on {crossbars} crossbars of capacity {capacity}"
            ),
            CoreError::InvalidGraph(msg) => write!(f, "invalid spike graph: {msg}"),
            CoreError::InvalidParameter { name, value } => {
                write!(f, "invalid value `{value}` for parameter `{name}`")
            }
            CoreError::Hw(e) => write!(f, "hardware model: {e}"),
            CoreError::Noc(e) => write!(f, "interconnect: {e}"),
            CoreError::Snn(e) => write!(f, "snn simulation: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Hw(e) => Some(e),
            CoreError::Noc(e) => Some(e),
            CoreError::Snn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<neuromap_hw::HwError> for CoreError {
    fn from(e: neuromap_hw::HwError) -> Self {
        CoreError::Hw(e)
    }
}

impl From<neuromap_noc::NocError> for CoreError {
    fn from(e: neuromap_noc::NocError) -> Self {
        CoreError::Noc(e)
    }
}

impl From<neuromap_snn::SnnError> for CoreError {
    fn from(e: neuromap_snn::SnnError) -> Self {
        CoreError::Snn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_message_names_numbers() {
        let e = CoreError::Infeasible {
            neurons: 100,
            crossbars: 2,
            capacity: 10,
        };
        let m = e.to_string();
        assert!(m.contains("100") && m.contains('2') && m.contains("10"));
    }

    #[test]
    fn source_chains() {
        let e = CoreError::from(neuromap_hw::HwError::Config("x".into()));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
