//! The spike graph: a trained SNN annotated with spike traffic.
//!
//! Paper §III: "The SNN can be represented as a graph G = (A, S) … each
//! synapse s_{i,j} is a tuple ⟨a_i, a_j, T_{i,j}⟩ where T_{i,j} are the
//! spike times of the presynaptic neuron a_i. This graph represents the
//! initial specification of a trained SNN … generated from CARLsim."
//!
//! Here the graph is generated from a `neuromap-snn` [`Simulator`] run via
//! [`SpikeGraph::from_record`], or built directly with
//! [`SpikeGraph::from_parts`] for synthetic studies. Spike *counts* drive
//! the partitioning cost (Eq. 7 sums |T_i| over cut synapses); spike
//! *times* drive the interconnect traffic schedule.
//!
//! [`Simulator`]: neuromap_snn::Simulator

use crate::error::CoreError;
use neuromap_snn::network::Network;
use neuromap_snn::simulator::SpikeRecord;
use neuromap_snn::spikes::SpikeTrain;
use serde::{Deserialize, Serialize};

/// A trained SNN as a traffic-annotated graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeGraph {
    num_neurons: u32,
    /// Spike count per neuron (|T_i|).
    counts: Vec<u32>,
    /// Spike times per neuron (empty trains permitted).
    trains: Vec<SpikeTrain>,
    /// Flat synapse list (pre, post).
    synapses: Vec<(u32, u32)>,
    /// CSR over synapses by presynaptic neuron.
    out_offsets: Vec<u32>,
    out_posts: Vec<u32>,
    /// CSR over synapses by postsynaptic neuron.
    in_offsets: Vec<u32>,
    in_pres: Vec<u32>,
    /// Population boundaries: `pop_offsets[k]..pop_offsets[k+1]` is the
    /// contiguous id range of population `k`. Always starts at 0 and ends
    /// at `num_neurons`. Single population by default.
    pop_offsets: Vec<u32>,
}

impl SpikeGraph {
    /// Builds a graph from explicit parts, with per-neuron spike *counts*
    /// only (synthetic studies that never touch the timing-level NoC
    /// simulation). Spike trains are synthesized as evenly spaced times.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidGraph`] if `counts.len() != num_neurons` or a
    /// synapse endpoint is out of range.
    pub fn from_parts(
        num_neurons: u32,
        synapses: Vec<(u32, u32)>,
        counts: Vec<u32>,
    ) -> Result<Self, CoreError> {
        if counts.len() != num_neurons as usize {
            return Err(CoreError::InvalidGraph(format!(
                "{} counts for {num_neurons} neurons",
                counts.len()
            )));
        }
        let trains = counts
            .iter()
            .map(|&c| {
                // even spacing over a nominal 1000-step window
                let step = 1000u32.checked_div(c).unwrap_or(0).max(1);
                (0..c).map(|k| k * step).collect()
            })
            .collect();
        Self::build(num_neurons, synapses, counts, trains)
    }

    /// Builds a graph from explicit synapses and spike trains.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidGraph`] on length mismatch or dangling synapse
    /// endpoints.
    pub fn from_trains(
        num_neurons: u32,
        synapses: Vec<(u32, u32)>,
        trains: Vec<SpikeTrain>,
    ) -> Result<Self, CoreError> {
        if trains.len() != num_neurons as usize {
            return Err(CoreError::InvalidGraph(format!(
                "{} trains for {num_neurons} neurons",
                trains.len()
            )));
        }
        let counts = trains.iter().map(|t| t.len() as u32).collect();
        Self::build(num_neurons, synapses, counts, trains)
    }

    /// Extracts the spike graph of a simulated network — the CARLsim →
    /// dataflow-graph step of the paper's Figure 4. Population boundaries
    /// are taken from the network's neuron groups.
    pub fn from_record(net: &Network, record: &SpikeRecord) -> Self {
        let num = net.num_neurons();
        let synapses: Vec<(u32, u32)> = net.synapses().iter().map(|s| (s.pre, s.post)).collect();
        let trains: Vec<SpikeTrain> = record.trains().to_vec();
        let counts: Vec<u32> = trains.iter().map(|t| t.len() as u32).collect();
        let graph =
            Self::build(num, synapses, counts, trains).expect("network output is consistent");
        let mut offsets: Vec<u32> = net.groups().iter().map(|g| g.first).collect();
        offsets.push(num);
        graph
            .with_populations(offsets)
            .expect("group layout is contiguous")
    }

    fn build(
        num_neurons: u32,
        synapses: Vec<(u32, u32)>,
        counts: Vec<u32>,
        trains: Vec<SpikeTrain>,
    ) -> Result<Self, CoreError> {
        for &(pre, post) in &synapses {
            if pre >= num_neurons || post >= num_neurons {
                return Err(CoreError::InvalidGraph(format!(
                    "synapse ({pre}, {post}) out of range for {num_neurons} neurons"
                )));
            }
        }
        let n = num_neurons as usize;
        let mut offs = vec![0u32; n + 1];
        for &(pre, _) in &synapses {
            offs[pre as usize + 1] += 1;
        }
        for i in 0..n {
            offs[i + 1] += offs[i];
        }
        let mut cursor = offs.clone();
        let mut posts = vec![0u32; synapses.len()];
        for &(pre, post) in &synapses {
            posts[cursor[pre as usize] as usize] = post;
            cursor[pre as usize] += 1;
        }
        let mut in_offs = vec![0u32; n + 1];
        for &(_, post) in &synapses {
            in_offs[post as usize + 1] += 1;
        }
        for i in 0..n {
            in_offs[i + 1] += in_offs[i];
        }
        let mut cursor = in_offs.clone();
        let mut pres = vec![0u32; synapses.len()];
        for &(pre, post) in &synapses {
            pres[cursor[post as usize] as usize] = pre;
            cursor[post as usize] += 1;
        }
        Ok(Self {
            num_neurons,
            counts,
            trains,
            synapses,
            out_offsets: offs,
            out_posts: posts,
            in_offsets: in_offs,
            in_pres: pres,
            pop_offsets: vec![0, num_neurons],
        })
    }

    /// Declares population (neuron-group) boundaries: `offsets` must start
    /// at 0, be strictly increasing, and end at `num_neurons`. Population
    /// structure is what hierarchical mappers like PACMAN operate on.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidGraph`] if the offsets are malformed.
    pub fn with_populations(mut self, offsets: Vec<u32>) -> Result<Self, CoreError> {
        let valid = offsets.first() == Some(&0)
            && offsets.last() == Some(&self.num_neurons)
            && offsets.windows(2).all(|w| w[0] < w[1]);
        if !valid {
            return Err(CoreError::InvalidGraph(format!(
                "population offsets {offsets:?} must rise from 0 to {}",
                self.num_neurons
            )));
        }
        self.pop_offsets = offsets;
        Ok(self)
    }

    /// Population id ranges, in order.
    pub fn populations(&self) -> Vec<std::ops::Range<u32>> {
        self.pop_offsets.windows(2).map(|w| w[0]..w[1]).collect()
    }

    /// Number of declared populations.
    pub fn num_populations(&self) -> usize {
        self.pop_offsets.len() - 1
    }

    /// Number of neurons (nodes).
    pub fn num_neurons(&self) -> u32 {
        self.num_neurons
    }

    /// Number of synapses (edges).
    pub fn num_synapses(&self) -> usize {
        self.synapses.len()
    }

    /// Spike count of neuron `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: u32) -> u32 {
        self.counts[i as usize]
    }

    /// Per-neuron spike counts.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Spike train of neuron `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn train(&self, i: u32) -> &SpikeTrain {
        &self.trains[i as usize]
    }

    /// The flat synapse list.
    pub fn synapses(&self) -> &[(u32, u32)] {
        &self.synapses
    }

    /// Postsynaptic targets of neuron `i` (CSR row).
    pub fn targets(&self, i: u32) -> &[u32] {
        let lo = self.out_offsets[i as usize] as usize;
        let hi = self.out_offsets[i as usize + 1] as usize;
        &self.out_posts[lo..hi]
    }

    /// Presynaptic sources of neuron `i` (reverse CSR row).
    pub fn sources(&self, i: u32) -> &[u32] {
        let lo = self.in_offsets[i as usize] as usize;
        let hi = self.in_offsets[i as usize + 1] as usize;
        &self.in_pres[lo..hi]
    }

    /// Total spikes fired across all neurons.
    pub fn total_spikes(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// Total synaptic events: Σ over synapses of the presynaptic count —
    /// the denominator of "how much traffic exists at all".
    pub fn total_synaptic_events(&self) -> u64 {
        (0..self.num_neurons)
            .map(|i| self.counts[i as usize] as u64 * self.targets(i).len() as u64)
            .sum()
    }

    /// Duration of the recorded activity in timesteps (last spike + 1).
    pub fn duration_steps(&self) -> u32 {
        self.trains
            .iter()
            .filter_map(|t| t.last())
            .max()
            .map_or(1, |t| t + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> SpikeGraph {
        SpikeGraph::from_parts(4, vec![(0, 1), (1, 2), (2, 3)], vec![5, 3, 2, 1]).unwrap()
    }

    #[test]
    fn from_parts_basics() {
        let g = chain();
        assert_eq!(g.num_neurons(), 4);
        assert_eq!(g.num_synapses(), 3);
        assert_eq!(g.count(0), 5);
        assert_eq!(g.targets(1), &[2]);
        assert_eq!(g.targets(3), &[0u32; 0]);
        assert_eq!(g.total_spikes(), 11);
        assert_eq!(g.total_synaptic_events(), 5 + 3 + 2);
    }

    #[test]
    fn length_mismatch_rejected() {
        let err = SpikeGraph::from_parts(3, vec![], vec![1, 2]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidGraph(_)));
    }

    #[test]
    fn dangling_synapse_rejected() {
        let err = SpikeGraph::from_parts(2, vec![(0, 5)], vec![1, 1]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidGraph(_)));
    }

    #[test]
    fn sources_mirror_targets() {
        let g = SpikeGraph::from_parts(4, vec![(0, 2), (1, 2), (3, 2), (2, 3)], vec![1, 1, 1, 1])
            .unwrap();
        assert_eq!(g.sources(2), &[0, 1, 3]);
        assert_eq!(g.sources(3), &[2]);
        assert_eq!(g.sources(0), &[0u32; 0]);
        // every (pre, post) appears in both CSRs
        for &(pre, post) in g.synapses() {
            assert!(g.targets(pre).contains(&post));
            assert!(g.sources(post).contains(&pre));
        }
    }

    #[test]
    fn synthesized_trains_match_counts() {
        let g = chain();
        for i in 0..4 {
            assert_eq!(g.train(i).len() as u32, g.count(i));
        }
    }

    #[test]
    fn from_trains_counts_derived() {
        let g = SpikeGraph::from_trains(
            2,
            vec![(0, 1)],
            vec![SpikeTrain::from_times(vec![1, 5, 7]), SpikeTrain::new()],
        )
        .unwrap();
        assert_eq!(g.count(0), 3);
        assert_eq!(g.count(1), 0);
        assert_eq!(g.duration_steps(), 8);
    }

    #[test]
    fn from_record_roundtrip() {
        use neuromap_snn::generator::Generator;
        use neuromap_snn::network::{ConnectPattern, NetworkBuilder, WeightInit};
        use neuromap_snn::neuron::NeuronKind;
        use rand::SeedableRng;

        let mut b = NetworkBuilder::new();
        let i = b
            .add_input_group("in", 3, Generator::poisson(50.0))
            .unwrap();
        let o = b.add_group("out", 2, NeuronKind::izhikevich_rs()).unwrap();
        b.connect(i, o, ConnectPattern::Full, WeightInit::Constant(6.0), 1)
            .unwrap();
        let net = b.build().unwrap();
        let mut sim = neuromap_snn::Simulator::new(net);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let rec = sim.run(500, &mut rng).unwrap();
        let g = SpikeGraph::from_record(sim.network(), &rec);
        assert_eq!(g.num_neurons(), 5);
        assert_eq!(g.num_synapses(), 6);
        assert_eq!(g.total_spikes(), rec.total_spikes());
    }

    #[test]
    fn duration_of_silent_graph_is_one() {
        let g = SpikeGraph::from_parts(2, vec![(0, 1)], vec![0, 0]).unwrap();
        assert_eq!(g.duration_steps(), 1);
    }
}
