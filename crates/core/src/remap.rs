//! Run-time incremental remapping — the paper's stated future work
//! ("Run-time SNN mapping will be addressed in future", §VI).
//!
//! A deployed mapping is optimized for the spike statistics observed at
//! design time. When the workload drifts (different input statistics, new
//! operating mode, plasticity moving traffic), re-running the full PSO is
//! too slow for on-line use and would reshuffle the whole chip. Instead,
//! [`remap`] performs **bounded incremental migration**: given the *new*
//! spike graph and the *current* mapping, it repeatedly applies the single
//! most valuable neuron migration until the budget is spent or no
//! improving move remains. Each migration is something a runtime can
//! actually execute (copy one neuron's synaptic rows to another crossbar),
//! and the budget caps the reconfiguration downtime.

use crate::error::CoreError;
use crate::partition::{FitnessKind, PartitionProblem};
use neuromap_hw::mapping::Mapping;
use serde::{Deserialize, Serialize};

/// Budget and objective for an incremental remap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemapConfig {
    /// Maximum neuron migrations (reconfiguration budget).
    pub max_migrations: usize,
    /// Objective to improve.
    pub fitness: FitnessKind,
    /// Stop early when the best available move improves the cost by less
    /// than this fraction of the current cost (diminishing returns).
    pub min_relative_gain: f64,
}

impl Default for RemapConfig {
    fn default() -> Self {
        Self {
            max_migrations: 16,
            fitness: FitnessKind::CutSpikes,
            min_relative_gain: 0.0,
        }
    }
}

/// One executed migration: `(neuron, from_crossbar, to_crossbar)`.
pub type Migration = (u32, u32, u32);

/// Result of an incremental remap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemapOutcome {
    /// The improved mapping.
    pub mapping: Mapping,
    /// Migrations in execution order.
    pub migrations: Vec<Migration>,
    /// Cost of the old mapping under the new workload.
    pub cost_before: u64,
    /// Cost after remapping.
    pub cost_after: u64,
}

impl RemapOutcome {
    /// Relative improvement in `[0, 1]`.
    pub fn relative_gain(&self) -> f64 {
        if self.cost_before == 0 {
            0.0
        } else {
            1.0 - self.cost_after as f64 / self.cost_before as f64
        }
    }
}

/// Incrementally adapts `current` to the (drifted) workload described by
/// `problem`, spending at most [`RemapConfig::max_migrations`] single-neuron
/// moves, each chosen as the globally best improving migration.
///
/// # Errors
///
/// [`CoreError::Infeasible`] if `current` does not cover the problem's
/// neurons or violates its capacity (the mapping must have been produced
/// for a compatible architecture).
pub fn remap(
    problem: &PartitionProblem<'_>,
    current: &Mapping,
    config: &RemapConfig,
) -> Result<RemapOutcome, CoreError> {
    let n = problem.graph().num_neurons() as usize;
    if current.num_neurons() != n
        || current.num_crossbars() != problem.num_crossbars()
        || !problem.is_feasible(current.assignment())
    {
        return Err(CoreError::Infeasible {
            neurons: problem.graph().num_neurons(),
            crossbars: problem.num_crossbars(),
            capacity: problem.capacity(),
        });
    }

    let c = problem.num_crossbars();
    let cap = problem.capacity();
    let mut assignment = current.assignment().to_vec();
    let mut occ = vec![0u32; c];
    for &k in &assignment {
        occ[k as usize] += 1;
    }

    let cost_before = problem.cost(config.fitness, &assignment);
    let mut cost = cost_before as i64;
    let mut migrations = Vec::new();

    let delta_of = |assignment: &[u32], cost: i64, i: usize, t: u32| -> i64 {
        match config.fitness {
            FitnessKind::CutSpikes => problem.move_delta_spikes(assignment, i, t),
            FitnessKind::CutPackets | FitnessKind::CutHops => {
                // exact but non-incremental: acceptable at runtime scales
                let mut trial = assignment.to_vec();
                trial[i] = t;
                problem.cost(config.fitness, &trial) as i64 - cost
            }
        }
    };

    while migrations.len() < config.max_migrations {
        // globally best single migration
        let mut best: Option<(usize, u32, i64)> = None;
        for i in 0..n {
            let from = assignment[i];
            for t in 0..c as u32 {
                if t == from || occ[t as usize] >= cap {
                    continue;
                }
                let d = delta_of(&assignment, cost, i, t);
                if d < 0 && best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, t, d));
                }
            }
        }
        if let Some((i, t, d)) = best {
            if cost > 0 && (-d as f64) / cost as f64 <= config.min_relative_gain {
                break;
            }
            let from = assignment[i];
            occ[from as usize] -= 1;
            occ[t as usize] += 1;
            assignment[i] = t;
            cost += d;
            migrations.push((i as u32, from, t));
            continue;
        }

        // no improving migration: try swaps between graph neighbors on
        // different crossbars (an atomic exchange costs two migrations)
        if migrations.len() + 2 > config.max_migrations {
            break;
        }
        let mut best_swap: Option<(usize, usize, i64)> = None;
        let g = problem.graph();
        for i in 0..n {
            for &j in g.targets(i as u32) {
                let j = j as usize;
                if j == i || assignment[i] == assignment[j] {
                    continue;
                }
                let (ci, cj) = (assignment[i], assignment[j]);
                let d1 = delta_of(&assignment, cost, i, cj);
                let mut trial = assignment.clone();
                trial[i] = cj;
                let d2 = delta_of(&trial, cost + d1, j, ci);
                let d = d1 + d2;
                if d < 0 && best_swap.is_none_or(|(_, _, bd)| d < bd) {
                    best_swap = Some((i, j, d));
                }
            }
        }
        let Some((i, j, d)) = best_swap else { break };
        if cost > 0 && (-d as f64) / cost as f64 <= config.min_relative_gain {
            break;
        }
        let (ci, cj) = (assignment[i], assignment[j]);
        assignment[i] = cj;
        assignment[j] = ci;
        cost += d;
        migrations.push((i as u32, ci, cj));
        migrations.push((j as u32, cj, ci));
    }

    let cost_after = cost.max(0) as u64;
    debug_assert_eq!(cost_after, problem.cost(config.fitness, &assignment));
    let mapping = problem.into_mapping(assignment)?;
    Ok(RemapOutcome {
        mapping,
        migrations,
        cost_before,
        cost_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;

    /// Two clusters; the "drift" flips which cluster is chatty.
    fn graph_with_rates(a_rate: u32, b_rate: u32) -> SpikeGraph {
        let mut synapses = Vec::new();
        for x in 0..4u32 {
            for y in 0..4u32 {
                if x != y {
                    synapses.push((x, y));
                    synapses.push((x + 4, y + 4));
                }
            }
        }
        synapses.push((0, 4));
        synapses.push((4, 0));
        let mut counts = vec![a_rate; 8];
        for c in counts.iter_mut().skip(4) {
            *c = b_rate;
        }
        SpikeGraph::from_parts(8, synapses, counts).unwrap()
    }

    #[test]
    fn remap_improves_after_drift() {
        // mapping optimized when cluster A was silent: A is scattered
        let new_graph = graph_with_rates(50, 1);
        let problem = PartitionProblem::new(&new_graph, 2, 5).unwrap();
        let stale = Mapping::from_assignment(vec![0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        let outcome = remap(&problem, &stale, &RemapConfig::default()).unwrap();
        assert!(outcome.cost_after < outcome.cost_before);
        assert!(!outcome.migrations.is_empty());
        assert!(problem.is_feasible(outcome.mapping.assignment()));
        assert_eq!(
            outcome.cost_after,
            problem.cut_spikes(outcome.mapping.assignment())
        );
    }

    #[test]
    fn budget_bounds_migrations() {
        let g = graph_with_rates(50, 50);
        let problem = PartitionProblem::new(&g, 2, 5).unwrap();
        let stale = Mapping::from_assignment(vec![0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        let cfg = RemapConfig {
            max_migrations: 2,
            ..RemapConfig::default()
        };
        let outcome = remap(&problem, &stale, &cfg).unwrap();
        assert!(outcome.migrations.len() <= 2);
    }

    #[test]
    fn optimal_mapping_needs_no_migrations() {
        let g = graph_with_rates(10, 10);
        let problem = PartitionProblem::new(&g, 2, 5).unwrap();
        let good = Mapping::from_assignment(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let outcome = remap(&problem, &good, &RemapConfig::default()).unwrap();
        assert!(outcome.migrations.is_empty());
        assert_eq!(outcome.cost_before, outcome.cost_after);
        assert_eq!(outcome.relative_gain(), 0.0);
    }

    #[test]
    fn incompatible_mapping_rejected() {
        let g = graph_with_rates(1, 1);
        let problem = PartitionProblem::new(&g, 2, 5).unwrap();
        let wrong_size = Mapping::from_assignment(vec![0, 1], 2).unwrap();
        assert!(remap(&problem, &wrong_size, &RemapConfig::default()).is_err());
    }

    #[test]
    fn packet_objective_supported() {
        let g = graph_with_rates(30, 1);
        let problem = PartitionProblem::new(&g, 2, 5).unwrap();
        let stale = Mapping::from_assignment(vec![0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        let cfg = RemapConfig {
            fitness: FitnessKind::CutPackets,
            ..RemapConfig::default()
        };
        let outcome = remap(&problem, &stale, &cfg).unwrap();
        assert!(outcome.cost_after <= outcome.cost_before);
        assert_eq!(
            outcome.cost_after,
            problem.cut_packets(outcome.mapping.assignment())
        );
    }

    #[test]
    fn hop_objective_supported() {
        use neuromap_noc::topology::{DistanceLut, Mesh2D};
        let g = graph_with_rates(30, 1);
        let topo = Mesh2D::for_crossbars(2);
        let lut = DistanceLut::new(&topo);
        let problem = PartitionProblem::new(&g, 2, 5)
            .unwrap()
            .with_hops(&lut)
            .unwrap();
        let stale = Mapping::from_assignment(vec![0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        let cfg = RemapConfig {
            fitness: FitnessKind::CutHops,
            ..RemapConfig::default()
        };
        let outcome = remap(&problem, &stale, &cfg).unwrap();
        assert!(outcome.cost_after <= outcome.cost_before);
        assert_eq!(
            outcome.cost_after,
            problem.cut_hops(outcome.mapping.assignment())
        );
    }

    #[test]
    fn migrations_log_is_replayable() {
        let g = graph_with_rates(40, 2);
        let problem = PartitionProblem::new(&g, 2, 5).unwrap();
        let stale = Mapping::from_assignment(vec![0, 1, 0, 1, 0, 1, 0, 1], 2).unwrap();
        let outcome = remap(&problem, &stale, &RemapConfig::default()).unwrap();
        // replaying the migration log over the stale mapping reproduces the
        // new mapping — what a runtime controller would do
        let mut replayed = stale.assignment().to_vec();
        for (neuron, from, to) in &outcome.migrations {
            assert_eq!(replayed[*neuron as usize], *from);
            replayed[*neuron as usize] = *to;
        }
        assert_eq!(&replayed, outcome.mapping.assignment());
    }
}
