//! Cluster placement — the second mapping stage.
//!
//! The partitioner (any [`crate::partition::Partitioner`]) decides *which
//! neurons share a crossbar*; until this module, cluster `k` was then
//! implicitly wired to router `k`, so every cut packet was priced the
//! same no matter how far it travelled. On a real NoC a packet's energy
//! and latency scale with the **hop distance** between its source and
//! destination crossbars, and SpiNeMap (Balaji et al., *"Mapping Spiking
//! Neural Networks to Neuromorphic Hardware"*) shows that a second,
//! placement-of-clusters stage on top of partitioning cuts both
//! substantially. This module implements that stage:
//!
//! 1. [`TrafficMatrix::from_mapping`] collapses the partitioned spike
//!    graph into cluster-to-cluster packet counts (respecting the
//!    pipeline's [`TrafficMode`] accounting);
//! 2. [`optimize_placement`] searches the space of cluster → physical
//!    crossbar permutations for one minimizing
//!    `Σ packets(k1, k2) · hops(π(k1), π(k2))` — a quadratic assignment
//!    problem — with deterministic, thread-spread simulated-annealing
//!    restarts polished by greedy swap local search.
//!
//! ## Incremental pricing and its reference kernel
//!
//! Exchanging the physical slots of two clusters touches only their rows
//! and columns of the traffic matrix, so [`swap_delta`] prices a swap in
//! O(C) instead of the O(C²) full recompute [`placement_cost`] performs.
//! The two are held equal by `tests/placement_properties.rs` over random
//! matrices, topologies, and swap sequences — the same
//! reference-vs-optimized discipline `decode.rs` uses for the PSO
//! kernels.
//!
//! ## Determinism contract
//!
//! Restart `k` derives its RNG stream from `seed` and `k` alone, restarts
//! are spread across workers by contiguous chunks, results are reduced in
//! restart order, and ties go to the lowest restart index — so `threads`
//! is purely an execution knob: any thread count produces byte-identical
//! placements (property-tested). Restart 0 starts from the identity
//! permutation and uses greedy descent only, which guarantees the
//! returned placement never prices worse than the identity wiring.

use crate::error::CoreError;
use crate::graph::SpikeGraph;
use crate::pipeline::TrafficMode;
use crate::pool;
use neuromap_hw::mapping::{Mapping, Placement};
use neuromap_noc::topology::{DistanceLut, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cluster-to-cluster packet counts under a mapping — the placement
/// stage's whole view of the application (neurons no longer appear).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficMatrix {
    c: usize,
    /// `packets[src * c + dst]`, diagonal zero (local traffic never
    /// touches the interconnect).
    packets: Vec<u64>,
}

impl TrafficMatrix {
    /// Collapses a partitioned spike graph into cluster-level traffic.
    ///
    /// Under [`TrafficMode::PerCrossbar`] a spiking neuron contributes
    /// its spike count once per *distinct* remote target cluster
    /// (multicast packet accounting); under [`TrafficMode::PerSynapse`]
    /// once per cut synapse (the paper's Eq. 7 accounting). Either way
    /// the matrix times the hop table prices exactly the flows
    /// `crate::pipeline::build_flows` will emit.
    ///
    /// # Panics
    ///
    /// Panics if the mapping covers fewer neurons than the graph.
    pub fn from_mapping(graph: &SpikeGraph, mapping: &Mapping, mode: TrafficMode) -> Self {
        assert_eq!(
            mapping.num_neurons(),
            graph.num_neurons() as usize,
            "mapping must cover every neuron"
        );
        let c = mapping.num_crossbars();
        let mut packets = vec![0u64; c * c];
        let mut seen = vec![u32::MAX; c];
        for i in 0..graph.num_neurons() {
            let count = graph.count(i) as u64;
            if count == 0 {
                continue;
            }
            let home = mapping.crossbar_of(i);
            for &j in graph.targets(i) {
                let dst = mapping.crossbar_of(j);
                if dst == home {
                    continue;
                }
                match mode {
                    TrafficMode::PerSynapse => {
                        packets[home as usize * c + dst as usize] += count;
                    }
                    TrafficMode::PerCrossbar => {
                        if seen[dst as usize] != i {
                            seen[dst as usize] = i;
                            packets[home as usize * c + dst as usize] += count;
                        }
                    }
                }
            }
        }
        Self { c, packets }
    }

    /// Builds a matrix from raw counts (tests and synthetic workloads).
    ///
    /// # Panics
    ///
    /// Panics if `packets.len() != c * c`.
    pub fn from_raw(c: usize, packets: Vec<u64>) -> Self {
        assert_eq!(packets.len(), c * c, "matrix must be c x c");
        Self { c, packets }
    }

    /// Number of clusters covered.
    pub fn num_crossbars(&self) -> usize {
        self.c
    }

    /// Packets from cluster `src` to cluster `dst`.
    #[inline]
    pub fn packets(&self, src: u32, dst: u32) -> u64 {
        self.packets[src as usize * self.c + dst as usize]
    }

    /// Total packets crossing the interconnect (placement-invariant).
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }
}

/// Cluster-level *multicast group* traffic: the tree-aware companion to
/// [`TrafficMatrix`]. Where the pairwise matrix prices every
/// (source, destination) pair independently, a tree-routing NoC
/// ([`NocConfig::multicast_trees`]) forwards one packet per link of the
/// multicast tree — shared path prefixes are paid once, not once per
/// destination. This type keeps each source cluster's distinct
/// destination *sets* (with spike-count weights) so placement can price
/// exactly those tree forwards.
///
/// [`NocConfig::multicast_trees`]: neuromap_noc::config::NocConfig::multicast_trees
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastTraffic {
    c: usize,
    /// `(src cluster, sorted distinct remote destination clusters,
    /// weight)` — one entry per distinct (source, destination-set) pair,
    /// weights aggregated over neurons sharing both.
    groups: Vec<(u32, Vec<u32>, u64)>,
}

impl MulticastTraffic {
    /// Collapses a partitioned spike graph into multicast groups: every
    /// spiking neuron contributes its spike count to the group
    /// `(home cluster, {distinct remote target clusters})`; neurons with
    /// identical home and destination set aggregate. This mirrors
    /// [`TrafficMode::PerCrossbar`] flow construction, which is the only
    /// accounting under which tree routing applies.
    ///
    /// # Panics
    ///
    /// Panics if the mapping covers fewer neurons than the graph.
    pub fn from_mapping(graph: &SpikeGraph, mapping: &Mapping) -> Self {
        assert_eq!(
            mapping.num_neurons(),
            graph.num_neurons() as usize,
            "mapping must cover every neuron"
        );
        let c = mapping.num_crossbars();
        let mut agg: BTreeMap<(u32, Vec<u32>), u64> = BTreeMap::new();
        let mut dsts: Vec<u32> = Vec::new();
        for i in 0..graph.num_neurons() {
            let count = graph.count(i) as u64;
            if count == 0 {
                continue;
            }
            let home = mapping.crossbar_of(i);
            dsts.clear();
            for &j in graph.targets(i) {
                let dst = mapping.crossbar_of(j);
                if dst != home {
                    dsts.push(dst);
                }
            }
            if dsts.is_empty() {
                continue;
            }
            dsts.sort_unstable();
            dsts.dedup();
            *agg.entry((home, dsts.clone())).or_insert(0) += count;
        }
        let groups = agg.into_iter().map(|((s, d), w)| (s, d, w)).collect();
        Self { c, groups }
    }

    /// Number of clusters covered.
    pub fn num_crossbars(&self) -> usize {
        self.c
    }

    /// The multicast groups: `(src cluster, sorted destination clusters,
    /// weight)`.
    pub fn groups(&self) -> &[(u32, Vec<u32>, u64)] {
        &self.groups
    }

    /// Tree-aware placement cost: the weighted link-traversal count of
    /// every group's multicast tree under the permutation `physical_of`
    /// (`physical_of[cluster] = physical crossbar`). Shared prefix hops
    /// are paid once per branch — exactly the forwards the tree-routing
    /// engines perform, and exactly what
    /// [`MappingPipeline::hop_metrics`] reports for the placed mapping.
    ///
    /// [`MappingPipeline::hop_metrics`]: crate::pipeline::MappingPipeline::hop_metrics
    ///
    /// # Panics
    ///
    /// Panics if `physical_of` does not cover every cluster.
    pub fn tree_cost(&self, topo: &dyn Topology, vc_count: usize, physical_of: &[u32]) -> u64 {
        assert_eq!(
            physical_of.len(),
            self.c,
            "placement must cover every cluster"
        );
        let mut dest_routers: Vec<usize> = Vec::new();
        let mut cost = 0u64;
        for (src, dsts, w) in &self.groups {
            cost +=
                w * self.group_forwards(topo, vc_count, physical_of, *src, dsts, &mut dest_routers);
        }
        cost
    }

    /// Tree forwards of one group under `physical_of` (unweighted).
    fn group_forwards(
        &self,
        topo: &dyn Topology,
        vc_count: usize,
        physical_of: &[u32],
        src: u32,
        dsts: &[u32],
        dest_routers: &mut Vec<usize>,
    ) -> u64 {
        let src_router = topo.endpoint(physical_of[src as usize]);
        dest_routers.clear();
        dest_routers.extend(dsts.iter().map(|&d| topo.endpoint(physical_of[d as usize])));
        let paths = topo.multicast_route(src_router, dest_routers, vc_count);
        crate::pipeline::tree_forwards(&paths)
    }
}

/// Reference kernel: the hop-weighted packet total of a placement,
/// recomputed from scratch in O(C²). [`swap_delta`] must always agree
/// with differences of this function (property-tested).
///
/// # Panics
///
/// Panics if `physical_of` and the matrix/table disagree on the cluster
/// count.
pub fn placement_cost(traffic: &TrafficMatrix, dist: &DistanceLut, physical_of: &[u32]) -> u64 {
    let c = traffic.c;
    assert_eq!(physical_of.len(), c, "placement must cover every cluster");
    assert!(dist.num_crossbars() >= c, "hop table too small");
    let mut cost = 0u64;
    for a in 0..c {
        let row = &traffic.packets[a * c..(a + 1) * c];
        let pa = physical_of[a];
        for (b, &t) in row.iter().enumerate() {
            if t != 0 {
                cost += t * u64::from(dist.hops(pa, physical_of[b]));
            }
        }
    }
    cost
}

/// Exact cost change of exchanging the physical slots of clusters `x`
/// and `y` under `physical_of`, in O(C): only the rows and columns of
/// the two clusters reprice. Pure — nothing is mutated.
///
/// # Panics
///
/// Panics if `x`/`y` are out of range for the matrix.
pub fn swap_delta(
    traffic: &TrafficMatrix,
    dist: &DistanceLut,
    physical_of: &[u32],
    x: usize,
    y: usize,
) -> i64 {
    if x == y {
        return 0;
    }
    let c = traffic.c;
    let (px, py) = (physical_of[x], physical_of[y]);
    let w = |a: u32, b: u32| i64::from(dist.hops(a, b));
    let t = |a: usize, b: usize| traffic.packets[a * c + b] as i64;
    let mut d = 0i64;
    for (k, &pk) in physical_of.iter().enumerate() {
        if k == x || k == y {
            continue;
        }
        d += t(x, k) * (w(py, pk) - w(px, pk)) + t(k, x) * (w(pk, py) - w(pk, px));
        d += t(y, k) * (w(px, pk) - w(py, pk)) + t(k, y) * (w(pk, px) - w(pk, py));
    }
    // cross terms between x and y (zero for symmetric distance tables,
    // kept for exactness)
    d += t(x, y) * (w(py, px) - w(px, py)) + t(y, x) * (w(px, py) - w(py, px));
    d
}

/// Placement-optimizer hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaceConfig {
    /// Independent restarts; restart 0 is greedy descent from the
    /// identity permutation (so the result never loses to identity), the
    /// rest anneal from seeded random permutations. Ties go to the lowest
    /// restart index.
    pub restarts: u32,
    /// Annealing proposals per restart (random cluster-pair swaps).
    pub sa_moves: u32,
    /// Initial temperature, in units of the objective.
    pub t0: f64,
    /// Geometric cooling factor per proposal.
    pub alpha: f64,
    /// Maximum greedy first-improvement sweeps polishing each restart.
    pub greedy_passes: u32,
    /// RNG seed (restart `k` derives its stream from `seed` and `k`).
    pub seed: u64,
    /// Worker threads the restarts are spread across. Purely an execution
    /// knob: results depend on `restarts`, never on `threads`.
    pub threads: usize,
    /// Price placements by multicast-tree forwards
    /// ([`MulticastTraffic::tree_cost`]) instead of the pairwise hop sum.
    /// Only honored by the pipeline when the NoC actually routes trees
    /// ([`NocConfig::multicast`] + [`NocConfig::multicast_trees`] under
    /// [`TrafficMode::PerCrossbar`]); [`optimize_placement`] itself
    /// ignores the flag, so pairwise callers are byte-identical either
    /// way.
    ///
    /// [`NocConfig::multicast`]: neuromap_noc::config::NocConfig::multicast
    /// [`NocConfig::multicast_trees`]: neuromap_noc::config::NocConfig::multicast_trees
    #[serde(default)]
    pub tree_aware: bool,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        Self {
            restarts: 4,
            sa_moves: 4_000,
            t0: 50.0,
            alpha: 0.999,
            greedy_passes: 8,
            seed: 0x9A5E,
            threads: crate::pso::default_threads(),
            tree_aware: false,
        }
    }
}

impl PlaceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for zero restarts/passes/threads
    /// or a cooling factor outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.restarts == 0 {
            return Err(CoreError::InvalidParameter {
                name: "restarts",
                value: "0".into(),
            });
        }
        if self.greedy_passes == 0 {
            return Err(CoreError::InvalidParameter {
                name: "greedy_passes",
                value: "0".into(),
            });
        }
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "alpha",
                value: self.alpha.to_string(),
            });
        }
        if self.threads == 0 {
            return Err(CoreError::InvalidParameter {
                name: "threads",
                value: "0".into(),
            });
        }
        Ok(())
    }
}

/// Result of a placement optimization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlaceOutcome {
    /// The winning cluster → physical crossbar permutation.
    pub placement: Placement,
    /// Hop-weighted packets under the identity placement (the implicit
    /// wiring of the single-stage pipeline).
    pub identity_cost: u64,
    /// Hop-weighted packets under [`PlaceOutcome::placement`]; never
    /// exceeds [`PlaceOutcome::identity_cost`].
    pub optimized_cost: u64,
    /// Index of the restart that produced the winner.
    pub winning_restart: u32,
}

impl PlaceOutcome {
    /// Relative reduction of hop-weighted packets in `[0, 1]`.
    pub fn relative_gain(&self) -> f64 {
        if self.identity_cost == 0 {
            0.0
        } else {
            1.0 - self.optimized_cost as f64 / self.identity_cost as f64
        }
    }
}

/// One restart: anneal (restarts ≥ 1 only), then greedy first-improvement
/// sweeps until a sweep makes no progress or the pass budget is spent.
/// Deterministic for a fixed `(traffic, dist, cfg, k)`.
fn run_restart(
    traffic: &TrafficMatrix,
    dist: &DistanceLut,
    cfg: &PlaceConfig,
    k: u32,
) -> (u64, Vec<u32>) {
    let c = traffic.c;
    let mut perm: Vec<u32> = (0..c as u32).collect();
    let mut cost = placement_cost(traffic, dist, &perm) as i64;

    if k > 0 {
        let seed = cfg
            .seed
            .wrapping_add(u64::from(k).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher–Yates scatter, then anneal
        for a in (1..c).rev() {
            let b = rng.gen_range(0..a + 1);
            perm.swap(a, b);
        }
        cost = placement_cost(traffic, dist, &perm) as i64;
        let mut temp = cfg.t0;
        for _ in 0..cfg.sa_moves {
            let a = rng.gen_range(0..c);
            let b = rng.gen_range(0..c);
            if a != b {
                let d = swap_delta(traffic, dist, &perm, a, b);
                let accept = d <= 0 || {
                    temp > f64::EPSILON && rng.gen_range(0.0..1.0) < (-(d as f64) / temp).exp()
                };
                if accept {
                    perm.swap(a, b);
                    cost += d;
                }
            }
            temp *= cfg.alpha;
        }
    }

    // greedy polish: first-improvement sweeps over all cluster pairs,
    // each swap priced incrementally in O(C)
    for _ in 0..cfg.greedy_passes {
        let mut improved = false;
        for a in 0..c {
            for b in a + 1..c {
                let d = swap_delta(traffic, dist, &perm, a, b);
                if d < 0 {
                    perm.swap(a, b);
                    cost += d;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
    debug_assert_eq!(cost as u64, placement_cost(traffic, dist, &perm));
    (cost as u64, perm)
}

/// Searches cluster → physical crossbar permutations minimizing
/// hop-weighted packets. Restarts are spread over the worker pool
/// (`crate::pool`) in contiguous chunks; the reduction walks results in
/// restart order, so the outcome is byte-identical for every thread
/// count. The identity-seeded restart guarantees
/// `optimized_cost <= identity_cost`.
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] for an invalid configuration or a hop
/// table covering fewer crossbars than the traffic matrix.
pub fn optimize_placement(
    traffic: &TrafficMatrix,
    dist: &DistanceLut,
    cfg: &PlaceConfig,
) -> Result<PlaceOutcome, CoreError> {
    cfg.validate()?;
    let c = traffic.c;
    if dist.num_crossbars() < c {
        return Err(CoreError::InvalidParameter {
            name: "dist",
            value: format!(
                "{} crossbars covered, traffic matrix has {c}",
                dist.num_crossbars()
            ),
        });
    }
    let identity: Vec<u32> = (0..c as u32).collect();
    let identity_cost = placement_cost(traffic, dist, &identity);

    // spread restart indices over workers in contiguous chunks (same
    // discipline as the SA baseline); per-restart results depend only on
    // (traffic, dist, cfg, k), so the chunking is invisible in the output.
    // `workers` is clamped to `restarts` and the base/extra split hands
    // every worker a non-empty chunk — the old ceil-division chunking
    // produced empty `lo >= hi` tail ranges when `threads > restarts`,
    // spawning workers with nothing to do
    let restarts = cfg.restarts;
    let workers = cfg.threads.min(restarts as usize).max(1);
    let base = restarts as usize / workers;
    let extra = restarts as usize % workers;
    let mut next = 0u32;
    let chunks: Vec<Vec<u32>> = (0..workers)
        .map(|w| {
            let count = (base + usize::from(w < extra)) as u32;
            let lo = next;
            next += count;
            (lo..lo + count).collect()
        })
        .collect();
    debug_assert_eq!(next, restarts, "chunks must partition 0..restarts");
    debug_assert!(
        chunks.iter().all(|ch| !ch.is_empty()),
        "every spawned worker must own at least one restart"
    );

    let mut per_restart: Vec<(u64, u32, Vec<u32>)> = Vec::with_capacity(restarts as usize);
    pool::run_phased(
        chunks,
        1,
        (),
        |_, (), idxs: &mut Vec<u32>| {
            idxs.iter()
                .map(|&k| {
                    let (cost, perm) = run_restart(traffic, dist, cfg, k);
                    (cost, k, perm)
                })
                .collect::<Vec<_>>()
        },
        |_, results| {
            for chunk in results {
                per_restart.extend(chunk);
            }
            None
        },
    );

    let (optimized_cost, winning_restart, perm) = per_restart
        .into_iter()
        .min_by_key(|&(cost, k, _)| (cost, k))
        .expect("restarts >= 1");
    debug_assert!(optimized_cost <= identity_cost, "restart 0 covers identity");
    let placement = Placement::new(perm).map_err(CoreError::from)?;
    Ok(PlaceOutcome {
        placement,
        identity_cost,
        optimized_cost,
        winning_restart,
    })
}

/// Tree-aware placement search: the pairwise QAP restarts of
/// [`optimize_placement`] generate candidate permutations (the pairwise
/// hop sum is a cheap, well-correlated surrogate), but candidates are
/// *judged* — and greedily polished — under the true multicast-tree
/// forward count ([`MulticastTraffic::tree_cost`]). The identity
/// permutation competes as a candidate too, so `optimized_cost` never
/// exceeds `identity_cost` (both in tree units).
///
/// The polish reprices swaps incrementally: only groups whose source or
/// destination set touches a swapped cluster re-route their tree.
/// Deterministic for every thread count (restarts by the pairwise
/// contract; judging and polish are single-threaded in fixed order).
///
/// # Errors
///
/// [`CoreError::InvalidParameter`] for an invalid configuration or a hop
/// table covering fewer crossbars than the traffic matrix.
pub fn optimize_placement_trees(
    traffic: &TrafficMatrix,
    multicast: &MulticastTraffic,
    topo: &dyn Topology,
    vc_count: usize,
    dist: &DistanceLut,
    cfg: &PlaceConfig,
) -> Result<PlaceOutcome, CoreError> {
    let pairwise = optimize_placement(traffic, dist, cfg)?;
    let c = traffic.c;
    assert_eq!(
        multicast.num_crossbars(),
        c,
        "pairwise and multicast traffic must cover the same clusters"
    );
    let identity: Vec<u32> = (0..c as u32).collect();
    let identity_cost = multicast.tree_cost(topo, vc_count, &identity);

    // judge the pairwise winner and identity under tree pricing
    let candidate_cost = multicast.tree_cost(topo, vc_count, pairwise.placement.as_slice());
    let (mut perm, mut cost, winning_restart) = if candidate_cost < identity_cost {
        (
            pairwise.placement.as_slice().to_vec(),
            candidate_cost,
            pairwise.winning_restart,
        )
    } else {
        (identity, identity_cost, 0)
    };

    // greedy polish under tree pricing with incremental group repricing:
    // a swap of clusters (a, b) only re-routes groups touching a or b
    let groups = multicast.groups();
    let mut group_cost: Vec<u64> = Vec::with_capacity(groups.len());
    let mut by_cluster: Vec<Vec<u32>> = vec![Vec::new(); c];
    let mut scratch: Vec<usize> = Vec::new();
    for (g, (src, dsts, _)) in groups.iter().enumerate() {
        by_cluster[*src as usize].push(g as u32);
        for &d in dsts {
            by_cluster[d as usize].push(g as u32);
        }
        group_cost.push(
            groups[g].2 * multicast.group_forwards(topo, vc_count, &perm, *src, dsts, &mut scratch),
        );
    }
    let mut stamp: Vec<u32> = vec![0; groups.len()];
    let mut epoch: u32 = 0;
    let mut affected: Vec<u32> = Vec::new();
    let mut new_costs: Vec<u64> = Vec::new();
    for _ in 0..cfg.greedy_passes {
        let mut improved = false;
        for a in 0..c {
            for b in a + 1..c {
                epoch += 1;
                affected.clear();
                for &g in by_cluster[a].iter().chain(by_cluster[b].iter()) {
                    if stamp[g as usize] != epoch {
                        stamp[g as usize] = epoch;
                        affected.push(g);
                    }
                }
                if affected.is_empty() {
                    continue;
                }
                perm.swap(a, b);
                let mut delta = 0i64;
                new_costs.clear();
                for &g in &affected {
                    let (src, dsts, w) = &groups[g as usize];
                    let new = w * multicast.group_forwards(
                        topo,
                        vc_count,
                        &perm,
                        *src,
                        dsts,
                        &mut scratch,
                    );
                    new_costs.push(new);
                    delta += new as i64 - group_cost[g as usize] as i64;
                }
                if delta < 0 {
                    for (i, &g) in affected.iter().enumerate() {
                        group_cost[g as usize] = new_costs[i];
                    }
                    cost = (cost as i64 + delta) as u64;
                    improved = true;
                } else {
                    perm.swap(a, b);
                }
            }
        }
        if !improved {
            break;
        }
    }
    debug_assert_eq!(cost, multicast.tree_cost(topo, vc_count, &perm));

    let placement = Placement::new(perm).map_err(CoreError::from)?;
    Ok(PlaceOutcome {
        placement,
        identity_cost,
        optimized_cost: cost,
        winning_restart,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuromap_noc::topology::{Mesh2D, Torus};

    fn mesh_lut(c: usize) -> DistanceLut {
        DistanceLut::new(&Mesh2D::for_crossbars(c))
    }

    /// A ring of heavy neighbor traffic, deliberately scattered: cluster
    /// `k` talks to cluster `(k + 1) % c`, so a placement following the
    /// grid's space-filling order prices far below identity-on-a-ring.
    fn ring_traffic(c: usize, weight: u64) -> TrafficMatrix {
        let mut packets = vec![0u64; c * c];
        for k in 0..c {
            packets[k * c + (k + 1) % c] = weight;
        }
        TrafficMatrix::from_raw(c, packets)
    }

    #[test]
    fn traffic_matrix_respects_modes() {
        use crate::graph::SpikeGraph;
        // neuron 0 (5 spikes) on cluster 0 hits two targets on cluster 1
        let g = SpikeGraph::from_parts(3, vec![(0, 1), (0, 2)], vec![5, 0, 0]).unwrap();
        let m = Mapping::from_assignment(vec![0, 1, 1], 2).unwrap();
        let per_packet = TrafficMatrix::from_mapping(&g, &m, TrafficMode::PerCrossbar);
        assert_eq!(per_packet.packets(0, 1), 5); // deduplicated
        let per_syn = TrafficMatrix::from_mapping(&g, &m, TrafficMode::PerSynapse);
        assert_eq!(per_syn.packets(0, 1), 10); // one per cut synapse
        assert_eq!(per_packet.packets(1, 0), 0);
        assert_eq!(per_packet.total_packets(), 5);
    }

    #[test]
    fn swap_delta_matches_reference_exhaustively() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for c in [2usize, 5, 9, 16] {
            let packets: Vec<u64> = (0..c * c)
                .enumerate()
                .map(|(i, _)| {
                    if i % (c + 1) == 0 {
                        0 // keep the diagonal empty like real matrices
                    } else {
                        rng.gen_range(0..50u64)
                    }
                })
                .collect();
            let traffic = TrafficMatrix::from_raw(c, packets);
            let dist = mesh_lut(c);
            let mut perm: Vec<u32> = (0..c as u32).collect();
            for a in (1..c).rev() {
                let b = rng.gen_range(0..a + 1);
                perm.swap(a, b);
            }
            let base = placement_cost(&traffic, &dist, &perm) as i64;
            for x in 0..c {
                for y in 0..c {
                    let mut swapped = perm.clone();
                    swapped.swap(x, y);
                    let expected = placement_cost(&traffic, &dist, &swapped) as i64 - base;
                    assert_eq!(
                        swap_delta(&traffic, &dist, &perm, x, y),
                        expected,
                        "c={c} swap {x}<->{y}"
                    );
                }
            }
        }
    }

    #[test]
    fn optimizer_never_loses_to_identity_and_finds_ring_structure() {
        let c = 16;
        let traffic = ring_traffic(c, 10);
        let dist = mesh_lut(c);
        let outcome = optimize_placement(&traffic, &dist, &PlaceConfig::default()).unwrap();
        assert!(outcome.optimized_cost <= outcome.identity_cost);
        // identity on a 4x4 mesh prices the ring's wrap edge at 6 hops
        // (Manhattan distance corner to corner along the row-major order);
        // a snake placement brings every ring edge to 1-2 hops
        assert!(
            outcome.optimized_cost < outcome.identity_cost,
            "ring traffic must beat identity: {} !< {}",
            outcome.optimized_cost,
            outcome.identity_cost
        );
        assert_eq!(
            placement_cost(&traffic, &dist, outcome.placement.as_slice()),
            outcome.optimized_cost
        );
        assert!(outcome.relative_gain() > 0.0);
    }

    #[test]
    fn optimizer_is_deterministic_across_thread_counts() {
        let traffic = ring_traffic(12, 7);
        let dist = DistanceLut::new(&Torus::for_crossbars(12));
        let base = PlaceConfig {
            restarts: 6,
            ..PlaceConfig::default()
        };
        let one = optimize_placement(&traffic, &dist, &PlaceConfig { threads: 1, ..base }).unwrap();
        for threads in [2usize, 3, 8] {
            let multi =
                optimize_placement(&traffic, &dist, &PlaceConfig { threads, ..base }).unwrap();
            assert_eq!(one, multi, "threads={threads}");
        }
    }

    #[test]
    fn degenerate_inputs_handled() {
        // single cluster: identity is the only permutation
        let traffic = TrafficMatrix::from_raw(1, vec![0]);
        let dist = mesh_lut(1);
        let outcome = optimize_placement(&traffic, &dist, &PlaceConfig::default()).unwrap();
        assert!(outcome.placement.is_identity());
        assert_eq!(outcome.optimized_cost, 0);
        // empty traffic: every permutation costs zero; identity wins
        let traffic = TrafficMatrix::from_raw(4, vec![0; 16]);
        let dist = mesh_lut(4);
        let outcome = optimize_placement(&traffic, &dist, &PlaceConfig::default()).unwrap();
        assert_eq!(outcome.optimized_cost, 0);
        assert_eq!(outcome.identity_cost, 0);
    }

    #[test]
    fn relative_gain_guards_empty_traffic() {
        // empty traffic matrix ⇒ identity_cost == 0: the gain must be a
        // clean 0.0, not NaN poisoning serialized reports
        let traffic = TrafficMatrix::from_raw(4, vec![0; 16]);
        let dist = mesh_lut(4);
        let outcome = optimize_placement(&traffic, &dist, &PlaceConfig::default()).unwrap();
        assert_eq!(outcome.identity_cost, 0);
        assert_eq!(outcome.relative_gain(), 0.0);
        assert!(!outcome.relative_gain().is_nan());
        // and the non-degenerate path still reports the true ratio
        let traffic = ring_traffic(16, 10);
        let dist = mesh_lut(16);
        let outcome = optimize_placement(&traffic, &dist, &PlaceConfig::default()).unwrap();
        assert!(outcome.identity_cost > 0);
        let expected = 1.0 - outcome.optimized_cost as f64 / outcome.identity_cost as f64;
        assert_eq!(outcome.relative_gain(), expected);
        assert!(outcome.relative_gain() > 0.0 && outcome.relative_gain() <= 1.0);
    }

    #[test]
    fn more_threads_than_restarts_is_identical_and_well_formed() {
        // regression for the ceil-division chunking: threads > restarts
        // used to hand tail workers empty `lo >= hi` ranges. The clamped
        // base/extra split must keep results byte-identical and (in debug
        // builds) asserts the partition is exact and chunk-empty-free.
        let traffic = ring_traffic(9, 3);
        let dist = mesh_lut(9);
        let base = PlaceConfig {
            restarts: 3,
            ..PlaceConfig::default()
        };
        let one = optimize_placement(&traffic, &dist, &PlaceConfig { threads: 1, ..base }).unwrap();
        for threads in [3usize, 4, 7, 16] {
            let multi =
                optimize_placement(&traffic, &dist, &PlaceConfig { threads, ..base }).unwrap();
            assert_eq!(one, multi, "threads={threads} restarts=3");
        }
    }

    #[test]
    fn cluster_local_traffic_never_enters_the_matrix() {
        use crate::graph::SpikeGraph;
        // every synapse stays inside its neuron's cluster: the matrix must
        // be all-zero under both accounting modes (local spikes never
        // touch the interconnect), so placement cost is zero everywhere
        let g = SpikeGraph::from_parts(
            4,
            vec![(0, 1), (1, 0), (2, 3), (3, 2)],
            vec![10, 20, 30, 40],
        )
        .unwrap();
        let m = Mapping::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        for mode in [TrafficMode::PerCrossbar, TrafficMode::PerSynapse] {
            let traffic = TrafficMatrix::from_mapping(&g, &m, mode);
            assert_eq!(traffic.total_packets(), 0, "{mode:?}");
            let dist = mesh_lut(2);
            assert_eq!(placement_cost(&traffic, &dist, &[0, 1]), 0);
        }
    }

    /// A clustered graph whose multicast groups have real shared-prefix
    /// structure: each source neuron fans out to several remote clusters.
    fn fanout_graph_and_mapping(c: usize) -> (crate::graph::SpikeGraph, Mapping) {
        use crate::graph::SpikeGraph;
        let n = (c * 2) as u32;
        let mut synapses = Vec::new();
        for i in 0..n {
            // each neuron targets the next three clusters' first neuron
            for k in 1..=3u32 {
                synapses.push((i, ((i / 2 + k) % c as u32) * 2));
            }
        }
        let counts = (0..n).map(|i| 3 + i % 5).collect();
        let g = SpikeGraph::from_parts(n, synapses, counts).unwrap();
        let m = Mapping::from_assignment((0..n).map(|i| i / 2).collect(), c).unwrap();
        (g, m)
    }

    #[test]
    fn pairwise_mode_ignores_tree_aware_flag() {
        // regression pin: adding tree pricing must leave the pairwise
        // optimizer byte-identical — the flag is not consulted there
        let traffic = ring_traffic(16, 10);
        let dist = mesh_lut(16);
        let off = optimize_placement(&traffic, &dist, &PlaceConfig::default()).unwrap();
        let on = optimize_placement(
            &traffic,
            &dist,
            &PlaceConfig {
                tree_aware: true,
                ..PlaceConfig::default()
            },
        )
        .unwrap();
        assert_eq!(off, on);
    }

    #[test]
    fn tree_cost_matches_pipeline_hop_metrics() {
        use crate::pipeline::{build_flows, MappingPipeline, PipelineConfig, TrafficMode};
        use neuromap_hw::arch::Architecture;
        use neuromap_hw::arch::InterconnectKind;
        use neuromap_noc::config::NocConfig;
        let (g, m) = fanout_graph_and_mapping(16);
        let arch = Architecture::custom(16, 2, InterconnectKind::Mesh).unwrap();
        let noc = NocConfig {
            multicast: true,
            multicast_trees: true,
            ..NocConfig::default()
        };
        let cfg = PipelineConfig::for_arch(arch)
            .with_noc(noc)
            .with_traffic(TrafficMode::PerCrossbar);
        let pipeline = MappingPipeline::new(cfg);
        let flows = build_flows(&g, &m, TrafficMode::PerCrossbar);
        let (weighted, _) = pipeline.hop_metrics(&flows);
        let multicast = MulticastTraffic::from_mapping(&g, &m);
        let identity: Vec<u32> = (0..16).collect();
        let vc = pipeline.config().noc.vc_count;
        assert_eq!(
            multicast.tree_cost(pipeline.topology(), vc, &identity),
            weighted
        );
    }

    #[test]
    fn tree_optimizer_never_loses_to_identity_and_is_deterministic() {
        use neuromap_noc::topology::Mesh2D;
        let (g, m) = fanout_graph_and_mapping(16);
        let traffic = TrafficMatrix::from_mapping(&g, &m, TrafficMode::PerCrossbar);
        let multicast = MulticastTraffic::from_mapping(&g, &m);
        let topo = Mesh2D::for_crossbars(16);
        let dist = DistanceLut::new(&topo);
        let run = |threads: usize| {
            optimize_placement_trees(
                &traffic,
                &multicast,
                &topo,
                1,
                &dist,
                &PlaceConfig {
                    threads,
                    ..PlaceConfig::default()
                },
            )
            .unwrap()
        };
        let one = run(1);
        assert!(one.optimized_cost <= one.identity_cost);
        assert_eq!(
            multicast.tree_cost(&topo, 1, one.placement.as_slice()),
            one.optimized_cost
        );
        for threads in [2usize, 4] {
            assert_eq!(run(threads), one, "threads={threads}");
        }
    }

    #[test]
    fn config_validation() {
        let traffic = ring_traffic(4, 1);
        let dist = mesh_lut(4);
        for bad in [
            PlaceConfig {
                restarts: 0,
                ..PlaceConfig::default()
            },
            PlaceConfig {
                greedy_passes: 0,
                ..PlaceConfig::default()
            },
            PlaceConfig {
                alpha: 0.0,
                ..PlaceConfig::default()
            },
            PlaceConfig {
                threads: 0,
                ..PlaceConfig::default()
            },
        ] {
            assert!(optimize_placement(&traffic, &dist, &bad).is_err());
        }
        // undersized hop table rejected
        let small = mesh_lut(2);
        assert!(optimize_placement(&traffic, &small, &PlaceConfig::default()).is_err());
    }
}
