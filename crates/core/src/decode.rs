//! The binary-PSO re-binarization + repair kernel (Eq. 2–5), as a
//! standalone lane-parallel pass.
//!
//! Every PSO iteration turns each particle's real-valued velocity matrix
//! (`N × C` floats) back into a feasible assignment: per neuron,
//! candidate crossbars are tested in descending-velocity order and
//! accepted with probability `sigmoid(v)` (Eq. 2–3); if no free crossbar
//! is accepted, the highest-velocity free crossbar is assigned (repair,
//! Eq. 4–5). ROADMAP measured this decode/repair loop at ~40 % of a PSO
//! step, so the kernel matters as much as evaluation.
//!
//! Two implementations live here:
//!
//! * [`Decoder::decode`] / [`Decoder::step`] — the **production
//!   lane-parallel pass**: each velocity row is processed in fixed-width
//!   f32 lanes (eligibility-masked maxima accumulated per lane, reduced,
//!   then resolved to the first index attaining the maximum), and
//!   [`Decoder::step`] *fuses* the whole per-iteration pipeline — inertia
//!   decay, the stochastic cognitive/social pulls (Eq. 1), and the
//!   decode/repair — into a single sweep per velocity row, so the swarm's
//!   structure-of-arrays buffer is traversed once per iteration instead
//!   of three times.
//! * [`Decoder::decode_reference`] / [`Decoder::step_reference`] — the
//!   **scalar kernels**: a plain descending-velocity walk per neuron, the
//!   executable specification.
//!
//! ## Equivalence and determinism contract
//!
//! For identical inputs and RNG state, the lane-parallel and scalar
//! kernels produce **bit-identical assignments and RNG streams**
//! (property-tested in `tests/determinism.rs` across random velocity
//! states): the lane-parallel maximum is the same value `max` is a
//! reduction of, non-`NaN` f32 maxima are associative, and both kernels
//! resolve ties to the lowest eligible index. Both consume exactly one
//! acceptance draw per neuron on the fast path, plus one draw per
//! candidate visited by the slow acceptance walk. The kernel is
//! allocation-free after warm-up and shared by every shard of the pooled
//! PSO step (`neuromap_core::pool`), so thread count never changes
//! results.

use rand::rngs::StdRng;
use rand::Rng;

/// Sigmoid.
#[inline]
fn sigmoid(v: f32) -> f32 {
    1.0 / (1.0 + (-v).exp())
}

/// f32 lanes per chunk of the masked-maximum pass: wide enough to fill
/// a 256-bit SIMD register, small enough that remainders stay cheap.
const F_LANES: usize = 8;

/// Piecewise-linear sigmoid over the clamped velocity domain
/// `[-v_max, v_max]`: 4096 segments give an interpolation error below
/// `5e-8` (σ″ ≤ 0.1), far under the `f32` noise floor of the sampling
/// itself, while replacing a libm `exp` per acceptance test with two
/// loads and a fused multiply-add. Deterministic pure-`f32` arithmetic.
#[derive(Debug, Clone)]
struct SigmoidLut {
    lo: f32,
    inv_step: f32,
    table: Vec<f32>,
}

impl SigmoidLut {
    const SEGMENTS: usize = 4096;

    fn new(v_max: f32) -> Self {
        let lo = -v_max;
        let step = (2.0 * v_max) / Self::SEGMENTS as f32;
        let table: Vec<f32> = (0..=Self::SEGMENTS)
            .map(|k| sigmoid(lo + step * k as f32))
            .collect();
        Self {
            lo,
            inv_step: 1.0 / step,
            table,
        }
    }

    /// σ(v) for `v ∈ [-v_max, v_max]` (clamped outside).
    #[inline]
    fn eval(&self, v: f32) -> f32 {
        let x = ((v - self.lo) * self.inv_step).clamp(0.0, (Self::SEGMENTS as f32) - 1e-3);
        let k = x as usize;
        let frac = x - k as f32;
        let a = self.table[k];
        let b = self.table[k + 1];
        a + (b - a) * frac
    }
}

/// Velocity-update weights of the fused [`Decoder::step`] (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepWeights {
    /// Inertia weight `w`.
    pub inertia: f32,
    /// Cognitive acceleration φ₁ (toward the particle's own best).
    pub phi_p: f32,
    /// Social acceleration φ₂ (toward the swarm best).
    pub phi_g: f32,
}

/// Reusable per-shard buffers for the decode kernels.
#[derive(Debug, Clone, Default)]
pub struct DecodeScratch {
    remaining: Vec<u32>,
    tried: Vec<bool>,
}

/// The re-binarization kernel (Eq. 2–3 + repair), shared by all PSO
/// shards. See the [module docs](self) for the equivalence contract
/// between the lane-parallel and reference entry points.
#[derive(Debug, Clone)]
pub struct Decoder {
    n: usize,
    c: usize,
    capacity: u32,
    v_max: f32,
    lut: SigmoidLut,
}

impl Decoder {
    /// Creates a kernel for `n` neurons on `c` crossbars of `capacity`
    /// slots, with velocities clamped to `[-v_max, v_max]`.
    ///
    /// # Panics
    ///
    /// Panics unless `n ≤ c × capacity` (the repair invariant: every
    /// decode must be able to place every neuron) and `v_max > 0`.
    pub fn new(n: usize, c: usize, capacity: u32, v_max: f32) -> Self {
        assert!(
            n as u128 <= c as u128 * u128::from(capacity),
            "total capacity ({c} crossbars × {capacity}) must hold all {n} neurons"
        );
        assert!(v_max > 0.0, "v_max must be positive, got {v_max}");
        Self {
            n,
            c,
            capacity,
            v_max,
            lut: SigmoidLut::new(v_max),
        }
    }

    /// Fills one particle's velocity buffer uniformly over
    /// `[-v_max, v_max)`, two dimensions per RNG word: the init-round
    /// fill is RNG-bound at large `N × C` (a 256-crossbar particle draws
    /// hundreds of thousands of values), so each 64-bit draw feeds two
    /// 24-bit mantissas instead of paying the full per-draw range
    /// machinery twice. Deterministic per RNG stream.
    pub fn fill_velocity(&self, vel: &mut [f32], rng: &mut StdRng) {
        let v_max = self.v_max;
        // exact for 24-bit integers: x / 2^23 - 1 ∈ [-1, 2 - 2^-23)
        let conv = move |x: u32| (x as f32 * (1.0 / 8_388_608.0) - 1.0) * v_max;
        let mut pairs = vel.chunks_exact_mut(2);
        for pair in &mut pairs {
            let r = rng.gen::<u64>();
            pair[0] = conv((r & 0xFF_FFFF) as u32);
            pair[1] = conv(((r >> 24) & 0xFF_FFFF) as u32);
        }
        if let [last] = pairs.into_remainder() {
            let r = rng.gen::<u64>();
            *last = conv((r & 0xFF_FFFF) as u32);
        }
    }

    /// Binarizes one particle's velocities into a feasible assignment —
    /// the lane-parallel production pass.
    ///
    /// # Panics
    ///
    /// Panics if `velocity.len() != n * c` or `out.len() != n` (debug
    /// builds; release builds panic on the first out-of-range access).
    pub fn decode(
        &self,
        velocity: &[f32],
        rng: &mut StdRng,
        out: &mut [u32],
        s: &mut DecodeScratch,
    ) {
        let (n, c) = (self.n, self.c);
        debug_assert_eq!(velocity.len(), n * c);
        debug_assert_eq!(out.len(), n);
        s.reset(c, self.capacity);
        for i in 0..n {
            let row = &velocity[i * c..(i + 1) * c];
            let (arg, arg_v) = masked_argmax(row, &s.remaining);
            let k = self.accept_or_walk(row, rng, s, arg, arg_v);
            s.remaining[k] -= 1;
            out[i] = k as u32;
        }
    }

    /// Binarizes one particle's velocities — the scalar reference walk
    /// (bit-identical to [`Decoder::decode`], including the RNG stream).
    pub fn decode_reference(
        &self,
        velocity: &[f32],
        rng: &mut StdRng,
        out: &mut [u32],
        s: &mut DecodeScratch,
    ) {
        let (n, c) = (self.n, self.c);
        s.reset(c, self.capacity);
        for i in 0..n {
            let row = &velocity[i * c..(i + 1) * c];
            let (arg, arg_v) = masked_argmax_reference(row, &s.remaining);
            let k = self.accept_or_walk(row, rng, s, arg, arg_v);
            s.remaining[k] -= 1;
            out[i] = k as u32;
        }
    }

    /// One full fused PSO iteration for one particle: per neuron row,
    /// inertia decay (+ clamp for `inertia > 1`), the stochastic
    /// cognitive/social pulls (Eq. 1 — at most four touched dimensions
    /// per neuron), and the lane-parallel decode/repair, in a single
    /// sweep over the velocity buffer. `pos` holds the particle's current
    /// assignment on entry and the freshly decoded one on exit.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) on any buffer-length mismatch.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &self,
        w: StepWeights,
        velocity: &mut [f32],
        rng: &mut StdRng,
        pos: &mut [u32],
        pbest: &[u32],
        gbest: &[u32],
        s: &mut DecodeScratch,
    ) {
        let (n, c) = (self.n, self.c);
        debug_assert_eq!(velocity.len(), n * c);
        debug_assert_eq!(pos.len(), n);
        debug_assert_eq!(pbest.len(), n);
        debug_assert_eq!(gbest.len(), n);
        s.reset(c, self.capacity);
        for i in 0..n {
            let row = &mut velocity[i * c..(i + 1) * c];
            self.decay_and_pull(w, row, rng, pos[i], pbest[i], gbest[i]);
            let (arg, arg_v) = masked_argmax(row, &s.remaining);
            let k = self.accept_or_walk(row, rng, s, arg, arg_v);
            s.remaining[k] -= 1;
            pos[i] = k as u32;
        }
    }

    /// Scalar reference of [`Decoder::step`] (bit-identical, including
    /// the RNG stream).
    #[allow(clippy::too_many_arguments)]
    pub fn step_reference(
        &self,
        w: StepWeights,
        velocity: &mut [f32],
        rng: &mut StdRng,
        pos: &mut [u32],
        pbest: &[u32],
        gbest: &[u32],
        s: &mut DecodeScratch,
    ) {
        let (n, c) = (self.n, self.c);
        s.reset(c, self.capacity);
        for i in 0..n {
            let row = &mut velocity[i * c..(i + 1) * c];
            self.decay_and_pull(w, row, rng, pos[i], pbest[i], gbest[i]);
            let (arg, arg_v) = masked_argmax_reference(row, &s.remaining);
            let k = self.accept_or_walk(row, rng, s, arg, arg_v);
            s.remaining[k] -= 1;
            pos[i] = k as u32;
        }
    }

    /// Velocity update for one neuron row: inertia decay applies to every
    /// dimension; the stochastic pulls are non-zero only where the
    /// indicator positions differ (`k ∈ {own, pbest, gbest}`), which
    /// exploits that instead of drawing two random factors for each of
    /// the `C` dimensions. Shared verbatim by the production and
    /// reference steps (it is not part of the differential surface).
    #[inline]
    fn decay_and_pull(
        &self,
        w: StepWeights,
        row: &mut [f32],
        rng: &mut StdRng,
        own: u32,
        pb: u32,
        gb: u32,
    ) {
        for v in row.iter_mut() {
            *v *= w.inertia;
        }
        if w.inertia > 1.0 {
            for v in row.iter_mut() {
                *v = v.clamp(-self.v_max, self.v_max);
            }
        }
        let (own, pb, gb) = (own as usize, pb as usize, gb as usize);
        if pb != own {
            let r1: f32 = rng.gen();
            let r2: f32 = rng.gen();
            row[pb] = (row[pb] + w.phi_p * r1).clamp(-self.v_max, self.v_max);
            row[own] = (row[own] - w.phi_p * r2).clamp(-self.v_max, self.v_max);
        }
        if gb != own {
            let r1: f32 = rng.gen();
            let r2: f32 = rng.gen();
            row[gb] = (row[gb] + w.phi_g * r1).clamp(-self.v_max, self.v_max);
            row[own] = (row[own] - w.phi_g * r2).clamp(-self.v_max, self.v_max);
        }
    }

    /// Acceptance test for the best free crossbar, falling into the slow
    /// descending-velocity walk when it fails. `arg`/`arg_v` come from a
    /// masked argmax over free crossbars (non-empty by the capacity
    /// invariant).
    #[inline]
    fn accept_or_walk(
        &self,
        row: &[f32],
        rng: &mut StdRng,
        s: &mut DecodeScratch,
        arg: usize,
        arg_v: f32,
    ) -> usize {
        debug_assert!(arg != usize::MAX, "total capacity ≥ neurons");
        if rng.gen::<f32>() < self.lut.eval(arg_v) {
            arg
        } else {
            self.decode_slow(row, rng, &s.remaining, &mut s.tried, arg)
        }
    }

    /// Continues the acceptance walk after the top candidate failed:
    /// tests the remaining free crossbars in descending-velocity order;
    /// falls back to the overall-best free crossbar (`fallback`) when
    /// every test fails.
    #[cold]
    fn decode_slow(
        &self,
        row: &[f32],
        rng: &mut StdRng,
        remaining: &[u32],
        tried: &mut [bool],
        fallback: usize,
    ) -> usize {
        tried.fill(false);
        tried[fallback] = true;
        loop {
            let mut arg = usize::MAX;
            let mut arg_v = f32::NEG_INFINITY;
            for (k, &v) in row.iter().enumerate() {
                if remaining[k] != 0 && !tried[k] && v > arg_v {
                    arg_v = v;
                    arg = k;
                }
            }
            if arg == usize::MAX {
                return fallback;
            }
            if rng.gen::<f32>() < self.lut.eval(arg_v) {
                return arg;
            }
            tried[arg] = true;
        }
    }
}

impl DecodeScratch {
    /// Resets the per-particle capacity tallies.
    fn reset(&mut self, c: usize, capacity: u32) {
        self.remaining.clear();
        self.remaining.resize(c, capacity);
        self.tried.resize(c, false);
    }
}

/// Lane-parallel masked argmax: the highest velocity over free crossbars
/// and the first index attaining it. The maximum is accumulated in
/// [`F_LANES`] independent lanes (eligibility applied as a select to
/// `-∞`, so the loop is branch-free and vectorizes), reduced, and then
/// resolved to the **lowest** eligible index with that value — the same
/// tie-breaking as the reference scan.
#[inline]
fn masked_argmax(row: &[f32], remaining: &[u32]) -> (usize, f32) {
    let mut acc = [f32::NEG_INFINITY; F_LANES];
    let chunks = row.len() / F_LANES;
    for ch in 0..chunks {
        let base = ch * F_LANES;
        for lane in 0..F_LANES {
            let eligible = remaining[base + lane] != 0;
            let v = if eligible {
                row[base + lane]
            } else {
                f32::NEG_INFINITY
            };
            acc[lane] = acc[lane].max(v);
        }
    }
    let mut best = f32::NEG_INFINITY;
    for &v in &acc {
        best = best.max(v);
    }
    for k in chunks * F_LANES..row.len() {
        if remaining[k] != 0 {
            best = best.max(row[k]);
        }
    }
    for (k, (&v, &rem)) in row.iter().zip(remaining).enumerate() {
        if rem != 0 && v == best {
            return (k, v);
        }
    }
    (usize::MAX, f32::NEG_INFINITY)
}

/// Scalar reference argmax: a single descending walk keeping the first
/// maximum (strict `>` never replaces an earlier equal value).
#[inline]
fn masked_argmax_reference(row: &[f32], remaining: &[u32]) -> (usize, f32) {
    let mut arg = usize::MAX;
    let mut arg_v = f32::NEG_INFINITY;
    for (k, (&v, &rem)) in row.iter().zip(remaining).enumerate() {
        if rem != 0 && v > arg_v {
            arg_v = v;
            arg = k;
        }
    }
    (arg, arg_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn decode_always_feasible() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 13;
        let c = 4;
        let cap = 4; // 16 ≥ 13
        let decoder = Decoder::new(n, c, cap, 4.0);
        let mut scratch = DecodeScratch::default();
        for _ in 0..50 {
            let velocity: Vec<f32> = (0..n * c).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let mut a = vec![0u32; n];
            decoder.decode(&velocity, &mut rng, &mut a, &mut scratch);
            let mut occ = vec![0u32; c];
            for &k in &a {
                occ[k as usize] += 1;
            }
            assert!(occ.iter().all(|&o| o <= cap));
            assert_eq!(a.len(), n);
        }
    }

    #[test]
    fn decode_prefers_high_velocity() {
        // saturated velocities: every neuron should land on its argmax
        let mut rng = StdRng::seed_from_u64(2);
        let n = 6;
        let c = 3;
        let mut velocity = vec![-8.0f32; n * c];
        for i in 0..n {
            velocity[i * c + i % c] = 8.0;
        }
        let mut a = vec![0u32; n];
        let decoder = Decoder::new(n, c, 2, 8.0);
        let mut scratch = DecodeScratch::default();
        decoder.decode(&velocity, &mut rng, &mut a, &mut scratch);
        for (i, &k) in a.iter().enumerate() {
            assert_eq!(k as usize, i % c, "neuron {i}");
        }
    }

    #[test]
    fn lane_parallel_matches_reference_including_rng_stream() {
        // random velocities on awkward row widths (remainder lanes, ties
        // from clamping) — assignments and post-call RNG states must both
        // match the scalar reference exactly
        for (n, c, cap, seed) in [
            (13usize, 5usize, 3u32, 7u64),
            (40, 7, 6, 8),
            (9, 1, 9, 9),
            (30, 11, 3, 10),
            (8, 67, 1, 11),
        ] {
            let decoder = Decoder::new(n, c, cap, 4.0);
            let mut vel_rng = StdRng::seed_from_u64(seed);
            for round in 0..20 {
                let velocity: Vec<f32> = (0..n * c)
                    .map(|_| {
                        // heavy clamping makes exact ties common
                        vel_rng.gen_range(-6.0f32..6.0).clamp(-4.0, 4.0)
                    })
                    .collect();
                let mut rng_a = StdRng::seed_from_u64(seed ^ (round + 1));
                let mut rng_b = StdRng::seed_from_u64(seed ^ (round + 1));
                let mut a = vec![0u32; n];
                let mut b = vec![0u32; n];
                decoder.decode(&velocity, &mut rng_a, &mut a, &mut DecodeScratch::default());
                decoder.decode_reference(
                    &velocity,
                    &mut rng_b,
                    &mut b,
                    &mut DecodeScratch::default(),
                );
                assert_eq!(a, b, "n={n} c={c} round={round}");
                assert_eq!(
                    rng_a.gen::<u64>(),
                    rng_b.gen::<u64>(),
                    "RNG streams diverged: n={n} c={c} round={round}"
                );
            }
        }
    }

    #[test]
    fn fused_step_matches_reference() {
        let (n, c, cap) = (24usize, 9usize, 4u32);
        let decoder = Decoder::new(n, c, cap, 4.0);
        let w = StepWeights {
            inertia: 0.72,
            phi_p: 1.49,
            phi_g: 1.49,
        };
        let mut vel_rng = StdRng::seed_from_u64(3);
        for round in 0..10 {
            let velocity: Vec<f32> = (0..n * c)
                .map(|_| vel_rng.gen_range(-4.0f32..4.0))
                .collect();
            let pos: Vec<u32> = (0..n).map(|i| (i % c) as u32).collect();
            let pbest: Vec<u32> = (0..n).map(|i| ((i + 1) % c) as u32).collect();
            let gbest: Vec<u32> = (0..n).map(|i| ((i * 3) % c) as u32).collect();
            let (mut va, mut vb) = (velocity.clone(), velocity);
            let (mut pa, mut pb) = (pos.clone(), pos);
            let mut rng_a = StdRng::seed_from_u64(100 + round);
            let mut rng_b = StdRng::seed_from_u64(100 + round);
            decoder.step(
                w,
                &mut va,
                &mut rng_a,
                &mut pa,
                &pbest,
                &gbest,
                &mut DecodeScratch::default(),
            );
            decoder.step_reference(
                w,
                &mut vb,
                &mut rng_b,
                &mut pb,
                &pbest,
                &gbest,
                &mut DecodeScratch::default(),
            );
            assert_eq!(pa, pb, "round {round}");
            assert_eq!(va, vb, "round {round}");
            assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>(), "round {round}");
        }
    }

    #[test]
    fn masked_argmax_respects_eligibility_and_ties() {
        let row = [1.0f32, 3.0, 3.0, 2.0, 3.0, -1.0, 0.5, 0.25, 3.0];
        // highest value 3.0 occurs at 1 (full), 2, 4, 8
        let mut remaining = vec![1u32; 9];
        remaining[1] = 0;
        assert_eq!(masked_argmax(&row, &remaining), (2, 3.0));
        assert_eq!(masked_argmax_reference(&row, &remaining), (2, 3.0));
        remaining[2] = 0;
        remaining[4] = 0;
        assert_eq!(masked_argmax(&row, &remaining), (8, 3.0));
        assert_eq!(masked_argmax_reference(&row, &remaining), (8, 3.0));
    }

    #[test]
    fn fill_velocity_in_range_and_deterministic() {
        let decoder = Decoder::new(7, 9, 2, 4.0);
        let mut a = vec![0f32; 63];
        let mut b = vec![1f32; 63]; // odd length exercises the remainder
        decoder.fill_velocity(&mut a, &mut StdRng::seed_from_u64(5));
        decoder.fill_velocity(&mut b, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-4.0..4.0).contains(v)));
        // roughly centred (weak sanity bound on the mean)
        let mean: f32 = a.iter().sum::<f32>() / a.len() as f32;
        assert!(mean.abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn sigmoid_lut_tracks_exact_sigmoid() {
        let lut = SigmoidLut::new(4.0);
        let mut worst = 0f32;
        for k in 0..=8000 {
            let v = -4.0 + k as f32 * 0.001;
            worst = worst.max((lut.eval(v) - sigmoid(v)).abs());
        }
        assert!(worst < 1e-5, "lut error {worst}");
        // clamped outside the domain
        assert!((lut.eval(100.0) - sigmoid(4.0)).abs() < 1e-5);
        assert!((lut.eval(-100.0) - sigmoid(-4.0)).abs() < 1e-5);
    }
}
