//! The partitioning problem: constraints, cost, and the `Partitioner`
//! interface shared by the PSO and all baselines.

use crate::error::CoreError;
use crate::graph::SpikeGraph;
use neuromap_hw::mapping::Mapping;
use neuromap_noc::topology::DistanceLut;

/// An instance of the paper's optimization problem (§III): a spike graph to
/// split over `num_crossbars` crossbars of `capacity` neurons each.
///
/// The cost of an assignment is **Eq. 8**: the total spike count over cut
/// synapses, `F = Σ_{(i,j) ∈ S, cb(i) ≠ cb(j)} |T_i|`.
///
/// Hop-aware instances ([`PartitionProblem::with_hops`]) additionally
/// carry the interconnect's crossbar-to-crossbar hop distances, enabling
/// the [`FitnessKind::CutHops`] objective that prices each packet by how
/// far it actually travels on the NoC instead of counting every cut the
/// same.
#[derive(Debug, Clone, Copy)]
pub struct PartitionProblem<'g> {
    graph: &'g SpikeGraph,
    num_crossbars: usize,
    capacity: u32,
    hops: Option<&'g DistanceLut>,
}

/// Largest representable crossbar count: assignments store crossbar ids
/// as `u32`, and the evaluators size their per-source tallies and
/// remote-crossbar mask strides (`⌈C / 64⌉` words) from the id domain.
/// Counts beyond this used to slip through construction and only blow up
/// later as wrapped indices or debug assertions deep inside the engines;
/// [`PartitionProblem::new`] now rejects them up front.
pub const MAX_CROSSBARS: usize = u32::MAX as usize;

impl<'g> PartitionProblem<'g> {
    /// Creates a problem instance.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidParameter`] for zero crossbars/capacity, a
    ///   crossbar count above [`MAX_CROSSBARS`], or a `neurons ×
    ///   crossbars` tally footprint that cannot be indexed on this
    ///   platform (the packet evaluator's per-source stride would
    ///   overflow `usize`).
    /// * [`CoreError::Infeasible`] when total capacity cannot hold the
    ///   graph's neurons (no assignment satisfies Eq. 4–5).
    pub fn new(
        graph: &'g SpikeGraph,
        num_crossbars: usize,
        capacity: u32,
    ) -> Result<Self, CoreError> {
        if num_crossbars == 0 {
            return Err(CoreError::InvalidParameter {
                name: "num_crossbars",
                value: "0".into(),
            });
        }
        if num_crossbars > MAX_CROSSBARS {
            return Err(CoreError::InvalidParameter {
                name: "num_crossbars",
                value: format!("{num_crossbars} (max {MAX_CROSSBARS})"),
            });
        }
        if (graph.num_neurons() as u128) * (num_crossbars as u128) > usize::MAX as u128 {
            return Err(CoreError::InvalidParameter {
                name: "num_crossbars",
                value: format!(
                    "{num_crossbars} ({} neurons × {num_crossbars} crossbars overflows usize)",
                    graph.num_neurons()
                ),
            });
        }
        if capacity == 0 {
            return Err(CoreError::InvalidParameter {
                name: "capacity",
                value: "0".into(),
            });
        }
        // both factors are ≤ u32::MAX here, so the u64 product is exact
        if graph.num_neurons() as u64 > num_crossbars as u64 * capacity as u64 {
            return Err(CoreError::Infeasible {
                neurons: graph.num_neurons(),
                crossbars: num_crossbars,
                capacity,
            });
        }
        Ok(Self {
            graph,
            num_crossbars,
            capacity,
            hops: None,
        })
    }

    /// Attaches the interconnect's hop-distance table, enabling the
    /// [`FitnessKind::CutHops`] objective (the other objectives ignore
    /// it). The staged pipeline builds the [`DistanceLut`] once per
    /// topology and threads it through here.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if the table covers fewer crossbars
    /// than this problem targets.
    pub fn with_hops(mut self, hops: &'g DistanceLut) -> Result<Self, CoreError> {
        if hops.num_crossbars() < self.num_crossbars {
            return Err(CoreError::InvalidParameter {
                name: "hops",
                value: format!(
                    "{} crossbars covered, problem targets {}",
                    hops.num_crossbars(),
                    self.num_crossbars
                ),
            });
        }
        self.hops = Some(hops);
        Ok(self)
    }

    /// The attached hop-distance table, if any.
    pub fn hops(&self) -> Option<&'g DistanceLut> {
        self.hops
    }

    /// The underlying spike graph.
    pub fn graph(&self) -> &'g SpikeGraph {
        self.graph
    }

    /// Number of crossbars (the paper's `C`).
    pub fn num_crossbars(&self) -> usize {
        self.num_crossbars
    }

    /// Neurons per crossbar (the paper's `Nc`).
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Eq. 8 cost: spikes crossing crossbar boundaries under `assignment`
    /// (`assignment[i]` = crossbar of neuron `i`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_neurons`.
    pub fn cut_spikes(&self, assignment: &[u32]) -> u64 {
        assert_eq!(
            assignment.len(),
            self.graph.num_neurons() as usize,
            "assignment must cover every neuron"
        );
        let mut cut = 0u64;
        for i in 0..self.graph.num_neurons() {
            let c = self.graph.count(i) as u64;
            if c == 0 {
                continue;
            }
            let home = assignment[i as usize];
            let remote = self
                .graph
                .targets(i)
                .iter()
                .filter(|&&j| assignment[j as usize] != home)
                .count() as u64;
            cut += c * remote;
        }
        cut
    }

    /// Multicast-aware traffic: *packets* crossing the interconnect when
    /// one spike to many synapses on the same remote crossbar travels once.
    /// `Σ_i |T_i| · |{distinct remote crossbars of i's targets}|`.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_neurons`.
    pub fn cut_packets(&self, assignment: &[u32]) -> u64 {
        assert_eq!(assignment.len(), self.graph.num_neurons() as usize);
        let mut total = 0u64;
        let mut seen = vec![u32::MAX; self.num_crossbars];
        for i in 0..self.graph.num_neurons() {
            let c = self.graph.count(i) as u64;
            if c == 0 {
                continue;
            }
            let home = assignment[i as usize];
            let mut distinct = 0u64;
            for &j in self.graph.targets(i) {
                let cb = assignment[j as usize];
                if cb != home && seen[cb as usize] != i {
                    seen[cb as usize] = i;
                    distinct += 1;
                }
            }
            total += c * distinct;
        }
        total
    }

    /// Hop-weighted multicast traffic: every distinct remote destination
    /// crossbar of a spiking neuron is priced by the interconnect hop
    /// distance from the neuron's home crossbar instead of counting 1 —
    /// `Σ_i |T_i| · Σ_{k ∈ distinct target crossbars of i} hops(cb(i), k)`.
    /// Local targets contribute zero (`hops(a, a) = 0`), so the sum runs
    /// over all target crossbars uniformly. With an all-ones off-diagonal
    /// distance matrix this degenerates to [`PartitionProblem::cut_packets`].
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_neurons` or no hop table is
    /// attached ([`PartitionProblem::with_hops`]).
    pub fn cut_hops(&self, assignment: &[u32]) -> u64 {
        assert_eq!(assignment.len(), self.graph.num_neurons() as usize);
        let hops = self
            .hops
            .expect("CutHops requires a hop table; attach one with `with_hops`");
        let mut total = 0u64;
        let mut seen = vec![u32::MAX; self.num_crossbars];
        for i in 0..self.graph.num_neurons() {
            let c = self.graph.count(i) as u64;
            if c == 0 {
                continue;
            }
            let home = assignment[i as usize];
            let mut weighted = 0u64;
            for &j in self.graph.targets(i) {
                let cb = assignment[j as usize];
                if seen[cb as usize] != i {
                    seen[cb as usize] = i;
                    weighted += u64::from(hops.hops(home, cb));
                }
            }
            total += c * weighted;
        }
        total
    }

    /// Whether `assignment` satisfies Eq. 4 (covered structurally) and
    /// Eq. 5 (capacity).
    pub fn is_feasible(&self, assignment: &[u32]) -> bool {
        if assignment.len() != self.graph.num_neurons() as usize {
            return false;
        }
        let mut occ = vec![0u32; self.num_crossbars];
        for &c in assignment {
            if c as usize >= self.num_crossbars {
                return false;
            }
            occ[c as usize] += 1;
            if occ[c as usize] > self.capacity {
                return false;
            }
        }
        true
    }

    /// Wraps a feasible assignment in a [`Mapping`].
    ///
    /// # Errors
    ///
    /// [`CoreError::Infeasible`] if the assignment violates capacity,
    /// [`CoreError::Hw`] if it references out-of-range crossbars.
    pub fn into_mapping(&self, assignment: Vec<u32>) -> Result<Mapping, CoreError> {
        if !self.is_feasible(&assignment) {
            return Err(CoreError::Infeasible {
                neurons: self.graph.num_neurons(),
                crossbars: self.num_crossbars,
                capacity: self.capacity,
            });
        }
        Ok(Mapping::from_assignment(assignment, self.num_crossbars)?)
    }
}

/// Which traffic objective a partitioner minimizes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum FitnessKind {
    /// Eq. 8 of the paper: spikes crossing crossbar boundaries, counted per
    /// cut synapse (AER without multicast deduplication).
    #[default]
    CutSpikes,
    /// Multicast-aware extension: AER *packets* on the interconnect —
    /// duplicate destinations within a crossbar collapse to one.
    CutPackets,
    /// Hop-aware extension: packets weighted by the interconnect hop
    /// distance between source and destination crossbars — the objective
    /// the NoC's energy and latency actually scale with. Requires a hop
    /// table on the problem ([`PartitionProblem::with_hops`]).
    CutHops,
}

impl<'g> PartitionProblem<'g> {
    /// Cost of `assignment` under the chosen fitness kind.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_neurons`, or for
    /// [`FitnessKind::CutHops`] without an attached hop table.
    pub fn cost(&self, kind: FitnessKind, assignment: &[u32]) -> u64 {
        match kind {
            FitnessKind::CutSpikes => self.cut_spikes(assignment),
            FitnessKind::CutPackets => self.cut_packets(assignment),
            FitnessKind::CutHops => self.cut_hops(assignment),
        }
    }

    /// Cost change of migrating neuron `i` to crossbar `to` under the
    /// Eq. 8 cut-spike objective — O(deg(i)) via the in/out CSRs instead
    /// of a full re-evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `i` or any index in the CSR rows is out of range for
    /// `assignment`.
    pub fn move_delta_spikes(&self, assignment: &[u32], i: usize, to: u32) -> i64 {
        let g = self.graph;
        let from = assignment[i];
        if from == to {
            return 0;
        }
        let mut delta = 0i64;
        let ci = g.count(i as u32) as i64;
        for &j in g.targets(i as u32) {
            if j as usize == i {
                continue;
            }
            let cj = assignment[j as usize];
            delta += ci * ((cj != to) as i64 - (cj != from) as i64);
        }
        for &p in g.sources(i as u32) {
            if p as usize == i {
                continue;
            }
            let cp = assignment[p as usize];
            delta += g.count(p) as i64 * ((cp != to) as i64 - (cp != from) as i64);
        }
        delta
    }
}

/// A partitioning algorithm: produces a feasible neuron → crossbar mapping
/// for a [`PartitionProblem`].
pub trait Partitioner {
    /// Short identifier used in reports ("pso", "pacman", ...).
    fn name(&self) -> &'static str;

    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// Implementations return [`CoreError`] when the instance is infeasible
    /// or the algorithm's configuration is invalid.
    fn partition(&self, problem: &PartitionProblem<'_>) -> Result<Mapping, CoreError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph() -> SpikeGraph {
        // 0 →(10) 1 →(20) 2 →(30) 3
        SpikeGraph::from_parts(4, vec![(0, 1), (1, 2), (2, 3)], vec![10, 20, 30, 0]).unwrap()
    }

    #[test]
    fn problem_validation() {
        let g = line_graph();
        assert!(PartitionProblem::new(&g, 0, 2).is_err());
        assert!(PartitionProblem::new(&g, 2, 0).is_err());
        assert!(matches!(
            PartitionProblem::new(&g, 2, 1),
            Err(CoreError::Infeasible { .. })
        ));
        assert!(PartitionProblem::new(&g, 2, 2).is_ok());
    }

    #[test]
    fn oversized_crossbar_counts_rejected_up_front() {
        // counts beyond the u32 id domain used to survive construction
        // (and overflow the u64 capacity product in release builds);
        // they must now fail loudly as InvalidParameter, not Infeasible
        let g = line_graph();
        assert!(matches!(
            PartitionProblem::new(&g, MAX_CROSSBARS + 1, 1),
            Err(CoreError::InvalidParameter {
                name: "num_crossbars",
                ..
            })
        ));
        // the u64-overflow regression case: crossbars × capacity wraps
        assert!(matches!(
            PartitionProblem::new(&g, usize::MAX, u32::MAX),
            Err(CoreError::InvalidParameter {
                name: "num_crossbars",
                ..
            })
        ));
        // the ceiling itself is representable (construction is O(1))
        assert!(PartitionProblem::new(&g, MAX_CROSSBARS, 1).is_ok());
    }

    #[test]
    fn cut_cost_counts_presynaptic_spikes() {
        let g = line_graph();
        let p = PartitionProblem::new(&g, 2, 2).unwrap();
        // split {0,1} | {2,3}: only synapse (1,2) is cut → 20 spikes
        assert_eq!(p.cut_spikes(&[0, 0, 1, 1]), 20);
        // split {0,2} | {1,3}: all three synapses cut → 10 + 20 + 30
        assert_eq!(p.cut_spikes(&[0, 1, 0, 1]), 60);
        // everything local (infeasible capacity-wise but cost is defined)
        assert_eq!(p.cut_spikes(&[0, 0, 0, 0]), 0);
    }

    #[test]
    fn multicast_cost_deduplicates_crossbars() {
        // neuron 0 fires 5 times into three targets on the same remote crossbar
        let g = SpikeGraph::from_parts(4, vec![(0, 1), (0, 2), (0, 3)], vec![5, 0, 0, 0]).unwrap();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let a = [0, 1, 1, 1];
        assert_eq!(p.cut_spikes(&a), 15); // per-synapse
        assert_eq!(p.cut_packets(&a), 5); // one packet per spike
    }

    #[test]
    fn cut_hops_prices_distance_and_degenerates_to_packets_nearby() {
        use neuromap_noc::topology::{DistanceLut, Mesh2D};
        // neuron 0 fires 5 times into targets on crossbars 1 (1 hop away)
        // and 3 (2 hops away on a 2x2 mesh)
        let g = SpikeGraph::from_parts(4, vec![(0, 1), (0, 2), (0, 3)], vec![5, 0, 0, 0]).unwrap();
        let topo = Mesh2D::grid(2, 2, 4);
        let lut = DistanceLut::new(&topo);
        let p = PartitionProblem::new(&g, 4, 4)
            .unwrap()
            .with_hops(&lut)
            .unwrap();
        // targets 1,2 on crossbar 1; target 3 on crossbar 3
        let a = [0, 1, 1, 3];
        assert_eq!(p.cut_packets(&a), 10); // 5 spikes × 2 remote crossbars
        assert_eq!(p.cut_hops(&a), 5 * (1 + 2)); // weighted by hops
                                                 // all targets local → zero under every objective
        let local = [0, 0, 0, 0];
        assert_eq!(p.cut_hops(&local), 0);
        assert_eq!(p.cost(FitnessKind::CutHops, &a), p.cut_hops(&a));
    }

    #[test]
    fn with_hops_rejects_undersized_tables() {
        use neuromap_noc::topology::{DistanceLut, Mesh2D};
        let g = line_graph();
        let topo = Mesh2D::grid(1, 2, 2);
        let lut = DistanceLut::new(&topo);
        // 3-crossbar problem, 2-crossbar table
        assert!(PartitionProblem::new(&g, 3, 2)
            .unwrap()
            .with_hops(&lut)
            .is_err());
        assert!(PartitionProblem::new(&g, 2, 2)
            .unwrap()
            .with_hops(&lut)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "hop table")]
    fn cut_hops_without_table_panics_loudly() {
        let g = line_graph();
        let p = PartitionProblem::new(&g, 2, 2).unwrap();
        let _ = p.cut_hops(&[0, 0, 1, 1]);
    }

    #[test]
    fn feasibility_checks() {
        let g = line_graph();
        let p = PartitionProblem::new(&g, 2, 2).unwrap();
        assert!(p.is_feasible(&[0, 0, 1, 1]));
        assert!(!p.is_feasible(&[0, 0, 0, 1])); // capacity
        assert!(!p.is_feasible(&[0, 0, 2, 1])); // range
        assert!(!p.is_feasible(&[0, 0, 1])); // length
    }

    #[test]
    fn into_mapping_validates() {
        let g = line_graph();
        let p = PartitionProblem::new(&g, 2, 2).unwrap();
        assert!(p.into_mapping(vec![0, 0, 1, 1]).is_ok());
        assert!(p.into_mapping(vec![0, 0, 0, 1]).is_err());
    }

    #[test]
    fn cost_dispatches_by_kind() {
        let g = SpikeGraph::from_parts(3, vec![(0, 1), (0, 2)], vec![4, 0, 0]).unwrap();
        let p = PartitionProblem::new(&g, 2, 2).unwrap();
        let a = [0, 1, 1];
        assert_eq!(p.cost(FitnessKind::CutSpikes, &a), 8);
        assert_eq!(p.cost(FitnessKind::CutPackets, &a), 4);
    }

    #[test]
    fn move_delta_spikes_matches_recompute() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        // random sparse graph with a recurrent edge mix
        let n = 12u32;
        let mut synapses = Vec::new();
        for _ in 0..40 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            synapses.push((a, b));
        }
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(0..10)).collect();
        let g = SpikeGraph::from_parts(n, synapses, counts).unwrap();
        let p = PartitionProblem::new(&g, 3, 8).unwrap();
        let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let base = p.cut_spikes(&a) as i64;
        for i in 0..n as usize {
            for to in 0..3u32 {
                let mut b = a.clone();
                b[i] = to;
                let expected = p.cut_spikes(&b) as i64 - base;
                assert_eq!(p.move_delta_spikes(&a, i, to), expected, "i={i} to={to}");
            }
        }
    }
}
