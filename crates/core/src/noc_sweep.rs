//! Interconnect-parameter exploration: the Noxim configurables the paper
//! quotes — buffer size, packet size (flits), arbitration ("selection
//! strategy") and clock ratio — swept for a fixed application and mapping.
//!
//! Complements [`crate::explore`] (which sweeps the *architecture*): here
//! the mapping stays fixed and the interconnect's micro-parameters move,
//! answering the designer's second-order questions (how deep do the router
//! FIFOs need to be? does the arbitration policy matter for this traffic?).
//!
//! Sweeps run on whichever engine [`PipelineConfig::engine`] selects; the
//! event-driven default makes wide sweeps cheap, and the tests pin every
//! sweep point to the cycle-driven oracle's output.
//!
//! The architecture is fixed across a sweep, so every sweep builds **one**
//! [`MappingPipeline`] — router graph and hop-distance table derived once
//! — and walks the parameter grid through
//! [`MappingPipeline::with_noc`], instead of rebuilding the
//! `Box<dyn Topology>` from scratch at every point as the pre-staged
//! pipeline did.

use crate::error::CoreError;
use crate::graph::SpikeGraph;
use crate::pipeline::{MappingPipeline, PipelineConfig};
use neuromap_hw::mapping::Mapping;
use neuromap_noc::config::NocConfig;
use neuromap_noc::router::Arbitration;
use neuromap_noc::stats::NocStats;
use neuromap_noc::trace::SpotterReport;
use serde::{Deserialize, Serialize};

/// Congested lanes the spotter reports per traced sweep point.
const SPOTTER_TOP_LANES: usize = 8;
/// Dominant flows the spotter names per congested lane.
const SPOTTER_TOP_FLOWS: usize = 3;

/// Shared sweep driver: one pipeline, one `NocConfig` edit per point.
fn sweep_points<T>(
    graph: &SpikeGraph,
    mapping: &Mapping,
    base: &PipelineConfig,
    settings: impl IntoIterator<Item = T>,
    label: impl Fn(&T) -> String,
    apply: impl Fn(&T, &mut NocConfig),
) -> Result<Vec<NocSweepPoint>, CoreError> {
    let pipeline = MappingPipeline::new(base.clone());
    sweep_points_with(&pipeline, graph, mapping, settings, label, apply)
}

/// [`sweep_points`] over a caller-owned pipeline: every point goes
/// through [`MappingPipeline::with_noc`], which shares the pipeline's
/// `Arc<dyn Topology>` and distance table instead of rebuilding them.
fn sweep_points_with<T>(
    pipeline: &MappingPipeline,
    graph: &SpikeGraph,
    mapping: &Mapping,
    settings: impl IntoIterator<Item = T>,
    label: impl Fn(&T) -> String,
    apply: impl Fn(&T, &mut NocConfig),
) -> Result<Vec<NocSweepPoint>, CoreError> {
    settings
        .into_iter()
        .map(|setting| {
            let mut noc = pipeline.config().noc;
            apply(&setting, &mut noc);
            let (report, trace) =
                pipeline
                    .with_noc(noc)
                    .evaluate_traced(graph, mapping.clone(), "sweep")?;
            Ok(NocSweepPoint {
                setting: label(&setting),
                stats: report.noc,
                hotspots: trace.map(|t| t.spot_congestion(SPOTTER_TOP_LANES, SPOTTER_TOP_FLOWS)),
            })
        })
        .collect()
}

/// Per-point interconnect overrides for a mixed sweep: any field left
/// `None` inherits the base configuration's value, so one sweep can walk
/// e.g. `(depth 64, 1 VC)` → `(depth 2, 2 VCs)` without cloning whole
/// configs per point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NocOverride {
    /// Overrides [`NocConfig::buffer_depth`] for this point.
    pub buffer_depth: Option<usize>,
    /// Overrides [`NocConfig::vc_count`] for this point.
    pub vc_count: Option<usize>,
}

impl NocOverride {
    fn apply(&self, noc: &mut NocConfig) {
        if let Some(d) = self.buffer_depth {
            noc.buffer_depth = d;
        }
        if let Some(v) = self.vc_count {
            noc.vc_count = v;
        }
    }
}

/// Sweeps heterogeneous `(buffer_depth, vc_count)` points — unlike the
/// single-knob sweeps, every point may override both knobs independently
/// (the shallow-FIFO / virtual-channel trade-off study needs exactly
/// this: deep buffers without VCs against shallow buffers with them).
///
/// # Errors
///
/// Propagates pipeline errors for any point (including
/// [`CoreError::Noc`] wrapping a cycle-budget wedge for
/// deadlock-capable single-VC torus points).
pub fn mixed_sweep(
    graph: &SpikeGraph,
    mapping: &Mapping,
    base: &PipelineConfig,
    points: &[NocOverride],
) -> Result<Vec<NocSweepPoint>, CoreError> {
    let pipeline = MappingPipeline::new(base.clone());
    mixed_sweep_with(&pipeline, graph, mapping, points)
}

/// [`mixed_sweep`] over a caller-owned pipeline, reusing its shared
/// topology and distance table across every point.
pub fn mixed_sweep_with(
    pipeline: &MappingPipeline,
    graph: &SpikeGraph,
    mapping: &Mapping,
    points: &[NocOverride],
) -> Result<Vec<NocSweepPoint>, CoreError> {
    sweep_points_with(
        pipeline,
        graph,
        mapping,
        points.iter().copied(),
        |p| {
            let base = pipeline.config().noc;
            format!(
                "buffer_depth={},vc_count={}",
                p.buffer_depth.unwrap_or(base.buffer_depth),
                p.vc_count.unwrap_or(base.vc_count)
            )
        },
        |p, noc| p.apply(noc),
    )
}

/// One point of an interconnect-parameter sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocSweepPoint {
    /// Human-readable parameter setting ("buffer_depth=2", ...).
    pub setting: String,
    /// Full interconnect statistics at this setting.
    pub stats: NocStats,
    /// Congestion-spotter report over the point's event trace —
    /// present only when [`NocConfig::trace`] was on for the point.
    /// Skipped in serialized form when absent, so sweep outputs written
    /// before the trace layer (and all untraced sweeps) are unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub hotspots: Option<SpotterReport>,
}

/// Sweeps the router input-buffer depth.
///
/// # Errors
///
/// Propagates pipeline errors for any point.
pub fn buffer_depth_sweep(
    graph: &SpikeGraph,
    mapping: &Mapping,
    base: &PipelineConfig,
    depths: &[usize],
) -> Result<Vec<NocSweepPoint>, CoreError> {
    sweep_points(
        graph,
        mapping,
        base,
        depths.iter().copied(),
        |d| format!("buffer_depth={d}"),
        |&d, noc| noc.buffer_depth = d,
    )
}

/// Sweeps the packet size in flits (AER payload over link width).
///
/// # Errors
///
/// Propagates pipeline errors for any point.
pub fn packet_size_sweep(
    graph: &SpikeGraph,
    mapping: &Mapping,
    base: &PipelineConfig,
    flit_counts: &[u32],
) -> Result<Vec<NocSweepPoint>, CoreError> {
    sweep_points(
        graph,
        mapping,
        base,
        flit_counts.iter().copied(),
        |f| format!("flits_per_packet={f}"),
        |&f, noc| noc.flits_per_packet = f,
    )
}

/// Sweeps the arbitration ("selection") policy.
///
/// # Errors
///
/// Propagates pipeline errors for any point.
pub fn arbitration_sweep(
    graph: &SpikeGraph,
    mapping: &Mapping,
    base: &PipelineConfig,
) -> Result<Vec<NocSweepPoint>, CoreError> {
    sweep_points(
        graph,
        mapping,
        base,
        [
            Arbitration::RoundRobin,
            Arbitration::OldestFirst,
            Arbitration::FixedPriority,
        ],
        |arb| format!("arbitration={arb:?}"),
        |&arb, noc| noc.arbitration = arb,
    )
}

/// Sweeps the interconnect clock ratio (cycles per SNN timestep) — the
/// power/performance axis the §V-B analysis walks.
///
/// # Errors
///
/// Propagates pipeline errors for any point.
pub fn clock_sweep(
    graph: &SpikeGraph,
    mapping: &Mapping,
    base: &PipelineConfig,
    cycles_per_step: &[u64],
) -> Result<Vec<NocSweepPoint>, CoreError> {
    sweep_points(
        graph,
        mapping,
        base,
        cycles_per_step.iter().copied(),
        |c| format!("cycles_per_step={c}"),
        |&c, noc| noc.cycles_per_step = c,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::PacmanPartitioner;
    use crate::partition::{PartitionProblem, Partitioner};
    use neuromap_hw::arch::{Architecture, InterconnectKind};
    use neuromap_snn::spikes::SpikeTrain;

    fn setup() -> (SpikeGraph, Mapping, PipelineConfig) {
        // a bursty two-layer net
        let mut synapses = Vec::new();
        for a in 0..8u32 {
            for b in 8..16u32 {
                synapses.push((a, b));
            }
        }
        let trains: Vec<SpikeTrain> = (0..16)
            .map(|i| {
                if i < 8 {
                    SpikeTrain::from_times((0..20).map(|k| k * 10).collect())
                } else {
                    SpikeTrain::new()
                }
            })
            .collect();
        let graph = SpikeGraph::from_trains(16, synapses, trains).unwrap();
        let arch = Architecture::custom(4, 6, InterconnectKind::Mesh).unwrap();
        let cfg = PipelineConfig::for_arch(arch);
        let problem = PartitionProblem::new(&graph, 4, 6).unwrap();
        let mapping = PacmanPartitioner::new().partition(&problem).unwrap();
        (graph, mapping, cfg)
    }

    #[test]
    fn sweep_points_identical_across_engines() {
        // a sweep is many simulator runs — assert each point agrees with
        // the oracle engine byte-for-byte
        let (graph, mapping, cfg) = setup();
        let oracle_cfg = cfg
            .clone()
            .with_engine(neuromap_noc::sim::EngineKind::CycleOracle);
        let depths = [1usize, 2, 8];
        let ev = buffer_depth_sweep(&graph, &mapping, &cfg, &depths).unwrap();
        let or = buffer_depth_sweep(&graph, &mapping, &oracle_cfg, &depths).unwrap();
        assert_eq!(ev.len(), or.len());
        for (e, o) in ev.iter().zip(&or) {
            assert_eq!(e.setting, o.setting);
            assert_eq!(
                e.stats.digest().unwrap(),
                o.stats.digest().unwrap(),
                "{}",
                e.setting
            );
        }
    }

    #[test]
    fn sweep_runs_on_a_256_crossbar_mesh() {
        // a PSO-produced mapping on a full 16 × 16 mesh: the optimizer
        // exercises the multi-word batched evaluator end to end, and the
        // interconnect sweep stays conservation-clean at 256 routers
        use crate::partition::FitnessKind;
        use crate::pso::{PsoConfig, PsoPartitioner};

        // ring-of-rings: 320 neurons, local chains plus long skips
        let n = 320u32;
        let mut synapses = Vec::new();
        for i in 0..n {
            synapses.push((i, (i + 1) % n));
            if i % 5 == 0 {
                synapses.push((i, (i + 97) % n));
            }
        }
        let trains: Vec<SpikeTrain> = (0..n)
            .map(|i| SpikeTrain::from_times((0..3).map(|k| k * 80 + (i % 11)).collect()))
            .collect();
        let graph = SpikeGraph::from_trains(n, synapses, trains).unwrap();
        let arch = Architecture::custom(256, 2, InterconnectKind::Mesh).unwrap();
        let cfg = PipelineConfig::for_arch(arch);
        let problem = PartitionProblem::new(&graph, 256, 2).unwrap();
        let pso = PsoPartitioner::new(PsoConfig {
            swarm_size: 6,
            iterations: 3,
            fitness: FitnessKind::CutPackets,
            polish_passes: 1,
            ..PsoConfig::default()
        });
        let mapping = pso.partition(&problem).unwrap();
        let pts = buffer_depth_sweep(&graph, &mapping, &cfg, &[1, 4]).unwrap();
        assert_eq!(pts.len(), 2);
        let d0 = pts[0].stats.delivered;
        assert!(d0 > 0, "traffic must actually cross the mesh");
        assert!(pts.iter().all(|p| p.stats.delivered == d0));
    }

    #[test]
    fn mixed_sweep_reuses_the_shared_topology() {
        // one pipeline, heterogeneous (depth, vc) points: every point
        // must evaluate over the same Arc'd router graph (no rebuild),
        // conserve deliveries, and carry per-VC stats only when vc > 1
        let (graph, mapping, cfg) = setup();
        let pipeline = MappingPipeline::new(cfg.clone());
        let before = std::sync::Arc::strong_count(&pipeline.shared_topology());
        let pts = mixed_sweep_with(
            &pipeline,
            &graph,
            &mapping,
            &[
                NocOverride {
                    buffer_depth: Some(64),
                    vc_count: None,
                },
                NocOverride {
                    buffer_depth: Some(2),
                    vc_count: Some(2),
                },
                NocOverride::default(),
            ],
        )
        .unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].setting, "buffer_depth=64,vc_count=1");
        assert_eq!(pts[1].setting, "buffer_depth=2,vc_count=2");
        assert_eq!(pts[2].setting, "buffer_depth=4,vc_count=1");
        let d0 = pts[0].stats.delivered;
        assert!(d0 > 0);
        assert!(pts.iter().all(|p| p.stats.delivered == d0));
        assert_eq!(pts[1].stats.per_vc.len(), 2);
        assert!(pts[0].stats.per_vc.is_empty());
        assert!(pts[2].stats.per_vc.is_empty());
        // the sweep held no extra topology references after finishing,
        // and derived pipelines share the instance rather than rebuild
        assert_eq!(
            std::sync::Arc::strong_count(&pipeline.shared_topology()),
            before
        );
        let derived = pipeline.with_noc(cfg.noc);
        assert!(std::sync::Arc::ptr_eq(
            &pipeline.shared_topology(),
            &derived.shared_topology()
        ));
    }

    #[test]
    fn mixed_sweep_covers_the_vc_depth_tradeoff_on_a_torus() {
        // the study the override exists for: deep single-VC buffers vs
        // shallow dual-VC buffers on a wraparound fabric, one sweep
        let (graph, mapping, _) = setup();
        let arch = Architecture::custom(4, 6, InterconnectKind::Torus).unwrap();
        let cfg = PipelineConfig::for_arch(arch);
        let pts = mixed_sweep(
            &graph,
            &mapping,
            &cfg,
            &[
                NocOverride {
                    buffer_depth: Some(64),
                    vc_count: Some(1),
                },
                NocOverride {
                    buffer_depth: Some(2),
                    vc_count: Some(2),
                },
            ],
        )
        .unwrap();
        assert_eq!(pts.len(), 2);
        let d0 = pts[0].stats.delivered;
        assert!(pts.iter().all(|p| p.stats.delivered == d0));
    }

    #[test]
    fn deeper_buffers_do_not_increase_latency() {
        let (graph, mapping, cfg) = setup();
        let pts = buffer_depth_sweep(&graph, &mapping, &cfg, &[1, 4, 16]).unwrap();
        assert_eq!(pts.len(), 3);
        // deliveries conserved across the sweep
        let d0 = pts[0].stats.delivered;
        assert!(pts.iter().all(|p| p.stats.delivered == d0));
        // backpressure stalls with depth 1 must not beat depth 16
        assert!(
            pts[2].stats.avg_latency_cycles <= pts[0].stats.avg_latency_cycles + 1e-9,
            "deep buffers should not be slower: {} vs {}",
            pts[2].stats.avg_latency_cycles,
            pts[0].stats.avg_latency_cycles
        );
    }

    #[test]
    fn bigger_packets_cost_more_link_energy() {
        let (graph, mapping, cfg) = setup();
        let pts = packet_size_sweep(&graph, &mapping, &cfg, &[1, 4]).unwrap();
        assert!(pts[1].stats.counters.link_flits > pts[0].stats.counters.link_flits);
        assert!(pts[1].stats.global_energy_pj > pts[0].stats.global_energy_pj);
    }

    #[test]
    fn arbitration_conserves_traffic() {
        let (graph, mapping, cfg) = setup();
        let pts = arbitration_sweep(&graph, &mapping, &cfg).unwrap();
        assert_eq!(pts.len(), 3);
        let d0 = pts[0].stats.delivered;
        assert!(pts.iter().all(|p| p.stats.delivered == d0));
    }

    #[test]
    fn traced_sweep_points_carry_a_spotter_report() {
        // tracing on: every point gets a spotter report; tracing off
        // (the default): the field stays None and is skipped in JSON,
        // keeping pre-trace sweep outputs byte-identical
        let (graph, mapping, mut cfg) = setup();
        let plain = buffer_depth_sweep(&graph, &mapping, &cfg, &[1]).unwrap();
        assert!(plain[0].hotspots.is_none());
        let json = serde_json::to_string(&plain[0]).unwrap();
        assert!(
            !json.contains("hotspots"),
            "absent report must serialize away"
        );
        let back: NocSweepPoint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plain[0]);

        cfg.noc.trace = true;
        let traced = buffer_depth_sweep(&graph, &mapping, &cfg, &[1]).unwrap();
        let report = traced[0]
            .hotspots
            .as_ref()
            .expect("traced point spots lanes");
        // the bursty two-layer net saturates depth-1 FIFOs: the spotter
        // must surface at least one lane, and tracing must not perturb
        // the simulated statistics
        assert!(!report.lanes.is_empty());
        assert_eq!(
            traced[0].stats.digest().unwrap(),
            plain[0].stats.digest().unwrap(),
            "tracing must not change the statistics"
        );
    }

    #[test]
    fn slower_clock_raises_distortion() {
        let (graph, mapping, cfg) = setup();
        let pts = clock_sweep(&graph, &mapping, &cfg, &[16, 4096]).unwrap();
        assert!(
            pts[0].stats.avg_isi_distortion_cycles >= pts[1].stats.avg_isi_distortion_cycles,
            "congested clock must distort at least as much: {} vs {}",
            pts[0].stats.avg_isi_distortion_cycles,
            pts[1].stats.avg_isi_distortion_cycles
        );
    }
}
