//! NEUTRAMS-style partition-oblivious mapping.

use crate::error::CoreError;
use crate::partition::{PartitionProblem, Partitioner};
use neuromap_hw::mapping::Mapping;

/// NEUTRAMS-style ad-hoc mapping: neurons are interleaved round-robin over
/// the crossbars (`neuron i → crossbar i mod C`).
///
/// The paper uses NEUTRAMS as the technique that "uses a Network-on-Chip
/// simulator to determine energy consumption … *without solving the local
/// and global synapse partitioning problem*" and normalizes Fig. 5 to its
/// energy. Round-robin interleaving is the canonical such mapping: it
/// balances load perfectly but scatters every layer across all crossbars,
/// making almost every synapse global — the upper anchor of the energy
/// comparison.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeutramsPartitioner {
    _private: (),
}

impl NeutramsPartitioner {
    /// Creates the partitioner.
    pub fn new() -> Self {
        Self { _private: () }
    }
}

impl Partitioner for NeutramsPartitioner {
    fn name(&self) -> &'static str {
        "neutrams"
    }

    fn partition(&self, problem: &PartitionProblem<'_>) -> Result<Mapping, CoreError> {
        let c = problem.num_crossbars() as u32;
        let assignment: Vec<u32> = (0..problem.graph().num_neurons()).map(|i| i % c).collect();
        problem.into_mapping(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;

    #[test]
    fn interleaves_round_robin() {
        let g = SpikeGraph::from_parts(7, vec![], vec![0; 7]).unwrap();
        let p = PartitionProblem::new(&g, 3, 3).unwrap();
        let m = NeutramsPartitioner::new().partition(&p).unwrap();
        assert_eq!(m.assignment(), &[0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn load_is_balanced() {
        let g = SpikeGraph::from_parts(12, vec![], vec![0; 12]).unwrap();
        let p = PartitionProblem::new(&g, 4, 3).unwrap();
        let m = NeutramsPartitioner::new().partition(&p).unwrap();
        assert_eq!(m.occupancy(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn scatters_layers_maximally() {
        // a fully connected 4→4 bilayer: under round-robin over 2 crossbars
        // exactly half the synapses are cut; under sequential packing zero
        // would be (both layers fit one crossbar each — but that's PACMAN)
        let mut synapses = Vec::new();
        for a in 0..4u32 {
            for b in 4..8u32 {
                synapses.push((a, b));
            }
        }
        let g = SpikeGraph::from_parts(8, synapses, vec![1; 8]).unwrap();
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let m = NeutramsPartitioner::new().partition(&p).unwrap();
        assert_eq!(p.cut_spikes(m.assignment()), 8); // 16 synapses, half cut
    }
}
