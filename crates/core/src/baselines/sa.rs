//! Simulated annealing over the cut-spike cost.

use crate::error::CoreError;
use crate::partition::{Partitioner, PartitionProblem};
use neuromap_hw::mapping::Mapping;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Simulated-annealing hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Number of proposed moves.
    pub moves: u32,
    /// Initial temperature (in units of cut spikes).
    pub t0: f64,
    /// Geometric cooling factor per move.
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self { moves: 20_000, t0: 100.0, alpha: 0.9995, seed: 0x5A }
    }
}

/// Simulated annealing: starts from PACMAN's sequential packing and
/// proposes single-neuron migrations and pair swaps, accepted by the
/// Metropolis criterion under geometric cooling.
///
/// The paper argues PSO converges faster than SA at comparable quality
/// (§III); the `baselines` criterion bench quantifies that claim on this
/// implementation.
#[derive(Debug, Clone, Copy)]
pub struct SaPartitioner {
    config: SaConfig,
}

impl SaPartitioner {
    /// Creates the partitioner.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SaConfig {
        &self.config
    }
}

impl Partitioner for SaPartitioner {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn partition(&self, problem: &PartitionProblem<'_>) -> Result<Mapping, CoreError> {
        let cfg = &self.config;
        if cfg.moves == 0 {
            return Err(CoreError::InvalidParameter { name: "moves", value: "0".into() });
        }
        if !(0.0..1.0).contains(&cfg.alpha) && cfg.alpha != 1.0 {
            return Err(CoreError::InvalidParameter {
                name: "alpha",
                value: cfg.alpha.to_string(),
            });
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = problem.graph().num_neurons() as usize;
        let c = problem.num_crossbars();
        let cap = problem.capacity();

        // start from sequential packing
        let mut current: Vec<u32> = (0..n as u32).map(|i| i / cap).collect();
        let mut occ = vec![0u32; c];
        for &k in &current {
            occ[k as usize] += 1;
        }
        let mut cur_cost = problem.cut_spikes(&current) as i64;
        let mut best = current.clone();
        let mut best_cost = cur_cost;
        let mut temp = cfg.t0;

        for _ in 0..cfg.moves {
            // propose: 50% migrate one neuron, 50% swap two neurons
            if rng.gen_bool(0.5) {
                let i = rng.gen_range(0..n);
                let to = rng.gen_range(0..c) as u32;
                let from = current[i];
                if to == from || occ[to as usize] >= cap {
                    temp *= cfg.alpha;
                    continue;
                }
                let delta = move_delta(problem, &current, i, to);
                if accept(delta, temp, &mut rng) {
                    occ[from as usize] -= 1;
                    occ[to as usize] += 1;
                    current[i] = to;
                    cur_cost += delta;
                    if cur_cost < best_cost {
                        best_cost = cur_cost;
                        best.copy_from_slice(&current);
                    }
                }
            } else {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if current[i] == current[j] {
                    temp *= cfg.alpha;
                    continue;
                }
                let (ci, cj) = (current[i], current[j]);
                let delta = move_delta(problem, &current, i, cj) + {
                    // evaluate j's move with i already moved
                    let mut tmp = current.clone();
                    tmp[i] = cj;
                    move_delta(problem, &tmp, j, ci)
                };
                if accept(delta, temp, &mut rng) {
                    current[i] = cj;
                    current[j] = ci;
                    cur_cost += delta;
                    if cur_cost < best_cost {
                        best_cost = cur_cost;
                        best.copy_from_slice(&current);
                    }
                }
            }
            temp *= cfg.alpha;
        }

        problem.into_mapping(best)
    }
}

/// Cost change of migrating neuron `i` to crossbar `to` — evaluated
/// incrementally over `i`'s in/out edges instead of re-running Eq. 8.
fn move_delta(problem: &PartitionProblem<'_>, assignment: &[u32], i: usize, to: u32) -> i64 {
    let g = problem.graph();
    let from = assignment[i];
    let mut delta = 0i64;
    // out-edges of i: cut state flips where the target's crossbar matches
    let ci = g.count(i as u32) as i64;
    for &j in g.targets(i as u32) {
        let cj = assignment[j as usize];
        let was_cut = cj != from;
        let is_cut = cj != to;
        delta += ci * (is_cut as i64 - was_cut as i64);
    }
    // in-edges via the reverse CSR
    for &pre in g.sources(i as u32) {
        if pre as usize == i {
            continue; // self-loops never change cut state
        }
        let cp = assignment[pre as usize];
        let was_cut = cp != from;
        let is_cut = cp != to;
        delta += g.count(pre) as i64 * (is_cut as i64 - was_cut as i64);
    }
    delta
}

fn accept(delta: i64, temp: f64, rng: &mut StdRng) -> bool {
    delta <= 0 || (temp > 0.0 && rng.gen::<f64>() < (-(delta as f64) / temp).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;

    fn bipartite() -> SpikeGraph {
        let mut synapses = Vec::new();
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    synapses.push((a, b));
                    synapses.push((a + 3, b + 3));
                }
            }
        }
        synapses.push((0, 3));
        SpikeGraph::from_parts(6, synapses, vec![10; 6]).unwrap()
    }

    #[test]
    fn finds_good_cuts() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let m = SaPartitioner::new(SaConfig::default()).partition(&p).unwrap();
        // optimum is 10 (only the bridge)
        assert_eq!(p.cut_spikes(m.assignment()), 10);
    }

    #[test]
    fn move_delta_matches_full_recompute() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let a = vec![0, 0, 1, 1, 0, 1];
        let full_before = p.cut_spikes(&a) as i64;
        for i in 0..6usize {
            for to in 0..2u32 {
                let mut b = a.clone();
                b[i] = to;
                let full_after = p.cut_spikes(&b) as i64;
                let delta = move_delta(&p, &a, i, to);
                assert_eq!(delta, full_after - full_before, "i={i} to={to}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let cfg = SaConfig { moves: 2000, ..SaConfig::default() };
        let a = SaPartitioner::new(cfg).partition(&p).unwrap();
        let b = SaPartitioner::new(cfg).partition(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_moves_rejected() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let cfg = SaConfig { moves: 0, ..SaConfig::default() };
        assert!(SaPartitioner::new(cfg).partition(&p).is_err());
    }

    #[test]
    fn respects_capacity_throughout() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 3, 2).unwrap();
        let m = SaPartitioner::new(SaConfig::default()).partition(&p).unwrap();
        assert!(m.occupancy().iter().all(|&o| o <= 2));
    }
}
