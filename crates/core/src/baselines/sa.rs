//! Simulated annealing over the partitioning objectives.

use crate::error::CoreError;
use crate::eval::EvalEngine;
use crate::partition::{FitnessKind, PartitionProblem, Partitioner};
use crate::pso::default_threads;
use neuromap_hw::mapping::Mapping;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Simulated-annealing hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaConfig {
    /// Number of proposed moves per chain.
    pub moves: u32,
    /// Initial temperature (in units of the objective).
    pub t0: f64,
    /// Geometric cooling factor per move.
    pub alpha: f64,
    /// RNG seed (chain `k` derives its stream from `seed` and `k`).
    pub seed: u64,
    /// Independent annealing chains; the best result wins (ties go to the
    /// lowest chain index). More chains = more exploration, deterministic
    /// for a fixed value.
    pub restarts: u32,
    /// Worker threads the chains are spread across (defaults to
    /// [`std::thread::available_parallelism`]). Purely an execution knob:
    /// results depend on `restarts`, never on `threads`.
    pub threads: usize,
    /// Objective to minimize (Eq. 8 cut spikes by default).
    pub fitness: FitnessKind,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            moves: 20_000,
            t0: 100.0,
            alpha: 0.9995,
            seed: 0x5A,
            restarts: 1,
            threads: default_threads(),
            fitness: FitnessKind::CutSpikes,
        }
    }
}

/// Simulated annealing: starts from PACMAN's sequential packing and
/// proposes single-neuron migrations and pair swaps, accepted by the
/// Metropolis criterion under geometric cooling. Move costs come from the
/// shared incremental engine ([`EvalEngine`], O(deg) per proposal — no
/// full Eq. 8 evaluation anywhere in the chain, and no per-proposal
/// allocation).
///
/// The paper argues PSO converges faster than SA at comparable quality
/// (§III); the `baselines` criterion bench quantifies that claim on this
/// implementation.
#[derive(Debug, Clone, Copy)]
pub struct SaPartitioner {
    config: SaConfig,
}

impl SaPartitioner {
    /// Creates the partitioner.
    pub fn new(config: SaConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SaConfig {
        &self.config
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for zero moves/restarts/threads or
    /// a cooling factor outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), CoreError> {
        let cfg = &self.config;
        if cfg.moves == 0 {
            return Err(CoreError::InvalidParameter {
                name: "moves",
                value: "0".into(),
            });
        }
        if !(cfg.alpha > 0.0 && cfg.alpha <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "alpha",
                value: cfg.alpha.to_string(),
            });
        }
        if cfg.restarts == 0 {
            return Err(CoreError::InvalidParameter {
                name: "restarts",
                value: "0".into(),
            });
        }
        if cfg.threads == 0 {
            return Err(CoreError::InvalidParameter {
                name: "threads",
                value: "0".into(),
            });
        }
        Ok(())
    }
}

/// One annealing chain; deterministic for a fixed `(problem, cfg, seed)`.
fn run_chain(problem: &PartitionProblem<'_>, cfg: &SaConfig, seed: u64) -> (Vec<u32>, i64) {
    let engine = EvalEngine::new(*problem, cfg.fitness);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = problem.graph().num_neurons() as usize;
    let c = problem.num_crossbars();
    let cap = problem.capacity();

    // start from sequential packing
    let mut current: Vec<u32> = (0..n as u32).map(|i| i / cap).collect();
    let mut occ = vec![0u32; c];
    for &k in &current {
        occ[k as usize] += 1;
    }
    let mut state = engine.init(&current);
    let mut cur_cost = state.cost() as i64;
    let mut best = current.clone();
    let mut best_cost = cur_cost;
    let mut temp = cfg.t0;

    for _ in 0..cfg.moves {
        // propose: 50% migrate one neuron, 50% swap two neurons
        if rng.gen_bool(0.5) {
            let i = rng.gen_range(0..n);
            let to = rng.gen_range(0..c) as u32;
            let from = current[i];
            if to == from || occ[to as usize] >= cap {
                temp *= cfg.alpha;
                continue;
            }
            let delta = engine.move_delta(&state, &current, i, to);
            if accept(delta, temp, &mut rng) {
                occ[from as usize] -= 1;
                occ[to as usize] += 1;
                engine.apply_priced_move(&mut state, &mut current, i, to, delta);
                cur_cost += delta;
                if cur_cost < best_cost {
                    best_cost = cur_cost;
                    best.copy_from_slice(&current);
                }
            }
        } else {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if current[i] == current[j] {
                temp *= cfg.alpha;
                continue;
            }
            let (ci, cj) = (current[i], current[j]);
            // price the swap by applying i's half, pricing j's half on the
            // intermediate state, then keeping or reverting — O(deg),
            // allocation-free, exact for any objective
            let d1 = engine.apply_move(&mut state, &mut current, i, cj);
            let d2 = engine.move_delta(&state, &current, j, ci);
            if accept(d1 + d2, temp, &mut rng) {
                engine.apply_priced_move(&mut state, &mut current, j, ci, d2);
                cur_cost += d1 + d2;
                if cur_cost < best_cost {
                    best_cost = cur_cost;
                    best.copy_from_slice(&current);
                }
            } else {
                // revert i's half: the inverse move is priced at exactly -d1
                engine.apply_priced_move(&mut state, &mut current, i, ci, -d1);
            }
        }
        temp *= cfg.alpha;
    }

    (best, best_cost)
}

impl Partitioner for SaPartitioner {
    fn name(&self) -> &'static str {
        "sa"
    }

    fn partition(&self, problem: &PartitionProblem<'_>) -> Result<Mapping, CoreError> {
        self.validate()?;
        let cfg = &self.config;

        // chain k's stream: the base seed for chain 0 (compatibility),
        // golden-ratio offsets for the rest
        let chain_seed = |k: u32| {
            cfg.seed
                .wrapping_add(u64::from(k).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        };

        let results: Vec<(Vec<u32>, i64)> = if cfg.restarts == 1 || cfg.threads == 1 {
            (0..cfg.restarts)
                .map(|k| run_chain(problem, cfg, chain_seed(k)))
                .collect()
        } else {
            // spread chains over workers; results are collected in chain
            // order so the outcome never depends on thread count
            let workers = cfg.threads.min(cfg.restarts as usize);
            let mut results: Vec<Option<(Vec<u32>, i64)>> = Vec::new();
            results.resize_with(cfg.restarts as usize, || None);
            std::thread::scope(|s| {
                let chunks = results.chunks_mut((cfg.restarts as usize).div_ceil(workers));
                let mut first = 0u32;
                for chunk in chunks {
                    let len = chunk.len() as u32;
                    s.spawn(move || {
                        for (off, slot) in chunk.iter_mut().enumerate() {
                            let k = first + off as u32;
                            *slot = Some(run_chain(problem, cfg, chain_seed(k)));
                        }
                    });
                    first += len;
                }
            });
            results.into_iter().map(|r| r.expect("chain ran")).collect()
        };

        let best = results
            .into_iter()
            .min_by_key(|(_, cost)| *cost) // stable: first chain wins ties
            .expect("restarts >= 1")
            .0;
        problem.into_mapping(best)
    }
}

fn accept(delta: i64, temp: f64, rng: &mut StdRng) -> bool {
    delta <= 0 || (temp > 0.0 && rng.gen::<f64>() < (-(delta as f64) / temp).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;

    fn bipartite() -> SpikeGraph {
        let mut synapses = Vec::new();
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    synapses.push((a, b));
                    synapses.push((a + 3, b + 3));
                }
            }
        }
        synapses.push((0, 3));
        SpikeGraph::from_parts(6, synapses, vec![10; 6]).unwrap()
    }

    #[test]
    fn finds_good_cuts() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let m = SaPartitioner::new(SaConfig::default())
            .partition(&p)
            .unwrap();
        // optimum is 10 (only the bridge)
        assert_eq!(p.cut_spikes(m.assignment()), 10);
    }

    #[test]
    fn optimizes_packets_too() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let cfg = SaConfig {
            fitness: FitnessKind::CutPackets,
            ..SaConfig::default()
        };
        let m = SaPartitioner::new(cfg).partition(&p).unwrap();
        // the bridge is one multicast packet stream: optimum 10
        assert_eq!(p.cut_packets(m.assignment()), 10);
    }

    #[test]
    fn deterministic() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let cfg = SaConfig {
            moves: 2000,
            ..SaConfig::default()
        };
        let a = SaPartitioner::new(cfg).partition(&p).unwrap();
        let b = SaPartitioner::new(cfg).partition(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn threads_do_not_change_results() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let base = SaConfig {
            moves: 1500,
            restarts: 3,
            ..SaConfig::default()
        };
        let seq = SaPartitioner::new(SaConfig { threads: 1, ..base })
            .partition(&p)
            .unwrap();
        for threads in [2, 3, 8] {
            let par = SaPartitioner::new(SaConfig { threads, ..base })
                .partition(&p)
                .unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn more_restarts_never_worse() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let cost = |restarts| {
            let cfg = SaConfig {
                moves: 400,
                restarts,
                ..SaConfig::default()
            };
            let m = SaPartitioner::new(cfg).partition(&p).unwrap();
            p.cut_spikes(m.assignment())
        };
        assert!(cost(4) <= cost(1));
    }

    #[test]
    fn invalid_configs_rejected() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        for cfg in [
            SaConfig {
                moves: 0,
                ..SaConfig::default()
            },
            SaConfig {
                restarts: 0,
                ..SaConfig::default()
            },
            SaConfig {
                threads: 0,
                ..SaConfig::default()
            },
            SaConfig {
                alpha: 1.5,
                ..SaConfig::default()
            },
            SaConfig {
                alpha: 0.0,
                ..SaConfig::default()
            },
            SaConfig {
                alpha: -0.1,
                ..SaConfig::default()
            },
        ] {
            assert!(SaPartitioner::new(cfg).partition(&p).is_err(), "{cfg:?}");
        }
    }

    #[test]
    fn anneals_on_the_multi_word_envelope() {
        // 80 crossbars: the packet tallies cross the one-word boundary;
        // the chain must stay feasible and never worsen its PACMAN start
        use crate::graph::SpikeGraph;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let n = 120u32;
        let synapses: Vec<(u32, u32)> = (0..400)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(0..12)).collect();
        let g = SpikeGraph::from_parts(n, synapses, counts).unwrap();
        let p = PartitionProblem::new(&g, 80, 3).unwrap();
        let start: Vec<u32> = (0..n).map(|i| i / 3).collect();
        let start_cost = p.cut_packets(&start);
        let cfg = SaConfig {
            moves: 3000,
            fitness: FitnessKind::CutPackets,
            ..SaConfig::default()
        };
        let m = SaPartitioner::new(cfg).partition(&p).unwrap();
        assert!(p.is_feasible(m.assignment()));
        assert!(p.cut_packets(m.assignment()) <= start_cost);
    }

    #[test]
    fn respects_capacity_throughout() {
        let g = bipartite();
        let p = PartitionProblem::new(&g, 3, 2).unwrap();
        let m = SaPartitioner::new(SaConfig::default())
            .partition(&p)
            .unwrap();
        assert!(m.occupancy().iter().all(|&o| o <= 2));
    }
}
