//! Capacity-respecting uniform random placement.

use crate::error::CoreError;
use crate::partition::{PartitionProblem, Partitioner};
use neuromap_hw::mapping::Mapping;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Uniform random placement that respects capacity: a bag with `capacity`
/// copies of each crossbar id is shuffled and dealt to the neurons.
///
/// Not a paper baseline per se, but the natural null model — any
/// partitioner worth running must beat it.
#[derive(Debug, Clone, Copy)]
pub struct RandomPartitioner {
    seed: u64,
}

impl RandomPartitioner {
    /// Creates the partitioner with a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Default for RandomPartitioner {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Partitioner for RandomPartitioner {
    fn name(&self) -> &'static str {
        "random"
    }

    fn partition(&self, problem: &PartitionProblem<'_>) -> Result<Mapping, CoreError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = problem.graph().num_neurons() as usize;
        let mut bag: Vec<u32> = (0..problem.num_crossbars() as u32)
            .flat_map(|k| std::iter::repeat_n(k, problem.capacity() as usize))
            .collect();
        bag.shuffle(&mut rng);
        bag.truncate(n.max(1));
        // `bag` has C·cap ≥ n slots; deal the first n
        let assignment: Vec<u32> = bag.into_iter().take(n).collect();
        problem.into_mapping(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;

    #[test]
    fn always_feasible() {
        let g = SpikeGraph::from_parts(10, vec![], vec![0; 10]).unwrap();
        let p = PartitionProblem::new(&g, 3, 4).unwrap();
        for seed in 0..20 {
            let m = RandomPartitioner::new(seed).partition(&p).unwrap();
            assert!(p.is_feasible(m.assignment()), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = SpikeGraph::from_parts(6, vec![], vec![0; 6]).unwrap();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let a = RandomPartitioner::new(9).partition(&p).unwrap();
        let b = RandomPartitioner::new(9).partition(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = SpikeGraph::from_parts(20, vec![], vec![0; 20]).unwrap();
        let p = PartitionProblem::new(&g, 4, 5).unwrap();
        let a = RandomPartitioner::new(1).partition(&p).unwrap();
        let b = RandomPartitioner::new(2).partition(&p).unwrap();
        assert_ne!(a, b);
    }
}
