//! Baseline partitioners the paper compares against, plus the evolutionary
//! alternatives (SA, GA) it dismisses on convergence-speed grounds.
//!
//! * [`PacmanPartitioner`] — PACMAN (Galluppi et al., Computing Frontiers
//!   2012), SpiNNaker's hierarchical configuration system: populations are
//!   split *in index order* into core-sized chunks. No spike-traffic
//!   objective. This is the paper's main comparison point.
//! * [`NeutramsPartitioner`] — NEUTRAMS-style ad-hoc mapping (Ji et al.,
//!   MICRO 2016, as used in the paper): a NoC simulator evaluates a mapping
//!   produced *without* solving the local/global partitioning problem; we
//!   realize it as round-robin interleaving, the canonical
//!   partition-oblivious placement and the normalization baseline of
//!   Fig. 5.
//! * [`RandomPartitioner`] — capacity-respecting uniform random placement.
//! * [`SaPartitioner`] — simulated annealing over the same cost (Eq. 8).
//! * [`GaPartitioner`] — genetic algorithm over the same cost.

mod ga;
mod neutrams;
mod pacman;
mod random;
mod sa;

pub use ga::{GaConfig, GaPartitioner};
pub use neutrams::NeutramsPartitioner;
pub use pacman::PacmanPartitioner;
pub use random::RandomPartitioner;
pub use sa::{SaConfig, SaPartitioner};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;
    use crate::partition::{PartitionProblem, Partitioner};

    /// A layered net whose natural partition is by layer.
    fn layered() -> SpikeGraph {
        // 3 layers of 4 neurons, fully connected between consecutive layers
        let mut synapses = Vec::new();
        for layer in 0..2u32 {
            for a in 0..4u32 {
                for b in 0..4u32 {
                    synapses.push((layer * 4 + a, (layer + 1) * 4 + b));
                }
            }
        }
        SpikeGraph::from_parts(12, synapses, vec![10; 12]).unwrap()
    }

    #[test]
    fn all_baselines_produce_feasible_mappings() {
        let g = layered();
        let p = PartitionProblem::new(&g, 3, 4).unwrap();
        let parts: Vec<Box<dyn Partitioner>> = vec![
            Box::new(PacmanPartitioner::new()),
            Box::new(NeutramsPartitioner::new()),
            Box::new(RandomPartitioner::new(3)),
            Box::new(SaPartitioner::new(SaConfig::default())),
            Box::new(GaPartitioner::new(GaConfig::default())),
        ];
        for part in parts {
            let m = part
                .partition(&p)
                .unwrap_or_else(|e| panic!("{}: {e}", part.name()));
            assert!(p.is_feasible(m.assignment()), "{}", part.name());
        }
    }

    #[test]
    fn pacman_beats_neutrams_on_local_connectivity() {
        // On sparse, index-local wiring (chains, neighborhoods) sequential
        // packing keeps neighbors together while round-robin scatters them.
        // (On dense fully connected layers all balanced splits tie — the
        // paper's 4x200 observation.)
        let synapses: Vec<(u32, u32)> = (0..11u32).map(|i| (i, i + 1)).collect();
        let g = SpikeGraph::from_parts(12, synapses, vec![10; 12]).unwrap();
        let p = PartitionProblem::new(&g, 3, 4).unwrap();
        let pacman = PacmanPartitioner::new().partition(&p).unwrap();
        let neutrams = NeutramsPartitioner::new().partition(&p).unwrap();
        // chain: PACMAN cuts exactly 2 links (20 spikes); round-robin cuts all 11
        assert_eq!(p.cut_spikes(pacman.assignment()), 20);
        assert!(
            p.cut_spikes(neutrams.assignment()) > 20,
            "round-robin must scatter the chain"
        );
    }

    #[test]
    fn optimizers_beat_pacman_on_interleaved_ids() {
        // permuted ids destroy index locality: PACMAN suffers, SA/GA recover
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut perm: Vec<u32> = (0..12).collect();
        perm.shuffle(&mut rng);
        let base = layered();
        let synapses: Vec<(u32, u32)> = base
            .synapses()
            .iter()
            .map(|&(a, b)| (perm[a as usize], perm[b as usize]))
            .collect();
        let g = SpikeGraph::from_parts(12, synapses, vec![10; 12]).unwrap();
        let p = PartitionProblem::new(&g, 3, 4).unwrap();

        let pacman = PacmanPartitioner::new().partition(&p).unwrap();
        let sa = SaPartitioner::new(SaConfig::default())
            .partition(&p)
            .unwrap();
        assert!(
            p.cut_spikes(sa.assignment()) <= p.cut_spikes(pacman.assignment()),
            "an optimizer must not lose to index packing on shuffled ids"
        );
    }
}
