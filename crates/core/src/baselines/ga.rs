//! Genetic algorithm over the partitioning objectives.

use crate::error::CoreError;
use crate::eval::{SwarmEval, SwarmScratch};
use crate::partition::{FitnessKind, PartitionProblem, Partitioner};
use crate::pso::default_threads;
use neuromap_hw::mapping::Mapping;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Genetic-algorithm hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: u32,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Individuals copied unchanged into the next generation.
    pub elites: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for population evaluation (defaults to
    /// [`std::thread::available_parallelism`]). Purely an execution knob:
    /// results are identical for every value.
    pub threads: usize,
    /// Objective to minimize (Eq. 8 cut spikes by default).
    pub fitness: FitnessKind,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population: 40,
            generations: 60,
            mutation_rate: 0.02,
            tournament: 3,
            elites: 2,
            seed: 0x6A,
            threads: default_threads(),
            fitness: FitnessKind::CutSpikes,
        }
    }
}

/// A genetic algorithm on neuron→crossbar chromosomes: tournament
/// selection, uniform crossover, random-reassignment mutation, and a
/// capacity **repair** pass that relocates neurons from over-full crossbars
/// to the emptiest ones.
///
/// The population lives in one flat buffer (`population × N`) and every
/// generation is scored through the batched swarm evaluator
/// ([`SwarmEval`]) — the same vectorized cost kernels as the PSO —
/// optionally chunked across `threads` workers (chunking never changes
/// results). Uniform crossover rewrites ≈ half the genes, so per-child
/// incremental deltas cannot beat a batched scan; elites skip
/// re-evaluation entirely.
///
/// Implemented as the counterpart the paper compares PSO against
/// ("computationally less expensive with faster convergence compared to …
/// genetic algorithm (GA)"); the `baselines` bench measures both sides.
#[derive(Debug, Clone, Copy)]
pub struct GaPartitioner {
    config: GaConfig,
}

impl GaPartitioner {
    /// Creates the partitioner.
    pub fn new(config: GaConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a population below 2, zero
    /// tournament/threads, or a mutation rate outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), CoreError> {
        let cfg = &self.config;
        if cfg.population < 2 {
            return Err(CoreError::InvalidParameter {
                name: "population",
                value: cfg.population.to_string(),
            });
        }
        if cfg.tournament == 0 {
            return Err(CoreError::InvalidParameter {
                name: "tournament",
                value: "0".into(),
            });
        }
        if !(0.0..=1.0).contains(&cfg.mutation_rate) {
            return Err(CoreError::InvalidParameter {
                name: "mutation_rate",
                value: cfg.mutation_rate.to_string(),
            });
        }
        if cfg.threads == 0 {
            return Err(CoreError::InvalidParameter {
                name: "threads",
                value: "0".into(),
            });
        }
        Ok(())
    }
}

impl Partitioner for GaPartitioner {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn partition(&self, problem: &PartitionProblem<'_>) -> Result<Mapping, CoreError> {
        self.validate()?;
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = problem.graph().num_neurons() as usize;
        let c = problem.num_crossbars();
        let cap = problem.capacity();
        let pop_size = cfg.population;
        let evaluator = SwarmEval::new(*problem, cfg.fitness);

        // seed population (flat buffer): sequential packing + random
        // shuffles, capacity-repaired
        let mut pop = vec![0u32; pop_size * n];
        for (i, gene) in pop[..n].iter_mut().enumerate() {
            *gene = i as u32 / cap;
        }
        for m in 1..pop_size {
            let chrom = &mut pop[m * n..(m + 1) * n];
            for gene in chrom.iter_mut() {
                *gene = rng.gen_range(0..c) as u32;
            }
            repair(chrom, c, cap, &mut rng);
        }

        let mut fitness = vec![0u64; pop_size];
        let mut next = vec![0u32; pop_size * n];
        let mut order: Vec<usize> = (0..pop_size).collect();
        let mut elite_fitness: Vec<u64> = Vec::new();
        evaluate(&evaluator, &pop, pop_size, n, cfg.threads, &mut fitness);

        for _ in 0..cfg.generations {
            // elitism: fittest individuals survive unchanged (stable order
            // keeps ties deterministic) and carry their known fitness —
            // only the freshly bred slots are re-evaluated below
            order.clear();
            order.extend(0..pop_size);
            order.sort_by_key(|&i| fitness[i]);
            let elites = cfg.elites.min(pop_size);
            elite_fitness.clear();
            for (slot, &i) in order.iter().take(elites).enumerate() {
                next[slot * n..(slot + 1) * n].copy_from_slice(&pop[i * n..(i + 1) * n]);
                elite_fitness.push(fitness[i]);
            }
            for slot in elites..pop_size {
                let a = tournament(&fitness, cfg.tournament, &mut rng);
                let b = tournament(&fitness, cfg.tournament, &mut rng);
                let (pa, pb) = (&pop[a * n..(a + 1) * n], &pop[b * n..(b + 1) * n]);
                let child = &mut next[slot * n..(slot + 1) * n];
                for i in 0..n {
                    child[i] = if rng.gen_bool(0.5) { pa[i] } else { pb[i] };
                    if rng.gen_bool(cfg.mutation_rate) {
                        child[i] = rng.gen_range(0..c) as u32;
                    }
                }
                repair(child, c, cap, &mut rng);
            }
            std::mem::swap(&mut pop, &mut next);
            fitness[..elites].copy_from_slice(&elite_fitness);
            evaluate(
                &evaluator,
                &pop[elites * n..],
                pop_size - elites,
                n,
                cfg.threads,
                &mut fitness[elites..],
            );
        }

        let best = (0..pop_size)
            .min_by_key(|&i| fitness[i])
            .expect("population is non-empty");
        problem.into_mapping(pop[best * n..(best + 1) * n].to_vec())
    }
}

/// Scores the whole population through the batched evaluator, chunked
/// across up to `threads` workers. Chunk boundaries never affect results
/// (each lane is evaluated independently and written to its own slot).
fn evaluate(
    evaluator: &SwarmEval<'_>,
    pop: &[u32],
    pop_size: usize,
    n: usize,
    threads: usize,
    fitness: &mut [u64],
) {
    let workers = threads.min(pop_size);
    if workers <= 1 {
        let mut scratch = SwarmScratch::default();
        evaluator.eval_swarm(pop, pop_size, &mut scratch, fitness);
        return;
    }
    let chunk = pop_size.div_ceil(workers);
    std::thread::scope(|s| {
        for (lanes, out) in pop.chunks(chunk * n).zip(fitness.chunks_mut(chunk)) {
            s.spawn(move || {
                let mut scratch = SwarmScratch::default();
                evaluator.eval_swarm(lanes, out.len(), &mut scratch, out);
            });
        }
    });
}

/// Tournament selection: the fittest of `k` uniformly drawn individuals.
fn tournament(fitness: &[u64], k: usize, rng: &mut StdRng) -> usize {
    (0..k.max(1))
        .map(|_| rng.gen_range(0..fitness.len()))
        .min_by_key(|&i| fitness[i])
        .expect("k >= 1")
}

/// Moves neurons out of over-capacity crossbars into the least-loaded ones.
fn repair(chrom: &mut [u32], c: usize, cap: u32, rng: &mut StdRng) {
    let mut occ = vec![0u32; c];
    for &k in chrom.iter() {
        occ[k as usize] += 1;
    }
    for gene in chrom.iter_mut() {
        let k = *gene as usize;
        if occ[k] > cap {
            // candidate targets with space, pick the emptiest (ties random)
            let min = occ
                .iter()
                .enumerate()
                .filter(|(kk, &o)| *kk != k && o < cap)
                .map(|(_, &o)| o)
                .min();
            if let Some(min) = min {
                let options: Vec<usize> = occ
                    .iter()
                    .enumerate()
                    .filter(|(kk, &o)| *kk != k && o == min)
                    .map(|(kk, _)| kk)
                    .collect();
                let to = options[rng.gen_range(0..options.len())];
                occ[k] -= 1;
                occ[to] += 1;
                *gene = to as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;

    fn clusters() -> SpikeGraph {
        let mut synapses = Vec::new();
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    synapses.push((a, b));
                    synapses.push((a + 3, b + 3));
                }
            }
        }
        synapses.push((1, 4));
        SpikeGraph::from_parts(6, synapses, vec![10; 6]).unwrap()
    }

    #[test]
    fn converges_to_natural_cut() {
        let g = clusters();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let m = GaPartitioner::new(GaConfig::default())
            .partition(&p)
            .unwrap();
        assert_eq!(p.cut_spikes(m.assignment()), 10);
    }

    #[test]
    fn optimizes_packets_too() {
        let g = clusters();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let cfg = GaConfig {
            fitness: FitnessKind::CutPackets,
            ..GaConfig::default()
        };
        let m = GaPartitioner::new(cfg).partition(&p).unwrap();
        assert_eq!(p.cut_packets(m.assignment()), 10);
    }

    #[test]
    fn repair_enforces_capacity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut chrom = vec![0u32; 10]; // everything on crossbar 0
        repair(&mut chrom, 3, 4, &mut rng);
        let mut occ = vec![0u32; 3];
        for &k in &chrom {
            occ[k as usize] += 1;
        }
        assert!(occ.iter().all(|&o| o <= 4), "{occ:?}");
    }

    #[test]
    fn deterministic() {
        let g = clusters();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let cfg = GaConfig {
            generations: 10,
            ..GaConfig::default()
        };
        let a = GaPartitioner::new(cfg).partition(&p).unwrap();
        let b = GaPartitioner::new(cfg).partition(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn threads_do_not_change_results() {
        let g = clusters();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let base = GaConfig {
            generations: 8,
            ..GaConfig::default()
        };
        let seq = GaPartitioner::new(GaConfig { threads: 1, ..base })
            .partition(&p)
            .unwrap();
        for threads in [2, 5, 16] {
            let par = GaPartitioner::new(GaConfig { threads, ..base })
                .partition(&p)
                .unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }

    #[test]
    fn ga_population_scoring_uses_the_lifted_envelope() {
        // 100 crossbars: the GA's batched SwarmEval scoring now runs the
        // multi-word tiled path; results must stay thread-invariant and
        // feasible (batched == scalar cost equality at these widths is
        // covered by the `large_arch` block in tests/eval_properties.rs)
        use crate::eval::SwarmEval;
        use crate::graph::SpikeGraph;
        let mut rng = StdRng::seed_from_u64(23);
        let n = 150u32;
        let synapses: Vec<(u32, u32)> = (0..500)
            .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
            .collect();
        let counts: Vec<u32> = (0..n).map(|_| rng.gen_range(0..10)).collect();
        let g = SpikeGraph::from_parts(n, synapses, counts).unwrap();
        let p = PartitionProblem::new(&g, 100, 2).unwrap();
        assert!(SwarmEval::new(p, FitnessKind::CutPackets).batched());
        let base = GaConfig {
            population: 12,
            generations: 6,
            fitness: FitnessKind::CutPackets,
            ..GaConfig::default()
        };
        let seq = GaPartitioner::new(GaConfig { threads: 1, ..base })
            .partition(&p)
            .unwrap();
        let par = GaPartitioner::new(GaConfig { threads: 4, ..base })
            .partition(&p)
            .unwrap();
        assert_eq!(seq, par, "chunked batched scoring must be thread-invariant");
        assert!(p.is_feasible(seq.assignment()));
    }

    #[test]
    fn invalid_configs_rejected() {
        let g = clusters();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        for cfg in [
            GaConfig {
                population: 1,
                ..GaConfig::default()
            },
            GaConfig {
                tournament: 0,
                ..GaConfig::default()
            },
            GaConfig {
                threads: 0,
                ..GaConfig::default()
            },
            GaConfig {
                mutation_rate: 1.5,
                ..GaConfig::default()
            },
        ] {
            assert!(GaPartitioner::new(cfg).partition(&p).is_err(), "{cfg:?}");
        }
    }
}
