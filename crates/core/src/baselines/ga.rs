//! Genetic algorithm over the cut-spike cost.

use crate::error::CoreError;
use crate::partition::{Partitioner, PartitionProblem};
use neuromap_hw::mapping::Mapping;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Genetic-algorithm hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: u32,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Individuals copied unchanged into the next generation.
    pub elites: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population: 40,
            generations: 60,
            mutation_rate: 0.02,
            tournament: 3,
            elites: 2,
            seed: 0x6A,
        }
    }
}

/// A genetic algorithm on neuron→crossbar chromosomes: tournament
/// selection, uniform crossover, random-reassignment mutation, and a
/// capacity **repair** pass that relocates neurons from over-full crossbars
/// to the emptiest ones.
///
/// Implemented as the counterpart the paper compares PSO against
/// ("computationally less expensive with faster convergence compared to …
/// genetic algorithm (GA)"); the `baselines` bench measures both sides.
#[derive(Debug, Clone, Copy)]
pub struct GaPartitioner {
    config: GaConfig,
}

impl GaPartitioner {
    /// Creates the partitioner.
    pub fn new(config: GaConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GaConfig {
        &self.config
    }
}

impl Partitioner for GaPartitioner {
    fn name(&self) -> &'static str {
        "ga"
    }

    fn partition(&self, problem: &PartitionProblem<'_>) -> Result<Mapping, CoreError> {
        let cfg = &self.config;
        if cfg.population < 2 {
            return Err(CoreError::InvalidParameter {
                name: "population",
                value: cfg.population.to_string(),
            });
        }
        if cfg.tournament == 0 {
            return Err(CoreError::InvalidParameter { name: "tournament", value: "0".into() });
        }
        if !(0.0..=1.0).contains(&cfg.mutation_rate) {
            return Err(CoreError::InvalidParameter {
                name: "mutation_rate",
                value: cfg.mutation_rate.to_string(),
            });
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = problem.graph().num_neurons() as usize;
        let c = problem.num_crossbars();
        let cap = problem.capacity();

        // seed population: sequential packing + random shuffles
        let mut pop: Vec<Vec<u32>> = Vec::with_capacity(cfg.population);
        pop.push((0..n as u32).map(|i| i / cap).collect());
        while pop.len() < cfg.population {
            let mut chrom: Vec<u32> = (0..n).map(|_| rng.gen_range(0..c) as u32).collect();
            repair(&mut chrom, c, cap, &mut rng);
            pop.push(chrom);
        }

        let mut fitness: Vec<u64> = pop.iter().map(|x| problem.cut_spikes(x)).collect();

        for _ in 0..cfg.generations {
            let mut next: Vec<Vec<u32>> = Vec::with_capacity(cfg.population);
            // elitism
            let mut order: Vec<usize> = (0..pop.len()).collect();
            order.sort_by_key(|&i| fitness[i]);
            for &i in order.iter().take(cfg.elites.min(pop.len())) {
                next.push(pop[i].clone());
            }
            while next.len() < cfg.population {
                let a = tournament(&fitness, cfg.tournament, &mut rng);
                let b = tournament(&fitness, cfg.tournament, &mut rng);
                let mut child: Vec<u32> = (0..n)
                    .map(|i| if rng.gen_bool(0.5) { pop[a][i] } else { pop[b][i] })
                    .collect();
                for gene in child.iter_mut() {
                    if rng.gen_bool(cfg.mutation_rate) {
                        *gene = rng.gen_range(0..c) as u32;
                    }
                }
                repair(&mut child, c, cap, &mut rng);
                next.push(child);
            }
            pop = next;
            fitness = pop.iter().map(|x| problem.cut_spikes(x)).collect();
        }

        let best = (0..pop.len())
            .min_by_key(|&i| fitness[i])
            .expect("population is non-empty");
        problem.into_mapping(pop.swap_remove(best))
    }
}

/// Tournament selection: the fittest of `k` uniformly drawn individuals.
fn tournament(fitness: &[u64], k: usize, rng: &mut StdRng) -> usize {
    (0..k.max(1))
        .map(|_| rng.gen_range(0..fitness.len()))
        .min_by_key(|&i| fitness[i])
        .expect("k >= 1")
}

/// Moves neurons out of over-capacity crossbars into the least-loaded ones.
fn repair(chrom: &mut [u32], c: usize, cap: u32, rng: &mut StdRng) {
    let mut occ = vec![0u32; c];
    for &k in chrom.iter() {
        occ[k as usize] += 1;
    }
    for gene in chrom.iter_mut() {
        let k = *gene as usize;
        if occ[k] > cap {
            // candidate targets with space, pick the emptiest (ties random)
            let min = occ
                .iter()
                .enumerate()
                .filter(|(kk, &o)| *kk != k && o < cap)
                .map(|(_, &o)| o)
                .min();
            if let Some(min) = min {
                let options: Vec<usize> = occ
                    .iter()
                    .enumerate()
                    .filter(|(kk, &o)| *kk != k && o == min)
                    .map(|(kk, _)| kk)
                    .collect();
                let to = options[rng.gen_range(0..options.len())];
                occ[k] -= 1;
                occ[to] += 1;
                *gene = to as u32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;

    fn clusters() -> SpikeGraph {
        let mut synapses = Vec::new();
        for a in 0..3u32 {
            for b in 0..3u32 {
                if a != b {
                    synapses.push((a, b));
                    synapses.push((a + 3, b + 3));
                }
            }
        }
        synapses.push((1, 4));
        SpikeGraph::from_parts(6, synapses, vec![10; 6]).unwrap()
    }

    #[test]
    fn converges_to_natural_cut() {
        let g = clusters();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let m = GaPartitioner::new(GaConfig::default()).partition(&p).unwrap();
        assert_eq!(p.cut_spikes(m.assignment()), 10);
    }

    #[test]
    fn repair_enforces_capacity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut chrom = vec![0u32; 10]; // everything on crossbar 0
        repair(&mut chrom, 3, 4, &mut rng);
        let mut occ = vec![0u32; 3];
        for &k in &chrom {
            occ[k as usize] += 1;
        }
        assert!(occ.iter().all(|&o| o <= 4), "{occ:?}");
    }

    #[test]
    fn deterministic() {
        let g = clusters();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let cfg = GaConfig { generations: 10, ..GaConfig::default() };
        let a = GaPartitioner::new(cfg).partition(&p).unwrap();
        let b = GaPartitioner::new(cfg).partition(&p).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_population_rejected() {
        let g = clusters();
        let p = PartitionProblem::new(&g, 2, 3).unwrap();
        let cfg = GaConfig { population: 1, ..GaConfig::default() };
        assert!(GaPartitioner::new(cfg).partition(&p).is_err());
    }
}
