//! PACMAN-style hierarchical population packing.

use crate::error::CoreError;
use crate::partition::{PartitionProblem, Partitioner};
use neuromap_hw::mapping::Mapping;

/// PACMAN (Galluppi et al. 2012), adapted to crossbars the way the paper
/// adapts it to CxQuad.
///
/// SpiNNaker's configuration system performs *hierarchical model
/// splitting*: each population is divided independently into core-sized
/// chunks, and a core only ever hosts neurons of a single population (a
/// SpiNNaker core runs one neuron-model kernel). We reproduce exactly
/// that: populations are packed in declaration order, each population
/// starting on a fresh crossbar, split into capacity-sized chunks in
/// neuron-id order. There is no spike-traffic objective — which is the
/// limitation the paper's PSO addresses.
///
/// When the chip has fewer crossbars than the population-aligned layout
/// needs (possible because per-population rounding wastes slack), the
/// remainder spills over into the crossbars with free capacity, preserving
/// feasibility.
#[derive(Debug, Clone, Copy, Default)]
pub struct PacmanPartitioner {
    _private: (),
}

impl PacmanPartitioner {
    /// Creates the partitioner.
    pub fn new() -> Self {
        Self { _private: () }
    }
}

impl Partitioner for PacmanPartitioner {
    fn name(&self) -> &'static str {
        "pacman"
    }

    fn partition(&self, problem: &PartitionProblem<'_>) -> Result<Mapping, CoreError> {
        let cap = problem.capacity();
        let c = problem.num_crossbars();
        let n = problem.graph().num_neurons() as usize;
        let mut assignment = vec![u32::MAX; n];
        let mut occ = vec![0u32; c];
        let mut next_fresh = 0usize;
        let mut spill: Vec<u32> = Vec::new();

        for pop in problem.graph().populations() {
            for (idx, neuron) in pop.enumerate() {
                // a new chunk (population start or capacity boundary)
                // claims a fresh crossbar
                if (idx as u32).is_multiple_of(cap) && next_fresh < c {
                    // advance to the next completely empty crossbar
                    while next_fresh < c && occ[next_fresh] > 0 {
                        next_fresh += 1;
                    }
                }
                let target = if next_fresh < c && occ[next_fresh] < cap {
                    next_fresh as u32
                } else {
                    u32::MAX // defer to spill pass
                };
                if target == u32::MAX {
                    spill.push(neuron);
                } else {
                    assignment[neuron as usize] = target;
                    occ[target as usize] += 1;
                }
            }
            // the next population must not share this crossbar
            if next_fresh < c && occ[next_fresh] > 0 {
                next_fresh += 1;
            }
        }

        // spill-over: fill crossbars with remaining capacity, in order
        let mut k = 0usize;
        for neuron in spill {
            while k < c && occ[k] >= cap {
                k += 1;
            }
            if k >= c {
                return Err(CoreError::Infeasible {
                    neurons: n as u32,
                    crossbars: c,
                    capacity: cap,
                });
            }
            assignment[neuron as usize] = k as u32;
            occ[k] += 1;
        }

        problem.into_mapping(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SpikeGraph;

    fn graph_with_pops(n: u32, pops: Vec<u32>) -> SpikeGraph {
        SpikeGraph::from_parts(n, vec![], vec![0; n as usize])
            .unwrap()
            .with_populations(pops)
            .unwrap()
    }

    #[test]
    fn packs_in_index_order_single_population() {
        let g = graph_with_pops(7, vec![0, 7]);
        let p = PartitionProblem::new(&g, 3, 3).unwrap();
        let m = PacmanPartitioner::new().partition(&p).unwrap();
        assert_eq!(m.assignment(), &[0, 0, 0, 1, 1, 1, 2]);
    }

    #[test]
    fn populations_never_share_crossbars() {
        // two populations of 3 on crossbars of 4: each gets its own
        let g = graph_with_pops(6, vec![0, 3, 6]);
        let p = PartitionProblem::new(&g, 2, 4).unwrap();
        let m = PacmanPartitioner::new().partition(&p).unwrap();
        assert_eq!(m.assignment(), &[0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn large_population_splits_into_chunks() {
        let g = graph_with_pops(10, vec![0, 8, 10]);
        let p = PartitionProblem::new(&g, 3, 4).unwrap();
        let m = PacmanPartitioner::new().partition(&p).unwrap();
        // pop 0 (8 neurons) → crossbars 0, 1; pop 1 (2 neurons) → crossbar 2
        assert_eq!(m.assignment(), &[0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn spill_over_when_crossbars_run_out() {
        // three pops of 3 but only 2 crossbars of 5: the third pop spills
        let g = graph_with_pops(9, vec![0, 3, 6, 9]);
        let p = PartitionProblem::new(&g, 2, 5).unwrap();
        let m = PacmanPartitioner::new().partition(&p).unwrap();
        assert!(p.is_feasible(m.assignment()));
        // first two pops own the two crossbars
        assert_eq!(&m.assignment()[0..3], &[0, 0, 0]);
        assert_eq!(&m.assignment()[3..6], &[1, 1, 1]);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(PacmanPartitioner::new().name(), "pacman");
    }
}
